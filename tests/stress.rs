//! Stress and failure-injection tests: resource bounds must surface as
//! errors (never hangs), large synthesized rule bases must compile and
//! run, and pathological shapes must stay polynomial where promised.

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::sld::{solve_sld, SldConfig};
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::optimizer::{OptConfig, Optimizer, Strategy};
use ldl::storage::Database;
use std::fmt::Write as _;
use std::time::Instant;

#[test]
fn tiny_iteration_bound_errors_cleanly() {
    let text =
        "e(1, 2). e(2, 3). e(3, 4). e(4, 5).\ntc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("tc(1, Y)?").unwrap();
    // A bound of 1 iteration cannot complete the chain: must be an error,
    // not a wrong answer.
    for m in [Method::Naive, Method::SemiNaive] {
        let r = evaluate_query(
            &program,
            &db,
            &q,
            m,
            &FixpointConfig::with_max_iterations(1),
        );
        assert!(r.is_err(), "{} must report the bound", m.name());
    }
}

#[test]
fn sld_resolution_cap_errors_not_hangs() {
    // Cyclic data + right recursion: SLD revisits states forever; the
    // resolution cap must fire.
    let text = "e(1, 2). e(2, 1).\ntc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("tc(1, Y)?").unwrap();
    // The cap is sized so the test proves graceful cutoff while staying
    // inside the time budget even in unoptimized builds: each resolution
    // near the clamped depth bound clones a depth-proportional
    // substitution, so steps here are orders of magnitude more expensive
    // than in shallow searches.
    let started = Instant::now();
    let r = solve_sld(
        &program,
        &db,
        &q,
        &SldConfig {
            max_depth: 1 << 20,
            max_resolutions: 5_000,
            max_answers: None,
        },
    );
    // Either the resolution cap fires (error) or the clamped depth bound
    // cuts the search (incomplete result) — both are graceful, neither
    // hangs nor overflows the stack.
    match r {
        Err(_) => {}
        Ok((_, stats)) => assert!(stats.depth_exceeded),
    }
    assert!(started.elapsed().as_secs() < 10);
}

#[test]
fn hundred_rule_program_optimizes_and_runs() {
    // A 100-rule layered program with a recursive core.
    let mut text = String::new();
    for i in 0..25 {
        writeln!(text, "e{i}({}, {}).", i, i + 1).unwrap();
    }
    writeln!(text, "link(X, Y) <- e0(X, Y).").unwrap();
    for i in 1..25 {
        writeln!(text, "link(X, Y) <- e{i}(X, Y).").unwrap();
    }
    writeln!(text, "tc(X, Y) <- link(X, Y).").unwrap();
    writeln!(text, "tc(X, Y) <- link(X, Z), tc(Z, Y).").unwrap();
    for i in 0..25 {
        writeln!(text, "q{i}(X) <- tc({i}, X).").unwrap();
    }
    for i in 0..25 {
        writeln!(text, "top{i}(X) <- q{i}(X), link(X, Y).").unwrap();
    }
    let program = parse_program(&text).unwrap();
    assert!(program.rules.len() >= 100 - 25);
    let db = Database::from_program(&program);
    let opt = Optimizer::with_defaults(&program, &db);
    let q = parse_query("top0(X)?").unwrap();
    let started = Instant::now();
    let plan = opt.optimize(&q).unwrap();
    assert!(
        started.elapsed().as_secs() < 30,
        "optimization must stay fast"
    );
    let ans = plan
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    assert!(!ans.tuples.is_empty());
}

#[test]
fn wide_rule_falls_back_from_exhaustive() {
    // 12 literals: exhaustive would need 479M orders; the configured
    // fallback to DP must kick in and stay fast.
    let mut body = Vec::new();
    for i in 0..12 {
        body.push(format!("r{i}(X{i}, X{})", i + 1));
    }
    let mut text = format!("wide(X0, X12) <- {}.\n", body.join(", "));
    for i in 0..12 {
        text.push_str(&format!("r{i}({i}, {}).\n", i + 1));
    }
    let program = parse_program(&text).unwrap();
    let db = Database::from_program(&program);
    let opt = Optimizer::new(
        &program,
        &db,
        OptConfig {
            strategy: Strategy::Exhaustive,
            ..OptConfig::default()
        },
    );
    let q = parse_query("wide(0, Z)?").unwrap();
    let started = Instant::now();
    let plan = opt.optimize(&q).unwrap();
    assert!(started.elapsed().as_secs() < 10);
    let ans = plan
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    assert_eq!(ans.tuples.len(), 1);
}

#[test]
fn annealing_handles_wide_rules_too() {
    let mut body = Vec::new();
    for i in 0..14 {
        body.push(format!("r{i}(X{i}, X{})", i + 1));
    }
    let mut text = format!("wide(X0, X14) <- {}.\n", body.join(", "));
    for i in 0..14 {
        text.push_str(&format!("r{i}({i}, {}).\n", i + 1));
    }
    let program = parse_program(&text).unwrap();
    let db = Database::from_program(&program);
    let opt = Optimizer::new(
        &program,
        &db,
        OptConfig {
            strategy: Strategy::Annealing,
            ..OptConfig::default()
        },
    );
    let q = parse_query("wide(0, Z)?").unwrap();
    let plan = opt.optimize(&q).unwrap();
    assert!(plan.cost.is_finite());
}

#[test]
fn deep_clique_c_permutation_space_switches_to_annealing() {
    // Two recursive rules with 5 literals each: 5!·5! = 14400 c-perms,
    // above the 4000 cap — the clique search must switch to annealing
    // and still produce a safe plan.
    let text = r#"
        p(X, Y) <- b1(X, Y).
        p(X, Y) <- b2(X, A), b3(A, B), p(B, C), b4(C, D), b5(D, Y).
        p(X, Y) <- b5(X, A), b4(A, B), p(B, C), b3(C, D), b2(D, Y).
        b1(1, 2). b2(1, 2). b3(2, 3). b4(3, 4). b5(4, 5).
    "#;
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let opt = Optimizer::with_defaults(&program, &db);
    let q = parse_query("p(1, Y)?").unwrap();
    let plan = opt.optimize(&q).unwrap();
    assert!(plan.cost.is_finite());
    // Annealing was used: probes well below the exhaustive 14400 x2.
    assert!(plan.stats.cpermutations_probed < 14_400, "{:?}", plan.stats);
    let ans = plan
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    let reference = evaluate_query(
        &program,
        &db,
        &q,
        Method::SemiNaive,
        &FixpointConfig::default(),
    )
    .unwrap();
    assert_eq!(ans.tuples, reference.tuples);
}

#[test]
fn ten_thousand_facts_load_and_query() {
    let mut text = String::new();
    for i in 0..10_000 {
        writeln!(text, "e({}, {}).", i % 500, (i * 31) % 500).unwrap();
    }
    text.push_str("deg2(X, Z) <- e(X, Y), e(Y, Z).\n");
    let program = parse_program(&text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("deg2(7, Z)?").unwrap();
    let started = Instant::now();
    let ans = evaluate_query(&program, &db, &q, Method::Magic, &FixpointConfig::default()).unwrap();
    assert!(started.elapsed().as_secs() < 20);
    assert!(!ans.tuples.is_empty());
}
