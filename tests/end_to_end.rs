//! End-to-end integration: parse → optimize → execute across subsystems,
//! checking that every fixpoint method and every optimized plan agrees
//! with a reference evaluation.

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::optimizer::{OptConfig, Optimizer};
use ldl::storage::Database;

fn reference(text: &str, q: &str) -> ldl::storage::Relation {
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let query = parse_query(q).unwrap();
    evaluate_query(
        &program,
        &db,
        &query,
        Method::Naive,
        &FixpointConfig::default(),
    )
    .unwrap()
    .tuples
}

fn optimized(text: &str, q: &str, acyclic: bool) -> ldl::storage::Relation {
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let query = parse_query(q).unwrap();
    let opt = Optimizer::new(
        &program,
        &db,
        OptConfig {
            assume_acyclic: acyclic,
            ..OptConfig::default()
        },
    );
    let plan = opt.optimize(&query).unwrap();
    plan.execute(&program, &db, &FixpointConfig::default())
        .unwrap()
        .tuples
}

const ANCESTOR: &str = r#"
    parent(abe, homer). parent(mona, homer).
    parent(homer, bart). parent(homer, lisa). parent(homer, maggie).
    parent(marge, bart). parent(marge, lisa).
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
"#;

#[test]
fn ancestor_bound_query_all_paths_agree() {
    let expect = reference(ANCESTOR, "anc(abe, Y)?");
    assert_eq!(expect.len(), 4); // homer, bart, lisa, maggie
    assert_eq!(optimized(ANCESTOR, "anc(abe, Y)?", false), expect);
    assert_eq!(optimized(ANCESTOR, "anc(abe, Y)?", true), expect);
}

#[test]
fn ancestor_reverse_binding() {
    let expect = reference(ANCESTOR, "anc(X, lisa)?");
    assert_eq!(expect.len(), 4); // homer, marge, abe, mona
    assert_eq!(optimized(ANCESTOR, "anc(X, lisa)?", false), expect);
}

#[test]
fn ancestor_free_query() {
    let expect = reference(ANCESTOR, "anc(X, Y)?");
    assert_eq!(optimized(ANCESTOR, "anc(X, Y)?", false), expect);
}

#[test]
fn every_method_agrees_on_every_binding_of_sg() {
    let sg = r#"
        up(1, 10). up(2, 10). up(3, 20). up(10, 100). up(20, 100).
        flat(100, 100).
        dn(100, 10). dn(100, 20). dn(10, 1). dn(10, 2). dn(20, 3).
        sg(X, Y) <- flat(X, Y).
        sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
    "#;
    let program = parse_program(sg).unwrap();
    let db = Database::from_program(&program);
    let cfg = FixpointConfig::default();
    for q in ["sg(1, Y)?", "sg(X, 2)?", "sg(1, 2)?", "sg(X, Y)?"] {
        let query = parse_query(q).unwrap();
        let expect = evaluate_query(&program, &db, &query, Method::Naive, &cfg)
            .unwrap()
            .tuples;
        for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
            let got = evaluate_query(&program, &db, &query, m, &cfg)
                .unwrap()
                .tuples;
            assert_eq!(got, expect, "{} on {}", m.name(), q);
        }
    }
}

#[test]
fn multi_stratum_program_with_negation() {
    let text = r#"
        edge(1, 2). edge(2, 3). edge(4, 5).
        node(1). node(2). node(3). node(4). node(5).
        reach(1).
        reach(Y) <- reach(X), edge(X, Y).
        isolated(X) <- node(X), ~reach(X).
    "#;
    let expect = reference(text, "isolated(X)?");
    assert_eq!(expect.len(), 2); // 4, 5
    let got = optimized(text, "isolated(X)?", false);
    assert_eq!(got, expect);
}

#[test]
fn nonrecursive_multiway_join_optimized_correctly() {
    let text = r#"
        r1(1, 2). r1(2, 3).
        r2(2, 10). r2(3, 20).
        r3(10, a). r3(20, b).
        q(X, W) <- r1(X, Y), r2(Y, Z), r3(Z, W).
    "#;
    let expect = reference(text, "q(1, W)?");
    assert_eq!(expect.len(), 1);
    assert_eq!(optimized(text, "q(1, W)?", false), expect);
}

#[test]
fn arithmetic_pipeline_through_optimizer() {
    let text = r#"
        price(apple, 10). price(pear, 20).
        taxed(I, T) <- price(I, P), T = P * 2.
        cheap(I) <- taxed(I, T), T < 30.
    "#;
    let expect = reference(text, "cheap(I)?");
    assert_eq!(expect.len(), 1);
    assert_eq!(optimized(text, "cheap(I)?", false), expect);
}

#[test]
fn optimizer_handles_multiple_queries_reusing_memo() {
    let program = parse_program(ANCESTOR).unwrap();
    let db = Database::from_program(&program);
    let opt = Optimizer::with_defaults(&program, &db);
    let a = opt.optimize(&parse_query("anc(abe, Y)?").unwrap()).unwrap();
    let b = opt
        .optimize(&parse_query("anc(X, lisa)?").unwrap())
        .unwrap();
    let c = opt.optimize(&parse_query("anc(abe, Y)?").unwrap()).unwrap();
    assert!(a.cost.is_finite() && b.cost.is_finite());
    // The repeated form must be served from the memo (no new subtrees).
    assert_eq!(a.cost, c.cost);
    let cfg = FixpointConfig::default();
    assert_eq!(
        a.execute(&program, &db, &cfg).unwrap().tuples,
        c.execute(&program, &db, &cfg).unwrap().tuples
    );
}

#[test]
fn deep_recursion_stays_correct() {
    let mut text = String::new();
    for i in 0..120 {
        text.push_str(&format!("e({}, {}).\n", i, i + 1));
    }
    text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
    let expect = reference(&text, "tc(0, Y)?");
    assert_eq!(expect.len(), 120);
    assert_eq!(optimized(&text, "tc(0, Y)?", false), expect);
}

#[test]
fn complex_terms_flow_end_to_end() {
    let text = r#"
        owns(ann, car(toyota, 2019)). owns(bob, car(honda, 2021)).
        owns(ann, bike(brompton)).
        car_owner(P, Maker) <- owns(P, car(Maker, Yr)).
    "#;
    let expect = reference(text, "car_owner(P, M)?");
    assert_eq!(expect.len(), 2);
    assert_eq!(optimized(text, "car_owner(P, M)?", false), expect);
}
