//! Edge cases across the whole pipeline: degenerate programs, unusual
//! arities, unknown predicates, compound-term keys, and graceful errors.

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::optimizer::Optimizer;
use ldl::storage::Database;

#[test]
fn query_on_unknown_predicate_is_empty_not_an_error() {
    let program = parse_program("p(1).").unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("ghost(X, Y)?").unwrap();
    for m in Method::ALL {
        let ans = evaluate_query(&program, &db, &q, m, &FixpointConfig::default()).unwrap();
        assert!(ans.tuples.is_empty(), "{}", m.name());
    }
    // The optimizer also plans it (base-relation access with default stats).
    let opt = Optimizer::with_defaults(&program, &db);
    let plan = opt.optimize(&q).unwrap();
    let ans = plan
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    assert!(ans.tuples.is_empty());
}

#[test]
fn empty_program_evaluates() {
    let program = parse_program("").unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("p(X)?").unwrap();
    let ans = evaluate_query(
        &program,
        &db,
        &q,
        Method::SemiNaive,
        &FixpointConfig::default(),
    )
    .unwrap();
    assert!(ans.tuples.is_empty());
}

#[test]
fn zero_arity_predicates_end_to_end() {
    let text = "ready <- switch(on).\nswitch(on).";
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("ready?").unwrap();
    let ans = evaluate_query(
        &program,
        &db,
        &q,
        Method::SemiNaive,
        &FixpointConfig::default(),
    )
    .unwrap();
    assert_eq!(ans.tuples.len(), 1);
    let opt = Optimizer::with_defaults(&program, &db);
    let plan = opt.optimize(&q).unwrap();
    let ans2 = plan
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    assert_eq!(ans2.tuples.len(), 1);
}

#[test]
fn compound_term_keys_join_and_index() {
    let text = r#"
        owner(key(1, a), ann). owner(key(2, b), bob).
        value(key(1, a), 100). value(key(2, b), 200).
        worth(P, V) <- owner(K, P), value(K, V).
    "#;
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("worth(ann, V)?").unwrap();
    let ans = evaluate_query(&program, &db, &q, Method::Magic, &FixpointConfig::default()).unwrap();
    assert_eq!(ans.tuples.len(), 1);
    assert_eq!(ans.tuples.rows()[0].get(1), &ldl::Term::int(100));
}

#[test]
fn recursive_query_with_compound_constants() {
    let text = r#"
        e(pt(0), pt(1)). e(pt(1), pt(2)).
        tc(X, Y) <- e(X, Y).
        tc(X, Y) <- e(X, Z), tc(Z, Y).
    "#;
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("tc(pt(0), Y)?").unwrap();
    assert_eq!(q.adornment().to_string(), "bf");
    for m in Method::ALL {
        let ans = evaluate_query(&program, &db, &q, m, &FixpointConfig::default()).unwrap();
        assert_eq!(ans.tuples.len(), 2, "{}", m.name());
    }
}

#[test]
fn duplicate_body_literals_are_harmless() {
    let text = "p(X) <- q(X), q(X), q(X).\nq(1). q(2).";
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("p(X)?").unwrap();
    let ans = evaluate_query(
        &program,
        &db,
        &q,
        Method::SemiNaive,
        &FixpointConfig::default(),
    )
    .unwrap();
    assert_eq!(ans.tuples.len(), 2);
}

#[test]
fn non_ascii_input_fails_gracefully() {
    let r = parse_program("p(λ).");
    assert!(r.is_err());
}

#[test]
fn deeply_nested_terms_round_trip() {
    let mut t = String::from("0");
    for _ in 0..60 {
        t = format!("s({t})");
    }
    let text = format!("deep({t}).");
    let program = parse_program(&text).unwrap();
    assert_eq!(program.facts[0].args[0].depth(), 61);
    assert_eq!(program.facts[0].args[0].to_string(), t);
}

#[test]
fn self_join_same_relation_different_bindings() {
    let text = r#"
        parent(a, b). parent(b, c). parent(a, d).
        sibling(X, Y) <- parent(P, X), parent(P, Y), X != Y.
    "#;
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("sibling(b, Y)?").unwrap();
    let ans = evaluate_query(&program, &db, &q, Method::Magic, &FixpointConfig::default()).unwrap();
    assert_eq!(ans.tuples.len(), 1);
    assert_eq!(ans.tuples.rows()[0].get(1), &ldl::Term::sym("d"));
}

#[test]
fn large_fanout_dedup_stays_exact() {
    // Many derivation paths for the same tuple: dedup must hold counts.
    let mut text = String::new();
    for i in 0..20 {
        text.push_str(&format!("a(0, {i}). b({i}, 99).\n"));
    }
    text.push_str("p(X, Z) <- a(X, Y), b(Y, Z).");
    let program = parse_program(&text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("p(0, Z)?").unwrap();
    let ans = evaluate_query(
        &program,
        &db,
        &q,
        Method::SemiNaive,
        &FixpointConfig::default(),
    )
    .unwrap();
    assert_eq!(ans.tuples.len(), 1, "20 derivations, 1 distinct tuple");
}

#[test]
fn query_constants_with_arithmetic_goal_rejected() {
    // `p(X + 1)?` — a non-ground, non-variable goal argument: the goal
    // pattern unifies structurally, matching nothing for scalar columns.
    let program = parse_program("p(5).").unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("p(X + 1)?").unwrap();
    let ans = evaluate_query(
        &program,
        &db,
        &q,
        Method::SemiNaive,
        &FixpointConfig::default(),
    )
    .unwrap();
    assert!(ans.tuples.is_empty());
}

#[test]
fn whitespace_and_comment_torture() {
    let text = "%c1\n  p(  1 ,   2 )  .  % trailing\n\n\nq( X )<-p( X , Y ).%end";
    let program = parse_program(text).unwrap();
    assert_eq!(program.facts.len(), 1);
    assert_eq!(program.rules.len(), 1);
}
