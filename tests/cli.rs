//! Drives the compiled `ldl-shell` binary end to end through a pipe.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell(input: &str) -> String {
    let exe = env!("CARGO_BIN_EXE_ldl-shell");
    let mut child = Command::new(exe)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("shell starts");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write input");
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn session_with_recursion_and_explain() {
    let out = run_shell(
        "e(1, 2). e(2, 3). e(3, 4).\n\
         tc(X, Y) <- e(X, Y).\n\
         tc(X, Y) <- e(X, Z), tc(Z, Y).\n\
         tc(1, Y)?\n\
         :explain tc(1, Y)?\n\
         :quit\n",
    );
    assert!(out.contains("tc(1, 2)"), "{out}");
    assert!(out.contains("tc(1, 4)"), "{out}");
    assert!(out.contains("3 answer(s)"), "{out}");
    assert!(out.contains("method costs:"), "{out}");
    assert!(out.contains("bye"), "{out}");
}

#[test]
fn unsafe_query_is_reported_not_crashed() {
    let out = run_shell("p(X, Y) <- q(X).\nq(1).\np(A, B)?\n:quit\n");
    assert!(out.contains("unsafe"), "{out}");
    assert!(out.contains("bye"), "{out}");
}

#[test]
fn loads_file_from_argv() {
    let dir = std::env::temp_dir().join("ldl_shell_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("kb.ldl");
    std::fs::write(&file, "f(10). f(20).\nbig(X) <- f(X), X > 15.\n").unwrap();
    let exe = env!("CARGO_BIN_EXE_ldl-shell");
    let mut child = Command::new(exe)
        .arg(&file)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"big(X)?\n:quit\n")
        .unwrap();
    let out = String::from_utf8(child.wait_with_output().unwrap().stdout).unwrap();
    assert!(out.contains("big(20)"), "{out}");
    assert!(out.contains("1 answer(s)"), "{out}");
}
