//! Property-based tests (proptest) over the core invariants:
//! search-strategy dominance relations, cost-function invariants,
//! unification laws, parser round-trips, and method agreement on random
//! Datalog programs.

use ldl::core::parser::{parse_program, parse_query};
use ldl::core::unify::{mgu, Subst};
use ldl::core::Term;
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::optimizer::search::anneal::{optimize_anneal, AnnealParams};
use ldl::optimizer::search::exhaustive::{optimize_dp, optimize_dp_connected, optimize_exhaustive};
use ldl::optimizer::search::kbz::optimize_kbz;
use ldl::optimizer::JoinGraph;
use ldl::storage::Database;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Join-graph / search-strategy properties
// ---------------------------------------------------------------------

fn arb_join_graph(max_n: usize) -> impl Strategy<Value = JoinGraph> {
    (2..=max_n)
        .prop_flat_map(|n| {
            let cards = proptest::collection::vec(1.0f64..1e5, n..=n);
            let edges = proptest::collection::vec(
                (0..n, 0..n, 1e-4f64..1.0),
                0..(2 * n),
            );
            (Just(n), cards, edges)
        })
        .prop_map(|(n, cards, edges)| {
            let mut g = JoinGraph::new(cards.iter().map(|c| c.round()).collect());
            for (i, j, s) in edges {
                if i != j {
                    g.set_selectivity(i, j, s);
                }
                let _ = n;
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DP equals exhaustive enumeration (both exact over all orders).
    #[test]
    fn dp_equals_exhaustive(g in arb_join_graph(6)) {
        let ex = optimize_exhaustive(&g);
        let dp = optimize_dp(&g);
        prop_assert!((ex.cost - dp.cost).abs() <= 1e-9 * ex.cost.max(1.0),
            "ex {} vs dp {}", ex.cost, dp.cost);
    }

    /// No strategy returns a cost below the true optimum, and every
    /// strategy returns a valid permutation.
    #[test]
    fn strategies_dominate_optimum(g in arb_join_graph(7)) {
        let opt = optimize_dp(&g).cost;
        for r in [
            optimize_kbz(&g),
            optimize_dp_connected(&g),
            optimize_anneal(&g, &AnnealParams { max_probes: 1500, ..AnnealParams::default() }, 1),
        ] {
            prop_assert!(r.cost >= opt * (1.0 - 1e-9));
            let mut o = r.order.clone();
            o.sort_unstable();
            prop_assert_eq!(o, (0..g.n()).collect::<Vec<_>>());
            // The reported cost matches re-evaluating the order.
            prop_assert!((g.sequence_cost(&r.order) - r.cost).abs() <= 1e-9 * r.cost.max(1.0));
        }
    }

    /// Final cardinality is permutation-invariant (logical equivalence of
    /// all orders in the execution space).
    #[test]
    fn final_cardinality_is_order_invariant(g in arb_join_graph(6), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = g.n();
        let id: Vec<usize> = (0..n).collect();
        let mut shuffled = id.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let (_, c1) = g.sequence_cost_card(&id);
        let (_, c2) = g.sequence_cost_card(&shuffled);
        prop_assert!((c1 - c2).abs() <= 1e-6 * c1.max(1.0));
    }

    /// Cost is monotone: scaling every cardinality up scales cost up.
    #[test]
    fn cost_monotone_in_cardinalities(g in arb_join_graph(5)) {
        let id: Vec<usize> = (0..g.n()).collect();
        let base = g.sequence_cost(&id);
        let mut bigger = JoinGraph::new((0..g.n()).map(|i| g.card(i) * 2.0).collect());
        for (i, j, s) in g.edges() {
            bigger.set_selectivity(i, j, s);
        }
        prop_assert!(bigger.sequence_cost(&id) >= base);
    }
}

// ---------------------------------------------------------------------
// Unification properties
// ---------------------------------------------------------------------

fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(Term::int),
        (0u8..4).prop_map(|i| Term::var(["X", "Y", "Z", "W"][i as usize])),
        (0u8..3).prop_map(|i| Term::sym(["a", "b", "c"][i as usize])),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        (0u8..2, proptest::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::compound(["f", "g"][f as usize], args))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// mgu(a, b) unifies: applying it to both sides yields equal terms.
    #[test]
    fn mgu_actually_unifies(a in arb_term(), b in arb_term()) {
        if let Some(s) = mgu(&a, &b) {
            prop_assert_eq!(s.apply(&a), s.apply(&b));
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn mgu_symmetric(a in arb_term(), b in arb_term()) {
        prop_assert_eq!(mgu(&a, &b).is_some(), mgu(&b, &a).is_some());
    }

    /// A term always unifies with itself via the empty substitution.
    #[test]
    fn mgu_reflexive(a in arb_term()) {
        let s = mgu(&a, &a);
        prop_assert!(s.is_some());
    }

    /// Ground terms unify iff equal.
    #[test]
    fn ground_unification_is_equality(a in arb_term(), b in arb_term()) {
        if a.is_ground() && b.is_ground() {
            prop_assert_eq!(mgu(&a, &b).is_some(), a == b);
        }
    }

    /// apply is idempotent once fully resolved.
    #[test]
    fn apply_idempotent(a in arb_term(), b in arb_term()) {
        if let Some(s) = mgu(&a, &b) {
            let once = s.apply(&a);
            let twice = s.apply(&once);
            prop_assert_eq!(once, twice);
        }
    }

    /// The empty substitution is the identity.
    #[test]
    fn empty_subst_is_identity(a in arb_term()) {
        prop_assert_eq!(Subst::new().apply(&a), a);
    }
}

// ---------------------------------------------------------------------
// Program / evaluation properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Program display round-trips through the parser.
    #[test]
    fn program_display_round_trips(edges in proptest::collection::vec((0i64..20, 0i64..20), 1..30)) {
        let mut text = String::new();
        for (a, b) in &edges {
            text.push_str(&format!("e({a}, {b}).\n"));
        }
        text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).\n");
        let p1 = parse_program(&text).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// All four fixpoint methods agree on random edge sets for bound tc
    /// queries (soundness + completeness of the rewritings).
    #[test]
    fn methods_agree_on_random_graphs(
        edges in proptest::collection::vec((0i64..12, 0i64..12), 1..40),
        start in 0i64..12,
    ) {
        let mut text = String::new();
        for (a, b) in &edges {
            text.push_str(&format!("e({a}, {b}).\n"));
        }
        text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
        let program = parse_program(&text).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query(&format!("tc({start}, Y)?")).unwrap();
        let cfg = FixpointConfig::default();
        let reference = evaluate_query(&program, &db, &query, Method::Naive, &cfg)
            .unwrap()
            .tuples;
        // Magic must always agree. Counting diverges on cyclic data by
        // design, so only compare when it terminates.
        let magic = evaluate_query(&program, &db, &query, Method::Magic, &cfg).unwrap().tuples;
        prop_assert_eq!(&magic, &reference);
        let counting_cfg = FixpointConfig { max_iterations: 200 };
        if let Ok(ans) = evaluate_query(&program, &db, &query, Method::Counting, &counting_cfg) {
            prop_assert_eq!(&ans.tuples, &reference);
        }
        let semi = evaluate_query(&program, &db, &query, Method::SemiNaive, &cfg).unwrap().tuples;
        prop_assert_eq!(&semi, &reference);
    }

    /// The optimizer never produces a plan whose execution disagrees
    /// with naive evaluation, for any binding pattern of tc.
    #[test]
    fn optimized_plans_are_sound(
        edges in proptest::collection::vec((0i64..10, 0i64..10), 1..25),
        qx in 0i64..10,
    ) {
        let mut text = String::new();
        for (a, b) in &edges {
            text.push_str(&format!("e({a}, {b}).\n"));
        }
        text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
        let program = parse_program(&text).unwrap();
        let db = Database::from_program(&program);
        let cfg = FixpointConfig::default();
        for q in [format!("tc({qx}, Y)?"), "tc(X, Y)?".to_string()] {
            let query = parse_query(&q).unwrap();
            let reference = evaluate_query(&program, &db, &query, Method::Naive, &cfg)
                .unwrap()
                .tuples;
            let opt = ldl::optimizer::Optimizer::with_defaults(&program, &db);
            let plan = opt.optimize(&query).unwrap();
            let got = plan.execute(&program, &db, &cfg).unwrap().tuples;
            prop_assert_eq!(got, reference, "query {}", q);
        }
    }
}
