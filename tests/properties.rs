//! Property-based tests over the core invariants: search-strategy
//! dominance relations, cost-function invariants, unification laws,
//! parser round-trips, and method agreement on random Datalog programs.
//!
//! Runs on `ldl_support::prop`; replay any failure with the
//! `LDL_PROP_SEED` value printed in the panic message.

use ldl::core::parser::{parse_program, parse_query};
use ldl::core::unify::{mgu, Subst};
use ldl::core::Term;
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::optimizer::search::anneal::{optimize_anneal, AnnealParams};
use ldl::optimizer::search::exhaustive::{optimize_dp, optimize_dp_connected, optimize_exhaustive};
use ldl::optimizer::search::kbz::optimize_kbz;
use ldl::optimizer::JoinGraph;
use ldl::storage::Database;
use ldl_support::prop::{check, i64s, pairs, u64s, vecs, Config, Gen};
use ldl_support::{SliceRandom, SplitMix64};

// ---------------------------------------------------------------------
// Join-graph / search-strategy properties
// ---------------------------------------------------------------------

/// Raw join-graph description: (n, cardinalities, (i, j, selectivity)
/// edges). Kept as plain data so failures print a readable
/// counterexample; [`build_graph`] assembles the real structure.
type RawGraph = (usize, Vec<f64>, Vec<(usize, usize, f64)>);

fn raw_graphs(max_n: usize) -> Gen<RawGraph> {
    Gen::new(move |rng| {
        let n = rng.gen_range(2usize..max_n + 1);
        let cards: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1e5)).collect();
        let n_edges = rng.gen_range(0usize..2 * n);
        let edges: Vec<(usize, usize, f64)> = (0..n_edges)
            .map(|_| {
                (
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(1e-4..1.0),
                )
            })
            .collect();
        (n, cards, edges)
    })
}

fn build_graph(raw: &RawGraph) -> JoinGraph {
    let (_, cards, edges) = raw;
    let mut g = JoinGraph::new(cards.iter().map(|c| c.round()).collect());
    for &(i, j, s) in edges {
        if i != j {
            g.set_selectivity(i, j, s);
        }
    }
    g
}

/// DP equals exhaustive enumeration (both exact over all orders).
#[test]
fn dp_equals_exhaustive() {
    check(
        "dp_equals_exhaustive",
        &Config::with_cases(64),
        &raw_graphs(6),
        |raw| {
            let g = build_graph(raw);
            let ex = optimize_exhaustive(&g);
            let dp = optimize_dp(&g);
            assert!(
                (ex.cost - dp.cost).abs() <= 1e-9 * ex.cost.max(1.0),
                "ex {} vs dp {}",
                ex.cost,
                dp.cost
            );
        },
    );
}

/// No strategy returns a cost below the true optimum, and every
/// strategy returns a valid permutation.
#[test]
fn strategies_dominate_optimum() {
    check(
        "strategies_dominate_optimum",
        &Config::with_cases(64),
        &raw_graphs(7),
        |raw| {
            let g = build_graph(raw);
            let opt = optimize_dp(&g).cost;
            for r in [
                optimize_kbz(&g),
                optimize_dp_connected(&g),
                optimize_anneal(
                    &g,
                    &AnnealParams {
                        max_probes: 1500,
                        ..AnnealParams::default()
                    },
                    1,
                ),
            ] {
                assert!(r.cost >= opt * (1.0 - 1e-9));
                let mut o = r.order.clone();
                o.sort_unstable();
                assert_eq!(o, (0..g.n()).collect::<Vec<_>>());
                // The reported cost matches re-evaluating the order.
                assert!((g.sequence_cost(&r.order) - r.cost).abs() <= 1e-9 * r.cost.max(1.0));
            }
        },
    );
}

/// Final cardinality is permutation-invariant (logical equivalence of
/// all orders in the execution space).
#[test]
fn final_cardinality_is_order_invariant() {
    let gen = pairs(raw_graphs(6), u64s(0..1000));
    check(
        "final_cardinality_is_order_invariant",
        &Config::with_cases(64),
        &gen,
        |(raw, seed)| {
            let g = build_graph(raw);
            let n = g.n();
            let id: Vec<usize> = (0..n).collect();
            let mut shuffled = id.clone();
            shuffled.shuffle(&mut SplitMix64::seed_from_u64(*seed));
            let (_, c1) = g.sequence_cost_card(&id);
            let (_, c2) = g.sequence_cost_card(&shuffled);
            assert!((c1 - c2).abs() <= 1e-6 * c1.max(1.0));
        },
    );
}

/// Cost is monotone: scaling every cardinality up scales cost up.
#[test]
fn cost_monotone_in_cardinalities() {
    check(
        "cost_monotone_in_cardinalities",
        &Config::with_cases(64),
        &raw_graphs(5),
        |raw| {
            let g = build_graph(raw);
            let id: Vec<usize> = (0..g.n()).collect();
            let base = g.sequence_cost(&id);
            let mut bigger = JoinGraph::new((0..g.n()).map(|i| g.card(i) * 2.0).collect());
            for (i, j, s) in g.edges() {
                bigger.set_selectivity(i, j, s);
            }
            assert!(bigger.sequence_cost(&id) >= base);
        },
    );
}

// ---------------------------------------------------------------------
// Unification properties
// ---------------------------------------------------------------------

fn small_term(rng: &mut SplitMix64, depth: u32) -> Term {
    let variants = if depth == 0 { 3 } else { 4 };
    match rng.gen_range(0u32..variants) {
        0 => Term::int(rng.gen_range(0i64..100)),
        1 => Term::var(["X", "Y", "Z", "W"][rng.gen_range(0usize..4)]),
        2 => Term::sym(["a", "b", "c"][rng.gen_range(0usize..3)]),
        _ => {
            let f = ["f", "g"][rng.gen_range(0usize..2)];
            let n = rng.gen_range(1usize..3);
            Term::compound(f, (0..n).map(|_| small_term(rng, depth - 1)).collect())
        }
    }
}

fn terms() -> Gen<Term> {
    Gen::new(|rng| small_term(rng, 3))
}

fn term_pairs() -> Gen<(Term, Term)> {
    pairs(terms(), terms())
}

fn unify_cfg() -> Config {
    Config::with_cases(128)
}

/// mgu(a, b) unifies: applying it to both sides yields equal terms.
#[test]
fn mgu_actually_unifies() {
    check(
        "mgu_actually_unifies",
        &unify_cfg(),
        &term_pairs(),
        |(a, b)| {
            if let Some(s) = mgu(a, b) {
                assert_eq!(s.apply(a), s.apply(b));
            }
        },
    );
}

/// Unification is symmetric in success.
#[test]
fn mgu_symmetric() {
    check("mgu_symmetric", &unify_cfg(), &term_pairs(), |(a, b)| {
        assert_eq!(mgu(a, b).is_some(), mgu(b, a).is_some());
    });
}

/// A term always unifies with itself via the empty substitution.
#[test]
fn mgu_reflexive() {
    check("mgu_reflexive", &unify_cfg(), &terms(), |a| {
        assert!(mgu(a, a).is_some());
    });
}

/// Ground terms unify iff equal.
#[test]
fn ground_unification_is_equality() {
    check(
        "ground_unification_is_equality",
        &unify_cfg(),
        &term_pairs(),
        |(a, b)| {
            if a.is_ground() && b.is_ground() {
                assert_eq!(mgu(a, b).is_some(), a == b);
            }
        },
    );
}

/// apply is idempotent once fully resolved.
#[test]
fn apply_idempotent() {
    check("apply_idempotent", &unify_cfg(), &term_pairs(), |(a, b)| {
        if let Some(s) = mgu(a, b) {
            let once = s.apply(a);
            let twice = s.apply(&once);
            assert_eq!(once, twice);
        }
    });
}

/// The empty substitution is the identity.
#[test]
fn empty_subst_is_identity() {
    check("empty_subst_is_identity", &unify_cfg(), &terms(), |a| {
        assert_eq!(&Subst::new().apply(a), a);
    });
}

// ---------------------------------------------------------------------
// Program / evaluation properties
// ---------------------------------------------------------------------

fn edge_lists(node_range: i64, len: std::ops::Range<usize>) -> Gen<Vec<(i64, i64)>> {
    vecs(pairs(i64s(0..node_range), i64s(0..node_range)), len)
}

fn eval_cfg() -> Config {
    Config::with_cases(24)
}

/// Program display round-trips through the parser.
#[test]
fn program_display_round_trips() {
    check(
        "program_display_round_trips",
        &eval_cfg(),
        &edge_lists(20, 1..30),
        |edges| {
            let mut text = String::new();
            for (a, b) in edges {
                text.push_str(&format!("e({a}, {b}).\n"));
            }
            text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).\n");
            let p1 = parse_program(&text).unwrap();
            let p2 = parse_program(&p1.to_string()).unwrap();
            assert_eq!(p1, p2);
        },
    );
}

/// All four fixpoint methods agree on random edge sets for bound tc
/// queries (soundness + completeness of the rewritings).
#[test]
fn methods_agree_on_random_graphs() {
    let gen = pairs(edge_lists(12, 1..40), i64s(0..12));
    check(
        "methods_agree_on_random_graphs",
        &eval_cfg(),
        &gen,
        |(edges, start)| {
            let mut text = String::new();
            for (a, b) in edges {
                text.push_str(&format!("e({a}, {b}).\n"));
            }
            text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let query = parse_query(&format!("tc({start}, Y)?")).unwrap();
            let cfg = FixpointConfig::default();
            let reference = evaluate_query(&program, &db, &query, Method::Naive, &cfg)
                .unwrap()
                .tuples;
            // Magic must always agree. Counting diverges on cyclic data by
            // design, so only compare when it terminates.
            let magic = evaluate_query(&program, &db, &query, Method::Magic, &cfg)
                .unwrap()
                .tuples;
            assert_eq!(&magic, &reference);
            let counting_cfg = FixpointConfig::with_max_iterations(200);
            if let Ok(ans) = evaluate_query(&program, &db, &query, Method::Counting, &counting_cfg)
            {
                assert_eq!(&ans.tuples, &reference);
            }
            let semi = evaluate_query(&program, &db, &query, Method::SemiNaive, &cfg)
                .unwrap()
                .tuples;
            assert_eq!(&semi, &reference);
        },
    );
}

/// The optimizer never produces a plan whose execution disagrees with
/// naive evaluation, for any binding pattern of tc.
#[test]
fn optimized_plans_are_sound() {
    let gen = pairs(edge_lists(10, 1..25), i64s(0..10));
    check(
        "optimized_plans_are_sound",
        &eval_cfg(),
        &gen,
        |(edges, qx)| {
            let mut text = String::new();
            for (a, b) in edges {
                text.push_str(&format!("e({a}, {b}).\n"));
            }
            text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let cfg = FixpointConfig::default();
            for q in [format!("tc({qx}, Y)?"), "tc(X, Y)?".to_string()] {
                let query = parse_query(&q).unwrap();
                let reference = evaluate_query(&program, &db, &query, Method::Naive, &cfg)
                    .unwrap()
                    .tuples;
                let opt = ldl::optimizer::Optimizer::with_defaults(&program, &db);
                let plan = opt.optimize(&query).unwrap();
                let got = plan.execute(&program, &db, &cfg).unwrap().tuples;
                assert_eq!(got, reference, "query {}", q);
            }
        },
    );
}
