//! Crash-recovery tests against the real `ldl-serve` binary.
//!
//! These spawn the compiled daemon, drive it over TCP with the wire
//! client, and then hurt it: `kill -9` mid-commit-storm, WAL tails torn
//! mid-frame. The durability contract under test is bit-for-bit: a
//! restarted server must report exactly the digest an uninterrupted
//! server reaches after the same committed prefix.

use ldl::serve::Client;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const RULES: &str = "tc(X, Y) <- e(X, Y). tc(X, Y) <- e(X, Z), tc(Z, Y).";

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ldl-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A spawned daemon plus the address it printed. Killed on drop so a
/// failing assertion doesn't leak processes.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Starts `ldl-serve --data dir` on an ephemeral TCP port and reads
    /// the bound address from its stdout banner. Remote admin is
    /// enabled so the tests can `shutdown` cleanly over TCP.
    fn start(dir: &Path, snapshot_every: u64) -> Daemon {
        Self::start_with(dir, snapshot_every, &[])
    }

    /// Like [`Daemon::start`] with extra CLI arguments (replica role).
    fn start_with(dir: &Path, snapshot_every: u64, extra: &[&str]) -> Daemon {
        Self::start_at(dir, snapshot_every, "127.0.0.1:0", extra)
    }

    /// Full control: explicit listen address (a primary that must come
    /// back on the same port after a kill) plus extra arguments.
    fn start_at(dir: &Path, snapshot_every: u64, listen: &str, extra: &[&str]) -> Daemon {
        let exe = env!("CARGO_BIN_EXE_ldl-serve");
        let mut child = Command::new(exe)
            .arg("--data")
            .arg(dir)
            .arg("--listen")
            .arg(listen)
            .arg("--snapshot-every")
            .arg(snapshot_every.to_string())
            .arg("--allow-remote-admin")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("ldl-serve starts");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server prints its address before EOF")
                .expect("readable stdout");
            if let Some(rest) = line.strip_prefix("ldl-serve: listening on tcp://") {
                break rest.to_string();
            }
        };
        // Keep draining stdout so the daemon never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    fn connect(&self) -> Client {
        // The banner prints after bind, so connecting cannot race it.
        Client::connect(&self.addr).expect("connect to daemon")
    }

    /// SIGKILL — no drop handlers, no flushes, mid-whatever-it-was-doing.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }

    /// Clean stop through the protocol.
    fn shutdown(&mut self) {
        self.connect().shutdown().expect("shutdown");
        // The accept loop exits after the poke; reap with a bounded wait.
        for _ in 0..100 {
            if self.child.try_wait().expect("try_wait").is_some() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("daemon did not exit after shutdown");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The digest an uninterrupted server reaches after `commits` storm
/// commits (commit `i` inserts `e(i, i+1)`), computed in a fresh
/// directory with the same deterministic sequence.
fn reference_digest(name: &str, commits: u64) -> (u64, String) {
    let dir = tmpdir(name);
    let mut daemon = Daemon::start(&dir, 0);
    let mut c = daemon.connect();
    c.load(RULES).expect("load");
    for i in 1..=commits {
        c.insert(&format!("e({i}, {}).", i + 1)).expect("insert");
        c.commit().expect("commit");
    }
    let digest = c.digest().expect("digest");
    daemon.shutdown();
    digest
}

/// Kill -9 in the middle of a commit storm: whatever prefix of commits
/// reached the WAL must be recovered bit-for-bit — the restarted
/// server's digest equals an uninterrupted run of that same prefix.
#[test]
fn kill9_during_commit_storm_recovers_bit_for_bit() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let dir = tmpdir("storm");
    let mut daemon = Daemon::start(&dir, 0);
    let mut c = daemon.connect();
    c.load(RULES).expect("load");
    // Storm away on this thread while a killer thread pulls the trigger
    // once it has seen a few acknowledged commits — so the SIGKILL
    // lands mid-stream, possibly mid-commit, at an arbitrary point.
    let committed = Arc::new(AtomicU64::new(0));
    let pid = daemon.child.id();
    let killer = {
        let seen = committed.clone();
        std::thread::spawn(move || {
            while seen.load(Ordering::SeqCst) < 5 {
                std::thread::sleep(Duration::from_millis(1));
            }
            // SIGKILL by pid from outside the storming thread.
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        })
    };
    for i in 1..=10_000u64 {
        if c.insert(&format!("e({i}, {}).", i + 1)).is_err() || c.commit().is_err() {
            break;
        }
        committed.store(i, Ordering::SeqCst);
    }
    killer.join().unwrap();
    daemon.child.wait().expect("reap killed daemon");
    let acked = committed.load(Ordering::SeqCst);
    assert!(
        acked >= 5,
        "storm died before the kill window (acked {acked})"
    );

    // Recovery: version = 1 load + one record per durable commit. Every
    // acknowledged commit was fsynced before its reply, so at least
    // `acked` must survive; an unacked trailing commit may too.
    let daemon = Daemon::start(&dir, 0);
    let mut c = daemon.connect();
    let (version, digest) = c.digest().expect("digest after recovery");
    let recovered_commits = version - 1;
    assert!(
        recovered_commits >= acked,
        "lost acknowledged commits: acked {acked}, recovered {recovered_commits}"
    );
    assert_eq!(
        c.query("tc(1, Y)?").expect("query").len() as u64,
        recovered_commits,
        "chain closure disagrees with the recovered commit count"
    );
    drop(daemon);

    let (ref_version, ref_digest) = reference_digest("storm-ref", recovered_commits);
    assert_eq!(version, ref_version);
    assert_eq!(
        digest, ref_digest,
        "recovered state differs from an uninterrupted run of the same prefix"
    );
}

/// A WAL torn mid-frame (the torn-write crash window: kill between the
/// partial write and the fsync) recovers to exactly the last complete
/// record, again bit-for-bit against an uninterrupted reference.
#[test]
fn torn_wal_tail_recovers_to_last_complete_record() {
    let dir = tmpdir("torn");
    let mut daemon = Daemon::start(&dir, 0);
    let mut c = daemon.connect();
    c.load(RULES).expect("load");
    for i in 1..=6u64 {
        c.insert(&format!("e({i}, {}).", i + 1)).expect("insert");
        c.commit().expect("commit");
    }
    daemon.kill9();

    // Tear the last frame: chop 3 bytes off the WAL so its final record
    // has a valid header but a short, checksum-failing payload.
    let wal = dir.join("wal.bin");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal");
    f.set_len(len - 3).expect("truncate");
    drop(f);

    // Recovery drops the torn record only: 1 load + 5 intact commits.
    let daemon = Daemon::start(&dir, 0);
    let mut c = daemon.connect();
    let (version, digest) = c.digest().expect("digest");
    assert_eq!(version, 6, "torn tail should cost exactly the last commit");
    assert_eq!(c.query("tc(1, Y)?").expect("query").len(), 5);
    drop(daemon);

    let (_, ref_digest) = reference_digest("torn-ref", 5);
    assert_eq!(digest, ref_digest);
}

/// Kill -9 *between* WAL appends and the periodic snapshot: with
/// `--snapshot-every 3`, the kill after 7 commits leaves a snapshot at
/// record 6 plus a one-record WAL tail. Recovery must splice the two.
#[test]
fn kill9_between_snapshot_and_wal_tail_recovers() {
    let dir = tmpdir("snap");
    let mut daemon = Daemon::start(&dir, 3);
    let mut c = daemon.connect();
    c.load(RULES).expect("load");
    for i in 1..=7u64 {
        c.insert(&format!("e({i}, {}).", i + 1)).expect("insert");
        c.commit().expect("commit");
    }
    // A snapshot exists (several thresholds crossed) and the WAL holds
    // only the tail since the last one.
    assert!(dir.join("snapshot.bin").exists(), "no periodic snapshot");
    daemon.kill9();

    let daemon = Daemon::start(&dir, 3);
    let mut c = daemon.connect();
    let (version, digest) = c.digest().expect("digest");
    assert_eq!(version, 8, "1 load + 7 commits");
    assert_eq!(c.query("tc(1, Y)?").expect("query").len(), 7);
    drop(daemon);

    let (_, ref_digest) = reference_digest("snap-ref", 7);
    assert_eq!(digest, ref_digest);
}

/// An ephemeral port the OS just handed out — free to bind again
/// immediately. Lets a killed primary restart on the address its
/// replica is configured to chase.
fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = l.local_addr().expect("probe addr").to_string();
    drop(l);
    addr
}

/// Polls the replica until its pinned view reaches `version` with a
/// zero reported lag; returns its digest at that version.
fn await_replica_at(replica: &Daemon, version: u64, why: &str) -> String {
    let mut c = replica.connect();
    for _ in 0..600 {
        c.refresh().expect("refresh replica");
        let (v, digest) = c.digest().expect("replica digest");
        if v == version {
            let stats = c.stats().expect("replica stats");
            let lag = stats
                .get("lag_versions")
                .and_then(ldl::serve::Json::as_int)
                .unwrap_or(-1);
            if lag == 0 {
                return digest;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("replica never reached version {version} with zero lag ({why})");
}

/// Kill -9 the primary mid-commit-storm with a replica attached: after
/// the primary recovers, the replica must converge to the recovered
/// state bit-for-bit (same version, same digest, zero lag).
#[test]
fn kill9_primary_mid_storm_replica_converges_bit_for_bit() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let pdir = tmpdir("repl-storm-p");
    let rdir = tmpdir("repl-storm-r");
    let paddr = free_addr();
    let mut primary = Daemon::start_at(&pdir, 0, &paddr, &[]);
    let replica = Daemon::start_with(&rdir, 0, &["--replica-of", &paddr]);

    let mut c = primary.connect();
    c.load(RULES).expect("load");
    let committed = Arc::new(AtomicU64::new(0));
    let pid = primary.child.id();
    let killer = {
        let seen = committed.clone();
        std::thread::spawn(move || {
            while seen.load(Ordering::SeqCst) < 5 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        })
    };
    for i in 1..=10_000u64 {
        if c.insert(&format!("e({i}, {}).", i + 1)).is_err() || c.commit().is_err() {
            break;
        }
        committed.store(i, Ordering::SeqCst);
    }
    killer.join().unwrap();
    primary.child.wait().expect("reap killed primary");
    assert!(committed.load(Ordering::SeqCst) >= 5, "kill window missed");

    // The primary comes back on the same address; the replica's capped
    // backoff finds it and streams the rest.
    let primary = Daemon::start_at(&pdir, 0, &paddr, &[]);
    let mut pc = primary.connect();
    let (pversion, pdigest) = pc.digest().expect("recovered primary digest");
    let rdigest = await_replica_at(&replica, pversion, "after primary kill -9");
    assert_eq!(
        rdigest, pdigest,
        "replica diverged from the recovered primary at version {pversion}"
    );
}

/// A restarted replica resumes from its local WAL position (records
/// path) instead of re-bootstrapping the full snapshot.
#[test]
fn replica_restart_resumes_without_rebootstrapping() {
    let pdir = tmpdir("repl-resume-p");
    let rdir = tmpdir("repl-resume-r");
    let paddr = free_addr();
    let _primary = Daemon::start_at(&pdir, 0, &paddr, &[]);
    let mut replica = Daemon::start_with(&rdir, 0, &["--replica-of", &paddr]);

    let mut c = Client::connect(&paddr).expect("connect primary");
    c.load(RULES).expect("load");
    for i in 1..=5u64 {
        c.insert(&format!("e({i}, {}).", i + 1)).expect("insert");
        c.commit().expect("commit");
    }
    await_replica_at(&replica, 6, "initial catch-up");
    {
        // A fresh replica has a foreign epoch: its first contact must
        // have been a full bootstrap.
        let mut rc = replica.connect();
        let stats = rc.stats().expect("stats");
        assert_eq!(
            stats
                .get("bootstraps")
                .and_then(ldl::serve::Json::as_int)
                .unwrap_or(-1),
            1,
            "fresh replica should bootstrap exactly once"
        );
    }
    replica.shutdown();

    // More commits land while the replica is down.
    for i in 6..=9u64 {
        c.insert(&format!("e({i}, {}).", i + 1)).expect("insert");
        c.commit().expect("commit");
    }

    // Same data directory: the replica's (epoch, version) position
    // survives, so catch-up ships records — zero bootstraps this run.
    let replica = Daemon::start_with(&rdir, 0, &["--replica-of", &paddr]);
    let rdigest = await_replica_at(&replica, 10, "catch-up after restart");
    let (pv, pdigest) = c.digest().expect("primary digest");
    assert_eq!(pv, 10);
    assert_eq!(rdigest, pdigest);
    let mut rc = replica.connect();
    let stats = rc.stats().expect("stats");
    assert_eq!(
        stats
            .get("bootstraps")
            .and_then(ldl::serve::Json::as_int)
            .unwrap_or(-1),
        0,
        "restarted replica must resume from its local WAL, not re-bootstrap"
    );
}
