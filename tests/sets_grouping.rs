//! LDL's set constructs end to end: grouping heads (`<X>`), set-term
//! literals, and the `member/2` set predicate, integrated with
//! stratification, the optimizer, and the shell-level flow.

use ldl::core::parser::{parse_program, parse_query};
use ldl::core::{LdlError, Term};
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::optimizer::Optimizer;
use ldl::storage::Database;

fn answers(text: &str, q: &str, m: Method) -> ldl::storage::Relation {
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let query = parse_query(q).unwrap();
    evaluate_query(&program, &db, &query, m, &FixpointConfig::default())
        .unwrap()
        .tuples
}

const BOM: &str = r#"
    contains(bike, wheel). contains(bike, frame).
    contains(car, wheel). contains(car, engine). contains(car, door).
    parts(A, <P>) <- contains(A, P).
"#;

#[test]
fn grouping_collects_sets_per_key() {
    let got = answers(BOM, "parts(bike, S)?", Method::SemiNaive);
    assert_eq!(got.len(), 1);
    let set = got.rows()[0].get(1).as_set().unwrap();
    assert_eq!(set.len(), 2);
}

#[test]
fn set_literal_queries_match_structurally() {
    // Set literals normalize, so order in the query does not matter.
    let got = answers(BOM, "parts(A, {frame, wheel})?", Method::SemiNaive);
    assert_eq!(got.len(), 1);
    let got2 = answers(BOM, "parts(A, {wheel, frame})?", Method::SemiNaive);
    assert_eq!(got, got2);
    let none = answers(BOM, "parts(A, {wheel})?", Method::SemiNaive);
    assert!(none.is_empty());
}

#[test]
fn member_enumerates_collected_sets() {
    let text = r#"
        contains(bike, wheel). contains(bike, frame).
        contains(car, wheel). contains(car, engine).
        parts(A, <P>) <- contains(A, P).
        shared(P) <- parts(bike, S1), parts(car, S2), member(P, S1), member(P, S2).
    "#;
    let got = answers(text, "shared(P)?", Method::SemiNaive);
    assert_eq!(got.len(), 1);
    assert_eq!(got.rows()[0].get(0), &Term::sym("wheel"));
}

#[test]
fn member_tests_ground_membership() {
    let text = "s({1, 2, 3}).\nhas(X) <- s(S), member(X, S).";
    let got = answers(text, "has(X)?", Method::SemiNaive);
    assert_eq!(got.len(), 3);
    let yes = answers(text, "has(2)?", Method::SemiNaive);
    assert_eq!(yes.len(), 1);
    let no = answers(text, "has(9)?", Method::SemiNaive);
    assert!(no.is_empty());
}

#[test]
fn grouping_in_recursion_is_rejected() {
    // A predicate collecting a set of itself is not stratifiable.
    let text = r#"
        e(1, 2).
        s(X, <Y>) <- e(X, Y).
        s(X, <Y>) <- s(X, S), member(Y, S).
    "#;
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let q = parse_query("s(1, S)?").unwrap();
    let r = evaluate_query(
        &program,
        &db,
        &q,
        Method::SemiNaive,
        &FixpointConfig::default(),
    );
    assert!(r.is_err(), "got {r:?}");
}

#[test]
fn grouping_markers_rejected_in_bodies() {
    let r = parse_program("q(X) <- p(<X>).");
    assert!(matches!(r, Err(LdlError::Validation(_))));
}

#[test]
fn member_is_reserved() {
    let r = parse_program("member(X, S) <- anything(X, S).");
    assert!(matches!(r, Err(LdlError::Validation(_))));
}

#[test]
fn nonground_set_literals_rejected() {
    let r = parse_program("q(S) <- p(X), S = {X, 1}.");
    assert!(r.is_err());
}

#[test]
fn optimizer_plans_and_executes_grouping_programs() {
    let text = r#"
        contains(bike, wheel). contains(bike, frame).
        contains(car, wheel). contains(car, engine).
        parts(A, <P>) <- contains(A, P).
        big_assembly(A) <- parts(A, S), member(wheel, S).
    "#;
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let opt = Optimizer::with_defaults(&program, &db);
    let query = parse_query("big_assembly(A)?").unwrap();
    let plan = opt.optimize(&query).unwrap();
    let ans = plan
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    assert_eq!(ans.tuples.len(), 2); // bike and car both contain wheel
}

#[test]
fn grouping_composes_with_negation() {
    let text = r#"
        contains(bike, wheel). contains(car, wheel). contains(car, engine).
        special(engine).
        plain(A, <P>) <- contains(A, P), ~special(P).
    "#;
    let got = answers(text, "plain(car, S)?", Method::Naive);
    assert_eq!(got.len(), 1);
    let set = got.rows()[0].get(1).as_set().unwrap();
    assert_eq!(set.len(), 1); // only wheel
}

#[test]
fn grouping_over_recursive_lower_stratum() {
    // Group the transitive closure: reachset(X, <Y>) — the clique is a
    // lower stratum, the grouping sits above it.
    let text = r#"
        e(1, 2). e(2, 3). e(5, 6).
        tc(X, Y) <- e(X, Y).
        tc(X, Y) <- e(X, Z), tc(Z, Y).
        reachset(X, <Y>) <- tc(X, Y).
    "#;
    let got = answers(text, "reachset(1, S)?", Method::SemiNaive);
    assert_eq!(got.len(), 1);
    assert_eq!(got.rows()[0].get(1).to_string(), "{2, 3}");
}
