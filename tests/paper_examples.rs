//! The paper's own examples, reproduced as executable tests: the §7.3
//! adornment of the same-generation clique, the §8.3 safety example, and
//! the §4 contraction of a Figure 2-1-style rule base.

use ldl::core::adorn::{adorn_program, AdornedPred, FixedSip, GreedySip};
use ldl::core::depgraph::DependencyGraph;
use ldl::core::parser::{parse_program, parse_query};
use ldl::core::{Adornment, LdlError, Pred};
use ldl::optimizer::ptree::TreeKind;
use ldl::optimizer::{Optimizer, ProcessingTree};
use ldl::storage::Database;

const SG_RULES: &str = r#"
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
"#;

/// §7.3: "Adorned clique for the query sg.bf: sg.bf(X,Y) <- up(X,X1),
/// sg.fb(Y1,X1), dn(Y1,Y); sg.fb(X,Y) <- dn(Y1,Y), sg.bf(Y1,X1), up(X,X1)".
#[test]
fn paper_adorned_clique_for_sg_bf() {
    let program = parse_program(SG_RULES).unwrap();
    // The paper's second rule variant reverses the body for the fb head;
    // our GreedySip derives exactly that order.
    let adorned = adorn_program(
        &program,
        Pred::new("sg", 2),
        Adornment::parse("bf").unwrap(),
        &GreedySip,
    );
    let text = adorned.to_string();
    assert!(
        text.contains("sg.bf(X, Y) <- up(X, X1), sg.fb(Y1, X1), dn(Y1, Y)"),
        "{text}"
    );
    assert!(
        text.contains("sg.fb(X, Y) <- dn(Y1, Y), sg.bf(Y1, X1), up(X, X1)"),
        "{text}"
    );
    // Exactly the two adorned versions the paper lists.
    let sg_versions: Vec<&AdornedPred> = adorned
        .adorned_preds
        .iter()
        .filter(|a| a.pred.name.as_str() == "sg")
        .collect();
    assert_eq!(sg_versions.len(), 2);
}

/// §7.3: "Adorned clique for the query sg.bb" — the bb version spawns an
/// fb (or bf) version through the recursive literal.
#[test]
fn paper_adorned_clique_for_sg_bb() {
    let program = parse_program(SG_RULES).unwrap();
    let adorned = adorn_program(
        &program,
        Pred::new("sg", 2),
        Adornment::parse("bb").unwrap(),
        &GreedySip,
    );
    let names: Vec<String> = adorned
        .adorned_preds
        .iter()
        .map(|a| a.to_string())
        .collect();
    assert!(names.contains(&"sg.bb".to_string()), "{names:?}");
    // The recursive literal under a bb head sees one side bound through
    // up and the other through dn — the closure stays within the three
    // adornments the paper shows (bb plus bf/fb).
    assert!(names.len() <= 3, "{names:?}");
}

/// §7.3: "for a given subquery and a permutation for each rule in the
/// clique, the resulting adorned program is unique."
#[test]
fn adorned_program_unique_per_permutation() {
    let program = parse_program(SG_RULES).unwrap();
    let mut sip = FixedSip::new();
    sip.set(1, vec![0, 1, 2]);
    let a1 = adorn_program(
        &program,
        Pred::new("sg", 2),
        Adornment::parse("bf").unwrap(),
        &sip,
    );
    let a2 = adorn_program(
        &program,
        Pred::new("sg", 2),
        Adornment::parse("bf").unwrap(),
        &sip,
    );
    assert_eq!(a1.to_string(), a2.to_string());
    let mut sip3 = FixedSip::new();
    sip3.set(1, vec![2, 1, 0]);
    let a3 = adorn_program(
        &program,
        Pred::new("sg", 2),
        Adornment::parse("bf").unwrap(),
        &sip3,
    );
    assert_ne!(a1.to_string(), a3.to_string());
}

/// §8.3: "p(x, y, z) <- x=3, z=x+y with query p(x,y,z), y = 2x is
/// obviously finite […] However, this answer cannot be computed under any
/// permutation of goals in the rule."
#[test]
fn paper_8_3_limitation_reproduced() {
    let program = parse_program("p(X, Y, Z) <- X = 3, Z = X + Y.").unwrap();
    let db = Database::new();
    let opt = Optimizer::with_defaults(&program, &db);
    let verdict = opt.optimize(&parse_query("p(X, Y, Z)?").unwrap());
    match verdict {
        Err(LdlError::Unsafe(msg)) => {
            assert!(msg.contains("p/3.fff"), "{msg}");
        }
        other => panic!("expected unsafe verdict, got {other:?}"),
    }
}

/// §8.3 continued: "The second solution consists in flattening, whereby
/// the three equalities are combined in a conjunct and properly
/// processed in the obvious order." The FU transformation rescues the
/// example end to end.
#[test]
fn flattening_rescues_paper_8_3() {
    let program = parse_program(
        r#"
        q(X, Y, Z) <- p(X, Y, Z), Y = 2 * X.
        p(X, Y, Z) <- X = 3, Z = X + Y.
        "#,
    )
    .unwrap();
    let db = Database::new();
    // Without flattening: unsafe (the paper's first-version behavior).
    let opt = Optimizer::with_defaults(&program, &db);
    assert!(matches!(
        opt.optimize(&parse_query("q(X, Y, Z)?").unwrap()),
        Err(LdlError::Unsafe(_))
    ));
    // With flattening: safe, and the answer is the paper's <3, 6, 9>
    // (x = 3, y = 2x = 6, z = x + y = 9).
    let flat = ldl::core::unfold::flatten(&program, Pred::new("q", 3)).unwrap();
    let fopt = Optimizer::with_defaults(&flat, &db);
    let plan = fopt.optimize(&parse_query("q(X, Y, Z)?").unwrap()).unwrap();
    let ans = plan
        .execute(&flat, &db, &ldl::eval::FixpointConfig::default())
        .unwrap();
    assert_eq!(ans.tuples.len(), 1);
    let row = &ans.tuples.rows()[0];
    assert_eq!(row.to_string(), "(3, 6, 9)");
}

/// §2: queries are compiled per query form — P1(c, y) and P1(x, y) get
/// separately optimized (and differently shaped) plans.
#[test]
fn query_specific_compilation() {
    let program = parse_program(
        r#"
        big(1, 2).
        q(X, Y) <- big(X, Y).
        "#,
    )
    .unwrap();
    let db = Database::from_program(&program);
    let opt = Optimizer::with_defaults(&program, &db);
    let bound = opt.optimize(&parse_query("q(1, Y)?").unwrap()).unwrap();
    let free = opt.optimize(&parse_query("q(X, Y)?").unwrap()).unwrap();
    assert!(bound.cost <= free.cost);
    assert_ne!(bound.query.adornment(), free.query.adornment());
}

/// §4: contraction turns the cyclic processing graph into a DAG with CC
/// nodes standing for atomic fixpoint computations.
#[test]
fn figure_4_1_contraction() {
    let program = parse_program(
        r#"
        p1(X, Y) <- p2(X, Z), b1(Z, Y).
        p1(X, Y) <- b2(X, Y).
        p2(X, Y) <- p3(X, Y), b3(Y).
        p3(X, Y) <- b4(X, Y).
        p3(X, Y) <- b5(X, Z), p4(Z, Y).
        p4(X, Y) <- b6(X, Z), p3(Z, Y).
        "#,
    )
    .unwrap();
    let graph = DependencyGraph::build(&program);
    assert_eq!(graph.cliques().len(), 1);
    let clique = &graph.cliques()[0];
    assert_eq!(clique.preds.len(), 2); // p3, p4 mutually recursive

    let root = Pred::new("p1", 2);
    let uncontracted = ProcessingTree::build(&program, root);
    let contracted = ProcessingTree::build_contracted(&program, root);
    // Uncontracted: recursion appears as back-references.
    let rendered = uncontracted.to_string();
    assert!(rendered.contains("rec-ref"), "{rendered}");
    // Contracted: exactly one CC node, no back-references.
    assert_eq!(contracted.cc_nodes().len(), 1);
    assert!(!contracted.to_string().contains("rec-ref"));
    match &contracted.cc_nodes()[0].kind {
        TreeKind::Cc { preds, .. } => {
            assert!(preds.contains(&Pred::new("p3", 2)));
            assert!(preds.contains(&Pred::new("p4", 2)));
        }
        _ => unreachable!(),
    }
}

/// §2 definitions: implication, recursion, and cliques behave as defined.
#[test]
fn section_2_definitions() {
    let program = parse_program(
        r#"
        p1(X) <- p2(X), b(X).
        p2(X) <- p3(X).
        p3(X) <- p2(X), c(X).
        "#,
    )
    .unwrap();
    let g = DependencyGraph::build(&program);
    let p1 = Pred::new("p1", 1);
    let p2 = Pred::new("p2", 1);
    let p3 = Pred::new("p3", 1);
    // p2 => p1 (p2 used to define p1), transitively p3 => p1.
    assert!(g.implies(p2, p1));
    assert!(g.implies(p3, p1));
    assert!(!g.implies(p1, p2));
    // p2 and p3 are mutually recursive: one clique.
    assert!(g.is_recursive(p2));
    assert!(g.is_recursive(p3));
    assert!(!g.is_recursive(p1));
    assert_eq!(g.clique_id_of(p2), g.clique_id_of(p3));
}
