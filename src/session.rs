//! The high-level session API: a knowledge base you add rules and facts
//! to, then query. Each *query form* (predicate + binding pattern, §2 of
//! the paper) is optimized once and the compiled plan cached — re-asking
//! `anc(X, lisa)?` with a different constant reuses the `anc.fb` plan,
//! while `anc(abe, Y)?` triggers a fresh `anc.bf` compilation. Any
//! change to the rule base invalidates the cache (plans embed rule
//! indexes and statistics).

use ldl_core::parser::{parse_query, parse_source};
use ldl_core::{LdlError, Program, Query, Result, Rule};
use ldl_eval::engine::QueryAnswer;
use ldl_eval::FixpointConfig;
use ldl_optimizer::{OptConfig, OptimizedQuery, Optimizer, ProcessingTree};
use ldl_storage::{Database, Relation};
use std::collections::HashMap;

/// A compiled-plan cache key: the query form.
type FormKey = (ldl_core::Pred, ldl_core::Adornment);

/// An LDL session: program + database + per-query-form plan cache.
pub struct Session {
    program: Program,
    db: Database,
    cfg: OptConfig,
    fixpoint: FixpointConfig,
    plans: HashMap<FormKey, OptimizedQuery>,
    compilations: usize,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Empty session with default configuration.
    pub fn new() -> Session {
        Session::with_config(OptConfig::default())
    }

    /// Session with an explicit optimizer configuration.
    pub fn with_config(cfg: OptConfig) -> Session {
        Session {
            program: Program::new(),
            db: Database::new(),
            cfg,
            fixpoint: FixpointConfig::default(),
            plans: HashMap::new(),
            compilations: 0,
        }
    }

    /// Adds program text (rules, facts, but not queries) to the
    /// knowledge base. Invalidates cached plans.
    pub fn load(&mut self, text: &str) -> Result<()> {
        let src = parse_source(text)?;
        if !src.queries.is_empty() {
            return Err(LdlError::Validation(
                "load() accepts rules and facts; use query() for goals".into(),
            ));
        }
        for r in src.program.rules {
            self.program.push(r);
        }
        for f in src.program.facts {
            self.db
                .insert(f.pred, ldl_storage::Tuple::new(f.args.clone()));
            self.program.push(Rule::fact(f));
        }
        self.plans.clear();
        Ok(())
    }

    /// Inserts one tuple directly into a base relation. Invalidates
    /// cached plans (statistics changed).
    pub fn insert(&mut self, pred: ldl_core::Pred, tuple: ldl_storage::Tuple) {
        self.db.insert(pred, tuple);
        self.plans.clear();
    }

    /// The current rule base.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The current database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// How many query forms have been compiled so far (cache misses).
    pub fn compilations(&self) -> usize {
        self.compilations
    }

    /// Sets the fixpoint iteration bound for subsequent executions.
    pub fn set_fixpoint_config(&mut self, cfg: FixpointConfig) {
        self.fixpoint = cfg;
    }

    fn plan_for(&mut self, query: &Query) -> Result<OptimizedQuery> {
        let key = (query.pred(), query.adornment());
        if let Some(plan) = self.plans.get(&key) {
            // Same form: reuse the compiled plan, swapping in this
            // query's constants (orders and method depend only on the
            // form, not the constant values — §2).
            let mut plan = plan.clone();
            plan.query = query.clone();
            return Ok(plan);
        }
        let optimizer = Optimizer::new(&self.program, &self.db, self.cfg.clone());
        let plan = optimizer.optimize(query)?;
        self.compilations += 1;
        self.plans.insert(key, plan.clone());
        Ok(plan)
    }

    /// Optimizes (or reuses a cached plan for the form) and executes.
    pub fn query(&mut self, text: &str) -> Result<QueryAnswer> {
        let query = parse_query(text)?;
        let plan = self.plan_for(&query)?;
        plan.execute(&self.program, &self.db, &self.fixpoint)
    }

    /// Like [`Session::query`] but returns only the answer relation.
    pub fn answers(&mut self, text: &str) -> Result<Relation> {
        Ok(self.query(text)?.tuples)
    }

    /// The compiled plan for a query, without executing it.
    pub fn explain(&mut self, text: &str) -> Result<(OptimizedQuery, ProcessingTree)> {
        let query = parse_query(text)?;
        let plan = self.plan_for(&query)?;
        let tree = ProcessingTree::from_plan(&self.program, &plan);
        Ok((plan, tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ancestor_session() -> Session {
        let mut s = Session::new();
        s.load(
            r#"
            parent(abe, homer). parent(homer, bart). parent(homer, lisa).
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            "#,
        )
        .unwrap();
        s
    }

    #[test]
    fn query_and_answers() {
        let mut s = ancestor_session();
        let ans = s.answers("anc(abe, Y)?").unwrap();
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn plans_are_cached_per_form() {
        let mut s = ancestor_session();
        s.query("anc(abe, Y)?").unwrap();
        assert_eq!(s.compilations(), 1);
        // Same form, different constant: no recompilation.
        let ans = s.answers("anc(homer, Y)?").unwrap();
        assert_eq!(s.compilations(), 1);
        assert_eq!(ans.len(), 2);
        // Different form: compiles again.
        s.query("anc(X, lisa)?").unwrap();
        assert_eq!(s.compilations(), 2);
        s.query("anc(X, bart)?").unwrap();
        assert_eq!(s.compilations(), 2);
    }

    #[test]
    fn cached_plans_answer_correctly_for_new_constants() {
        let mut s = ancestor_session();
        let a1 = s.answers("anc(abe, Y)?").unwrap();
        let a2 = s.answers("anc(homer, Y)?").unwrap();
        assert_eq!(a1.len(), 3);
        assert_eq!(a2.len(), 2);
        assert!(a2.iter().all(|t| t.get(0) == &ldl_core::Term::sym("homer")));
    }

    #[test]
    fn loading_invalidates_cache() {
        let mut s = ancestor_session();
        s.query("anc(abe, Y)?").unwrap();
        assert_eq!(s.compilations(), 1);
        s.load("parent(bart, junior).").unwrap();
        let ans = s.answers("anc(abe, Y)?").unwrap();
        assert_eq!(s.compilations(), 2, "cache must be invalidated");
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn unsafe_queries_error_per_form() {
        let mut s = Session::new();
        s.load("p(X, Y, Z) <- X = 3, Z = X + Y.").unwrap();
        assert!(matches!(s.query("p(A, B, C)?"), Err(LdlError::Unsafe(_))));
        // The bound form works.
        let ans = s.answers("p(A, 6, C)?").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.rows()[0].to_string(), "(3, 6, 9)");
    }

    #[test]
    fn invertible_arith_evaluates_under_every_policy() {
        // X = 3 + W has one unknown once X is bound: the evaluator
        // inverts it, the analyzer accepts even the all-free form, and
        // every access-path policy agrees on the answer.
        use ldl_eval::AccessPaths;
        let mut s = Session::new();
        s.load("inv(X, W) <- X = 10, X = 3 + W.").unwrap();
        let free = s.answers("inv(A, B)?").unwrap();
        assert_eq!(free.rows()[0].to_string(), "(10, 7)");
        for paths in [
            AccessPaths::Selected,
            AccessPaths::HashOnDemand,
            AccessPaths::ForceScan,
        ] {
            s.set_fixpoint_config(FixpointConfig::default().with_access_paths(paths));
            let ans = s.answers("inv(A, 7)?").unwrap();
            assert_eq!(ans.len(), 1);
            assert_eq!(ans.rows()[0].to_string(), "(10, 7)");
        }
    }

    #[test]
    fn load_rejects_inline_queries() {
        let mut s = Session::new();
        assert!(s.load("p(1). p(X)?").is_err());
    }

    #[test]
    fn explain_returns_plan_and_tree() {
        let mut s = ancestor_session();
        let (plan, tree) = s.explain("anc(abe, Y)?").unwrap();
        assert!(plan.cost.is_finite());
        assert!(tree.cc_nodes().len() == 1);
    }

    #[test]
    fn direct_inserts_flow_into_queries() {
        let mut s = Session::new();
        s.load("big(X) <- n(X), X > 10.").unwrap();
        s.insert(ldl_core::Pred::new("n", 1), ldl_storage::Tuple::ints(&[5]));
        s.insert(ldl_core::Pred::new("n", 1), ldl_storage::Tuple::ints(&[50]));
        let ans = s.answers("big(X)?").unwrap();
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn grouping_queries_work_through_session() {
        let mut s = Session::new();
        s.load("e(a, 1). e(a, 2). e(b, 3).\ng(K, <V>) <- e(K, V).")
            .unwrap();
        let ans = s.answers("g(a, S)?").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.rows()[0].get(1).to_string(), "{1, 2}");
    }
}
