//! `ldl-shell` — an interactive LDL console.
//!
//! ```text
//! $ cargo run --bin ldl-shell [file.ldl ...]
//! ldl> e(1, 2).  e(2, 3).
//! ldl> tc(X, Y) <- e(X, Y).
//! ldl> tc(X, Y) <- e(X, Z), tc(Z, Y).
//! ldl> tc(1, Y)?
//! tc(1, 2)
//! tc(1, 3)
//! 2 answers (method magic, est. cost 42.0, 0.3 ms)
//! ldl> :explain tc(1, Y)?
//! ...processing tree, method costs, chosen SIPs...
//! ```
//!
//! Commands: `:help`, `:rules`, `:stats`, `:check`, `:rewrite`,
//! `:explain <goal>?`,
//! `:strategy <exhaustive|dp|kbz|annealing>`, `:acyclic <on|off>`,
//! `:insert <fact>.` / `:retract <fact>.` / `:commit` (incremental
//! updates through the maintenance engine), `:load <file>`, `:reset`,
//! `:quit`.
//!
//! Batch mode: `ldl-shell --check [--json] file.ldl ...` analyzes each
//! file without evaluating anything and exits non-zero if any file has
//! error-severity findings (or fails to read/parse).
//!
//! Client mode: `ldl-shell --connect <host:port|socket-path>` attaches
//! the same REPL surface to a running `ldl-serve` daemon. Rules and
//! facts typed at the prompt go through the server's transactional
//! `load`/`commit` path; queries run against the session's pinned
//! snapshot (`:refresh` to re-pin).

use ldl::analysis::{self, AnalysisOptions};
use ldl::core::parser::{parse_query, parse_source};
use ldl::core::Span;
use ldl::core::{Program, Query, Term};
use ldl::eval::{AccessPaths, EdbDelta, Engine, FixpointConfig};
use ldl::optimizer::opt::PredPlanKind;
use ldl::optimizer::{co_optimize, OptConfig, ProcessingTree, Strategy};
use ldl::storage::Database;
use ldl::storage::Tuple;
use std::io::{BufRead, Write};
use std::time::Instant;

/// The shell's mutable state: accumulated program + configuration.
struct Shell {
    program: Program,
    cfg: OptConfig,
    fixpoint: FixpointConfig,
    /// The current EDB: program facts plus every committed delta.
    /// Queries and `:stats` read this, not the program's fact list.
    db: Database,
    /// Updates staged by `:insert` / `:retract`, applied on `:commit`.
    pending: EdbDelta,
    /// The maintenance engine; dropped whenever the rule base changes
    /// and rebuilt lazily on the next `:commit`.
    engine: Option<Engine>,
}

impl Shell {
    fn new() -> Shell {
        Shell {
            program: Program::new(),
            cfg: OptConfig::default(),
            // Honors LDL_ACCESS_PATHS / LDL_EVAL_THREADS.
            fixpoint: FixpointConfig::default(),
            db: Database::new(),
            pending: EdbDelta::new(),
            engine: None,
        }
    }

    /// Handles one input line; returns the text to print.
    fn handle(&mut self, line: &str) -> String {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            return String::new();
        }
        if let Some(cmd) = line.strip_prefix(':') {
            return self.command(cmd);
        }
        if line.ends_with('?') {
            // A lone `goal?` — but a line may also mix statements and
            // queries, which parse_source handles below.
            if let Ok(q) = parse_query(line) {
                return self.run_query(&q, false);
            }
        }
        // Otherwise: program text (possibly several statements).
        match parse_source(line) {
            Ok(src) => {
                let nr = src.program.rules.len();
                let nf = src.program.facts.len();
                self.db.load_facts(&src.program);
                self.engine = None; // rebuilt on the next :commit
                for r in src.program.rules {
                    self.program.push(r);
                }
                for f in src.program.facts {
                    self.program.push(ldl::Rule::fact(f));
                }
                let mut out = format!("added {nr} rule(s), {nf} fact(s)");
                for q in src.queries {
                    out.push('\n');
                    out.push_str(&self.run_query(&q, false));
                }
                out
            }
            Err(e) => format!("error: {e}"),
        }
    }

    fn command(&mut self, cmd: &str) -> String {
        let mut parts = cmd.splitn(2, ' ');
        let name = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim();
        match name {
            "help" => "\
commands:
  <fact>. / <rule>.        add to the knowledge base
  <goal>?                  optimize and run a query
  :check                   run static analysis over the rule base
  :explain <goal>?         show the chosen plan without running it
  :plan <goal>?            co-optimized order + index set + memo counters
  :prolog <goal>?          answer by Prolog-style SLD (textual order)
  :strategy <s>            exhaustive | dp | memo | kbz | annealing
  :paths <p>               selected | hash | scan (probe access paths)
  :acyclic <on|off>        assume base data acyclic (enables counting)
  :rewrite <on|off>        apply the sound rewrite pass before evaluation
  :rules                   list the current rule base
  :stats                   per-relation cardinalities
  :insert <fact>.          stage a base-fact insert
  :retract <fact>.         stage a base-fact retract
  :commit                  apply staged updates incrementally
  :pending                 list staged updates
  :abort                   discard staged updates
  :load <file>             load a .ldl file
  :reset                   drop everything
  :quit                    exit"
                .to_string(),
            "rules" => {
                if self.program.rules.is_empty() && self.program.facts.is_empty() {
                    "(empty)".to_string()
                } else {
                    format!("{}", self.program).trim_end().to_string()
                }
            }
            "stats" => {
                let db = &self.db;
                let mut lines: Vec<String> = db
                    .preds()
                    .into_iter()
                    .map(|p| {
                        let s = db.stats(p);
                        format!("{p}: {} tuples", s.cardinality)
                    })
                    .collect();
                lines.sort();
                if lines.is_empty() {
                    "(no relations)".to_string()
                } else {
                    lines.join("\n")
                }
            }
            "strategy" => match arg {
                "exhaustive" => {
                    self.cfg.strategy = Strategy::Exhaustive;
                    "strategy = exhaustive".into()
                }
                "dp" => {
                    self.cfg.strategy = Strategy::DynamicProgramming;
                    "strategy = dp".into()
                }
                "memo" => {
                    self.cfg.strategy = Strategy::Memo;
                    "strategy = memo".into()
                }
                "kbz" => {
                    self.cfg.strategy = Strategy::Kbz;
                    "strategy = kbz".into()
                }
                "annealing" => {
                    self.cfg.strategy = Strategy::Annealing;
                    "strategy = annealing".into()
                }
                other => format!("unknown strategy {other:?} (exhaustive|dp|memo|kbz|annealing)"),
            },
            "paths" => match AccessPaths::parse(arg) {
                Some(p) => {
                    self.fixpoint = self.fixpoint.clone().with_access_paths(p);
                    format!("access paths = {arg}")
                }
                None => format!("unknown access-path policy {arg:?} (selected|hash|scan)"),
            },
            "rewrite" => match arg {
                "on" => {
                    self.fixpoint = self.fixpoint.clone().with_rewrite(true);
                    "rewrite = on (constant propagation, folding, duplicate/subsumed-rule removal)"
                        .into()
                }
                "off" => {
                    self.fixpoint = self.fixpoint.clone().with_rewrite(false);
                    "rewrite = off".into()
                }
                other => format!("expected on|off, got {other:?}"),
            },
            "acyclic" => match arg {
                "on" => {
                    self.cfg.assume_acyclic = true;
                    "assume_acyclic = on (counting method enabled)".into()
                }
                "off" => {
                    self.cfg.assume_acyclic = false;
                    "assume_acyclic = off".into()
                }
                other => format!("expected on|off, got {other:?}"),
            },
            "check" => {
                let opts = AnalysisOptions {
                    assume_acyclic: self.cfg.assume_acyclic,
                    ..Default::default()
                };
                let report = analysis::analyze_program_db(&self.program, &self.db, &opts);
                report.render_text(None, "<repl>").trim_end().to_string()
            }
            "explain" => match parse_query(arg) {
                Ok(q) => self.run_query(&q, true),
                Err(e) => format!("error: {e}"),
            },
            "plan" => match parse_query(arg) {
                Ok(q) => self.plan_query(&q),
                Err(e) => format!("error: {e}"),
            },
            "prolog" => match parse_query(arg) {
                Ok(q) => {
                    let cfg = ldl::eval::sld::SldConfig::default();
                    match ldl::eval::sld::solve_sld(&self.program, &self.db, &q, &cfg) {
                        Ok((ans, stats)) => {
                            let mut rows: Vec<String> = ans
                                .iter()
                                .map(|t| format!("{}{}", q.pred().name, t))
                                .collect();
                            rows.sort();
                            let mut out = rows.join("\n");
                            if !out.is_empty() {
                                out.push('\n');
                            }
                            out.push_str(&format!(
                                "{} answer(s) via SLD ({} resolutions{})",
                                ans.len(),
                                stats.resolutions,
                                if stats.depth_exceeded {
                                    ", DEPTH BOUND HIT - answers may be incomplete"
                                } else {
                                    ""
                                }
                            ));
                            out
                        }
                        Err(e) => format!("prolog error: {e}"),
                    }
                }
                Err(e) => format!("error: {e}"),
            },
            "insert" => self.stage(arg, true),
            "retract" => self.stage(arg, false),
            "commit" => self.commit(),
            "pending" => {
                if self.pending.is_empty() {
                    "nothing staged".to_string()
                } else {
                    let mut lines = Vec::new();
                    for (p, ts) in self.pending.staged_inserts() {
                        for t in ts {
                            lines.push(format!("  +{}{t}", p.name));
                        }
                    }
                    for (p, ts) in self.pending.staged_retracts() {
                        for t in ts {
                            lines.push(format!("  -{}{t}", p.name));
                        }
                    }
                    format!(
                        "{} operation(s) staged:\n{}",
                        self.pending.len(),
                        lines.join("\n")
                    )
                }
            }
            "abort" => {
                let n = self.pending.len();
                self.pending = EdbDelta::new();
                format!("discarded {n} staged operation(s)")
            }
            "load" => match std::fs::read_to_string(arg) {
                Ok(text) => match parse_source(&text) {
                    Ok(src) => {
                        let nr = src.program.rules.len();
                        let nf = src.program.facts.len();
                        self.db.load_facts(&src.program);
                        self.engine = None;
                        for r in src.program.rules {
                            self.program.push(r);
                        }
                        for f in src.program.facts {
                            self.program.push(ldl::Rule::fact(f));
                        }
                        let mut out = format!("loaded {arg}: {nr} rule(s), {nf} fact(s)");
                        for q in src.queries {
                            out.push('\n');
                            out.push_str(&self.run_query(&q, false));
                        }
                        out
                    }
                    Err(e) => format!("error in {arg}: {e}"),
                },
                Err(e) => format!("cannot read {arg}: {e}"),
            },
            "reset" => {
                self.program = Program::new();
                self.db = Database::new();
                self.pending = EdbDelta::new();
                self.engine = None;
                "knowledge base cleared".into()
            }
            "quit" | "q" | "exit" => "bye".into(),
            other => format!("unknown command :{other} (try :help)"),
        }
    }

    /// Stages ground facts from `arg` into the pending update batch.
    fn stage(&mut self, arg: &str, insert: bool) -> String {
        let verb = if insert { "insert" } else { "retract" };
        let src = match parse_source(arg) {
            Ok(src) => src,
            Err(e) => return format!("error: {e}"),
        };
        if !src.program.rules.is_empty() || !src.queries.is_empty() {
            return format!("only ground facts can be staged (:{verb} e(1, 2).)");
        }
        if src.program.facts.is_empty() {
            return format!("nothing to stage (:{verb} e(1, 2).)");
        }
        let mut n = 0usize;
        for f in &src.program.facts {
            if !f.args.iter().all(Term::is_ground) {
                return format!("error: {f} is not ground");
            }
            let t = Tuple::new(f.args.clone());
            if insert {
                self.pending.insert(f.pred, t);
            } else {
                self.pending.retract(f.pred, t);
            }
            n += 1;
        }
        format!(
            "staged {n} {verb}(s); {} operation(s) pending (:commit to apply)",
            self.pending.len()
        )
    }

    /// Applies the pending batch through the maintenance engine,
    /// repairing derived relations incrementally.
    ///
    /// Failure is atomic: the staged batch stays pending (fix it with
    /// further `:insert`/`:retract` or drop it with `:abort`) and the
    /// engine keeps its pre-commit state — `Engine::apply_delta` rolls
    /// itself back on error.
    fn commit(&mut self) -> String {
        if self.pending.is_empty() {
            return "nothing to commit".into();
        }
        if self.engine.is_none() {
            match Engine::evaluate(&self.program, &self.db, &self.fixpoint) {
                Ok(engine) => self.engine = Some(engine),
                Err(e) => return format!("error: {e}"),
            }
        }
        let engine = self.engine.as_mut().expect("engine just built");
        match engine.apply_delta(&self.pending) {
            Ok(report) => {
                self.pending = EdbDelta::new();
                self.db = engine.database().clone();
                let mut out = format!(
                    "committed: base +{}/-{}, derived +{}/-{} ({} stratum(s) repaired, {} skipped)",
                    report.base_inserted,
                    report.base_retracted,
                    report.derived_inserted,
                    report.derived_retracted,
                    report.groups_touched,
                    report.groups_skipped
                );
                for (p, plus, minus) in &report.changes {
                    out.push_str(&format!("\n  {p}: +{plus}/-{minus}"));
                }
                out
            }
            Err(e) => format!("commit failed: {e} (staged batch preserved; :abort to discard)"),
        }
    }

    fn run_query(&self, query: &Query, explain_only: bool) -> String {
        // Front-end gate: reject infeasible query forms with a witness
        // (variable + literal) instead of a bare optimizer error.
        // Lints and the semantic pass stay out of the query gate:
        // only executability matters here; `:check` covers the rest.
        let opts = AnalysisOptions {
            assume_acyclic: self.cfg.assume_acyclic,
            lints: false,
            semantic: false,
        };
        let report = analysis::analyze_query(&self.program, query, &opts);
        if report.has_errors() {
            return format!(
                "unsafe query rejected:\n{}",
                report.render_text(None, "<repl>").trim_end()
            );
        }
        let db = &self.db;
        let started = Instant::now();
        let co = match co_optimize(&self.program, db, &self.cfg, query, None) {
            Ok(c) => c,
            Err(e) => return format!("{e}"),
        };
        let plan = &co.plan;
        let opt_ms = started.elapsed().as_secs_f64() * 1000.0;
        if explain_only {
            let mut out = String::new();
            out.push_str(&format!(
                "query form:   {}.{}\n",
                query.pred().name,
                query.adornment()
            ));
            out.push_str(&format!("method:       {:?}\n", plan.method));
            out.push_str(&format!(
                "est. cost:    {:.1}   est. answers: {:.1}\n",
                plan.cost, plan.estimated_answers
            ));
            if let PredPlanKind::Clique {
                method_costs,
                sips,
                full_size,
                ..
            } = &plan.plan.kind
            {
                out.push_str(&format!("clique size estimate: {full_size:.0}\n"));
                out.push_str("method costs:\n");
                for (m, c) in method_costs {
                    out.push_str(&format!("  {:<12} {:.1}\n", m.name(), c));
                }
                for (ri, order) in sips {
                    out.push_str(&format!("  rule {ri} SIP order: {order:?}\n"));
                }
            }
            if let PredPlanKind::Union(rules) = &plan.plan.kind {
                for rp in rules {
                    out.push_str(&format!(
                        "  rule {} under {}: order {:?}, cost {:.1}\n",
                        rp.rule_index, rp.head_adornment, rp.order, rp.cost
                    ));
                }
            }
            out.push_str("processing tree:\n");
            out.push_str(&ProcessingTree::from_plan(&self.program, plan).to_string());
            out.push_str(&format!("(optimized in {opt_ms:.2} ms)"));
            return out;
        }
        let run_started = Instant::now();
        match co.execute(&self.program, db, &self.fixpoint) {
            Ok(ans) => {
                let run_ms = run_started.elapsed().as_secs_f64() * 1000.0;
                let mut rows: Vec<String> = ans
                    .tuples
                    .iter()
                    .map(|t| format!("{}{}", query.pred().name, t))
                    .collect();
                rows.sort();
                let mut out = rows.join("\n");
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&format!(
                    "{} answer(s)  (method {}, est. cost {:.1}, optimize {:.2} ms, run {:.2} ms)",
                    ans.tuples.len(),
                    plan.method.name(),
                    plan.cost,
                    opt_ms,
                    run_ms
                ));
                out
            }
            Err(e) => format!("execution error: {e}"),
        }
    }

    /// `:plan <goal>?` — run the join-order × index-set co-optimization
    /// fixpoint and show what it settled on: the chosen body orders, the
    /// co-optimized index set the executor will build, and the
    /// enumerator/fixpoint counters.
    fn plan_query(&self, query: &Query) -> String {
        let started = Instant::now();
        let co = match co_optimize(&self.program, &self.db, &self.cfg, query, None) {
            Ok(c) => c,
            Err(e) => return format!("{e}"),
        };
        let opt_ms = started.elapsed().as_secs_f64() * 1000.0;
        let plan = &co.plan;
        let mut out = String::new();
        out.push_str(&format!(
            "query form:   {}.{}\n",
            query.pred().name,
            query.adornment()
        ));
        out.push_str(&format!(
            "method:       {}   est. cost: {:.1}\n",
            plan.method.name(),
            plan.cost
        ));
        out.push_str(&format!(
            "co-opt:       {} iteration(s), {}, accepted costs {:?}\n",
            co.stats.iterations,
            if co.stats.stable {
                "stable fixpoint"
            } else {
                "stopped (no strict improvement)"
            },
            co.stats.cost_trajectory
        ));
        let mut orders: Vec<String> = plan
            .orders
            .iter()
            .map(|((ri, ad), order)| format!("  rule {ri} under {ad}: {order:?}\n"))
            .collect();
        orders.extend(
            plan.clique_orders
                .iter()
                .map(|(ri, order)| format!("  rule {ri} (clique SIP): {order:?}\n")),
        );
        orders.sort();
        if !orders.is_empty() {
            out.push_str("chosen orders:\n");
            for line in orders {
                out.push_str(&line);
            }
        }
        out.push_str("index set:\n");
        let by_pred = co.catalog.orders_by_pred();
        if by_pred.is_empty() {
            out.push_str("  (none)\n");
        }
        for (pred, pred_orders) in &by_pred {
            for order in pred_orders {
                out.push_str(&format!("  {pred} on columns {order:?}\n"));
            }
        }
        out.push_str(&format!(
            "enumerator:   {} prefix(es) explored, {} pruned by memo, \
             {} subtree memo hit(s), {} full order(s) probed\n",
            plan.stats.explored_plans,
            plan.stats.enum_memo_hits,
            plan.stats.memo_hits,
            plan.stats.orders_probed
        ));
        out.push_str(&format!("(co-optimized in {opt_ms:.2} ms)"));
        out
    }
}

/// Batch analysis driver for `ldl-shell --check [--json] file...`.
///
/// Parses and analyzes each file (never evaluates). A parse failure is
/// itself reported as an `LDL000` diagnostic so the output format is
/// uniform. Returns the process exit code: 0 when no file has errors,
/// 1 otherwise.
/// Analyzes one source text; a parse failure becomes an `LDL000`
/// diagnostic at the failure position.
fn check_text(text: &str, opts: &AnalysisOptions) -> ldl::analysis::Report {
    match parse_source(text) {
        Ok(src) => analysis::analyze_source(&src, opts),
        Err(e) => {
            let span = match &e {
                ldl::LdlError::Parse { line, col, .. } => Span::point(*line as u32, *col as u32),
                _ => Span::NONE,
            };
            let mut r = ldl::analysis::Report::new();
            r.push(ldl::analysis::Diagnostic::error(
                analysis::PARSE_ERROR_CODE,
                span,
                e.to_string(),
            ));
            r.finish()
        }
    }
}

fn check_files(files: &[String], json: bool) -> i32 {
    let opts = AnalysisOptions::default();
    let mut failed = files.is_empty();
    if files.is_empty() {
        eprintln!("usage: ldl-shell --check [--json] file.ldl ...");
    }
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                failed = true;
                continue;
            }
        };
        let report = check_text(&text, &opts);
        if json {
            let j = report.render_json();
            if !j.is_empty() {
                println!("{j}");
            }
        } else {
            print!("{file}: {}", report.render_text(Some(&text), file));
        }
        if report.has_errors() {
            failed = true;
        }
    }
    if failed {
        1
    } else {
        0
    }
}

/// Translates one REPL line into `ldl-serve` protocol calls. Returns
/// the text to print; `"bye"` ends the session (mirroring the local
/// shell's quit convention).
fn remote_command(client: &mut ldl::serve::Client, line: &str) -> String {
    use ldl::serve::Json;
    let line = line.trim();
    if line.is_empty() || line.starts_with('%') {
        return String::new();
    }
    let fmt_err = |e: std::io::Error| format!("error: {e}");
    if let Some(cmd) = line.strip_prefix(':') {
        let mut parts = cmd.splitn(2, ' ');
        let name = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim();
        return match name {
            "help" => "\
remote commands:
  <fact>. / <rule>.        load into the server's rule base
  <goal>?                  query the session's pinned snapshot
  :insert <fact>.          stage a base-fact insert (server-side)
  :retract <fact>.         stage a base-fact retract
  :commit                  apply the staged batch transactionally
  :pending                 count staged updates
  :abort                   discard staged updates
  :refresh                 re-pin the session to the latest commit
  :digest                  version + state digest of the pinned view
  :stats                   predicate/tuple counts of the pinned view
  :load <file>             load a local .ldl file into the server
  :snapshot                force a server-side snapshot
  :shutdown                stop the server
  :quit                    close this session"
                .to_string(),
            "load" => match std::fs::read_to_string(arg) {
                Ok(text) => match client.load(&text) {
                    Ok(v) => format!("loaded {arg} (version {v})"),
                    Err(e) => fmt_err(e),
                },
                Err(e) => format!("cannot read {arg}: {e}"),
            },
            "insert" => match client.insert(arg) {
                Ok(n) => format!("staged; {n} operation(s) pending (:commit to apply)"),
                Err(e) => fmt_err(e),
            },
            "retract" => match client.retract(arg) {
                Ok(n) => format!("staged; {n} operation(s) pending (:commit to apply)"),
                Err(e) => fmt_err(e),
            },
            "commit" => match client.commit() {
                Ok(r) => {
                    let count = |k: &str| r.get(k).and_then(Json::as_int).unwrap_or(0);
                    format!(
                        "committed version {}: base +{}/-{}, derived +{}/-{}",
                        count("version"),
                        count("base_inserted"),
                        count("base_retracted"),
                        count("derived_inserted"),
                        count("derived_retracted")
                    )
                }
                Err(e) => format!("commit failed: {e}"),
            },
            "pending" => match client.request_ok(&Json::obj(vec![("op", Json::str("pending"))])) {
                Ok(r) => format!(
                    "{} operation(s) staged",
                    r.get("staged").and_then(Json::as_int).unwrap_or(0)
                ),
                Err(e) => fmt_err(e),
            },
            "abort" => match client.abort() {
                Ok(()) => "staged batch discarded".to_string(),
                Err(e) => fmt_err(e),
            },
            "refresh" => match client.refresh() {
                Ok(v) => format!("pinned at version {v}"),
                Err(e) => fmt_err(e),
            },
            "digest" => match client.digest() {
                Ok((v, d)) => format!("version {v}, digest {d}"),
                Err(e) => fmt_err(e),
            },
            "stats" => match client.request_ok(&Json::obj(vec![("op", Json::str("stats"))])) {
                Ok(r) => {
                    let mut out = format!(
                        "version {}: {} predicate(s), {} tuple(s)",
                        r.get("version").and_then(Json::as_int).unwrap_or(0),
                        r.get("preds").and_then(Json::as_int).unwrap_or(0),
                        r.get("tuples").and_then(Json::as_int).unwrap_or(0)
                    );
                    if r.get("role").and_then(Json::as_str) == Some("replica") {
                        out.push_str(&format!(
                            "\nreplica of {}: connected {}, lag {} version(s), \
                             {} byte(s) behind, {} reconnect(s), {} bootstrap(s)",
                            r.get("primary").and_then(Json::as_str).unwrap_or("?"),
                            r.get("connected").and_then(Json::as_bool).unwrap_or(false),
                            r.get("lag_versions").and_then(Json::as_int).unwrap_or(-1),
                            r.get("behind_bytes").and_then(Json::as_int).unwrap_or(0),
                            r.get("reconnects").and_then(Json::as_int).unwrap_or(0),
                            r.get("bootstraps").and_then(Json::as_int).unwrap_or(0),
                        ));
                        if let Some(e) = r.get("last_error").and_then(Json::as_str) {
                            out.push_str(&format!("\nlast error: {e}"));
                        }
                    }
                    out
                }
                Err(e) => fmt_err(e),
            },
            "snapshot" => match client.snapshot() {
                Ok(()) => "snapshot written".to_string(),
                Err(e) => fmt_err(e),
            },
            "shutdown" => match client.shutdown() {
                Ok(()) => "server stopped".to_string(),
                Err(e) => fmt_err(e),
            },
            "quit" | "q" | "exit" => "bye".to_string(),
            other => format!("unknown remote command :{other} (try :help)"),
        };
    }
    if line.ends_with('?') {
        return match client.query(line) {
            Ok(rows) => {
                let goal = line.trim_end_matches('?').trim();
                let pred = goal.split('(').next().unwrap_or(goal).trim();
                let mut out = String::new();
                for r in &rows {
                    out.push_str(&format!("{pred}{r}\n"));
                }
                out.push_str(&format!("{} answer(s)", rows.len()));
                out
            }
            Err(e) => format!("error: {e}"),
        };
    }
    // Program text: rules and facts both travel through the server's
    // transactional load path.
    match client.load(line) {
        Ok(v) => format!("loaded (version {v})"),
        Err(e) => fmt_err(e),
    }
}

fn remote_repl(target: &str) -> i32 {
    let mut client = match ldl::serve::Client::connect(target) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {target}: {e}");
            return 1;
        }
    };
    match client.hello() {
        Ok(v) => println!("connected to {target} (version {v})"),
        Err(e) => {
            eprintln!("handshake with {target} failed: {e}");
            return 1;
        }
    }
    let stdin = std::io::stdin();
    print!("ldl> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let out = remote_command(&mut client, &line);
        if !out.is_empty() {
            println!("{out}");
        }
        if out == "bye" || out == "server stopped" {
            break;
        }
        print!("ldl> ");
        std::io::stdout().flush().ok();
    }
    0
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--connect") {
        if pos + 1 >= args.len() {
            eprintln!("usage: ldl-shell --connect <host:port|socket-path>");
            std::process::exit(1);
        }
        std::process::exit(remote_repl(&args[pos + 1]));
    }
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        args.remove(pos);
        let json = match args.iter().position(|a| a == "--json") {
            Some(j) => {
                args.remove(j);
                true
            }
            None => false,
        };
        std::process::exit(check_files(&args, json));
    }
    let mut shell = Shell::new();
    for file in &args {
        let out = shell.command(&format!("load {file}"));
        println!("{out}");
    }
    let stdin = std::io::stdin();
    print!("ldl> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let out = shell.handle(&line);
        if !out.is_empty() {
            println!("{out}");
        }
        if out == "bye" {
            return;
        }
        print!("ldl> ");
        std::io::stdout().flush().ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(shell: &mut Shell, lines: &[&str]) -> Vec<String> {
        lines.iter().map(|l| shell.handle(l)).collect()
    }

    #[test]
    fn add_facts_and_query() {
        let mut s = Shell::new();
        let out = feed(
            &mut s,
            &[
                "e(1, 2). e(2, 3).",
                "tc(X, Y) <- e(X, Y).",
                "tc(X, Y) <- e(X, Z), tc(Z, Y).",
                "tc(1, Y)?",
            ],
        );
        assert!(out[0].contains("2 fact(s)"));
        assert!(out[3].contains("tc(1, 2)"));
        assert!(out[3].contains("tc(1, 3)"));
        assert!(out[3].contains("2 answer(s)"));
    }

    #[test]
    fn explain_shows_plan() {
        let mut s = Shell::new();
        feed(
            &mut s,
            &[
                "e(1, 2).",
                "tc(X, Y) <- e(X, Y).",
                "tc(X, Y) <- e(X, Z), tc(Z, Y).",
            ],
        );
        let out = s.handle(":explain tc(1, Y)?");
        assert!(out.contains("method:"), "{out}");
        assert!(out.contains("method costs:"), "{out}");
        assert!(out.contains("CC {tc/2}"), "{out}");
    }

    #[test]
    fn unsafe_query_reports_cleanly() {
        let mut s = Shell::new();
        s.handle("p(X, Y) <- q(X).");
        s.handle("q(1).");
        let out = s.handle("p(A, B)?");
        assert!(out.contains("unsafe"), "{out}");
        // Rejection goes through the diagnostics path: stable code plus
        // a witness naming the unbound variable.
        assert!(out.contains("LDL003"), "{out}");
        assert!(out.contains('Y'), "{out}");
    }

    #[test]
    fn check_command_reports_lints_and_errors() {
        let mut s = Shell::new();
        s.handle("big(X) <- n(X), X > Y.");
        s.handle("n(1).");
        let out = s.handle(":check");
        assert!(out.contains("error[LDL001]"), "{out}");
        assert!(out.contains("1 error(s)"), "{out}");
        s.handle(":reset");
        s.handle("p(X) <- q(X, Unused).");
        s.handle("q(1, 1).");
        let out = s.handle(":check");
        assert!(out.contains("warning[LDL104]"), "{out}");
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn parse_failure_is_ldl000_with_position() {
        let r = check_text("p(X <- q(X).\n", &AnalysisOptions::default());
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, ldl::analysis::PARSE_ERROR_CODE);
        assert_eq!(d.code, "LDL000");
        assert_eq!(d.severity, ldl::analysis::Severity::Error);
        // Span points at the offending token (`<-` where `)` was due).
        assert_eq!((d.span.line, d.span.col), (1, 5));
        assert!(r.has_errors());
    }

    #[test]
    fn batch_check_exit_codes_and_json() {
        let dir = std::env::temp_dir().join("ldl_shell_check_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.ldl");
        std::fs::write(&clean, "e(1, 2).\ntc(X, Y) <- e(X, Y).\ntc(1, A)?\n").unwrap();
        let bad = dir.join("bad.ldl");
        std::fs::write(&bad, "big(X) <- n(X), X > Y.\nn(1).\n").unwrap();
        let broken = dir.join("broken.ldl");
        std::fs::write(&broken, "p(X <- q(X).\n").unwrap();
        let missing = dir.join("nosuch.ldl");
        let s = |p: &std::path::Path| p.display().to_string();
        assert_eq!(check_files(&[s(&clean)], false), 0);
        assert_eq!(check_files(&[s(&clean), s(&bad)], false), 1);
        assert_eq!(check_files(&[s(&broken)], true), 1);
        assert_eq!(check_files(&[s(&missing)], false), 1);
        assert_eq!(check_files(&[], false), 1);
    }

    #[test]
    fn strategy_and_acyclic_commands() {
        let mut s = Shell::new();
        assert!(s.handle(":strategy kbz").contains("kbz"));
        assert!(s.handle(":strategy bogus").contains("unknown strategy"));
        assert!(s.handle(":acyclic on").contains("counting"));
        assert!(s.handle(":bogus").contains("unknown command"));
    }

    #[test]
    fn paths_command_switches_policy_without_changing_answers() {
        let mut s = Shell::new();
        feed(
            &mut s,
            &[
                "e(1, 2). e(2, 3). e(3, 4).",
                "tc(X, Y) <- e(X, Y).",
                "tc(X, Y) <- e(X, Z), tc(Z, Y).",
            ],
        );
        let selected = s.handle("tc(1, Y)?");
        assert!(s.handle(":paths scan").contains("access paths = scan"));
        let scanned = s.handle("tc(1, Y)?");
        // Same rows under either policy (timings differ; compare rows).
        let rows = |out: &str| {
            out.lines()
                .filter(|l| l.starts_with("tc("))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&selected), rows(&scanned));
        assert!(s.handle(":paths bogus").contains("unknown access-path"));
    }

    #[test]
    fn rules_and_stats_listing() {
        let mut s = Shell::new();
        assert_eq!(s.handle(":rules"), "(empty)");
        s.handle("e(1, 2).");
        s.handle("p(X) <- e(X, Y).");
        assert!(s.handle(":rules").contains("p(X) <- e(X, Y)."));
        assert!(s.handle(":stats").contains("e/2: 1 tuples"));
    }

    #[test]
    fn inline_queries_in_source() {
        let mut s = Shell::new();
        let out = s.handle("f(7). f(8). f(7)?");
        assert!(out.contains("1 answer(s)"), "{out}");
    }

    #[test]
    fn prolog_command_answers_and_warns() {
        let mut s = Shell::new();
        feed(
            &mut s,
            &[
                "e(1, 2). e(2, 3).",
                "tc(X, Y) <- e(X, Y).",
                "tc(X, Y) <- e(X, Z), tc(Z, Y).",
            ],
        );
        let out = s.handle(":prolog tc(1, Y)?");
        assert!(out.contains("tc(1, 3)"), "{out}");
        assert!(out.contains("via SLD"), "{out}");
        // Left-recursive variant hits the depth bound.
        s.handle(":reset");
        feed(
            &mut s,
            &[
                "e(1, 2).",
                "lt(X, Y) <- e(X, Y).",
                "lt(X, Y) <- lt(X, Z), e(Z, Y).",
            ],
        );
        let out = s.handle(":prolog lt(1, Y)?");
        assert!(out.contains("DEPTH BOUND"), "{out}");
    }

    #[test]
    fn load_handles_comment_leading_files() {
        let dir = std::env::temp_dir().join("ldl_shell_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("c.ldl");
        std::fs::write(&file, "% comment first\nf(1). f(2).\n").unwrap();
        let mut s = Shell::new();
        let out = s.command(&format!("load {}", file.display()));
        assert!(out.contains("2 fact(s)"), "{out}");
    }

    #[test]
    fn insert_retract_commit_maintains_queries() {
        let mut s = Shell::new();
        feed(
            &mut s,
            &[
                "e(1, 2). e(2, 3).",
                "tc(X, Y) <- e(X, Y).",
                "tc(X, Y) <- e(X, Z), tc(Z, Y).",
            ],
        );
        assert!(s.handle("tc(1, Y)?").contains("2 answer(s)"));
        // Stage + commit an edge extending the chain.
        assert!(s
            .handle(":insert e(3, 4).")
            .contains("1 operation(s) pending"));
        let out = s.handle(":commit");
        assert!(out.contains("base +1/-0"), "{out}");
        assert!(out.contains("tc/2: +3/-0"), "{out}");
        assert!(s.handle("tc(1, Y)?").contains("3 answer(s)"));
        assert!(s.handle(":stats").contains("e/2: 3 tuples"));
        // A present tuple retracted and re-inserted in one batch
        // cancels: no base change, every stratum skipped.
        s.handle(":retract e(3, 4).");
        s.handle(":insert e(3, 4).");
        let out = s.handle(":commit");
        assert!(out.contains("base +0/-0"), "{out}");
        assert!(out.contains("0 stratum(s) repaired"), "{out}");
        // Retract the middle edge: downstream closure tuples fall out.
        s.handle(":retract e(2, 3).");
        let out = s.handle(":commit");
        assert!(out.contains("base +0/-1"), "{out}");
        assert!(out.contains("tc/2: +0/-4"), "{out}");
        assert!(s.handle("tc(1, Y)?").contains("1 answer(s)"));
        assert_eq!(s.handle(":commit"), "nothing to commit");
    }

    #[test]
    fn stage_rejects_non_facts() {
        let mut s = Shell::new();
        s.handle("e(1, 2).");
        s.handle("p(X) <- e(X, Y).");
        assert!(s
            .handle(":insert p(X) <- e(X, Y).")
            .contains("only ground facts"));
        // A non-ground head with an empty body parses as a rule, not a
        // fact, so it lands in the same rejection.
        assert!(s.handle(":insert e(X, 2).").contains("only ground facts"));
        assert!(s.handle(":insert").contains("nothing to stage"));
        // Deltas on derived predicates are rejected at commit time —
        // and the refused batch stays staged until :abort.
        s.handle(":insert p(1).");
        assert!(s.handle(":commit").contains("commit failed"));
        assert!(s.handle(":commit").contains("staged batch preserved"));
        assert!(s.handle(":abort").contains("discarded 1"));
        assert_eq!(s.handle(":commit"), "nothing to commit");
    }

    #[test]
    fn failed_commit_preserves_staged_batch_and_state() {
        let mut s = Shell::new();
        feed(
            &mut s,
            &[
                "e(1, 2).",
                "tc(X, Y) <- e(X, Y).",
                "tc(X, Y) <- e(X, Z), tc(Z, Y).",
            ],
        );
        // One good fact and one write to a derived predicate: the
        // commit must be refused as a whole, with nothing applied.
        s.handle(":insert e(2, 3).");
        s.handle(":insert tc(9, 9).");
        let out = s.handle(":commit");
        assert!(out.contains("commit failed"), "{out}");
        assert!(out.contains("staged batch preserved"), "{out}");
        // Both operations are still staged and inspectable...
        let pending = s.handle(":pending");
        assert!(pending.contains("2 operation(s) staged"), "{pending}");
        assert!(pending.contains("+e(2, 3)"), "{pending}");
        assert!(pending.contains("+tc(9, 9)"), "{pending}");
        // ...and neither touched the engine or the database.
        assert!(s.handle("tc(1, Y)?").contains("1 answer(s)"));
        assert!(s.handle(":stats").contains("e/2: 1 tuples"));
        // Drop only the bad half by aborting and restaging the good
        // fact; the commit then applies exactly once.
        assert!(s.handle(":abort").contains("discarded 2"));
        s.handle(":insert e(2, 3).");
        let out = s.handle(":commit");
        assert!(out.contains("base +1/-0"), "{out}");
        assert!(s.handle("tc(1, Y)?").contains("2 answer(s)"));
        assert_eq!(s.handle(":pending"), "nothing staged");
    }

    #[test]
    fn rule_added_after_commit_rebuilds_engine() {
        let mut s = Shell::new();
        s.handle("e(1, 2).");
        s.handle("tc(X, Y) <- e(X, Y).");
        s.handle(":insert e(2, 3).");
        s.handle(":commit");
        // New recursive rule after a commit: engine must rebuild and
        // see both committed facts.
        s.handle("tc(X, Y) <- e(X, Z), tc(Z, Y).");
        s.handle(":insert e(3, 4).");
        let out = s.handle(":commit");
        assert!(out.contains("base +1/-0"), "{out}");
        assert!(s.handle("tc(1, Y)?").contains("3 answer(s)"));
    }

    #[test]
    fn remote_mode_drives_a_server_session() {
        use ldl::serve::{Client, Listener, Server, Service};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("ldl-shell-remote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service =
            Arc::new(Service::open(&dir, &FixpointConfig::serial(), 0).expect("service open"));
        let listener = Listener::bind("127.0.0.1:0").expect("bind");
        let addr = listener
            .describe()
            .strip_prefix("tcp://")
            .expect("tcp addr")
            .to_string();
        // The test session ends with :shutdown over TCP — opt in.
        let server = Server::new(service, listener).with_admin(true);
        let handle = std::thread::spawn(move || server.run().expect("server run"));

        let mut c = Client::connect(&addr).unwrap();
        let out = remote_command(
            &mut c,
            "tc(X, Y) <- e(X, Y). tc(X, Y) <- e(X, Z), tc(Z, Y).",
        );
        assert!(out.contains("loaded (version 1)"), "{out}");
        assert!(
            remote_command(&mut c, ":insert e(1, 2). e(2, 3).").contains("2 operation(s) pending")
        );
        let out = remote_command(&mut c, ":commit");
        assert!(out.contains("committed version 2"), "{out}");
        assert!(out.contains("base +2/-0"), "{out}");
        let out = remote_command(&mut c, "tc(1, Y)?");
        assert!(out.contains("tc(1, 2)"), "{out}");
        assert!(out.contains("tc(1, 3)"), "{out}");
        assert!(out.contains("2 answer(s)"), "{out}");
        // A refused commit reports the server's atomicity promise and
        // keeps the batch staged server-side.
        remote_command(&mut c, ":insert tc(9, 9).");
        let out = remote_command(&mut c, ":commit");
        assert!(out.contains("commit failed"), "{out}");
        assert!(out.contains("staged batch preserved"), "{out}");
        assert!(remote_command(&mut c, ":pending").contains("1 operation(s) staged"));
        assert_eq!(remote_command(&mut c, ":abort"), "staged batch discarded");
        let out = remote_command(&mut c, ":digest");
        assert!(out.contains("version 2, digest "), "{out}");
        assert!(remote_command(&mut c, ":stats").contains("tuple(s)"));
        assert_eq!(remote_command(&mut c, ":quit"), "bye");
        assert_eq!(remote_command(&mut c, ":shutdown"), "server stopped");
        handle.join().unwrap();
    }

    #[test]
    fn reset_clears() {
        let mut s = Shell::new();
        s.handle("e(1, 2).");
        s.handle(":reset");
        assert_eq!(s.handle(":rules"), "(empty)");
    }

    #[test]
    fn parse_errors_are_not_fatal() {
        let mut s = Shell::new();
        let out = s.handle("p(X <- q(X).");
        assert!(out.contains("error"), "{out}");
        // Shell still usable.
        assert!(s.handle("f(1).").contains("1 fact(s)"));
    }
}
