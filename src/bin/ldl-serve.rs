//! `ldl-serve` — the transactional persistent EDB daemon.
//!
//! ```text
//! $ ldl-serve --data /var/lib/ldl --listen 127.0.0.1:7979
//! ldl-serve: recovered version 42 (17 predicate(s))
//! ldl-serve: listening on tcp://127.0.0.1:7979
//! ```
//!
//! Options:
//!
//! * `--data <dir>` — data directory holding `wal.bin` and
//!   `snapshot.bin` (created if missing; default `./ldl-data`);
//! * `--listen <host:port>` — TCP listen address;
//! * `--socket <path>` — Unix-domain socket path (alternative to
//!   `--listen`; default `<data>/ldl.sock` when neither is given);
//! * `--snapshot-every <n>` — write a snapshot and reset the WAL after
//!   every `n` committed records (0 = only on explicit `snapshot`
//!   requests; default 64);
//! * `--threads <n>` — evaluation threads (default: serial).
//!
//! Connect with `ldl-shell --connect <host:port|socket-path>` or any
//! line-delimited-JSON client. The server runs until a session sends
//! `shutdown` (or the process is killed — recovery replays the WAL on
//! the next start).

use ldl::eval::FixpointConfig;
use ldl::serve::{Listener, Server, Service};
use std::path::PathBuf;
use std::sync::Arc;

#[derive(Debug)]
struct Options {
    data: PathBuf,
    target: Option<String>,
    snapshot_every: u64,
    threads: usize,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        data: PathBuf::from("ldl-data"),
        target: None,
        snapshot_every: 64,
        threads: 1,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--data" => opts.data = PathBuf::from(value("--data")?),
            "--listen" => opts.target = Some(value("--listen")?),
            "--socket" => opts.target = Some(value("--socket")?),
            "--snapshot-every" => {
                let v = value("--snapshot-every")?;
                opts.snapshot_every = v
                    .parse()
                    .map_err(|_| format!("--snapshot-every: not a number: {v}"))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: not a number: {v}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ldl-serve [--data DIR] [--listen HOST:PORT | --socket PATH] \
                     [--snapshot-every N] [--threads N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other} (try --help)")),
        }
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let cfg = if opts.threads > 1 {
        FixpointConfig {
            threads: opts.threads,
            ..FixpointConfig::default()
        }
    } else {
        FixpointConfig::serial()
    };
    let service = match Service::open(&opts.data, &cfg, opts.snapshot_every) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ldl-serve: cannot open {}: {e}", opts.data.display());
            std::process::exit(1);
        }
    };
    let view = service.current();
    println!(
        "ldl-serve: recovered version {} ({} predicate(s))",
        view.version,
        view.db.preds().len()
    );
    let target = opts
        .target
        .unwrap_or_else(|| opts.data.join("ldl.sock").display().to_string());
    let listener = match Listener::bind(&target) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ldl-serve: cannot bind {target}: {e}");
            std::process::exit(1);
        }
    };
    let server = Server::new(Arc::new(service), listener);
    println!("ldl-serve: listening on {}", server.describe());
    if let Err(e) = server.run() {
        eprintln!("ldl-serve: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_covers_all_options() {
        let o = parse_args(&args(&[
            "--data",
            "/tmp/d",
            "--listen",
            "127.0.0.1:7979",
            "--snapshot-every",
            "8",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(o.data, PathBuf::from("/tmp/d"));
        assert_eq!(o.target.as_deref(), Some("127.0.0.1:7979"));
        assert_eq!(o.snapshot_every, 8);
        assert_eq!(o.threads, 4);
    }

    #[test]
    fn parse_args_defaults_and_errors() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.data, PathBuf::from("ldl-data"));
        assert!(o.target.is_none());
        assert_eq!(o.snapshot_every, 64);
        assert!(parse_args(&args(&["--listen"])).is_err());
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--snapshot-every", "x"])).is_err());
        assert!(parse_args(&args(&["--help"]))
            .unwrap_err()
            .contains("usage"));
    }
}
