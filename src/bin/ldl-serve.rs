//! `ldl-serve` — the transactional persistent EDB daemon.
//!
//! ```text
//! $ ldl-serve --data /var/lib/ldl --listen 127.0.0.1:7979
//! ldl-serve: recovered version 42 (17 predicate(s))
//! ldl-serve: listening on tcp://127.0.0.1:7979
//! ```
//!
//! Options:
//!
//! * `--data <dir>` — data directory holding `wal.bin` and
//!   `snapshot.bin` (created if missing; default `./ldl-data`);
//! * `--listen <host:port>` — TCP listen address;
//! * `--socket <path>` — Unix-domain socket path (alternative to
//!   `--listen`; default `<data>/ldl.sock` when neither is given);
//! * `--snapshot-every <n>` — write a snapshot and reset the WAL after
//!   every `n` committed records (0 = only on explicit `snapshot`
//!   requests; default 64);
//! * `--threads <n>` — evaluation threads (default: serial);
//! * `--replica-of <addr>` — run as a **read replica** of the primary
//!   at `addr` (`host:port` or socket path): bootstrap from its
//!   snapshot, stream committed WAL frames, serve reads, refuse writes
//!   with a redirect;
//! * `--allow-remote-admin` — allow `shutdown`/`snapshot` over TCP
//!   (they are always allowed on Unix sockets, never on TCP without
//!   this flag).
//!
//! Connect with `ldl-shell --connect <host:port|socket-path>` or any
//! line-delimited-JSON client. The server runs until a session sends
//! `shutdown` (or the process is killed — recovery replays the WAL on
//! the next start).

use ldl::eval::FixpointConfig;
use ldl::serve::{replicate, Listener, Server, Service, ServiceOptions};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

#[derive(Debug)]
struct Options {
    data: PathBuf,
    target: Option<String>,
    snapshot_every: u64,
    threads: usize,
    replica_of: Option<String>,
    allow_remote_admin: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        data: PathBuf::from("ldl-data"),
        target: None,
        snapshot_every: 64,
        threads: 1,
        replica_of: None,
        allow_remote_admin: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--data" => opts.data = PathBuf::from(value("--data")?),
            "--listen" => opts.target = Some(value("--listen")?),
            "--socket" => opts.target = Some(value("--socket")?),
            "--snapshot-every" => {
                let v = value("--snapshot-every")?;
                opts.snapshot_every = v
                    .parse()
                    .map_err(|_| format!("--snapshot-every: not a number: {v}"))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: not a number: {v}"))?;
            }
            "--replica-of" => opts.replica_of = Some(value("--replica-of")?),
            "--allow-remote-admin" => opts.allow_remote_admin = true,
            "--help" | "-h" => {
                return Err(
                    "usage: ldl-serve [--data DIR] [--listen HOST:PORT | --socket PATH] \
                     [--snapshot-every N] [--threads N] [--replica-of ADDR] \
                     [--allow-remote-admin]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other} (try --help)")),
        }
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let cfg = if opts.threads > 1 {
        FixpointConfig {
            threads: opts.threads,
            ..FixpointConfig::default()
        }
    } else {
        FixpointConfig::serial()
    };
    let service_opts = ServiceOptions {
        replica_of: opts.replica_of.clone(),
        ..ServiceOptions::new(opts.snapshot_every)
    };
    let service = match Service::open_with(&opts.data, &cfg, service_opts) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("ldl-serve: cannot open {}: {e}", opts.data.display());
            std::process::exit(1);
        }
    };
    let view = service.current();
    println!(
        "ldl-serve: recovered version {} ({} predicate(s))",
        view.version,
        view.db.preds().len()
    );
    if let Some(primary) = &opts.replica_of {
        println!("ldl-serve: replicating from {primary}");
        // Runs until process exit; reconnects with capped backoff.
        let _runner = replicate::spawn(service.clone(), Arc::new(AtomicBool::new(false)));
    }
    let target = opts
        .target
        .unwrap_or_else(|| opts.data.join("ldl.sock").display().to_string());
    let listener = match Listener::bind(&target) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ldl-serve: cannot bind {target}: {e}");
            std::process::exit(1);
        }
    };
    let mut server = Server::new(service, listener);
    if opts.allow_remote_admin {
        server = server.with_admin(true);
    }
    println!("ldl-serve: listening on {}", server.describe());
    if let Err(e) = server.run() {
        eprintln!("ldl-serve: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_covers_all_options() {
        let o = parse_args(&args(&[
            "--data",
            "/tmp/d",
            "--listen",
            "127.0.0.1:7979",
            "--snapshot-every",
            "8",
            "--threads",
            "4",
            "--replica-of",
            "127.0.0.1:7000",
            "--allow-remote-admin",
        ]))
        .unwrap();
        assert_eq!(o.data, PathBuf::from("/tmp/d"));
        assert_eq!(o.target.as_deref(), Some("127.0.0.1:7979"));
        assert_eq!(o.snapshot_every, 8);
        assert_eq!(o.threads, 4);
        assert_eq!(o.replica_of.as_deref(), Some("127.0.0.1:7000"));
        assert!(o.allow_remote_admin);
    }

    #[test]
    fn parse_args_defaults_and_errors() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.data, PathBuf::from("ldl-data"));
        assert!(o.target.is_none());
        assert_eq!(o.snapshot_every, 64);
        assert!(o.replica_of.is_none());
        assert!(!o.allow_remote_admin);
        assert!(parse_args(&args(&["--listen"])).is_err());
        assert!(parse_args(&args(&["--replica-of"])).is_err());
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--snapshot-every", "x"])).is_err());
        assert!(parse_args(&args(&["--help"]))
            .unwrap_err()
            .contains("usage"));
    }
}
