//! # ldl — Optimization in a Logic Based Language (EDBT 1988), in Rust
//!
//! Facade crate re-exporting the whole LDL reproduction:
//!
//! * [`core`] — language front end (terms, rules, parser,
//!   unification, adornment, dependency analysis);
//! * [`storage`] — in-memory relations, indexes, statistics;
//! * [`eval`] — extended relational algebra with fixpoint
//!   methods (naive, semi-naive, magic sets, counting);
//! * [`optimizer`] — the paper's contribution: cost-based,
//!   safety-aware optimization of recursive Horn-clause queries with
//!   exhaustive / KBZ-quadratic / simulated-annealing search;
//! * [`analysis`] — whole-program static analysis (`ldl check`):
//!   safety and stratification front end plus a lint suite, reported as
//!   span-carrying diagnostics with stable `LDLxxx` codes;
//! * [`serve`] — the transactional persistent EDB service (`ldl-serve`
//!   daemon): resident maintenance engine, WAL + snapshot durability,
//!   snapshot-isolated sessions over a line-delimited JSON protocol.
//!
//! See `examples/quickstart.rs` for the five-minute tour.

pub mod session;

pub use ldl_analysis as analysis;
pub use ldl_core as core;
pub use ldl_eval as eval;
pub use ldl_optimizer as optimizer;
pub use ldl_serve as serve;
pub use ldl_storage as storage;

pub use ldl_core::{
    parser, Adornment, Atom, LdlError, Literal, Pred, Program, Query, Rule, Term, Value,
};
pub use session::Session;
