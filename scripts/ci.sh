#!/usr/bin/env bash
# CI battery for the ldl-opt workspace. Exits nonzero on the first
# failure. Runs fully offline — the workspace has no external
# dependencies, so --offline only asserts that property.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release (tier-1)"
cargo build --release --offline

echo "==> cargo test -q (tier-1, root package)"
cargo test -q --offline

echo "==> cargo test --workspace (all crates: unit + integration + property)"
cargo test -q --offline --workspace

echo "==> cargo test --workspace under LDL_EVAL_THREADS=1 (forced-serial fixpoint)"
LDL_EVAL_THREADS=1 cargo test -q --offline --workspace

echo "==> cargo test --workspace under LDL_EVAL_THREADS=4 (forced-parallel fixpoint)"
LDL_EVAL_THREADS=4 cargo test -q --offline --workspace

echo "==> cargo build --workspace --all-targets (benches + experiment bins)"
cargo build --offline --workspace --all-targets

# Parallel fixpoint determinism: the scaling bench embeds a digest of
# the full evaluation result in every record label; the answer digests
# of a forced-serial and a forced-parallel run must be identical.
echo "==> parallel fixpoint answer-digest diff (LDL_EVAL_THREADS=1 vs 4)"
digest_dir="$(mktemp -d)"
trap 'rm -rf "$digest_dir"' EXIT
LDL_BENCH_ITERS=1 LDL_BENCH_JSON_DIR="$digest_dir/serial" \
    LDL_EVAL_THREADS=1 cargo bench -q --offline -p ldl-bench --bench parallel_fixpoint >/dev/null
LDL_BENCH_ITERS=1 LDL_BENCH_JSON_DIR="$digest_dir/parallel" \
    LDL_EVAL_THREADS=4 cargo bench -q --offline -p ldl-bench --bench parallel_fixpoint >/dev/null
for d in serial parallel; do
    grep -o 'digest=[0-9a-f]*' "$digest_dir/$d/BENCH_parallel_fixpoint.json" | sort -u \
        > "$digest_dir/$d.digests"
done
diff "$digest_dir/serial.digests" "$digest_dir/parallel.digests"
echo "    digests identical: $(wc -l < "$digest_dir/serial.digests") workload(s) × thread counts"

# Index-selection determinism: the index bench runs the recursive
# workloads under all three access-path policies (selected ordered
# indexes / on-demand hashes / forced scans) and embeds the answer
# digest in every record label; one digest per workload means the
# selected indexes changed nothing but the access cost.
echo "==> index selection answer-digest diff (selected vs hash vs scan)"
LDL_BENCH_ITERS=1 LDL_BENCH_JSON_DIR="$digest_dir/idxsel" \
    cargo bench -q --offline -p ldl-bench --bench index_selection >/dev/null
workloads=$(grep -o '"group": *"[^"]*"' "$digest_dir/idxsel/BENCH_index_selection.json" \
    | sort -u | wc -l)
unique=$(grep -o 'digest=[0-9a-f]*' "$digest_dir/idxsel/BENCH_index_selection.json" \
    | sort -u | wc -l)
if [ "$unique" -ne "$workloads" ]; then
    echo "    FAIL: $unique distinct digests across $workloads workload(s)"
    exit 1
fi
echo "    digests identical: $workloads workload(s) × 3 access policies"

# Range-probe determinism: the range bench runs the selective-range
# workload under all three access-path policies and embeds the answer
# digest in every record label; one digest per workload means folding
# bound inequalities into ordered range probes changed nothing but the
# rows enumerated (the bench itself asserts the row-count win).
echo "==> range probes answer-digest diff (selected vs hash vs scan)"
LDL_BENCH_ITERS=1 LDL_BENCH_JSON_DIR="$digest_dir/range" \
    cargo bench -q --offline -p ldl-bench --bench range_probes >/dev/null
workloads=$(grep -o '"group": *"[^"]*"' "$digest_dir/range/BENCH_range_probes.json" \
    | sort -u | wc -l)
unique=$(grep -o 'digest=[0-9a-f]*' "$digest_dir/range/BENCH_range_probes.json" \
    | sort -u | wc -l)
if [ "$unique" -ne "$workloads" ]; then
    echo "    FAIL: $unique distinct digests across $workloads workload(s)"
    exit 1
fi
echo "    digests identical: $workloads workload(s) × 3 access policies"

# Incremental-maintenance determinism: the update-stream bench drives a
# state-restoring retract/insert cycle through Engine::apply_delta and
# embeds a digest of the derived relations in both the maintained and
# the from-scratch record labels; one digest per workload means
# maintenance repaired the state bit-for-bit (the bench itself asserts
# the rows_enumerated win). The IVM differential tests also run under
# the LDL_EVAL_THREADS=1 and =4 workspace passes above.
echo "==> ivm stream answer-digest diff (maintained vs from-scratch)"
LDL_BENCH_ITERS=1 LDL_BENCH_JSON_DIR="$digest_dir/ivm" \
    cargo bench -q --offline -p ldl-bench --bench ivm_stream >/dev/null
workloads=$(grep -o '"group": *"[^"]*"' "$digest_dir/ivm/BENCH_ivm_stream.json" \
    | sort -u | wc -l)
unique=$(grep -o 'digest=[0-9a-f]*' "$digest_dir/ivm/BENCH_ivm_stream.json" \
    | sort -u | wc -l)
if [ "$unique" -ne "$workloads" ]; then
    echo "    FAIL: $unique distinct digests across $workloads workload(s)"
    exit 1
fi
echo "    digests identical: $workloads workload(s) × {maintained, from-scratch}"

# Service durability smoke: start ldl-serve on a scratch Unix socket,
# drive a full session from ldl-shell client mode (load rules, commit a
# batch, query, digest), kill the daemon without ceremony, restart it
# over the same data directory, and require the recovered digest to be
# bit-for-bit the one the live session reported. The commit/query
# throughput bench embeds the same digest before and after its streamed
# commits, so its single-digest check rides the same gate.
echo "==> ldl-serve durability smoke (commit, kill, recover, digest diff)"
cargo build -q --offline --bin ldl-serve --bin ldl-shell
serve_dir="$digest_dir/serve"
serve_sock="$serve_dir/ldl.sock"
mkdir -p "$serve_dir"
./target/debug/ldl-serve --data "$serve_dir/data" --socket "$serve_sock" \
    --snapshot-every 2 > "$serve_dir/serve.log" &
serve_pid=$!
for _ in $(seq 50); do [ -S "$serve_sock" ] && break; sleep 0.1; done
[ -S "$serve_sock" ] || { echo "    FAIL: daemon never bound $serve_sock"; exit 1; }
./target/debug/ldl-shell --connect "$serve_sock" > "$serve_dir/session1.log" <<'EOF'
tc(X, Y) <- e(X, Y). tc(X, Y) <- e(X, Z), tc(Z, Y).
:insert e(1, 2). e(2, 3). e(3, 4).
:commit
tc(1, Y)?
:digest
:quit
EOF
grep -q "3 answer(s)" "$serve_dir/session1.log" \
    || { echo "    FAIL: live query wrong"; cat "$serve_dir/session1.log"; exit 1; }
kill -9 "$serve_pid"; wait "$serve_pid" 2>/dev/null || true
# The socket file survives the SIGKILL; drop it so the bind wait below
# sees the restarted daemon, not the corpse's socket.
rm -f "$serve_sock"
./target/debug/ldl-serve --data "$serve_dir/data" --socket "$serve_sock" \
    --snapshot-every 2 >> "$serve_dir/serve.log" &
serve_pid=$!
for _ in $(seq 50); do [ -S "$serve_sock" ] && break; sleep 0.1; done
./target/debug/ldl-shell --connect "$serve_sock" > "$serve_dir/session2.log" <<'EOF'
tc(1, Y)?
:digest
:shutdown
EOF
wait "$serve_pid" 2>/dev/null || true
grep -q "3 answer(s)" "$serve_dir/session2.log" \
    || { echo "    FAIL: recovered query wrong"; cat "$serve_dir/session2.log"; exit 1; }
for s in 1 2; do
    grep -o 'digest [0-9a-f]*' "$serve_dir/session$s.log" > "$serve_dir/digest$s" \
        || { echo "    FAIL: no digest in session $s"; exit 1; }
done
diff "$serve_dir/digest1" "$serve_dir/digest2" \
    || { echo "    FAIL: recovered digest differs from the live session"; exit 1; }
echo "    recovered digest matches: $(cat "$serve_dir/digest1")"

echo "==> serve stream commit/query digest diff (before vs after streamed commits)"
LDL_BENCH_ITERS=1 LDL_BENCH_JSON_DIR="$digest_dir/serve-bench" \
    cargo bench -q --offline -p ldl-bench --bench serve_stream >/dev/null
unique=$(grep -o 'digest=[0-9a-f]*' "$digest_dir/serve-bench/BENCH_serve_stream.json" \
    | sort -u | wc -l)
if [ "$unique" -ne 1 ]; then
    echo "    FAIL: $unique distinct digests across the streamed-commit bench"
    exit 1
fi
echo "    digests identical: streamed commits restore the starting state"

# Replication smoke: a primary and a --replica-of daemon on scratch
# Unix sockets. Commits land on the primary (some before the replica
# exists — the bootstrap path; some after — the streaming path), the
# replica's :stats line is polled to zero lag, and the two :digest
# outputs must match bit for bit. Then the primary dies by SIGKILL and
# the replica must keep answering reads.
echo "==> ldl-serve replication smoke (bootstrap, stream, lag 0, primary death)"
repl_dir="$digest_dir/repl"
prim_sock="$repl_dir/primary.sock"
repl_sock="$repl_dir/replica.sock"
mkdir -p "$repl_dir"
./target/debug/ldl-serve --data "$repl_dir/primary" --socket "$prim_sock" \
    > "$repl_dir/primary.log" &
prim_pid=$!
for _ in $(seq 50); do [ -S "$prim_sock" ] && break; sleep 0.1; done
[ -S "$prim_sock" ] || { echo "    FAIL: primary never bound $prim_sock"; exit 1; }
./target/debug/ldl-shell --connect "$prim_sock" > "$repl_dir/seed.log" <<'EOF'
tc(X, Y) <- e(X, Y). tc(X, Y) <- e(X, Z), tc(Z, Y).
:insert e(1, 2). e(2, 3).
:commit
:quit
EOF
./target/debug/ldl-serve --data "$repl_dir/replica" --socket "$repl_sock" \
    --replica-of "$prim_sock" > "$repl_dir/replica.log" &
repl_pid=$!
for _ in $(seq 50); do [ -S "$repl_sock" ] && break; sleep 0.1; done
[ -S "$repl_sock" ] || { echo "    FAIL: replica never bound $repl_sock"; exit 1; }
./target/debug/ldl-shell --connect "$prim_sock" > "$repl_dir/primary2.log" <<'EOF'
:insert e(3, 4). e(4, 5). e(5, 6).
:commit
:digest
:quit
EOF
for _ in $(seq 100); do
    ./target/debug/ldl-shell --connect "$repl_sock" > "$repl_dir/stats.log" <<'EOF'
:stats
:quit
EOF
    grep -q "lag 0 version" "$repl_dir/stats.log" && break
    sleep 0.1
done
grep -q "lag 0 version" "$repl_dir/stats.log" \
    || { echo "    FAIL: replica never reached zero lag"; cat "$repl_dir/stats.log"; exit 1; }
./target/debug/ldl-shell --connect "$repl_sock" > "$repl_dir/replica-read.log" <<'EOF'
tc(1, Y)?
:digest
:insert e(99, 100).
:commit
:quit
EOF
grep -q "5 answer(s)" "$repl_dir/replica-read.log" \
    || { echo "    FAIL: replica query wrong"; cat "$repl_dir/replica-read.log"; exit 1; }
grep -q "read-only replica" "$repl_dir/replica-read.log" \
    || { echo "    FAIL: replica accepted a write"; cat "$repl_dir/replica-read.log"; exit 1; }
grep -o 'digest [0-9a-f]*' "$repl_dir/primary2.log" > "$repl_dir/digest-primary" \
    || { echo "    FAIL: no digest from the primary"; exit 1; }
grep -o 'digest [0-9a-f]*' "$repl_dir/replica-read.log" > "$repl_dir/digest-replica" \
    || { echo "    FAIL: no digest from the replica"; exit 1; }
diff "$repl_dir/digest-primary" "$repl_dir/digest-replica" \
    || { echo "    FAIL: replica digest differs from the primary"; exit 1; }
kill -9 "$prim_pid"; wait "$prim_pid" 2>/dev/null || true
./target/debug/ldl-shell --connect "$repl_sock" > "$repl_dir/replica-orphan.log" <<'EOF'
tc(1, Y)?
:shutdown
EOF
wait "$repl_pid" 2>/dev/null || true
grep -q "5 answer(s)" "$repl_dir/replica-orphan.log" \
    || { echo "    FAIL: replica stopped serving after the primary died"; \
         cat "$repl_dir/replica-orphan.log"; exit 1; }
echo "    replica converged: $(cat "$repl_dir/digest-replica"); reads survive primary death"

# Golden-diagnostics gate: `ldl-shell --check --json` over every example
# program must reproduce the checked-in diagnostics bit for bit (stable
# codes, spans, messages). `--check` exits non-zero on files with
# error-severity findings — that's expected for the unsafe examples, so
# only the diff decides.
echo "==> ldl-shell --check golden diagnostics over examples/*.ldl"
cargo build -q --offline --bin ldl-shell
for f in examples/*.ldl; do
    b="$(basename "$f" .ldl)"
    ./target/debug/ldl-shell --check --json "$f" > "$digest_dir/$b.json" || true
    diff "examples/golden/$b.json" "$digest_dir/$b.json" \
        || { echo "    FAIL: diagnostics for $f diverge from examples/golden/$b.json"; exit 1; }
done
echo "    $(ls examples/*.ldl | wc -l) example file(s) match their golden diagnostics"

# Estimate-quality gate: the absint_estimates bench asserts (in-process)
# that the inferred catalog's answer-count error is never worse than the
# uniform default on any workload and strictly better on at least one;
# the record labels carry per-workload errors and answer digests.
echo "==> inferred-estimate quality gate (absint_estimates)"
LDL_BENCH_ITERS=1 LDL_BENCH_JSON_DIR="$digest_dir/absint" \
    cargo bench -q --offline -p ldl-bench --bench absint_estimates >/dev/null
echo "    $(grep -o 'improved=[0-9]*/[0-9]*' "$digest_dir/absint/BENCH_absint_estimates.json") workload(s) improved, rest unchanged"

# Plan-enumeration gate: the E3-successor bench optimizes wide chain
# rules with the memoized enumerator and embeds the chosen plan's cost
# digest plus a pruned=yes|no flag (explored prefixes < n!) in every
# label. At n=6 the exhaustive strategy runs too: the memo digest must
# match brute force bit for bit (the bench-level echo of the oracle
# test), and at n >= 10 the memo must explore strictly fewer plans
# than n! — a pruned=no there means memoization stopped working.
echo "==> plan enumeration gate (memo digest vs brute force; pruning at n >= 10)"
LDL_BENCH_ITERS=1 LDL_BENCH_JSON_DIR="$digest_dir/planenum" \
    cargo bench -q --offline -p ldl-bench --bench plan_enum >/dev/null
planenum_json="$digest_dir/planenum/BENCH_plan_enum.json"
memo6=$(grep '"group": "plan-enum-memo"' "$planenum_json" | grep '"label": "n=6 ' \
    | grep -o 'digest=[0-9a-f]*')
exh6=$(grep '"group": "plan-enum-exhaustive"' "$planenum_json" | grep -o 'digest=[0-9a-f]*')
[ -n "$memo6" ] && [ "$memo6" = "$exh6" ] \
    || { echo "    FAIL: memo digest $memo6 != exhaustive digest $exh6 at n=6"; exit 1; }
if grep '"group": "plan-enum-memo"' "$planenum_json" | grep -E '"label": "n=(1[0-9]) ' \
    | grep -q 'pruned=no'; then
    echo "    FAIL: memo explored >= n! plans at n >= 10"
    exit 1
fi
echo "    memo digest matches brute force at n=6; pruning holds at n >= 10"

echo "==> cargo clippy --workspace --all-targets"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI battery passed."
