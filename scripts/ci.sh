#!/usr/bin/env bash
# CI battery for the ldl-opt workspace. Exits nonzero on the first
# failure. Runs fully offline — the workspace has no external
# dependencies, so --offline only asserts that property.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (tier-1)"
cargo build --release --offline

echo "==> cargo test -q (tier-1, root package)"
cargo test -q --offline

echo "==> cargo test --workspace (all crates: unit + integration + property)"
cargo test -q --offline --workspace

echo "==> cargo build --workspace --all-targets (benches + experiment bins)"
cargo build --offline --workspace --all-targets

if cargo clippy --offline --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint pass"
fi

echo "CI battery passed."
