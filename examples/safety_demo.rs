//! Safety as an extreme case of poor execution (§8).
//!
//! Shows the optimizer (a) silently reordering goals to rescue an
//! unsafely-written rule, (b) rejecting the paper's §8.3 example under
//! every permutation, and (c) flipping its verdict with the query form
//! — list length is safe exactly when the list is bound.
//!
//! Run: `cargo run --example safety_demo`

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::FixpointConfig;
use ldl::optimizer::opt::PredPlanKind;
use ldl::optimizer::{OptConfig, Optimizer};
use ldl::storage::Database;

fn main() {
    // (a) A rule written in an unsafe order: the comparison and the
    // arithmetic come first. The optimizer reorders instead of failing.
    let program = parse_program(
        r#"
        salary(alice, 120). salary(bob, 80). salary(carol, 95).
        rich_bonus(P, B) <- B = S / 10, S > 90, salary(P, S).
        "#,
    )
    .unwrap();
    let db = Database::from_program(&program);
    let optimizer = Optimizer::with_defaults(&program, &db);
    let query = parse_query("rich_bonus(P, B)?").unwrap();
    let o = optimizer.optimize(&query).unwrap();
    if let PredPlanKind::Union(rules) = &o.plan.kind {
        println!("rule written as:  B = S / 10, S > 90, salary(P, S)");
        println!(
            "optimizer chose order {:?} (salary first, then filter, then bonus)",
            rules[0].order
        );
    }
    let ans = o
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    println!("answers:");
    for t in ans.tuples.iter() {
        println!("  rich_bonus{t}");
    }

    // (b) The paper's own limitation example: finite answer, but no goal
    // permutation computes it (flattening would be required).
    println!("\npaper §8.3: p(X, Y, Z) <- X = 3, Z = X + Y, query p(A, B, C)?");
    let program2 = parse_program("p(X, Y, Z) <- X = 3, Z = X + Y.").unwrap();
    let db2 = Database::new();
    let opt2 = Optimizer::with_defaults(&program2, &db2);
    match opt2.optimize(&parse_query("p(A, B, C)?").unwrap()) {
        Err(e) => println!("  verdict: {e}"),
        Ok(_) => println!("  unexpectedly accepted!"),
    }
    match opt2.optimize(&parse_query("p(A, 6, C)?").unwrap()) {
        Ok(o) => println!("  but with Y bound: safe (cost {:.1})", o.cost),
        Err(e) => println!("  unexpected rejection: {e}"),
    }

    // (c) Safety is query-form specific: list length.
    println!("\nlist length: len([], 0).  len([H|T], N) <- len(T, M), N = M + 1.");
    let program3 = parse_program("len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.").unwrap();
    let db3 = Database::from_program(&program3);
    let opt3 = Optimizer::new(
        &program3,
        &db3,
        OptConfig {
            assume_acyclic: true,
            ..OptConfig::default()
        },
    );
    match opt3.optimize(&parse_query("len(L, N)?").unwrap()) {
        Err(e) => println!("  len(L, N)?          -> {e}"),
        Ok(_) => println!("  len(L, N)?          -> unexpectedly accepted"),
    }
    let bound = parse_query("len([10, 20, 30, 40], N)?").unwrap();
    match opt3.optimize(&bound) {
        Ok(o) => {
            let ans = o
                .execute(&program3, &db3, &FixpointConfig::default())
                .unwrap();
            println!(
                "  len([10,20,30,40], N)? -> safe via {:?}; answer rows: {:?}",
                o.method,
                ans.tuples.iter().map(|t| t.to_string()).collect::<Vec<_>>()
            );
        }
        Err(e) => println!("  bound form unexpectedly rejected: {e}"),
    }
}
