//! The paper's flagship recursive workload at scale: same-generation on
//! a genealogy tree, comparing what the optimizer picks for bound vs
//! free query forms and what each fixpoint method actually costs.
//!
//! Run: `cargo run --release --example same_generation`

use ldl::core::parser::parse_query;
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::optimizer::{OptConfig, Optimizer};
use ldl::storage::Database;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    // Build a binary genealogy tree of depth 8 (510 up/dn edges).
    let depth = 8usize;
    let mut text = String::new();
    let mut next = 1i64;
    let mut level = vec![0i64];
    for _ in 0..depth {
        let mut nl = Vec::new();
        for &p in &level {
            for _ in 0..2 {
                writeln!(text, "up({next}, {p}). dn({p}, {next}).").unwrap();
                nl.push(next);
                next += 1;
            }
        }
        level = nl;
    }
    text.push_str("flat(0, 0).\n");
    text.push_str("sg(X, Y) <- flat(X, Y).\nsg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).\n");
    let program = ldl::core::parser::parse_program(&text).unwrap();
    let db = Database::from_program(&program);
    let leaf = level[0];
    println!(
        "tree: depth {depth}, {} nodes, querying sg({leaf}, Y)?\n",
        next
    );

    // What does the optimizer decide for each query form?
    let optimizer = Optimizer::new(
        &program,
        &db,
        OptConfig {
            assume_acyclic: true,
            ..OptConfig::default()
        },
    );
    for q in [format!("sg({leaf}, Y)?"), "sg(X, Y)?".to_string()] {
        let query = parse_query(&q).unwrap();
        let o = optimizer.optimize(&query).unwrap();
        println!(
            "form {q:<16} -> method {:?}, est. cost {:.0}",
            o.method, o.cost
        );
    }
    println!();

    // Ground truth: run the bound query under every method.
    let query = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
    let cfg = FixpointConfig::with_max_iterations(200_000);
    println!(
        "{:<12} {:>8} {:>16} {:>10}",
        "method", "answers", "tuples-derived", "ms"
    );
    for m in Method::ALL {
        let start = Instant::now();
        let ans = evaluate_query(&program, &db, &query, m, &cfg).unwrap();
        println!(
            "{:<12} {:>8} {:>16} {:>10.2}",
            m.name(),
            ans.tuples.len(),
            ans.metrics.tuples_derived,
            start.elapsed().as_secs_f64() * 1000.0
        );
    }
    println!("\n(magic/counting touch only the queried generation — the");
    println!(" reason the paper adopts binding-propagating methods)");
}
