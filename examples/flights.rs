//! A data-intensive application: flight reachability with costs and
//! stratified negation. Shows recursion with arithmetic accumulation
//! guarded by a comparison (the safety analyzer accepts it because the
//! budget bound is part of the query form) and a negated derived
//! predicate in a higher stratum.
//!
//! Run: `cargo run --example flights`

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::storage::Database;

fn main() {
    let program = parse_program(
        r#"
        % flight(From, To, Cost)
        flight(sfo, ord, 150). flight(sfo, dfw, 120).
        flight(ord, jfk, 90).  flight(dfw, jfk, 110).
        flight(jfk, lhr, 450). flight(ord, bos, 80).
        flight(bos, lhr, 400). flight(dfw, mia, 95).
        city(sfo). city(ord). city(dfw). city(jfk).
        city(lhr). city(bos). city(mia). city(anc).

        % reachable within a budget: the comparison keeps the
        % accumulating cost finite, so the fixpoint terminates.
        trip(X, Y, C) <- flight(X, Y, C).
        trip(X, Y, C) <- trip(X, Z, C1), flight(Z, Y, C2), C = C1 + C2, C < 700.

        % destinations reachable from SFO on budget
        dest(Y) <- trip(sfo, Y, C).

        % cities NOT reachable from SFO on budget (stratified negation)
        unreachable(Y) <- city(Y), ~dest(Y).
        "#,
    )
    .unwrap();
    let db = Database::from_program(&program);
    let cfg = FixpointConfig::default();

    let q = parse_query("trip(sfo, Y, C)?").unwrap();
    let ans = evaluate_query(&program, &db, &q, Method::SemiNaive, &cfg).unwrap();
    println!("trips from SFO under budget 700 ({}):", ans.tuples.len());
    let mut rows: Vec<String> = ans.tuples.iter().map(|t| format!("  trip{t}")).collect();
    rows.sort();
    for r in rows {
        println!("{r}");
    }

    let q2 = parse_query("unreachable(Y)?").unwrap();
    let ans2 = evaluate_query(&program, &db, &q2, Method::SemiNaive, &cfg).unwrap();
    println!("\nunreachable cities:");
    for t in ans2.tuples.iter() {
        println!("  unreachable{t}");
    }

    // Membership query, methods must agree.
    let q3 = parse_query("trip(sfo, lhr, C)?").unwrap();
    let semi = evaluate_query(&program, &db, &q3, Method::SemiNaive, &cfg).unwrap();
    println!("\nways to reach LHR on budget: {}", semi.tuples.len());
}
