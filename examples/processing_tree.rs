//! Figure 4-1 reconstructed: a rule base in the style of the paper's
//! Figure 2-1, its uncontracted processing graph (recursion shown as
//! back-references), and the contracted version where each recursive
//! clique becomes a single CC node.
//!
//! Run: `cargo run --example processing_tree`

use ldl::core::depgraph::DependencyGraph;
use ldl::core::parser::parse_program;
use ldl::core::Pred;
use ldl::optimizer::ProcessingTree;

fn main() {
    // A Figure 2-1-style rule base: a nonrecursive predicate P1 defined
    // by two rules over derived and base predicates, with a recursive
    // clique (P3/P4, mutually recursive) underneath.
    let program = parse_program(
        r#"
        p1(X, Y) <- p2(X, Z), b1(Z, Y).
        p1(X, Y) <- b2(X, Y).
        p2(X, Y) <- p3(X, Y), b3(Y).
        p3(X, Y) <- b4(X, Y).
        p3(X, Y) <- b5(X, Z), p4(Z, Y).
        p4(X, Y) <- b6(X, Z), p3(Z, Y).
        "#,
    )
    .unwrap();

    let graph = DependencyGraph::build(&program);
    println!("recursive cliques:");
    for c in graph.cliques() {
        let names: Vec<String> = c.preds.iter().map(|p| p.to_string()).collect();
        println!(
            "  {{{}}}  (recursive rules {:?}, exit rules {:?}, linear: {})",
            names.join(", "),
            c.recursive_rules,
            c.exit_rules,
            c.is_linear(&program),
        );
    }

    let root = Pred::new("p1", 2);
    println!("\nuncontracted processing graph for p1 (Figure 4-1b):");
    println!("{}", ProcessingTree::build(&program, root));

    println!("contracted processing graph (Figure 4-1c — cliques become CC nodes):");
    let contracted = ProcessingTree::build_contracted(&program, root);
    println!("{contracted}");
    println!(
        "contraction: {} nodes -> {} nodes, depth {} -> {}",
        ProcessingTree::build(&program, root).size(),
        contracted.size(),
        ProcessingTree::build(&program, root).depth(),
        contracted.depth(),
    );
}
