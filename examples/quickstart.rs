//! Quickstart: parse an LDL program, optimize a query, inspect the plan,
//! execute it.
//!
//! Run: `cargo run --example quickstart`

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::FixpointConfig;
use ldl::optimizer::{Optimizer, ProcessingTree};
use ldl::storage::Database;

fn main() {
    // 1. A knowledge base: rules + facts in one source text. This is the
    //    paper's running example — the "same generation" program.
    let program = parse_program(
        r#"
        % database (fact base)
        up(adam, noah).    up(eve, noah).
        up(cain, adam).    up(abel, adam).    up(seth, eve).
        dn(noah, adam).    dn(noah, eve).
        dn(adam, cain).    dn(adam, abel).    dn(eve, seth).
        flat(noah, noah).

        % rule base
        sg(X, Y) <- flat(X, Y).
        sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
        "#,
    )
    .expect("program parses");

    // 2. Load the facts into the storage catalog.
    let db = Database::from_program(&program);

    // 3. A query form: `cain` is bound, Y is free — the optimizer is
    //    rerun per binding pattern (sg.bf here).
    let query = parse_query("sg(cain, Y)?").expect("query parses");

    // 4. Optimize: chooses body orders (SIPs), a fixpoint method for the
    //    recursive clique, and proves the execution safe.
    let optimizer = Optimizer::with_defaults(&program, &db);
    let optimized = optimizer.optimize(&query).expect("query is safe");
    println!("query:            {query}");
    println!("estimated cost:   {:.1}", optimized.cost);
    println!("method chosen:    {:?}", optimized.method);
    println!();
    println!("processing tree (contracted, annotated):");
    println!("{}", ProcessingTree::from_plan(&program, &optimized));

    // 5. Execute the chosen plan.
    let answer = optimized
        .execute(&program, &db, &FixpointConfig::default())
        .expect("execution succeeds");
    println!("answers ({} tuples):", answer.tuples.len());
    for t in answer.tuples.iter() {
        println!("  sg{t}");
    }
    println!("\nwork: {}", answer.metrics);
}
