//! LDL's set constructs (§1: "set operators and predicates [TZ 86]"):
//! grouping heads collect sets, `member/2` consumes them, and set terms
//! are first-class values that unify structurally.
//!
//! Run: `cargo run --example grouping_sets`

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::storage::Database;

fn main() {
    let program = parse_program(
        r#"
        % enrollment(Student, Course)
        enrollment(ann, databases).   enrollment(ann, logic).
        enrollment(bob, databases).   enrollment(bob, graphics).
        enrollment(cara, logic).      enrollment(cara, databases).

        % the set of courses per student (grouping head)
        takes(S, <C>) <- enrollment(S, C).

        % the set of students per course
        roster(C, <S>) <- enrollment(S, C).

        % pairs of students sharing at least one course
        classmates(A, B) <- takes(A, SA), takes(B, SB),
                            member(C, SA), member(C, SB), A != B.
        "#,
    )
    .unwrap();
    let db = Database::from_program(&program);
    let cfg = FixpointConfig::default();

    let q = parse_query("takes(S, Courses)?").unwrap();
    let ans = evaluate_query(&program, &db, &q, Method::SemiNaive, &cfg).unwrap();
    println!("course sets per student:");
    let mut rows: Vec<String> = ans.tuples.iter().map(|t| format!("  takes{t}")).collect();
    rows.sort();
    for r in rows {
        println!("{r}");
    }

    let q = parse_query("roster(databases, R)?").unwrap();
    let ans = evaluate_query(&program, &db, &q, Method::SemiNaive, &cfg).unwrap();
    println!("\ndatabases roster: {}", ans.tuples.rows()[0].get(1));

    // Set terms normalize: query with elements in any order.
    let q = parse_query("takes(S, {logic, databases})?").unwrap();
    let ans = evaluate_query(&program, &db, &q, Method::SemiNaive, &cfg).unwrap();
    println!("\nstudents taking exactly {{databases, logic}}:");
    for t in ans.tuples.iter() {
        println!("  {}", t.get(0));
    }

    let q = parse_query("classmates(ann, B)?").unwrap();
    let ans = evaluate_query(&program, &db, &q, Method::SemiNaive, &cfg).unwrap();
    println!("\nann's classmates:");
    let mut rows: Vec<String> = ans
        .tuples
        .iter()
        .map(|t| format!("  {}", t.get(1)))
        .collect();
    rows.sort();
    rows.dedup();
    for r in rows {
        println!("{r}");
    }
}
