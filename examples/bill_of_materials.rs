//! A knowledge-intensive application: bill-of-materials explosion with
//! complex terms. Parts carry structured descriptions (`spec(...)`
//! compound terms), the recursion walks the containment hierarchy, and
//! evaluable predicates filter on quantity — exercising complex-term
//! unification, arithmetic, and binding-propagating recursion together.
//!
//! Run: `cargo run --example bill_of_materials`

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::FixpointConfig;
use ldl::optimizer::{OptConfig, Optimizer};
use ldl::storage::Database;

fn main() {
    let program = parse_program(
        r#"
        % contains(Assembly, Part, Quantity)
        contains(bike, frame, 1).
        contains(bike, wheel, 2).
        contains(wheel, rim, 1).
        contains(wheel, spoke, 32).
        contains(wheel, hub, 1).
        contains(hub, axle, 1).
        contains(hub, bearing, 2).
        contains(frame, tube, 4).

        % part descriptions as complex terms
        desc(frame, spec(steel, kg(3))).
        desc(wheel, spec(alloy, kg(1))).
        desc(rim,   spec(alloy, kg(1))).
        desc(spoke, spec(steel, kg(0))).
        desc(hub,   spec(steel, kg(1))).
        desc(axle,  spec(steel, kg(0))).
        desc(bearing, spec(steel, kg(0))).
        desc(tube,  spec(steel, kg(1))).

        % transitive containment with multiplied quantities
        uses(A, P, Q) <- contains(A, P, Q).
        uses(A, P, Q) <- contains(A, M, Q1), uses(M, P, Q2), Q = Q1 * Q2.

        % all steel parts a given assembly needs more than one of
        bulk_steel(A, P, Q) <- uses(A, P, Q), Q > 1, desc(P, spec(steel, W)).
        "#,
    )
    .unwrap();
    let db = Database::from_program(&program);

    // How many of each part does a bike need, transitively? The
    // quantity accumulator (Q = Q1 * Q2) makes the clique non-Datalog:
    // the safety analyzer needs the acyclic-hierarchy assumption (a
    // containment cycle would genuinely diverge).
    let query = parse_query("uses(bike, P, Q)?").unwrap();
    let optimizer = Optimizer::new(
        &program,
        &db,
        OptConfig {
            assume_acyclic: true,
            ..OptConfig::default()
        },
    );
    let optimized = optimizer.optimize(&query).unwrap();
    println!("plan for {query}: method {:?}\n", optimized.method);
    let ans = optimized
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    println!("bike explosion ({} part kinds):", ans.tuples.len());
    for t in ans.tuples.iter() {
        println!("  uses{t}");
    }

    // Steel parts used in bulk — note the complex-term pattern
    // spec(steel, W) selecting on the FIRST field of the description.
    let query2 = parse_query("bulk_steel(bike, P, Q)?").unwrap();
    let optimized2 = optimizer.optimize(&query2).unwrap();
    let ans2 = optimized2
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    println!("\nbulk steel parts of bike:");
    for t in ans2.tuples.iter() {
        println!("  bulk_steel{t}");
    }
}
