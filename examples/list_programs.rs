//! List programs through the optimizer: length, append, membership, and
//! reverse — the "hierarchies, lists and heterogeneous structures" the
//! paper's introduction puts beyond relational query languages. Each is
//! safe only for the query forms whose bound argument descends a
//! well-founded structural order, and the optimizer proves exactly that.
//!
//! Run: `cargo run --example list_programs`

use ldl::Session;

fn main() {
    let mut s = Session::with_config(ldl::optimizer::OptConfig {
        assume_acyclic: true,
        ..Default::default()
    });
    s.load(
        r#"
        len([], 0).
        len([H | T], N) <- len(T, M), N = M + 1.

        app([], L, L).
        app([H | T], L, [H | R]) <- app(T, L, R).

        elem(X, [X | T]).
        elem(X, [H | T]) <- elem(X, T).

        rev([], []).
        rev([H | T], R) <- rev(T, RT), app(RT, [H], R).
        "#,
    )
    .unwrap();

    println!("len([10,20,30,40], N)?");
    for t in s.answers("len([10, 20, 30, 40], N)?").unwrap().iter() {
        println!("  N = {}", t.get(1));
    }

    println!("\napp([1,2], [3,4], Z)?");
    for t in s.answers("app([1, 2], [3, 4], Z)?").unwrap().iter() {
        println!("  Z = {}", t.get(2));
    }

    println!("\nelem(X, [a, b, c])?");
    let mut rows: Vec<String> = s
        .answers("elem(X, [a, b, c])?")
        .unwrap()
        .iter()
        .map(|t| format!("  X = {}", t.get(0)))
        .collect();
    rows.sort();
    for r in rows {
        println!("{r}");
    }

    println!("\nrev([1, 2, 3, 4], R)?");
    for t in s.answers("rev([1, 2, 3, 4], R)?").unwrap().iter() {
        println!("  R = {}", t.get(1));
    }

    // The free forms are unsafe — infinitely many lists.
    println!("\nlen(L, N)? (free form)");
    match s.query("len(L, N)?") {
        Err(e) => println!("  {e}"),
        Ok(_) => println!("  unexpectedly accepted"),
    }
    println!(
        "\n(each form above was compiled separately; {} compilations)",
        s.compilations()
    );
}
