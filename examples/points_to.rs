//! A knowledge-intensive program-analysis workload: Andersen-style
//! points-to analysis as an LDL program. This is the class of
//! application the paper's title targets — mutual recursion over
//! program-structure relations, queried with bindings ("what does `v3`
//! point to?") where binding propagation pays off.
//!
//! Relations: `new(V, H)` — V = new Obj_H; `assign(To, From)` — To =
//! From; `load(To, Base, F)` — To = Base.F; `store(Base, F, From)` —
//! Base.F = From.
//!
//! Run: `cargo run --release --example points_to`

use ldl::core::parser::{parse_program, parse_query};
use ldl::eval::{evaluate_query, FixpointConfig, Method};
use ldl::optimizer::Optimizer;
use ldl::storage::Database;
use std::fmt::Write as _;

fn main() {
    // A synthetic but structured codebase: 25 independent modules, each
    // with its own allocation sites, assignment chains, and field flow.
    // A whole-program analysis must process all of them; a demand query
    // about one variable should not.
    let mut text = String::new();
    let modules = 25;
    let vars_per_module = 30;
    for m in 0..modules {
        for i in 0..6 {
            writeln!(text, "new(m{m}v{}, m{m}h{i}).", i * 5).unwrap();
        }
        for i in 0..vars_per_module - 1 {
            if i % 5 != 4 {
                writeln!(text, "assign(m{m}v{}, m{m}v{}).", i + 1, i).unwrap();
            }
        }
        // Field flow inside the module.
        writeln!(text, "store(m{m}v9, f, m{m}v4).").unwrap();
        writeln!(text, "load(m{m}v14, m{m}v9, f).").unwrap();
        writeln!(text, "store(m{m}v19, g, m{m}v14).").unwrap();
        writeln!(text, "load(m{m}v24, m{m}v19, g).").unwrap();
    }

    text.push_str(
        r#"
        % Andersen's inclusion-based points-to, in four rules:
        pts(V, H) <- new(V, H).
        pts(To, H) <- assign(To, From), pts(From, H).
        pts(To, H) <- load(To, Base, F), pts(Base, B), heappts(B, F, H).
        heappts(B, F, H) <- store(Base, F, From), pts(Base, B), pts(From, H).
        "#,
    );
    let program = parse_program(&text).unwrap();
    let db = Database::from_program(&program);
    let cfg = FixpointConfig::default();

    // Full analysis (all-free): the whole pts relation.
    let all = parse_query("pts(V, H)?").unwrap();
    let full = evaluate_query(&program, &db, &all, Method::SemiNaive, &cfg).unwrap();
    println!(
        "full analysis: {} points-to facts ({} tuples derived)",
        full.tuples.len(),
        full.metrics.tuples_derived
    );

    // Demand query: what does v24 point to? The optimizer picks a
    // binding-propagating method; compare the work.
    let demand = parse_query("pts(m0v24, H)?").unwrap();
    let opt = Optimizer::with_defaults(&program, &db);
    let plan = opt.optimize(&demand).unwrap();
    let ans = plan.execute(&program, &db, &cfg).unwrap();
    println!("\ndemand query pts(m0v24, H)? via {:?}:", plan.method);
    for t in ans.tuples.iter() {
        println!("  pts{t}");
    }
    println!(
        "work: {} tuples derived (vs {} for the full analysis)",
        ans.metrics.tuples_derived, full.metrics.tuples_derived
    );

    // Cross-check against plain semi-naive.
    let reference = evaluate_query(&program, &db, &demand, Method::SemiNaive, &cfg).unwrap();
    assert_eq!(ans.tuples, reference.tuples, "optimized plan must agree");
    println!("\n(answers verified against full semi-naive evaluation)");
}
