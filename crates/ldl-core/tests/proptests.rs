//! Property-based tests for the language layer: parser round-trips,
//! adornment algebra, unification laws over arbitrary term shapes, and
//! the greedy SIP's safety guarantee.

use ldl_core::adorn::{GreedySip, SipStrategy};
use ldl_core::binding::Adornment;
use ldl_core::parser::{parse_program, parse_term};
use ldl_core::unify::{lgg, mgu};
use ldl_core::Term;
use proptest::prelude::*;

fn arb_ground_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Term::int),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Term::sym(&s)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            ("[a-z][a-z0-9_]{0,4}", proptest::collection::vec(inner.clone(), 1..4))
                .prop_map(|(f, args)| Term::compound(&f, args)),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Term::list),
            proptest::collection::vec(inner, 0..4).prop_map(Term::set),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any ground term displays to text that parses back to itself.
    /// (Lists and sets have sugar; compounds use functional notation.)
    #[test]
    fn ground_term_display_round_trips(t in arb_ground_term()) {
        let text = t.to_string();
        let parsed = parse_term(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(parsed, t);
    }

    /// Facts round-trip through a whole program.
    #[test]
    fn fact_round_trips_through_program(args in proptest::collection::vec(arb_ground_term(), 1..4)) {
        let fact = ldl_core::Atom::new("t", args);
        let text = format!("{fact}.");
        let p = parse_program(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(&p.facts[0], &fact);
    }

    /// Set terms are idempotent under re-normalization and insensitive
    /// to input order/duplicates.
    #[test]
    fn set_normalization(items in proptest::collection::vec(arb_ground_term(), 0..6), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let a = Term::set(items.clone());
        let mut shuffled = items.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        shuffled.extend(items.clone()); // duplicates
        let b = Term::set(shuffled);
        prop_assert_eq!(a, b);
    }

    /// lgg generalizes: both inputs unify with the lgg.
    #[test]
    fn lgg_subsumes_both(a in arb_ground_term(), b in arb_ground_term()) {
        let g = lgg(&a, &b);
        prop_assert!(mgu(&g, &a).is_some(), "lgg {g} vs a {a}");
        prop_assert!(mgu(&g, &b).is_some(), "lgg {g} vs b {b}");
    }

    /// Adornment bitmask algebra: bind() is monotone and idempotent,
    /// subsumption is a partial order w.r.t. bound sets.
    #[test]
    fn adornment_algebra(arity in 1usize..12, i in 0usize..12, j in 0usize..12) {
        let i = i % arity;
        let j = j % arity;
        let base = Adornment::all_free(arity);
        let once = base.bind(i);
        prop_assert!(once.is_bound(i));
        prop_assert_eq!(once.bind(i), once);
        let twice = once.bind(j);
        prop_assert!(twice.subsumes(&once));
        prop_assert!(twice.subsumes(&base));
        prop_assert_eq!(twice.bound_count(), if i == j { 1 } else { 2 });
        // Display/parse round trip.
        prop_assert_eq!(Adornment::parse(&twice.to_string()).unwrap(), twice);
    }

    /// GreedySip always returns a permutation, for every head adornment.
    #[test]
    fn greedy_sip_total(nlits in 1usize..6, arity in 1usize..4, mask in 0u64..16) {
        // Build a rule p(X0..X{arity-1}) <- q(X0), q(X1 mod arity), ...
        let head_args: Vec<Term> = (0..arity).map(|i| Term::var(&format!("X{i}"))).collect();
        let head = ldl_core::Atom::new("p", head_args);
        let body: Vec<ldl_core::Literal> = (0..nlits)
            .map(|i| {
                ldl_core::Literal::Atom(ldl_core::Atom::new(
                    "q",
                    vec![Term::var(&format!("X{}", i % arity))],
                ))
            })
            .collect();
        let rule = ldl_core::Rule::new(head, body);
        let flags: Vec<bool> = (0..arity).map(|i| mask & (1 << i) != 0).collect();
        let ad = Adornment::from_flags(&flags);
        let mut perm = GreedySip.permutation(0, &rule, ad);
        perm.sort_unstable();
        prop_assert_eq!(perm, (0..nlits).collect::<Vec<_>>());
    }
}
