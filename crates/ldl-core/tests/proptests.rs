//! Property-based tests for the language layer: parser round-trips,
//! adornment algebra, unification laws over arbitrary term shapes, and
//! the greedy SIP's safety guarantee.
//!
//! Runs on `ldl_support::prop`; replay any failure with the
//! `LDL_PROP_SEED` value printed in the panic message.

use ldl_core::adorn::{GreedySip, SipStrategy};
use ldl_core::binding::Adornment;
use ldl_core::parser::{parse_program, parse_term};
use ldl_core::unify::{lgg, mgu};
use ldl_core::Term;
use ldl_support::prop::{check, pairs, triples, u64s, usizes, vecs, Config, Gen};
use ldl_support::{SliceRandom, SplitMix64};

fn cfg() -> Config {
    Config::with_cases(96)
}

fn ident(rng: &mut SplitMix64, extra: usize) -> String {
    let mut s = String::new();
    s.push((b'a' + rng.gen_range(0u32..26) as u8) as char);
    for _ in 0..rng.gen_range(0..=extra) {
        let c = match rng.gen_range(0u32..37) {
            d @ 0..=25 => (b'a' + d as u8) as char,
            d @ 26..=35 => (b'0' + (d - 26) as u8) as char,
            _ => '_',
        };
        s.push(c);
    }
    s
}

fn ground_term(rng: &mut SplitMix64, depth: u32) -> Term {
    let variants = if depth == 0 { 2 } else { 5 };
    match rng.gen_range(0u32..variants) {
        0 => Term::int(rng.gen_range(-1000i64..1000)),
        1 => Term::sym(&ident(rng, 6)),
        2 => {
            let f = ident(rng, 4);
            let n = rng.gen_range(1usize..4);
            Term::compound(&f, (0..n).map(|_| ground_term(rng, depth - 1)).collect())
        }
        3 => {
            let n = rng.gen_range(0usize..4);
            Term::list((0..n).map(|_| ground_term(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..4);
            Term::set((0..n).map(|_| ground_term(rng, depth - 1)).collect())
        }
    }
}

fn ground_terms() -> Gen<Term> {
    Gen::new(|rng| ground_term(rng, 3))
}

/// Any ground term displays to text that parses back to itself.
/// (Lists and sets have sugar; compounds use functional notation.)
#[test]
fn ground_term_display_round_trips() {
    check(
        "ground_term_display_round_trips",
        &cfg(),
        &ground_terms(),
        |t| {
            let text = t.to_string();
            let parsed = parse_term(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(&parsed, t);
        },
    );
}

/// Facts round-trip through a whole program.
#[test]
fn fact_round_trips_through_program() {
    check(
        "fact_round_trips_through_program",
        &cfg(),
        &vecs(ground_terms(), 1..4),
        |args| {
            let fact = ldl_core::Atom::new("t", args.clone());
            let text = format!("{fact}.");
            let p = parse_program(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(&p.facts[0], &fact);
        },
    );
}

/// Set terms are idempotent under re-normalization and insensitive to
/// input order/duplicates.
#[test]
fn set_normalization() {
    let gen = pairs(vecs(ground_terms(), 0..6), u64s(0..100));
    check("set_normalization", &cfg(), &gen, |(items, seed)| {
        let a = Term::set(items.clone());
        let mut shuffled = items.clone();
        shuffled.shuffle(&mut SplitMix64::seed_from_u64(*seed));
        shuffled.extend(items.clone()); // duplicates
        let b = Term::set(shuffled);
        assert_eq!(a, b);
    });
}

/// lgg generalizes: both inputs unify with the lgg.
#[test]
fn lgg_subsumes_both() {
    let gen = pairs(ground_terms(), ground_terms());
    check("lgg_subsumes_both", &cfg(), &gen, |(a, b)| {
        let g = lgg(a, b);
        assert!(mgu(&g, a).is_some(), "lgg {g} vs a {a}");
        assert!(mgu(&g, b).is_some(), "lgg {g} vs b {b}");
    });
}

/// Adornment bitmask algebra: bind() is monotone and idempotent,
/// subsumption is a partial order w.r.t. bound sets.
#[test]
fn adornment_algebra() {
    let gen = triples(usizes(1..12), usizes(0..12), usizes(0..12));
    check("adornment_algebra", &cfg(), &gen, |&(arity, i, j)| {
        let i = i % arity;
        let j = j % arity;
        let base = Adornment::all_free(arity);
        let once = base.bind(i);
        assert!(once.is_bound(i));
        assert_eq!(once.bind(i), once);
        let twice = once.bind(j);
        assert!(twice.subsumes(&once));
        assert!(twice.subsumes(&base));
        assert_eq!(twice.bound_count(), if i == j { 1 } else { 2 });
        // Display/parse round trip.
        assert_eq!(Adornment::parse(&twice.to_string()).unwrap(), twice);
    });
}

/// GreedySip always returns a permutation, for every head adornment.
#[test]
fn greedy_sip_total() {
    let gen = triples(usizes(1..6), usizes(1..4), u64s(0..16));
    check("greedy_sip_total", &cfg(), &gen, |&(nlits, arity, mask)| {
        // Build a rule p(X0..X{arity-1}) <- q(X0), q(X1 mod arity), ...
        let head_args: Vec<Term> = (0..arity).map(|i| Term::var(&format!("X{i}"))).collect();
        let head = ldl_core::Atom::new("p", head_args);
        let body: Vec<ldl_core::Literal> = (0..nlits)
            .map(|i| {
                ldl_core::Literal::Atom(ldl_core::Atom::new(
                    "q",
                    vec![Term::var(&format!("X{}", i % arity))],
                ))
            })
            .collect();
        let rule = ldl_core::Rule::new(head, body);
        let flags: Vec<bool> = (0..arity).map(|i| mask & (1 << i) != 0).collect();
        let ad = Adornment::from_flags(&flags);
        let mut perm = GreedySip.permutation(0, &rule, ad);
        perm.sort_unstable();
        assert_eq!(perm, (0..nlits).collect::<Vec<_>>());
    });
}
