//! Rules.

use crate::literal::{Atom, Literal};
use crate::span::Span;
use crate::symbol::Symbol;
use std::fmt;

/// A Horn clause `head <- body`.
///
/// A rule with an empty body and a ground head is a *fact*. Rules are
/// identified positionally within their [`crate::program::Program`].
#[derive(Clone, Debug)]
pub struct Rule {
    /// The head atom (always positive).
    pub head: Atom,
    /// The conjunctive body, in source order.
    pub body: Vec<Literal>,
    /// Source span of the whole clause (head through final `.`);
    /// [`Span::NONE`] for programmatic rules. Excluded from equality.
    pub span: Span,
}

/// Equality ignores [`Rule::span`] (and the spans inside head/body, see
/// [`Atom`]): rewritten programs compare equal to span-free ones.
impl PartialEq for Rule {
    fn eq(&self, other: &Rule) -> bool {
        self.head == other.head && self.body == other.body
    }
}

impl Eq for Rule {}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Rule {
        Rule {
            head,
            body,
            span: Span::NONE,
        }
    }

    /// Builds a fact (empty body).
    pub fn fact(head: Atom) -> Rule {
        Rule {
            head,
            body: Vec::new(),
            span: Span::NONE,
        }
    }

    /// The same rule relocated to `span`.
    pub fn at(mut self, span: Span) -> Rule {
        self.span = span;
        self
    }

    /// True if the rule is a ground fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.is_ground()
    }

    /// All variables of the rule (head first), first-occurrence order.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for a in &self.head.args {
            a.collect_vars(&mut out);
        }
        for l in &self.body {
            for v in l.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Variables appearing in the head but in no body literal. A non-fact
    /// rule with such variables can never be safe (they range over an
    /// infinite domain), so validation rejects them.
    pub fn unrestricted_head_vars(&self) -> Vec<Symbol> {
        let body_vars: Vec<Symbol> = self.body.iter().flat_map(|l| l.vars()).collect();
        self.head
            .vars()
            .into_iter()
            .filter(|v| !body_vars.contains(v))
            .collect()
    }

    /// Rebuilds the rule mapping every variable through `f`.
    pub fn map_vars(&self, f: &mut impl FnMut(Symbol) -> crate::term::Term) -> Rule {
        Rule {
            head: self.head.map_vars(f),
            body: self.body.iter().map(|l| l.map_vars(f)).collect(),
            span: self.span,
        }
    }

    /// Renames every variable with the suffix `_{n}` — standardization
    /// apart, so two rule instances never share variables.
    pub fn standardized(&self, n: usize) -> Rule {
        self.map_vars(&mut |v| crate::term::Term::Var(Symbol::intern(&format!("{v}#{n}"))))
    }

    /// The positive derived/base atoms of the body, in order.
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| l.as_atom())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.body.is_empty() {
            return write!(f, "{}.", self.head);
        }
        write!(f, "{} <- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn fact_detection() {
        let f = Rule::fact(Atom::new("up", vec![Term::int(1), Term::int(2)]));
        assert!(f.is_fact());
        let r = Rule::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![Literal::Atom(Atom::new("q", vec![Term::var("X")]))],
        );
        assert!(!r.is_fact());
        // Non-ground head with empty body is not a fact.
        let g = Rule::fact(Atom::new("p", vec![Term::var("X")]));
        assert!(!g.is_fact());
    }

    #[test]
    fn display_rule() {
        let r = Rule::new(
            Atom::new("sg", vec![Term::var("X"), Term::var("Y")]),
            vec![
                Literal::Atom(Atom::new("up", vec![Term::var("X"), Term::var("X1")])),
                Literal::Atom(Atom::new("sg", vec![Term::var("Y1"), Term::var("X1")])),
                Literal::Atom(Atom::new("dn", vec![Term::var("Y1"), Term::var("Y")])),
            ],
        );
        assert_eq!(
            r.to_string(),
            "sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y)."
        );
    }

    #[test]
    fn unrestricted_head_vars_found() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var("X"), Term::var("Z")]),
            vec![Literal::Atom(Atom::new("q", vec![Term::var("X")]))],
        );
        let bad = r.unrestricted_head_vars();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].as_str(), "Z");
    }

    #[test]
    fn standardization_apart() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![Literal::Atom(Atom::new("q", vec![Term::var("X")]))],
        );
        let r1 = r.standardized(1);
        let r2 = r.standardized(2);
        let v1 = r1.vars();
        let v2 = r2.vars();
        assert!(v1.iter().all(|v| !v2.contains(v)));
    }

    #[test]
    fn rule_vars_head_first() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var("A")]),
            vec![Literal::Atom(Atom::new(
                "q",
                vec![Term::var("B"), Term::var("A")],
            ))],
        );
        let names: Vec<&str> = r.vars().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
