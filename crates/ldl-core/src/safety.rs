//! Safety analysis (§8).
//!
//! Two hazards make a Horn-clause execution unsafe:
//!
//! 1. **Lack of effective computability (EC)**: an evaluable predicate is
//!    reached before enough of its variables are bound (`x > y` needs
//!    both; `x = expr` needs one side), or a rule produces unbound head
//!    variables (an infinite answer). EC is checked per rule, per body
//!    order — reordering goals is exactly what the optimizer searches
//!    over, so safety integrates with optimization for free.
//! 2. **Unbounded fixpoints**: a recursive clique whose rules create new
//!    term structure (function symbols, arithmetic) may iterate forever.
//!    A *well-founded order* must be exhibited; we implement the
//!    standard sufficient conditions — a clique is provably terminating
//!    when it is *Datalog-finite* (creates no new structure), or when a
//!    bound argument *strictly decreases* structurally on every
//!    recursive call (list/term descent) and the chosen method actually
//!    propagates bindings (magic sets, counting).
//!
//! These are sufficient conditions only; the paper is explicit that
//! deciding EC is undecidable in general [Za 86] and that safe-but-
//! unprovable programs exist (its §8.3 example is reproduced in this
//! module's tests).

use crate::binding::Adornment;
use crate::depgraph::Clique;
use crate::{Literal, Pred, Program, Rule, Symbol, Term};
use std::collections::HashSet;
use std::fmt;

/// Why an ordering or clique was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnsafeReason {
    /// An evaluable predicate was reached with insufficient bindings.
    NonEcBuiltin(String),
    /// A negated literal was reached with unbound variables.
    UnboundNegation(String),
    /// A head variable remains unbound after the whole body: the rule
    /// denotes an infinite relation under this binding.
    UnboundHeadVar(String),
    /// No well-founded order could be exhibited for a recursive clique.
    NoWellFoundedOrder(String),
}

impl fmt::Display for UnsafeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsafeReason::NonEcBuiltin(m) => write!(f, "non-EC evaluable predicate: {m}"),
            UnsafeReason::UnboundNegation(m) => write!(f, "unbound negated literal: {m}"),
            UnsafeReason::UnboundHeadVar(m) => write!(f, "unbound head variable(s): {m}"),
            UnsafeReason::NoWellFoundedOrder(m) => write!(f, "no well-founded order: {m}"),
        }
    }
}

/// Checks effective computability of `rule`'s body in the order `order`
/// under `head_adornment`, including the finite-answer condition (every
/// head variable bound by the end).
pub fn check_rule_order(
    rule: &Rule,
    head_adornment: Adornment,
    order: &[usize],
) -> Result<(), UnsafeReason> {
    debug_assert_eq!(order.len(), rule.body.len());
    let mut bound: HashSet<Symbol> = HashSet::new();
    for (i, arg) in rule.head.args.iter().enumerate() {
        if head_adornment.is_bound(i) {
            for v in arg.vars() {
                bound.insert(v);
            }
        }
    }
    for &li in order {
        match &rule.body[li] {
            Literal::Builtin(b) => {
                if !b.is_ec(&bound) {
                    return Err(UnsafeReason::NonEcBuiltin(format!(
                        "{b} in rule {rule} (order {order:?})"
                    )));
                }
                for v in b.binds(&bound) {
                    bound.insert(v);
                }
            }
            Literal::Atom(a) if a.negated => {
                if !a.vars().iter().all(|v| bound.contains(v)) {
                    return Err(UnsafeReason::UnboundNegation(format!(
                        "~{a} in rule {rule}"
                    )));
                }
            }
            Literal::Atom(a) => {
                // member/2 is an evaluable set predicate: its set
                // argument must already be bound.
                if a.pred == Pred::new("member", 2)
                    && !a.args[1].vars().iter().all(|v| bound.contains(v))
                {
                    return Err(UnsafeReason::NonEcBuiltin(format!(
                        "member/2 with unbound set argument in rule {rule}"
                    )));
                }
                for v in a.vars() {
                    bound.insert(v);
                }
            }
        }
    }
    let unbound: Vec<&str> = rule
        .head
        .vars()
        .into_iter()
        .filter(|v| !bound.contains(v))
        .map(|v| v.as_str())
        .collect();
    if !unbound.is_empty() {
        return Err(UnsafeReason::UnboundHeadVar(format!(
            "{} in rule {rule}",
            unbound.join(", ")
        )));
    }
    Ok(())
}

/// Finds *some* EC order for the rule under the adornment, if one exists.
///
/// Greedy completeness: executing an executable literal only grows the
/// bound set, so it can never disable another literal — hence "pick any
/// executable literal" finds a safe order whenever one exists.
pub fn find_safe_order(rule: &Rule, head_adornment: Adornment) -> Option<Vec<usize>> {
    let mut bound: HashSet<Symbol> = HashSet::new();
    for (i, arg) in rule.head.args.iter().enumerate() {
        if head_adornment.is_bound(i) {
            for v in arg.vars() {
                bound.insert(v);
            }
        }
    }
    let n = rule.body.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let pos = remaining.iter().position(|&i| match &rule.body[i] {
            Literal::Builtin(b) => b.is_ec(&bound),
            Literal::Atom(a) if a.negated => a.vars().iter().all(|v| bound.contains(v)),
            Literal::Atom(a) if a.pred == Pred::new("member", 2) => {
                a.args[1].vars().iter().all(|v| bound.contains(v))
            }
            Literal::Atom(_) => true,
        })?;
        let i = remaining.remove(pos);
        match &rule.body[i] {
            Literal::Builtin(b) => {
                for v in b.binds(&bound) {
                    bound.insert(v);
                }
            }
            Literal::Atom(a) if !a.negated => {
                for v in a.vars() {
                    bound.insert(v);
                }
            }
            _ => {}
        }
        order.push(i);
    }
    // Finite-answer condition.
    if rule.head.vars().iter().all(|v| bound.contains(v)) {
        Some(order)
    } else {
        None
    }
}

/// Does the clique create new term structure? A clique is
/// **Datalog-finite** when no recursive rule builds a compound term with
/// variables in its head and no arithmetic equality binds a variable
/// that reaches the head. Such cliques draw all values from the (finite)
/// database, so every fixpoint method terminates on them.
pub fn is_datalog_finite(program: &Program, clique: &Clique) -> bool {
    for &ri in &clique.recursive_rules {
        let rule = &program.rules[ri];
        // New structure in the head?
        for arg in &rule.head.args {
            if creates_structure(arg) {
                return false;
            }
        }
        // Generative arithmetic feeding anything (conservative: any
        // arithmetic equality in a recursive rule counts — a filter
        // comparison does not).
        for lit in &rule.body {
            if let Literal::Builtin(b) = lit {
                if b.op == crate::CmpOp::Eq && (contains_arith(&b.lhs) || contains_arith(&b.rhs)) {
                    return false;
                }
            }
        }
    }
    true
}

fn creates_structure(t: &Term) -> bool {
    match t {
        Term::Var(_) | Term::Const(_) => false,
        Term::Compound(_, args) => args.iter().any(|a| !a.is_ground()),
    }
}

fn contains_arith(t: &Term) -> bool {
    match t {
        Term::Compound(f, args) => {
            matches!(f.as_str(), "+" | "-" | "*" | "/" | "mod") || args.iter().any(contains_arith)
        }
        _ => false,
    }
}

/// Is `sub` a strict (proper) subterm of `sup`?
pub fn is_strict_subterm(sub: &Term, sup: &Term) -> bool {
    match sup {
        Term::Compound(_, args) => args.iter().any(|a| a == sub || is_strict_subterm(sub, a)),
        _ => false,
    }
}

/// Searches for a *decreasing argument*: a position `k` of the clique's
/// (single) predicate such that in every recursive rule, every recursive
/// body occurrence has a strict subterm of the head's `k`-th argument at
/// position `k`. With `k` bound by the query, binding propagation
/// descends a well-founded structural order — the paper's list-traversal
/// example.
pub fn decreasing_argument(program: &Program, clique: &Clique) -> Option<usize> {
    if clique.preds.len() != 1 {
        return None; // sufficient condition restricted to single-pred cliques
    }
    let pred: Pred = *clique.preds.iter().next().expect("nonempty clique");
    'pos: for k in 0..pred.arity {
        for &ri in &clique.recursive_rules {
            let rule = &program.rules[ri];
            if rule.head.pred != pred {
                continue 'pos;
            }
            let head_arg = &rule.head.args[k];
            for atom in rule.body_atoms().filter(|a| a.pred == pred && !a.negated) {
                if !is_strict_subterm(&atom.args[k], head_arg) {
                    continue 'pos;
                }
            }
        }
        return Some(k);
    }
    None
}

/// Is every recursive rule of the clique *base-driven*: does it contain
/// a positive non-clique atom sharing a variable with every clique
/// literal of its body? Under the acyclic-data assumption such a clique
/// terminates even when it accumulates new values (quantities, costs):
/// each recursive step consumes one tuple of the driving relation along
/// an acyclic chain, so derivation depth is bounded by the data — the
/// kind of inferred monotonicity property [KRS 87] describes.
pub fn is_base_driven(program: &Program, clique: &Clique) -> bool {
    // The driver must be a *base* (EDB) relation: a derived driver may
    // itself be infinite under bottom-up evaluation, so it bounds nothing.
    let derived = program.derived_preds();
    clique.recursive_rules.iter().all(|&ri| {
        let rule = &program.rules[ri];
        let clique_lits: Vec<_> = rule
            .body_atoms()
            .filter(|a| !a.negated && clique.preds.contains(&a.pred))
            .collect();
        rule.body_atoms()
            .filter(|a| !a.negated && !clique.preds.contains(&a.pred) && !derived.contains(&a.pred))
            .any(|driver| {
                let dvars = driver.vars();
                clique_lits
                    .iter()
                    .all(|cl| cl.vars().iter().any(|v| dvars.contains(v)))
            })
    })
}

/// Termination verdict for a clique under a query adornment and a
/// binding-propagating method (`propagates` = magic/counting).
/// `assume_acyclic` admits base-driven accumulator recursions (see
/// [`is_base_driven`]); it is the same assumption that licenses the
/// counting method.
pub fn clique_terminates(
    program: &Program,
    clique: &Clique,
    entry_adornment: Adornment,
    propagates: bool,
    assume_acyclic: bool,
) -> Result<(), UnsafeReason> {
    if is_datalog_finite(program, clique) {
        return Ok(());
    }
    if assume_acyclic && is_base_driven(program, clique) {
        return Ok(());
    }
    if propagates {
        if let Some(k) = decreasing_argument(program, clique) {
            if entry_adornment.is_bound(k) {
                return Ok(());
            }
            return Err(UnsafeReason::NoWellFoundedOrder(format!(
                "argument {k} decreases but is not bound by the query form"
            )));
        }
    }
    Err(UnsafeReason::NoWellFoundedOrder(format!(
        "clique {{{}}} creates new structure and no decreasing bound argument was found",
        clique
            .preds
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::DependencyGraph;
    use crate::parser::parse_program;

    fn ad(s: &str) -> Adornment {
        Adornment::parse(s).unwrap()
    }

    #[test]
    fn comparison_needs_preceding_binding() {
        let p = parse_program("big(X) <- n(X), X > 10.").unwrap();
        let r = &p.rules[0];
        assert!(check_rule_order(r, ad("f"), &[0, 1]).is_ok());
        assert!(matches!(
            check_rule_order(r, ad("f"), &[1, 0]),
            Err(UnsafeReason::NonEcBuiltin(_))
        ));
    }

    #[test]
    fn equality_orders_both_ways() {
        // Y = X + 1 is EC once X is bound; X is bound by n(X).
        let p = parse_program("nx(X, Y) <- n(X), Y = X + 1.").unwrap();
        let r = &p.rules[0];
        assert!(check_rule_order(r, ad("ff"), &[0, 1]).is_ok());
        assert!(check_rule_order(r, ad("ff"), &[1, 0]).is_err());
        // With Y bound from the head, the equality STILL can't run first
        // (X = Y - 1 inversion is not attempted), but n(X) first works.
        assert!(check_rule_order(r, ad("fb"), &[0, 1]).is_ok());
    }

    #[test]
    fn unbound_head_var_detected() {
        let p = parse_program("p(X, Z) <- q(X).").unwrap();
        let r = &p.rules[0];
        assert!(matches!(
            check_rule_order(r, ad("ff"), &[0]),
            Err(UnsafeReason::UnboundHeadVar(_))
        ));
        // With Z bound by the query form it is safe.
        assert!(check_rule_order(r, ad("fb"), &[0]).is_ok());
    }

    #[test]
    fn find_safe_order_reorders_builtins() {
        let p = parse_program("p(X, Y) <- Y = X * 2, q(X).").unwrap();
        let r = &p.rules[0];
        let order = find_safe_order(r, ad("ff")).unwrap();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn paper_section_8_3_example_has_no_safe_order() {
        // p(x,y,z) <- x = 3, z = x + y  with query p(X, Y, Z):
        // y occurs only in `z = x + y`, never bound => no permutation is
        // safe (the paper's own example of the reordering approach's
        // limitation; flattening, which would fix it, is out of scope).
        let p = parse_program("p(X, Y, Z) <- X = 3, Z = X + Y.").unwrap();
        let r = &p.rules[0];
        assert!(find_safe_order(r, ad("fff")).is_none());
        // Even with y=2x supplied as a bound query on Y it works:
        assert!(find_safe_order(r, ad("fbf")).is_some());
    }

    #[test]
    fn greedy_is_complete_on_chained_equalities() {
        let p = parse_program("p(A, D) <- B = A + 1, C = B + 1, D = C + 1, q(A).").unwrap();
        let r = &p.rules[0];
        let order = find_safe_order(r, ad("ff")).unwrap();
        assert_eq!(order, vec![3, 0, 1, 2]);
        assert!(check_rule_order(r, ad("ff"), &order).is_ok());
    }

    fn clique_of(text: &str) -> (Program, Clique) {
        let p = parse_program(text).unwrap();
        let g = DependencyGraph::build(&p);
        let c = g.cliques()[0].clone();
        (p, c)
    }

    #[test]
    fn datalog_clique_is_finite() {
        let (p, c) = clique_of("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).");
        assert!(is_datalog_finite(&p, &c));
        assert!(clique_terminates(&p, &c, ad("ff"), false, false).is_ok());
    }

    #[test]
    fn arithmetic_recursion_is_not_datalog_finite() {
        let (p, c) = clique_of("cnt(X) <- zero(X).\ncnt(Y) <- cnt(X), Y = X + 1.");
        assert!(!is_datalog_finite(&p, &c));
        assert!(clique_terminates(&p, &c, ad("f"), true, true).is_err());
    }

    #[test]
    fn list_descent_gives_decreasing_argument() {
        let (p, c) = clique_of(
            "len(L, N) <- L = [], N = 0.\nlen(W, N) <- W = [H | T], len2(T, M), N = M + 1.\nlen2(A, B) <- len(A, B).",
        );
        // Mutual clique of len/len2 — multi-pred: sufficient condition
        // declines. Use the direct version instead:
        let _ = (p, c);
        let (p2, c2) = clique_of("len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.");
        assert_eq!(decreasing_argument(&p2, &c2), Some(0));
        assert!(clique_terminates(&p2, &c2, ad("bf"), true, false).is_ok());
        // Without the bound list argument the clique is unsafe.
        assert!(clique_terminates(&p2, &c2, ad("ff"), true, false).is_err());
        // And without binding propagation (naive bottom-up) it is unsafe
        // even for the bound form.
        assert!(clique_terminates(&p2, &c2, ad("bf"), false, false).is_err());
    }

    #[test]
    fn strict_subterm_checks() {
        let list = crate::parser::parse_term("[H | T]").unwrap();
        let t = Term::var("T");
        assert!(is_strict_subterm(&t, &list));
        assert!(!is_strict_subterm(&list, &list));
        assert!(!is_strict_subterm(&Term::var("X"), &Term::var("X")));
    }

    #[test]
    fn structure_creating_head_detected() {
        let (p, c) = clique_of("w(f(X)) <- w(X).\nw(X) <- seed(X).");
        assert!(!is_datalog_finite(&p, &c));
        assert!(clique_terminates(&p, &c, ad("f"), true, true).is_err());
    }

    #[test]
    fn negation_needs_ground_args() {
        let p = parse_program("ok(X) <- ~bad(X), node(X).\nbad(Y) <- b(Y).").unwrap();
        let r = &p.rules[0];
        assert!(matches!(
            check_rule_order(r, ad("f"), &[0, 1]),
            Err(UnsafeReason::UnboundNegation(_))
        ));
        assert!(check_rule_order(r, ad("f"), &[1, 0]).is_ok());
    }
}
