//! Predicate dependency graph, recursive cliques, stratification.
//!
//! §2 of the paper: `P ⇒ Q` when `P` appears in the body of a rule whose
//! head is `Q` (closed transitively). Predicates with `P ⇒ P` are
//! *recursive*; mutual recursion partitions recursive predicates into
//! *recursive cliques* (the strongly connected components with a cycle),
//! and a clique `C1` *follows* `C2` when a predicate of `C2` helps define
//! `C1`. The optimizer contracts each clique to a single CC node (§4).
//!
//! Negated body literals are tracked so that programs using LDL's
//! stratified negation [BN 87] can be checked: a negative edge inside a
//! clique makes the program non-stratified and is rejected.

use crate::error::{LdlError, Result};
use crate::literal::Pred;
use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A recursive clique: a maximal set of mutually recursive predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clique {
    /// The mutually recursive predicates.
    pub preds: BTreeSet<Pred>,
    /// Indexes (into `Program::rules`) of the *recursive rules* — rules
    /// whose head is in the clique and whose body mentions the clique.
    pub recursive_rules: Vec<usize>,
    /// Indexes of *exit rules* — head in the clique, body entirely
    /// outside it (the base case of the fixpoint).
    pub exit_rules: Vec<usize>,
}

impl Clique {
    /// Every rule defining the clique, recursive first then exit.
    pub fn all_rules(&self) -> Vec<usize> {
        let mut v = self.recursive_rules.clone();
        v.extend(&self.exit_rules);
        v
    }

    /// True when every recursive rule contains exactly one occurrence of a
    /// clique predicate in its body — *linear* recursion, the shape the
    /// generalized counting method [SZ 86] requires.
    pub fn is_linear(&self, program: &Program) -> bool {
        self.recursive_rules.iter().all(|&i| {
            let n = program.rules[i]
                .body_atoms()
                .filter(|a| self.preds.contains(&a.pred))
                .count();
            n == 1
        })
    }
}

/// The dependency graph of a program.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    /// Derived predicates in a fixed order.
    preds: Vec<Pred>,
    index: HashMap<Pred, usize>,
    /// `edges[i]` = derived predicates appearing in bodies of rules with
    /// head `preds[i]`, each with a flag: `true` if some occurrence is
    /// negated.
    edges: Vec<BTreeMap<usize, bool>>,
    cliques: Vec<Clique>,
    /// `clique_of[i]` = index into `cliques` if `preds[i]` is recursive.
    clique_of: Vec<Option<usize>>,
    /// Derived predicates in a bottom-up evaluation order (dependencies
    /// first); members of one clique are adjacent.
    topo: Vec<Pred>,
}

impl DependencyGraph {
    /// Builds the graph, finds SCCs (Tarjan), classifies cliques, and
    /// computes a bottom-up order.
    pub fn build(program: &Program) -> DependencyGraph {
        let derived: Vec<Pred> = program.derived_preds().into_iter().collect();
        let index: HashMap<Pred, usize> =
            derived.iter().enumerate().map(|(i, p)| (*p, i)).collect();

        let mut edges: Vec<BTreeMap<usize, bool>> = vec![BTreeMap::new(); derived.len()];
        for rule in &program.rules {
            let h = index[&rule.head.pred];
            // Grouping heads behave like negation for stratification: the
            // set is complete only once its sources are (a predicate may
            // not collect a set of itself).
            let grouping = rule.head.args.iter().any(|a| a.as_group().is_some());
            for atom in rule.body_atoms() {
                if let Some(&b) = index.get(&atom.pred) {
                    let e = edges[h].entry(b).or_insert(false);
                    *e = *e || atom.negated || grouping;
                }
            }
        }

        let sccs = tarjan(derived.len(), &edges);

        let mut clique_of = vec![None; derived.len()];
        let mut cliques = Vec::new();
        for comp in &sccs {
            let recursive = comp.len() > 1 || edges[comp[0]].contains_key(&comp[0]); // self loop
            if !recursive {
                continue;
            }
            let preds: BTreeSet<Pred> = comp.iter().map(|&i| derived[i]).collect();
            let mut recursive_rules = Vec::new();
            let mut exit_rules = Vec::new();
            for (ri, rule) in program.rules.iter().enumerate() {
                if !preds.contains(&rule.head.pred) {
                    continue;
                }
                if rule.body_atoms().any(|a| preds.contains(&a.pred)) {
                    recursive_rules.push(ri);
                } else {
                    exit_rules.push(ri);
                }
            }
            let cid = cliques.len();
            for &i in comp {
                clique_of[i] = Some(cid);
            }
            cliques.push(Clique {
                preds,
                recursive_rules,
                exit_rules,
            });
        }

        // Tarjan emits SCCs in reverse topological order of the
        // condensation: a component is finished only after everything it
        // reaches. Since our edges point head -> body (user -> used), a
        // finished component has all its dependencies finished first, so
        // the emission order IS the bottom-up order.
        let topo: Vec<Pred> = sccs
            .iter()
            .flat_map(|c| c.iter().map(|&i| derived[i]))
            .collect();

        DependencyGraph {
            preds: derived,
            index,
            edges,
            cliques,
            clique_of,
            topo,
        }
    }

    /// The recursive cliques, in bottom-up order.
    pub fn cliques(&self) -> &[Clique] {
        &self.cliques
    }

    /// The clique containing `p`, if `p` is recursive.
    pub fn clique_of(&self, p: Pred) -> Option<&Clique> {
        let i = *self.index.get(&p)?;
        self.clique_of[i].map(|c| &self.cliques[c])
    }

    /// Index of the clique containing `p`.
    pub fn clique_id_of(&self, p: Pred) -> Option<usize> {
        let i = *self.index.get(&p)?;
        self.clique_of[i]
    }

    /// Is `p` recursive (`p ⇒ p`)?
    pub fn is_recursive(&self, p: Pred) -> bool {
        self.clique_of(p).is_some()
    }

    /// The paper's implication: does `p` (transitively) help define `q`?
    pub fn implies(&self, p: Pred, q: Pred) -> bool {
        let (Some(&pi), Some(&qi)) = (self.index.get(&p), self.index.get(&q)) else {
            return false;
        };
        // DFS from q along body edges looking for p.
        let mut seen = vec![false; self.preds.len()];
        let mut stack = vec![qi];
        while let Some(n) = stack.pop() {
            for &m in self.edges[n].keys() {
                if m == pi {
                    return true;
                }
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        false
    }

    /// Derived predicates in bottom-up (dependencies-first) order.
    pub fn bottom_up_order(&self) -> &[Pred] {
        &self.topo
    }

    /// Derived predicates `p` directly uses (its rule bodies' derived
    /// predicates).
    pub fn uses(&self, p: Pred) -> Vec<Pred> {
        match self.index.get(&p) {
            Some(&i) => self.edges[i].keys().map(|&j| self.preds[j]).collect(),
            None => Vec::new(),
        }
    }

    /// Checks stratified negation: no negated edge may connect two
    /// predicates of the same clique (a predicate may not be defined,
    /// even transitively, in terms of its own negation).
    pub fn check_stratified(&self) -> Result<()> {
        for (i, es) in self.edges.iter().enumerate() {
            for (&j, &negated) in es {
                if !negated {
                    continue;
                }
                if let (Some(ci), Some(cj)) = (self.clique_of[i], self.clique_of[j]) {
                    if ci == cj {
                        return Err(LdlError::Validation(format!(
                            "program is not stratified: {} depends negatively on {} inside a recursive clique",
                            self.preds[i], self.preds[j]
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// A witness for non-stratification, if any: a dependency cycle
    /// `p0 ⇒ p1 ⇒ … ⇒ pk = p0` whose **first** edge (`p0` uses `p1`) is
    /// through a negation. Returns `None` exactly when
    /// [`DependencyGraph::check_stratified`] succeeds.
    pub fn negative_cycle_witness(&self) -> Option<Vec<Pred>> {
        for (i, es) in self.edges.iter().enumerate() {
            for (&j, &negated) in es {
                if !negated {
                    continue;
                }
                let (Some(ci), Some(cj)) = (self.clique_of[i], self.clique_of[j]) else {
                    continue;
                };
                if ci != cj {
                    continue;
                }
                if i == j {
                    return Some(vec![self.preds[i], self.preds[i]]);
                }
                // BFS from j back to i inside the clique; the SCC
                // guarantees such a path exists.
                let mut prev: Vec<Option<usize>> = vec![None; self.preds.len()];
                let mut seen = vec![false; self.preds.len()];
                seen[j] = true;
                let mut queue = std::collections::VecDeque::from([j]);
                'bfs: while let Some(n) = queue.pop_front() {
                    for &m in self.edges[n].keys() {
                        if self.clique_of[m] != Some(ci) || seen[m] {
                            continue;
                        }
                        seen[m] = true;
                        prev[m] = Some(n);
                        if m == i {
                            break 'bfs;
                        }
                        queue.push_back(m);
                    }
                }
                debug_assert!(seen[i], "negated edge inside an SCC must close a cycle");
                let mut back = vec![i];
                while let Some(p) = prev[*back.last().expect("nonempty")] {
                    back.push(p);
                    if p == j {
                        break;
                    }
                }
                // back = [i, …, j]; the witness starts at i, takes the
                // negative edge to j, then follows back-reversed to i.
                let mut cycle = vec![self.preds[i]];
                cycle.extend(back.iter().rev().map(|&n| self.preds[n]));
                return Some(cycle);
            }
        }
        None
    }
}

/// Iterative Tarjan SCC. Returns components in reverse topological order
/// of the condensation (callees before callers for head->body edges).
fn tarjan(n: usize, edges: &[BTreeMap<usize, bool>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: -1,
            lowlink: -1,
            on_stack: false
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0i64;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, iterator position over its successors).
    for root in 0..n {
        if state[root].index != -1 {
            continue;
        }
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succs: Vec<usize> = edges[root].keys().copied().collect();
        state[root] = NodeState {
            index: next_index,
            lowlink: next_index,
            on_stack: true,
        };
        next_index += 1;
        stack.push(root);
        call_stack.push((root, succs, 0));

        while let Some((v, succs, mut k)) = call_stack.pop() {
            let mut descended = false;
            while k < succs.len() {
                let w = succs[k];
                k += 1;
                if state[w].index == -1 {
                    // Descend into w.
                    state[w] = NodeState {
                        index: next_index,
                        lowlink: next_index,
                        on_stack: true,
                    };
                    next_index += 1;
                    stack.push(w);
                    let wsuccs: Vec<usize> = edges[w].keys().copied().collect();
                    call_stack.push((v, succs, k));
                    call_stack.push((w, wsuccs, 0));
                    descended = true;
                    break;
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            }
            if descended {
                continue;
            }
            // v finished.
            if state[v].lowlink == state[v].index {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    state[w].on_stack = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                comp.sort_unstable();
                comps.push(comp);
            }
            if let Some(&mut (parent, _, _)) = call_stack.last_mut() {
                state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn sg_clique_detected() {
        let p = parse_program(
            r#"
            sg(X, Y) <- flat(X, Y).
            sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert_eq!(g.cliques().len(), 1);
        let c = &g.cliques()[0];
        assert!(c.preds.contains(&Pred::new("sg", 2)));
        assert_eq!(c.recursive_rules, vec![1]);
        assert_eq!(c.exit_rules, vec![0]);
        assert!(c.is_linear(&p));
        assert!(g.is_recursive(Pred::new("sg", 2)));
    }

    #[test]
    fn mutual_recursion_one_clique() {
        let p = parse_program(
            r#"
            even(X) <- zero(X).
            even(X) <- succ(Y, X), odd(Y).
            odd(X) <- succ(Y, X), even(Y).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert_eq!(g.cliques().len(), 1);
        let c = &g.cliques()[0];
        assert_eq!(c.preds.len(), 2);
        assert!(g.implies(Pred::new("even", 1), Pred::new("odd", 1)));
        assert!(g.implies(Pred::new("odd", 1), Pred::new("even", 1)));
    }

    #[test]
    fn nonrecursive_program_has_no_cliques() {
        let p = parse_program(
            r#"
            grandparent(X, Z) <- parent(X, Y), parent(Y, Z).
            ancestor2(X, Z) <- grandparent(X, Z).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert!(g.cliques().is_empty());
        assert!(!g.is_recursive(Pred::new("grandparent", 2)));
    }

    #[test]
    fn bottom_up_order_respects_dependencies() {
        let p = parse_program(
            r#"
            a(X) <- b(X), c(X).
            b(X) <- base1(X).
            c(X) <- b(X), base2(X).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        let order = g.bottom_up_order();
        let pos = |name: &str| {
            order
                .iter()
                .position(|p| p.name.as_str() == name)
                .unwrap_or_else(|| panic!("{name} missing from topo order"))
        };
        assert!(pos("b") < pos("a"));
        assert!(pos("b") < pos("c"));
        assert!(pos("c") < pos("a"));
    }

    #[test]
    fn implies_is_transitive() {
        let p = parse_program(
            r#"
            a(X) <- b(X).
            b(X) <- c(X).
            c(X) <- base(X).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert!(g.implies(Pred::new("c", 1), Pred::new("a", 1)));
        assert!(!g.implies(Pred::new("a", 1), Pred::new("c", 1)));
    }

    #[test]
    fn two_separate_cliques_follow_order() {
        let p = parse_program(
            r#"
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), e(Z, Y).
            reach2(X, Y) <- tc(X, Y).
            reach2(X, Y) <- reach2(X, Z), f(Z, Y).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert_eq!(g.cliques().len(), 2);
        // tc's clique must come before reach2's in bottom-up order.
        let order = g.bottom_up_order();
        let pos = |n: &str| order.iter().position(|p| p.name.as_str() == n).unwrap();
        assert!(pos("tc") < pos("reach2"));
    }

    #[test]
    fn stratified_negation_accepted() {
        let p = parse_program(
            r#"
            reach(X) <- source(X).
            reach(X) <- reach(Y), edge(Y, X).
            unreachable(X) <- node(X), ~reach(X).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert!(g.check_stratified().is_ok());
    }

    #[test]
    fn unstratified_negation_rejected() {
        let p = parse_program(
            r#"
            win(X) <- move(X, Y), ~win(Y).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert!(g.check_stratified().is_err());
    }

    #[test]
    fn negative_cycle_witness_reported() {
        // Direct self-negation: the witness is the one-step cycle.
        let p = parse_program("win(X) <- move(X, Y), ~win(Y).").unwrap();
        let g = DependencyGraph::build(&p);
        let w = g.negative_cycle_witness().unwrap();
        assert_eq!(w, vec![Pred::new("win", 1), Pred::new("win", 1)]);

        // Negation through a mutual cycle: p uses ~q only via q's
        // definition in terms of p.
        let p2 = parse_program("p(X) <- q(X).\nq(X) <- a(X), ~p(X).").unwrap();
        let g2 = DependencyGraph::build(&p2);
        let w2 = g2.negative_cycle_witness().unwrap();
        assert_eq!(w2.first(), w2.last());
        assert!(w2.contains(&Pred::new("p", 1)) && w2.contains(&Pred::new("q", 1)));

        // Stratified programs have no witness.
        let ok = parse_program(
            "reach(X) <- source(X).\nreach(X) <- reach(Y), edge(Y, X).\nunreachable(X) <- node(X), ~reach(X).",
        )
        .unwrap();
        assert!(DependencyGraph::build(&ok)
            .negative_cycle_witness()
            .is_none());
    }

    #[test]
    fn nonlinear_clique_detected() {
        let p = parse_program(
            r#"
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), tc(Z, Y).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert!(!g.cliques()[0].is_linear(&p));
    }

    #[test]
    fn uses_lists_direct_dependencies() {
        let p = parse_program(
            r#"
            a(X) <- b(X), base(X).
            b(X) <- base(X).
            "#,
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        let u = g.uses(Pred::new("a", 1));
        assert_eq!(u, vec![Pred::new("b", 1)]); // base preds are not derived
    }
}
