//! # ldl-core — the LDL language front end
//!
//! This crate implements the language layer of the LDL system described in
//! *"Optimization in a Logic Based Language for Knowledge and Data Intensive
//! Applications"* (Krishnamurthy & Zaniolo, EDBT 1988): Horn-clause rules
//! over complex terms (function symbols, lists), a concrete-syntax parser,
//! unification, binding patterns / adornments, sideways information passing
//! (SIP), the predicate dependency graph with recursive-clique detection,
//! and the program-adornment algorithm of §7.3 of the paper.
//!
//! Everything downstream — storage, evaluation, and the optimizer — is
//! expressed in terms of the types defined here.
//!
//! ## Quick tour
//!
//! ```
//! use ldl_core::parser::parse_program;
//!
//! let program = parse_program(
//!     r#"
//!     % the paper's same-generation rule base
//!     sg(X, Y) <- flat(X, Y).
//!     sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(program.rules.len(), 2);
//! let graph = ldl_core::depgraph::DependencyGraph::build(&program);
//! assert_eq!(graph.cliques().len(), 1); // sg is recursive
//! ```

pub mod adorn;
pub mod binding;
pub mod depgraph;
pub mod error;
pub mod literal;
pub mod parser;
pub mod program;
pub mod rule;
pub mod safety;
pub mod span;
pub mod symbol;
pub mod term;
pub mod unfold;
pub mod unify;

pub use binding::Adornment;
pub use error::{LdlError, Result};
pub use literal::{Atom, BuiltinPred, CmpOp, Literal, Pred};
pub use program::{Program, Query};
pub use rule::Rule;
pub use span::Span;
pub use symbol::Symbol;
pub use term::{Term, Value};
