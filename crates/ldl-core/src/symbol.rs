//! Interned symbols.
//!
//! Predicate names, function symbols, constants and variable names are all
//! interned into a process-global table so that the rest of the system can
//! compare and hash them as plain `u32`s. Interning is append-only; symbols
//! are never freed.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare, and hash.
///
/// Two `Symbol`s are equal iff they intern the same string. The underlying
/// text is recovered with [`Symbol::as_str`] (which leaks nothing: the
/// interner owns all strings for the life of the process). Ordering is
/// *lexicographic* on the text, not on interner ids, so every ordered
/// structure (set terms, sorted outputs) is deterministic regardless of
/// interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        // Strings live for the process lifetime; leaking them lets us hand
        // out `&'static str` without reference counting.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        id
    }
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner::new()))
}

impl Symbol {
    /// Interns `s` and returns its symbol.
    pub fn intern(s: &str) -> Symbol {
        Symbol(interner().lock().expect("interner poisoned").intern(s))
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("interner poisoned").strings[self.0 as usize]
    }

    /// Raw interner id (stable within a process run only).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "foo");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("alpha_x");
        let b = Symbol::intern("alpha_y");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha_x");
        assert_eq!(b.as_str(), "alpha_y");
    }

    #[test]
    fn display_round_trips() {
        let a = Symbol::intern("hello_world");
        assert_eq!(a.to_string(), "hello_world");
    }

    #[test]
    fn from_str_matches_intern() {
        let a: Symbol = "zork".into();
        assert_eq!(a, Symbol::intern("zork"));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("shared_symbol")))
            .collect();
        let ids: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
