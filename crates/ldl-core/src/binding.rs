//! Binding patterns (adornments).
//!
//! A *query form* (§2 of the paper) is a predicate with each argument marked
//! bound (`b`) or free (`f`); the optimizer is rerun for every distinct
//! form, because the best (or the only safe) execution depends on it. The
//! same bit pattern, attached to a literal during sideways information
//! passing, is called an *adornment* (§7.3).

use std::fmt;

/// A bound/free pattern over the arguments of a predicate.
///
/// Stored as a bitmask (`bit i` set = argument `i` bound); supports
/// predicates of up to 64 arguments, far beyond the paper's working
/// assumption of `k < 5`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Adornment {
    mask: u64,
    arity: usize,
}

impl Adornment {
    /// Maximum supported arity.
    pub const MAX_ARITY: usize = 64;

    /// All-free adornment for a predicate of the given arity.
    pub fn all_free(arity: usize) -> Adornment {
        assert!(
            arity <= Self::MAX_ARITY,
            "arity {arity} exceeds supported maximum"
        );
        Adornment { mask: 0, arity }
    }

    /// All-bound adornment.
    pub fn all_bound(arity: usize) -> Adornment {
        assert!(arity <= Self::MAX_ARITY);
        let mask = if arity == 64 {
            u64::MAX
        } else {
            (1u64 << arity) - 1
        };
        Adornment { mask, arity }
    }

    /// Adornment from explicit per-argument flags.
    pub fn from_flags(flags: &[bool]) -> Adornment {
        assert!(flags.len() <= Self::MAX_ARITY);
        let mut mask = 0u64;
        for (i, &b) in flags.iter().enumerate() {
            if b {
                mask |= 1 << i;
            }
        }
        Adornment {
            mask,
            arity: flags.len(),
        }
    }

    /// Parses a `"bf"`-style string (`b` = bound, `f` = free).
    pub fn parse(s: &str) -> Option<Adornment> {
        if s.len() > Self::MAX_ARITY {
            return None;
        }
        let mut mask = 0u64;
        for (i, c) in s.chars().enumerate() {
            match c {
                'b' => mask |= 1 << i,
                'f' => {}
                _ => return None,
            }
        }
        Some(Adornment {
            mask,
            arity: s.len(),
        })
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Is argument `i` bound?
    pub fn is_bound(&self, i: usize) -> bool {
        assert!(i < self.arity);
        self.mask & (1 << i) != 0
    }

    /// Returns a copy with argument `i` marked bound.
    pub fn bind(&self, i: usize) -> Adornment {
        assert!(i < self.arity);
        Adornment {
            mask: self.mask | (1 << i),
            arity: self.arity,
        }
    }

    /// Number of bound arguments.
    pub fn bound_count(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// True if no argument is bound.
    pub fn is_all_free(&self) -> bool {
        self.mask == 0
    }

    /// True if every argument is bound.
    pub fn is_all_bound(&self) -> bool {
        self.bound_count() == self.arity
    }

    /// Indices of bound arguments, ascending.
    pub fn bound_positions(&self) -> Vec<usize> {
        (0..self.arity).filter(|&i| self.is_bound(i)).collect()
    }

    /// Indices of free arguments, ascending.
    pub fn free_positions(&self) -> Vec<usize> {
        (0..self.arity).filter(|&i| !self.is_bound(i)).collect()
    }

    /// Iterator over all `2^arity` adornments of a given arity (used by
    /// NR-OPT's per-binding memo table bounds and by tests).
    pub fn enumerate(arity: usize) -> impl Iterator<Item = Adornment> {
        assert!(
            arity < 32,
            "enumerating adornments is only sensible for small arities"
        );
        (0..(1u64 << arity)).map(move |mask| Adornment { mask, arity })
    }

    /// True if `self` binds a superset of `other`'s bound arguments.
    pub fn subsumes(&self, other: &Adornment) -> bool {
        self.arity == other.arity && (self.mask & other.mask) == other.mask
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.arity {
            f.write_str(if self.is_bound(i) { "b" } else { "f" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let a = Adornment::parse("bfb").unwrap();
        assert_eq!(a.to_string(), "bfb");
        assert!(a.is_bound(0));
        assert!(!a.is_bound(1));
        assert!(a.is_bound(2));
        assert_eq!(a.bound_count(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Adornment::parse("bxf").is_none());
    }

    #[test]
    fn all_free_all_bound() {
        let f = Adornment::all_free(3);
        assert!(f.is_all_free());
        assert!(!f.is_all_bound());
        let b = Adornment::all_bound(3);
        assert!(b.is_all_bound());
        assert_eq!(b.to_string(), "bbb");
    }

    #[test]
    fn bind_is_monotone() {
        let a = Adornment::all_free(2).bind(1);
        assert_eq!(a.to_string(), "fb");
        assert!(a.bind(1) == a);
    }

    #[test]
    fn enumerate_counts() {
        assert_eq!(Adornment::enumerate(3).count(), 8);
        assert_eq!(Adornment::enumerate(0).count(), 1);
    }

    #[test]
    fn positions() {
        let a = Adornment::parse("bfbf").unwrap();
        assert_eq!(a.bound_positions(), vec![0, 2]);
        assert_eq!(a.free_positions(), vec![1, 3]);
    }

    #[test]
    fn subsumption() {
        let bb = Adornment::parse("bb").unwrap();
        let bf = Adornment::parse("bf").unwrap();
        let ff = Adornment::parse("ff").unwrap();
        assert!(bb.subsumes(&bf));
        assert!(bf.subsumes(&ff));
        assert!(!bf.subsumes(&bb));
        assert!(bb.subsumes(&bb));
    }

    #[test]
    fn from_flags_matches_parse() {
        assert_eq!(
            Adornment::from_flags(&[true, false]),
            Adornment::parse("bf").unwrap()
        );
    }
}
