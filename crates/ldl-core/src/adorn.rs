//! Program adornment and sideways information passing (SIP).
//!
//! §7.3 of the paper: given a *subquery* (a predicate with a binding
//! pattern) and one permutation of the body literals per rule — the
//! permutation determines a unique SIP — the program has a unique adorned
//! version. The adorned program is what the recursive methods (magic sets,
//! counting) transform, and for each adorned program the execution cost is
//! uniquely determined; the optimizer therefore enumerates permutations
//! (*c-permutations* for a clique) and adorns under each.
//!
//! The algorithm follows the paper's description: start from the query's
//! adornment; for each adorned predicate `P.a` and each rule with head `P`,
//! order the body by the chosen permutation, mark an argument of a body
//! literal bound when all its variables appear in a bound head argument or
//! in a *preceding* goal, rename derived body predicates to their adorned
//! versions, and iterate until no unmarked adorned predicate remains.

use crate::binding::Adornment;
use crate::literal::{Atom, Literal, Pred};
use crate::program::Program;
use crate::rule::Rule;
use crate::symbol::Symbol;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

/// A predicate paired with a binding pattern, e.g. `sg.bf`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AdornedPred {
    /// The underlying predicate.
    pub pred: Pred,
    /// Its binding pattern.
    pub adornment: Adornment,
}

impl AdornedPred {
    /// Builds `pred.adornment`.
    pub fn new(pred: Pred, adornment: Adornment) -> AdornedPred {
        assert_eq!(
            pred.arity,
            adornment.arity(),
            "adornment arity mismatch for {pred}"
        );
        AdornedPred { pred, adornment }
    }

    /// The renamed predicate used in the flattened adorned program
    /// (`sg.bf` becomes `sg_bf/2`).
    pub fn renamed(&self) -> Pred {
        if self.adornment.arity() == 0 {
            return self.pred;
        }
        Pred {
            name: Symbol::intern(&format!("{}_{}", self.pred.name, self.adornment)),
            arity: self.pred.arity,
        }
    }
}

impl fmt::Display for AdornedPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.adornment.arity() == 0 {
            write!(f, "{}", self.pred.name)
        } else {
            write!(f, "{}.{}", self.pred.name, self.adornment)
        }
    }
}

/// One adorned rule: the original rule with its body reordered by the
/// chosen permutation and every derived atom annotated with an adornment.
#[derive(Clone, Debug)]
pub struct AdornedRule {
    /// Adorned head.
    pub head: AdornedPred,
    /// Index of the original rule in the source [`Program`].
    pub rule_index: usize,
    /// The permutation applied to the body (`permutation[k]` = original
    /// position of the k-th literal in the adorned body).
    pub permutation: Vec<usize>,
    /// Body literals in permuted order; derived atoms carry their
    /// adornment, base atoms and builtins carry `None`.
    pub body: Vec<(Literal, Option<Adornment>)>,
    /// The head atom (argument terms), unchanged.
    pub head_atom: Atom,
}

impl fmt::Display for AdornedRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head)?;
        for (i, a) in self.head_atom.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ") <- ")?;
        for (i, (lit, ad)) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match (lit, ad) {
                (Literal::Atom(a), Some(ad)) => {
                    if a.negated {
                        write!(f, "~")?;
                    }
                    write!(f, "{}.{}(", a.pred.name, ad)?;
                    for (j, t) in a.args.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ")")?;
                }
                (lit, _) => write!(f, "{lit}")?,
            }
        }
        write!(f, ".")
    }
}

/// The adorned version of a program for one query form.
#[derive(Clone, Debug)]
pub struct AdornedProgram {
    /// The adorned query predicate the process started from.
    pub query: AdornedPred,
    /// All generated adorned rules, in generation order.
    pub rules: Vec<AdornedRule>,
    /// Every adorned predicate that was produced.
    pub adorned_preds: BTreeSet<AdornedPred>,
}

/// Chooses the body permutation for a rule (which fixes its SIP). The
/// optimizer supplies c-permutations through this; the default is the
/// source (left-to-right, Prolog-like) order.
pub trait SipStrategy {
    /// Returns the body order for `rule` (given by index into the
    /// program) when its head is adorned with `head_adornment`. The
    /// returned vector must be a permutation of `0..rule.body.len()`.
    fn permutation(&self, rule_index: usize, rule: &Rule, head_adornment: Adornment) -> Vec<usize>;
}

/// Left-to-right SIP: keep the source order.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeftToRight;

impl SipStrategy for LeftToRight {
    fn permutation(&self, _rule_index: usize, rule: &Rule, _ha: Adornment) -> Vec<usize> {
        (0..rule.body.len()).collect()
    }
}

/// Greedy binding-aware SIP: repeatedly pick the literal that can use the
/// most already-bound arguments (EC builtins and fully-bound negated
/// atoms first, then atoms by number of bound arguments, ties in source
/// order). For the paper's sg rule this reproduces exactly the adorned
/// cliques of §7.3: `up, sg, dn` under `bf` and `dn, sg, up` under `fb`.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedySip;

impl SipStrategy for GreedySip {
    fn permutation(
        &self,
        _rule_index: usize,
        rule: &Rule,
        head_adornment: Adornment,
    ) -> Vec<usize> {
        let mut bound: HashSet<Symbol> = HashSet::new();
        for (i, arg) in rule.head.args.iter().enumerate() {
            if head_adornment.is_bound(i) {
                for v in arg.vars() {
                    bound.insert(v);
                }
            }
        }
        let n = rule.body.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut perm = Vec::with_capacity(n);
        while !remaining.is_empty() {
            // Score each candidate: higher = schedule sooner.
            let mut best: Option<(i64, usize, usize)> = None; // (score, pos-in-remaining, lit idx)
            for (pos, &i) in remaining.iter().enumerate() {
                let score: i64 = match &rule.body[i] {
                    Literal::Builtin(b) => {
                        if b.is_ec(&bound) {
                            1_000_000 // run EC builtins as soon as possible
                        } else {
                            -1 // defer non-EC builtins
                        }
                    }
                    Literal::Atom(a) if a.negated => {
                        if a.vars().iter().all(|v| bound.contains(v)) {
                            900_000 // cheap ground filter
                        } else {
                            -2 // cannot run yet
                        }
                    }
                    Literal::Atom(a) => {
                        // member/2 can only run once its set is bound.
                        if a.pred.name.as_str() == "member" && a.pred.arity == 2 {
                            if a.args[1].vars().iter().all(|v| bound.contains(v)) {
                                800_000
                            } else {
                                -3
                            }
                        } else {
                            let b = a
                                .args
                                .iter()
                                .filter(|t| t.vars().iter().all(|v| bound.contains(v)))
                                .count();
                            b as i64
                        }
                    }
                };
                let better = match best {
                    None => true,
                    Some((s, _, _)) => score > s,
                };
                if better {
                    best = Some((score, pos, i));
                }
            }
            let (_, pos, i) = best.expect("nonempty remaining");
            remaining.remove(pos);
            perm.push(i);
            match &rule.body[i] {
                Literal::Atom(a) if !a.negated => {
                    for v in a.vars() {
                        bound.insert(v);
                    }
                }
                Literal::Builtin(b) => {
                    for v in b.binds(&bound) {
                        bound.insert(v);
                    }
                }
                _ => {}
            }
        }
        perm
    }
}

/// Fixed per-rule permutations (the optimizer's c-permutation carrier).
/// Rules not present fall back to left-to-right.
#[derive(Clone, Debug, Default)]
pub struct FixedSip {
    perms: std::collections::HashMap<usize, Vec<usize>>,
}

impl FixedSip {
    /// Empty mapping (everything left-to-right).
    pub fn new() -> FixedSip {
        FixedSip::default()
    }

    /// Sets the permutation for one rule.
    pub fn set(&mut self, rule_index: usize, perm: Vec<usize>) {
        self.perms.insert(rule_index, perm);
    }
}

impl SipStrategy for FixedSip {
    fn permutation(&self, rule_index: usize, rule: &Rule, _ha: Adornment) -> Vec<usize> {
        match self.perms.get(&rule_index) {
            Some(p) => p.clone(),
            None => (0..rule.body.len()).collect(),
        }
    }
}

/// Computes the adornment of `atom` given the currently bound variables:
/// an argument is bound iff it has no variables (ground) or every one of
/// its variables is bound.
pub fn adorn_atom(atom: &Atom, bound: &HashSet<Symbol>) -> Adornment {
    let flags: Vec<bool> = atom
        .args
        .iter()
        .map(|t| t.vars().iter().all(|v| bound.contains(v)))
        .collect();
    Adornment::from_flags(&flags)
}

/// Adorns one rule under `head_adornment` with the body order `perm`,
/// returning the adorned rule and the set of derived adorned predicates
/// it references. `derived` tells which predicates have rules.
pub fn adorn_rule(
    rule: &Rule,
    rule_index: usize,
    head_adornment: Adornment,
    perm: &[usize],
    derived: &BTreeSet<Pred>,
) -> (AdornedRule, Vec<AdornedPred>) {
    assert_eq!(perm.len(), rule.body.len(), "permutation length mismatch");
    let mut bound: HashSet<Symbol> = HashSet::new();
    for (i, arg) in rule.head.args.iter().enumerate() {
        if head_adornment.is_bound(i) {
            for v in arg.vars() {
                bound.insert(v);
            }
        }
    }

    let mut body = Vec::with_capacity(perm.len());
    let mut referenced = Vec::new();
    for &orig in perm {
        let lit = &rule.body[orig];
        match lit {
            Literal::Atom(a) => {
                let ad = adorn_atom(a, &bound);
                // Negated atoms receive no sideways bindings (they are
                // membership tests against a completed lower stratum),
                // so they are never adorned or enqueued.
                if !a.negated && derived.contains(&a.pred) {
                    let ap = AdornedPred::new(a.pred, ad);
                    referenced.push(ap);
                    body.push((lit.clone(), Some(ad)));
                } else {
                    body.push((lit.clone(), None));
                }
                // A positive goal, once solved, binds all its variables.
                if !a.negated {
                    for v in a.vars() {
                        bound.insert(v);
                    }
                }
            }
            Literal::Builtin(b) => {
                // An EC equality binds its unbound side; comparisons bind
                // nothing. Non-EC builtins bind nothing here (the safety
                // analyzer will veto such orderings separately).
                for v in b.binds(&bound) {
                    bound.insert(v);
                }
                body.push((lit.clone(), None));
            }
        }
    }

    let adorned = AdornedRule {
        head: AdornedPred::new(rule.head.pred, head_adornment),
        rule_index,
        permutation: perm.to_vec(),
        body,
        head_atom: rule.head.clone(),
    };
    (adorned, referenced)
}

/// Adorns a whole program for the given query form using `sip` to pick
/// each rule's permutation (§7.3's worklist construction).
pub fn adorn_program(
    program: &Program,
    query_pred: Pred,
    query_adornment: Adornment,
    sip: &dyn SipStrategy,
) -> AdornedProgram {
    let derived = program.derived_preds();
    let start = AdornedPred::new(query_pred, query_adornment);
    let mut marked: BTreeSet<AdornedPred> = BTreeSet::new();
    let mut queue: VecDeque<AdornedPred> = VecDeque::new();
    let mut rules = Vec::new();

    if derived.contains(&query_pred) {
        queue.push_back(start);
        marked.insert(start);
    }

    while let Some(ap) = queue.pop_front() {
        for (ri, rule) in program.rules_for(ap.pred) {
            let perm = sip.permutation(ri, rule, ap.adornment);
            let (ar, referenced) = adorn_rule(rule, ri, ap.adornment, &perm, &derived);
            for r in referenced {
                if marked.insert(r) {
                    queue.push_back(r);
                }
            }
            rules.push(ar);
        }
    }

    AdornedProgram {
        query: start,
        rules,
        adorned_preds: marked,
    }
}

impl AdornedProgram {
    /// Flattens to a plain [`Program`] in which every derived predicate
    /// `p` adorned `a` is renamed `p_a` and bodies keep their permuted
    /// order. This is the input shape the magic-set and counting
    /// rewritings consume.
    pub fn to_program(&self) -> Program {
        let mut p = Program::new();
        for ar in &self.rules {
            let head = ar.head_atom.renamed(ar.head.renamed().name);
            let body: Vec<Literal> = ar
                .body
                .iter()
                .map(|(lit, ad)| match (lit, ad) {
                    (Literal::Atom(a), Some(ad)) => {
                        Literal::Atom(a.renamed(AdornedPred::new(a.pred, *ad).renamed().name))
                    }
                    (lit, _) => lit.clone(),
                })
                .collect();
            p.push(Rule::new(head, body));
        }
        p
    }
}

impl fmt::Display for AdornedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "% adorned for {}", self.query)?;
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sg() -> Program {
        parse_program(
            r#"
            sg(X, Y) <- flat(X, Y).
            sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
            "#,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_sg_bf_left_to_right() {
        // With the left-to-right SIP and query sg.bf:
        //   sg.bf(X,Y) <- up(X,X1), sg.fb(Y1,X1), dn(Y1,Y)
        // because after up(X,X1), X1 is bound, so sg's second arg is bound.
        let p = sg();
        let ap = adorn_program(
            &p,
            Pred::new("sg", 2),
            Adornment::parse("bf").unwrap(),
            &LeftToRight,
        );
        let recursive: Vec<&AdornedRule> = ap.rules.iter().filter(|r| r.body.len() == 3).collect();
        // Two adorned versions arise: sg.bf and sg.fb.
        assert!(ap.adorned_preds.contains(&AdornedPred::new(
            Pred::new("sg", 2),
            Adornment::parse("bf").unwrap()
        )));
        assert!(ap.adorned_preds.contains(&AdornedPred::new(
            Pred::new("sg", 2),
            Adornment::parse("fb").unwrap()
        )));
        // The recursive rule for sg.bf references sg.fb.
        let bf_rule = recursive
            .iter()
            .find(|r| r.head.adornment == Adornment::parse("bf").unwrap())
            .unwrap();
        let (lit, ad) = &bf_rule.body[1];
        assert_eq!(lit.as_atom().unwrap().pred.name.as_str(), "sg");
        assert_eq!(ad.unwrap(), Adornment::parse("fb").unwrap());
    }

    #[test]
    fn paper_example_sg_bb() {
        // Query sg.bb with the *reversed* body for the generated fb
        // version reproduces the paper's second adorned clique:
        //   sg.bb(X,Y) <- up(X,X1), sg.fb(Y1,X1), dn(Y1,Y)
        //   sg.fb(X,Y) <- dn(Y1,Y), sg.bf(Y1,X1), up(X,X1)  [reversed]
        //   sg.bf(X,Y) <- up(X,X1), sg.fb(Y1,X1), dn(Y1,Y)
        let p = sg();
        // Rule 1 is the recursive rule. We choose: for head bb or bf use
        // source order; this test uses LeftToRight and checks the closure
        // terminates with the right set of adorned preds.
        let ap = adorn_program(
            &p,
            Pred::new("sg", 2),
            Adornment::parse("bb").unwrap(),
            &LeftToRight,
        );
        let names: Vec<String> = ap.adorned_preds.iter().map(|a| a.to_string()).collect();
        assert!(names.contains(&"sg.bb".to_string()));
        assert!(names.contains(&"sg.fb".to_string()));
        // Closure terminated (no unbounded growth): at most 4 adornments.
        assert!(ap.adorned_preds.len() <= 4);
    }

    #[test]
    fn reversed_permutation_changes_adornment() {
        let p = sg();
        let mut sip = FixedSip::new();
        sip.set(1, vec![2, 1, 0]); // dn(Y1,Y), sg(Y1,X1), up(X,X1)
        let ap = adorn_program(
            &p,
            Pred::new("sg", 2),
            Adornment::parse("fb").unwrap(),
            &sip,
        );
        // Head fb binds Y; dn(Y1, Y) with Y bound... Y1 free -> after dn both
        // bound; then sg(Y1, X1): Y1 bound, X1 free => bf.
        let r = ap
            .rules
            .iter()
            .find(|r| r.head.adornment == Adornment::parse("fb").unwrap() && r.body.len() == 3)
            .unwrap();
        let (lit, ad) = &r.body[1];
        assert_eq!(lit.as_atom().unwrap().pred.name.as_str(), "sg");
        assert_eq!(ad.unwrap().to_string(), "bf");
    }

    #[test]
    fn constants_count_as_bound() {
        let p = parse_program("p(X) <- q(3, X).\nq(A, B) <- e(A, B).").unwrap();
        let ap = adorn_program(&p, Pred::new("p", 1), Adornment::all_free(1), &LeftToRight);
        let q_ad = ap
            .adorned_preds
            .iter()
            .find(|a| a.pred.name.as_str() == "q")
            .unwrap();
        assert_eq!(q_ad.adornment.to_string(), "bf");
    }

    #[test]
    fn builtin_eq_extends_bindings() {
        let p = parse_program("p(X, Y) <- q(X), Y = X + 1, r(Y).\nq(X) <- b(X).\nr(X) <- c(X).")
            .unwrap();
        let ap = adorn_program(&p, Pred::new("p", 2), Adornment::all_free(2), &LeftToRight);
        let r_ad = ap
            .adorned_preds
            .iter()
            .find(|a| a.pred.name.as_str() == "r")
            .unwrap();
        assert_eq!(r_ad.adornment.to_string(), "b");
    }

    #[test]
    fn greedy_sip_reproduces_paper_orders() {
        let p = sg();
        let rule = &p.rules[1]; // up(X,X1), sg(Y1,X1), dn(Y1,Y)
        let bf = GreedySip.permutation(1, rule, Adornment::parse("bf").unwrap());
        assert_eq!(bf, vec![0, 1, 2], "bf keeps up, sg, dn");
        let fb = GreedySip.permutation(1, rule, Adornment::parse("fb").unwrap());
        assert_eq!(fb, vec![2, 1, 0], "fb reverses to dn, sg, up (paper §7.3)");
    }

    #[test]
    fn greedy_sip_schedules_ec_builtins_early() {
        let p = parse_program(
            "p(X, Z) <- q(X, Y), Z = Y + 1, r(Z).\nq(A,B) <- b1(A,B).\nr(A) <- b2(A).",
        )
        .unwrap();
        let perm = GreedySip.permutation(0, &p.rules[0], Adornment::parse("bf").unwrap());
        // q first (bound arg), then the equality, then r.
        assert_eq!(perm, vec![0, 1, 2]);
    }

    #[test]
    fn greedy_sip_defers_unready_negation() {
        let p = parse_program("p(X) <- ~bad(Y), e(X, Y).\nbad(A) <- b(A).").unwrap();
        let perm = GreedySip.permutation(0, &p.rules[0], Adornment::parse("b").unwrap());
        assert_eq!(perm, vec![1, 0], "negation waits until Y is bound");
    }

    #[test]
    fn greedy_sip_is_a_permutation() {
        let p = sg();
        for (i, rule) in p.rules.iter().enumerate() {
            for ad in Adornment::enumerate(rule.head.pred.arity) {
                let mut perm = GreedySip.permutation(i, rule, ad);
                perm.sort_unstable();
                assert_eq!(perm, (0..rule.body.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn renamed_pred_has_flat_name() {
        let ap = AdornedPred::new(Pred::new("sg", 2), Adornment::parse("bf").unwrap());
        assert_eq!(ap.renamed().name.as_str(), "sg_bf");
        assert_eq!(ap.to_string(), "sg.bf");
    }

    #[test]
    fn to_program_renames_derived_only() {
        let p = sg();
        let ap = adorn_program(
            &p,
            Pred::new("sg", 2),
            Adornment::parse("bf").unwrap(),
            &LeftToRight,
        );
        let flat = ap.to_program();
        // Heads renamed sg_bf / sg_fb; base preds up/dn/flat unchanged.
        let heads: BTreeSet<&str> = flat
            .rules
            .iter()
            .map(|r| r.head.pred.name.as_str())
            .collect();
        assert!(heads.contains("sg_bf"));
        assert!(heads.contains("sg_fb"));
        for r in &flat.rules {
            for a in r.body_atoms() {
                let n = a.pred.name.as_str();
                assert!(
                    n.starts_with("sg_") || ["up", "dn", "flat"].contains(&n),
                    "unexpected predicate {n}"
                );
            }
        }
    }

    #[test]
    fn base_query_produces_empty_adorned_program() {
        let p = sg();
        let ap = adorn_program(
            &p,
            Pred::new("up", 2),
            Adornment::parse("bf").unwrap(),
            &LeftToRight,
        );
        assert!(ap.rules.is_empty());
    }

    #[test]
    fn all_free_query_keeps_everything_free_under_ltr_until_bound() {
        let p = sg();
        let ap = adorn_program(&p, Pred::new("sg", 2), Adornment::all_free(2), &LeftToRight);
        // sg.ff's recursive occurrence: after up(X,X1) binds X,X1 the
        // recursive sg(Y1,X1) is fb.
        assert!(ap.adorned_preds.contains(&AdornedPred::new(
            Pred::new("sg", 2),
            Adornment::parse("ff").unwrap()
        )));
        assert!(ap.adorned_preds.contains(&AdornedPred::new(
            Pred::new("sg", 2),
            Adornment::parse("fb").unwrap()
        )));
    }
}
