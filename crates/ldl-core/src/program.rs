//! Programs (rule bases) and query forms.
//!
//! A knowledge base (§2 of the paper) is a *rule base* plus a *database*.
//! Here the [`Program`] holds the rules; ground facts written in the same
//! source are carried along and later loaded into the storage catalog by
//! `ldl-storage`. Predicates never appearing in a rule head are *base*
//! predicates (the `Bi`'s of the paper); the rest are *derived* (`Pi`'s).

use crate::binding::Adornment;
use crate::error::{LdlError, Result};
use crate::literal::{Atom, Pred};
use crate::rule::Rule;
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A rule base together with its inline facts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Proper rules (non-empty body), in source order.
    pub rules: Vec<Rule>,
    /// Ground facts, in source order.
    pub facts: Vec<Atom>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a rule (or records it as a fact when it is one).
    pub fn push(&mut self, rule: Rule) {
        if rule.is_fact() {
            self.facts.push(rule.head);
        } else {
            self.rules.push(rule);
        }
    }

    /// The set of predicates appearing in some rule head (derived).
    pub fn derived_preds(&self) -> BTreeSet<Pred> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// The set of predicates appearing only in bodies or facts (base).
    pub fn base_preds(&self) -> BTreeSet<Pred> {
        let derived = self.derived_preds();
        let mut base: BTreeSet<Pred> = self.facts.iter().map(|f| f.pred).collect();
        for r in &self.rules {
            for a in r.body_atoms() {
                base.insert(a.pred);
            }
        }
        base.retain(|p| !derived.contains(p));
        base
    }

    /// All predicates mentioned anywhere.
    pub fn all_preds(&self) -> BTreeSet<Pred> {
        let mut s: BTreeSet<Pred> = self.derived_preds();
        s.extend(self.base_preds());
        s
    }

    /// Rules whose head is `pred`, in source order, with their indexes.
    pub fn rules_for(&self, pred: Pred) -> Vec<(usize, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.head.pred == pred)
            .collect()
    }

    /// Facts grouped by predicate.
    pub fn facts_by_pred(&self) -> BTreeMap<Pred, Vec<&Atom>> {
        let mut m: BTreeMap<Pred, Vec<&Atom>> = BTreeMap::new();
        for f in &self.facts {
            m.entry(f.pred).or_default().push(f);
        }
        m
    }

    /// Semantic validation:
    /// * negated head atoms are rejected;
    /// * non-ground facts are rejected.
    ///
    /// Head variables missing from the body are *not* rejected here: in
    /// LDL they are legal when the query form binds that argument (e.g.
    /// `len([H | T], N) <- len(T, M), N = M + 1` decomposes a bound list).
    /// Whether such a rule is safe is decided per query form by the
    /// optimizer's safety analyzer; [`Program::range_restricted`] offers
    /// the strict Datalog check for callers that want it up front.
    pub fn validate(&self) -> Result<()> {
        fn contains_group(t: &crate::term::Term) -> bool {
            match t {
                crate::term::Term::Compound(f, args) => {
                    *f == crate::term::group_functor() || args.iter().any(contains_group)
                }
                _ => false,
            }
        }
        let member = Pred::new("member", 2);
        for (i, r) in self.rules.iter().enumerate() {
            if r.head.negated {
                return Err(LdlError::Validation(format!(
                    "rule {i}: negated head {}",
                    r.head
                )));
            }
            if r.head.pred == member {
                return Err(LdlError::Validation(format!(
                    "rule {i}: member/2 is a reserved set predicate"
                )));
            }
            // Grouping markers: only as top-level head arguments.
            for arg in &r.head.args {
                if arg.as_group().is_none() && contains_group(arg) {
                    return Err(LdlError::Validation(format!(
                        "rule {i}: grouping marker nested inside {arg}"
                    )));
                }
            }
            for lit in &r.body {
                let terms: Vec<&crate::term::Term> = match lit {
                    crate::literal::Literal::Atom(a) => a.args.iter().collect(),
                    crate::literal::Literal::Builtin(b) => vec![&b.lhs, &b.rhs],
                };
                if terms.into_iter().any(contains_group) {
                    return Err(LdlError::Validation(format!(
                        "rule {i}: grouping markers are only legal in rule heads"
                    )));
                }
            }
        }
        for f in &self.facts {
            if f.pred == member {
                return Err(LdlError::Validation(
                    "member/2 is a reserved set predicate".into(),
                ));
            }
            if !f.is_ground() {
                return Err(LdlError::Validation(format!("non-ground fact {f}")));
            }
        }
        Ok(())
    }

    /// The strict Datalog range-restriction check: every head variable of
    /// every rule must occur in the body. Programs passing this are safe
    /// under *every* query form (given safe builtin orderings); failing it
    /// only means safety depends on the binding pattern.
    pub fn range_restricted(&self) -> Result<()> {
        for (i, r) in self.rules.iter().enumerate() {
            let bad = r.unrestricted_head_vars();
            if !bad.is_empty() {
                let names: Vec<&str> = bad.iter().map(|s| s.as_str()).collect();
                return Err(LdlError::Validation(format!(
                    "rule {i} ({r}): head variable(s) {} do not occur in the body",
                    names.join(", ")
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fact in &self.facts {
            writeln!(f, "{fact}.")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// A query: a single goal atom, e.g. `sg(1, Y)?`.
///
/// The *query form* of §2 is recovered from the goal: argument positions
/// holding ground terms are bound, the rest are free.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The goal atom.
    pub goal: Atom,
}

impl Query {
    /// Builds a query for a goal.
    pub fn new(goal: Atom) -> Query {
        Query { goal }
    }

    /// The predicate being queried.
    pub fn pred(&self) -> Pred {
        self.goal.pred
    }

    /// The binding pattern implied by the goal: ground argument = bound.
    pub fn adornment(&self) -> Adornment {
        let flags: Vec<bool> = self.goal.args.iter().map(Term::is_ground).collect();
        Adornment::from_flags(&flags)
    }

    /// The ground terms at the bound positions, in position order.
    pub fn bound_args(&self) -> Vec<(usize, &Term)> {
        self.goal
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ground())
            .collect()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}?", self.goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;

    fn sg_program() -> Program {
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("sg", vec![Term::var("X"), Term::var("Y")]),
            vec![Literal::Atom(Atom::new(
                "flat",
                vec![Term::var("X"), Term::var("Y")],
            ))],
        ));
        p.push(Rule::new(
            Atom::new("sg", vec![Term::var("X"), Term::var("Y")]),
            vec![
                Literal::Atom(Atom::new("up", vec![Term::var("X"), Term::var("X1")])),
                Literal::Atom(Atom::new("sg", vec![Term::var("Y1"), Term::var("X1")])),
                Literal::Atom(Atom::new("dn", vec![Term::var("Y1"), Term::var("Y")])),
            ],
        ));
        p.push(Rule::fact(Atom::new(
            "up",
            vec![Term::int(1), Term::int(2)],
        )));
        p
    }

    #[test]
    fn base_vs_derived() {
        let p = sg_program();
        let derived = p.derived_preds();
        assert!(derived.contains(&Pred::new("sg", 2)));
        let base = p.base_preds();
        assert!(base.contains(&Pred::new("up", 2)));
        assert!(base.contains(&Pred::new("dn", 2)));
        assert!(base.contains(&Pred::new("flat", 2)));
        assert!(!base.contains(&Pred::new("sg", 2)));
    }

    #[test]
    fn facts_are_separated() {
        let p = sg_program();
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn range_restriction_catches_head_only_vars() {
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("p", vec![Term::var("X"), Term::var("Z")]),
            vec![Literal::Atom(Atom::new("q", vec![Term::var("X")]))],
        ));
        // Loose validation accepts it (safety is query-form dependent)...
        assert!(p.validate().is_ok());
        // ...but the strict Datalog check flags it.
        assert!(matches!(p.range_restricted(), Err(LdlError::Validation(_))));
    }

    #[test]
    fn validation_accepts_sg() {
        assert!(sg_program().validate().is_ok());
    }

    #[test]
    fn query_adornment_from_constants() {
        let q = Query::new(Atom::new("sg", vec![Term::int(1), Term::var("Y")]));
        assert_eq!(q.adornment().to_string(), "bf");
        let q2 = Query::new(Atom::new("sg", vec![Term::var("X"), Term::var("Y")]));
        assert!(q2.adornment().is_all_free());
    }

    #[test]
    fn rules_for_returns_in_order() {
        let p = sg_program();
        let rs = p.rules_for(Pred::new("sg", 2));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].0, 0);
        assert_eq!(rs[1].0, 1);
    }
}
