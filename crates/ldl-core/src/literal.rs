//! Literals: predicate atoms and evaluable (built-in) predicates.
//!
//! A rule body is a conjunction of literals. An [`Atom`] references a base
//! or derived predicate; a [`Literal::Builtin`] is one of the *evaluable
//! predicates* of §8 of the paper — comparisons and arithmetic equalities —
//! which are formally infinite relations and therefore the primary source
//! of safety problems.

use crate::span::Span;
use crate::symbol::Symbol;
use crate::term::Term;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A predicate identity: name plus arity. `p/2` and `p/3` are distinct.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pred {
    /// Predicate name.
    pub name: Symbol,
    /// Number of arguments.
    pub arity: usize,
}

impl Pred {
    /// Predicate from a name string and arity.
    pub fn new(name: &str, arity: usize) -> Pred {
        Pred {
            name: Symbol::intern(name),
            arity,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// An atomic formula `p(t1, ..., tn)`, possibly negated (`~p(...)`).
///
/// Negation is parsed and tracked for stratification analysis; the
/// optimizer core (like the paper, which restricts itself to pure Horn
/// clauses) only accepts stratified use of it.
#[derive(Clone, Debug)]
pub struct Atom {
    /// The predicate this atom refers to.
    pub pred: Pred,
    /// Argument terms; `args.len() == pred.arity`.
    pub args: Vec<Term>,
    /// True for a negated body literal `~p(...)`.
    pub negated: bool,
    /// Source location (parser-built atoms only; [`Span::NONE`]
    /// otherwise). Excluded from equality and hashing.
    pub span: Span,
}

/// Equality ignores [`Atom::span`]: a rewritten or programmatic atom
/// compares equal to its parsed twin.
impl PartialEq for Atom {
    fn eq(&self, other: &Atom) -> bool {
        self.pred == other.pred && self.args == other.args && self.negated == other.negated
    }
}

impl Eq for Atom {}

impl Hash for Atom {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.pred.hash(state);
        self.args.hash(state);
        self.negated.hash(state);
    }
}

impl Atom {
    /// Positive atom `name(args...)`.
    pub fn new(name: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: Pred::new(name, args.len()),
            args,
            negated: false,
            span: Span::NONE,
        }
    }

    /// Negated atom `~name(args...)`.
    pub fn negated(name: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: Pred::new(name, args.len()),
            args,
            negated: true,
            span: Span::NONE,
        }
    }

    /// The same atom relocated to `span`.
    pub fn at(mut self, span: Span) -> Atom {
        self.span = span;
        self
    }

    /// All variables of the atom in first-occurrence order.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for a in &self.args {
            a.collect_vars(&mut out);
        }
        out
    }

    /// True if every argument is ground (a fact candidate).
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Rebuilds the atom mapping every variable through `f`.
    pub fn map_vars(&self, f: &mut impl FnMut(Symbol) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|a| a.map_vars(f)).collect(),
            negated: self.negated,
            span: self.span,
        }
    }

    /// Same atom with a different predicate name (used by the adornment and
    /// magic-set rewritings, which rename `p` to `p_bf`, `magic_p_bf`, ...).
    pub fn renamed(&self, name: Symbol) -> Atom {
        Atom {
            pred: Pred {
                name,
                arity: self.pred.arity,
            },
            args: self.args.clone(),
            negated: self.negated,
            span: self.span,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "~")?;
        }
        write!(f, "{}(", self.pred.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operator of an evaluable predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=` — unification / arithmetic assignment.
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The comparison with operands swapped (`<` becomes `>`, ...).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An evaluable predicate `lhs op rhs`.
///
/// Arithmetic expressions appear as compound terms whose functors are
/// `+ - * / mod`; e.g. `Z = X + Y` is `Builtin { op: Eq, lhs: Z, rhs: +(X, Y) }`.
#[derive(Clone, Debug)]
pub struct BuiltinPred {
    /// The comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Term,
    /// Right operand.
    pub rhs: Term,
    /// Source location (parser-built literals only; [`Span::NONE`]
    /// otherwise). Excluded from equality and hashing.
    pub span: Span,
}

/// Equality ignores [`BuiltinPred::span`], like [`Atom`]'s.
impl PartialEq for BuiltinPred {
    fn eq(&self, other: &BuiltinPred) -> bool {
        self.op == other.op && self.lhs == other.lhs && self.rhs == other.rhs
    }
}

impl Eq for BuiltinPred {}

impl Hash for BuiltinPred {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.op.hash(state);
        self.lhs.hash(state);
        self.rhs.hash(state);
    }
}

impl BuiltinPred {
    /// Builds `lhs op rhs`.
    pub fn new(op: CmpOp, lhs: Term, rhs: Term) -> BuiltinPred {
        BuiltinPred {
            op,
            lhs,
            rhs,
            span: Span::NONE,
        }
    }

    /// The same literal relocated to `span`.
    pub fn at(mut self, span: Span) -> BuiltinPred {
        self.span = span;
        self
    }

    /// All variables in first-occurrence order.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.lhs.collect_vars(&mut out);
        self.rhs.collect_vars(&mut out);
        out
    }

    /// Rebuilds mapping every variable through `f`.
    pub fn map_vars(&self, f: &mut impl FnMut(Symbol) -> Term) -> BuiltinPred {
        BuiltinPred {
            op: self.op,
            lhs: self.lhs.map_vars(f),
            rhs: self.rhs.map_vars(f),
            span: self.span,
        }
    }

    /// Effective computability (§8.1): given the set of currently bound
    /// variables, can this evaluable predicate be executed finitely?
    ///
    /// * comparisons other than `=`: every variable must be bound;
    /// * `lhs = rhs`: EC when both sides are bound, or when one side is
    ///   fully bound and the other is *solvable*: either free of
    ///   arithmetic (plain unification binds it) or an invertible
    ///   single-unknown chain of `+`/`-`/`*` (the evaluator solves
    ///   `5 = 3 + W` for `W`; `/` and `mod` lose information and never
    ///   invert, so they are only EC in the forward direction).
    pub fn is_ec(&self, bound: &std::collections::HashSet<Symbol>) -> bool {
        let all_bound = |t: &Term| t.vars().iter().all(|v| bound.contains(v));
        match self.op {
            CmpOp::Eq => {
                let (lb, rb) = (all_bound(&self.lhs), all_bound(&self.rhs));
                (lb && (rb || solvable_unknown_side(&self.rhs, bound)))
                    || (rb && solvable_unknown_side(&self.lhs, bound))
            }
            _ => all_bound(&self.lhs) && all_bound(&self.rhs),
        }
    }

    /// The variables this literal *binds* once executed with the given
    /// bound set: for an EC equality, the variables of the unbound side;
    /// comparisons bind nothing new.
    pub fn binds(&self, bound: &std::collections::HashSet<Symbol>) -> Vec<Symbol> {
        if self.op != CmpOp::Eq || !self.is_ec(bound) {
            return Vec::new();
        }
        let all_bound = |t: &Term| t.vars().iter().all(|v| bound.contains(v));
        let mut out = Vec::new();
        if !all_bound(&self.lhs) {
            self.lhs.collect_vars(&mut out);
        }
        if !all_bound(&self.rhs) {
            self.rhs.collect_vars(&mut out);
        }
        out.retain(|v| !bound.contains(v));
        out
    }
}

/// True when `t` contains an arithmetic compound (`+ - * / mod` of
/// arity 2) anywhere.
fn contains_arith(t: &Term) -> bool {
    match t {
        Term::Compound(f, args) => {
            (args.len() == 2 && matches!(f.as_str(), "+" | "-" | "*" | "/" | "mod"))
                || args.iter().any(contains_arith)
        }
        _ => false,
    }
}

/// Can the evaluator execute `t = <ground value>` when `t` is not fully
/// bound? True when `t` is free of arithmetic (plain unification binds
/// its variables), or when it is an invertible arithmetic chain: at each
/// `+`/`-`/`*` node exactly one operand holds unbound variables and that
/// operand is itself invertible down to a bare variable. `/` and `mod`
/// around the unknown never invert.
fn solvable_unknown_side(t: &Term, bound: &std::collections::HashSet<Symbol>) -> bool {
    if !contains_arith(t) {
        return true;
    }
    invertible(t, bound)
}

fn invertible(t: &Term, bound: &std::collections::HashSet<Symbol>) -> bool {
    let fully = |t: &Term| t.vars().iter().all(|v| bound.contains(v));
    match t {
        Term::Var(_) => true,
        Term::Compound(f, args) if args.len() == 2 && matches!(f.as_str(), "+" | "-" | "*") => {
            match (fully(&args[0]), fully(&args[1])) {
                (true, false) => invertible(&args[1], bound),
                (false, true) => invertible(&args[0], bound),
                // Two unknown operands: underdetermined.
                _ => false,
            }
        }
        _ => false,
    }
}

impl fmt::Display for BuiltinPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A body literal: either a predicate atom or an evaluable predicate.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// Base or derived predicate occurrence.
    Atom(Atom),
    /// Evaluable predicate (comparison / arithmetic).
    Builtin(BuiltinPred),
}

impl Literal {
    /// All variables in first-occurrence order.
    pub fn vars(&self) -> Vec<Symbol> {
        match self {
            Literal::Atom(a) => a.vars(),
            Literal::Builtin(b) => b.vars(),
        }
    }

    /// The atom inside, if any.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            Literal::Builtin(_) => None,
        }
    }

    /// The builtin inside, if any.
    pub fn as_builtin(&self) -> Option<&BuiltinPred> {
        match self {
            Literal::Builtin(b) => Some(b),
            Literal::Atom(_) => None,
        }
    }

    /// True if this is an evaluable predicate.
    pub fn is_builtin(&self) -> bool {
        matches!(self, Literal::Builtin(_))
    }

    /// The literal's source span ([`Span::NONE`] when built
    /// programmatically).
    pub fn span(&self) -> Span {
        match self {
            Literal::Atom(a) => a.span,
            Literal::Builtin(b) => b.span,
        }
    }

    /// Rebuilds mapping every variable through `f`.
    pub fn map_vars(&self, f: &mut impl FnMut(Symbol) -> Term) -> Literal {
        match self {
            Literal::Atom(a) => Literal::Atom(a.map_vars(f)),
            Literal::Builtin(b) => Literal::Builtin(b.map_vars(f)),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom(a) => write!(f, "{a}"),
            Literal::Builtin(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn bound(names: &[&str]) -> HashSet<Symbol> {
        names.iter().map(|n| Symbol::intern(n)).collect()
    }

    #[test]
    fn comparison_needs_all_vars_bound() {
        let b = BuiltinPred::new(CmpOp::Gt, Term::var("X"), Term::var("Y"));
        assert!(!b.is_ec(&bound(&["X"])));
        assert!(b.is_ec(&bound(&["X", "Y"])));
    }

    #[test]
    fn equality_needs_one_side_bound() {
        // Z = X + Y : EC once X and Y are bound. With only Z bound the
        // arithmetic side has *two* unknowns — the evaluator cannot
        // solve it, so the EC model must not claim it either.
        let b = BuiltinPred::new(
            CmpOp::Eq,
            Term::var("Z"),
            Term::compound("+", vec![Term::var("X"), Term::var("Y")]),
        );
        assert!(!b.is_ec(&bound(&["X"])));
        assert!(b.is_ec(&bound(&["X", "Y"])));
        assert!(!b.is_ec(&bound(&["Z"])));
    }

    #[test]
    fn equality_inverts_single_unknown_linear_forms() {
        // Z = X + 3 with Z bound: solvable for X (X = Z - 3).
        let b = BuiltinPred::new(
            CmpOp::Eq,
            Term::var("Z"),
            Term::compound("+", vec![Term::var("X"), Term::int(3)]),
        );
        assert!(b.is_ec(&bound(&["Z"])));
        assert_eq!(b.binds(&bound(&["Z"])), vec![Symbol::intern("X")]);
        // Nested chain: Z = 3 + 2 * W still has a single unknown leaf.
        let c = BuiltinPred::new(
            CmpOp::Eq,
            Term::var("Z"),
            Term::compound(
                "+",
                vec![
                    Term::int(3),
                    Term::compound("*", vec![Term::int(2), Term::var("W")]),
                ],
            ),
        );
        assert!(c.is_ec(&bound(&["Z"])));
        assert_eq!(c.binds(&bound(&["Z"])), vec![Symbol::intern("W")]);
    }

    #[test]
    fn equality_does_not_invert_division_or_mod() {
        for f in ["/", "mod"] {
            let b = BuiltinPred::new(
                CmpOp::Eq,
                Term::var("Z"),
                Term::compound(f, vec![Term::var("X"), Term::int(2)]),
            );
            assert!(!b.is_ec(&bound(&["Z"])), "{f} must not invert");
            assert!(b.binds(&bound(&["Z"])).is_empty());
            // Forward direction is still EC.
            assert!(b.is_ec(&bound(&["X"])));
        }
    }

    #[test]
    fn equality_unifies_structural_unbound_sides() {
        // Z = f(X): plain unification binds X once Z is bound.
        let b = BuiltinPred::new(
            CmpOp::Eq,
            Term::var("Z"),
            Term::compound("f", vec![Term::var("X")]),
        );
        assert!(b.is_ec(&bound(&["Z"])));
        assert_eq!(b.binds(&bound(&["Z"])), vec![Symbol::intern("X")]);
        // But arithmetic buried inside a structural term does not invert.
        let c = BuiltinPred::new(
            CmpOp::Eq,
            Term::var("Z"),
            Term::compound(
                "f",
                vec![Term::compound("+", vec![Term::var("X"), Term::int(1)])],
            ),
        );
        assert!(!c.is_ec(&bound(&["Z"])));
    }

    #[test]
    fn equality_binds_the_unbound_side() {
        let b = BuiltinPred::new(
            CmpOp::Eq,
            Term::var("Z"),
            Term::compound("+", vec![Term::var("X"), Term::var("Y")]),
        );
        let newly = b.binds(&bound(&["X", "Y"]));
        assert_eq!(newly, vec![Symbol::intern("Z")]);
        // A bare comparison binds nothing.
        let c = BuiltinPred::new(CmpOp::Lt, Term::var("X"), Term::var("Y"));
        assert!(c.binds(&bound(&["X", "Y"])).is_empty());
    }

    #[test]
    fn ground_equality_is_ec() {
        let b = BuiltinPred::new(CmpOp::Eq, Term::var("X"), Term::int(3));
        assert!(b.is_ec(&bound(&[])));
        assert_eq!(b.binds(&bound(&[])), vec![Symbol::intern("X")]);
    }

    #[test]
    fn atom_display_and_vars() {
        let a = Atom::new("sg", vec![Term::var("X"), Term::var("Y")]);
        assert_eq!(a.to_string(), "sg(X, Y)");
        assert_eq!(a.pred.arity, 2);
        assert_eq!(a.vars().len(), 2);
    }

    #[test]
    fn negated_atom_display() {
        let a = Atom::negated("broken", vec![Term::var("P")]);
        assert_eq!(a.to_string(), "~broken(P)");
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }

    #[test]
    fn pred_identity_includes_arity() {
        assert_ne!(Pred::new("p", 2), Pred::new("p", 3));
        assert_eq!(Pred::new("p", 2), Pred::new("p", 2));
    }
}
