//! Source spans.
//!
//! A [`Span`] records where a syntactic element (rule, atom, builtin)
//! came from in the concrete source text, as 1-based line/column
//! half-open-in-columns positions. The lexer already tracks line/col per
//! token; the parser threads those positions into every [`crate::Rule`]
//! and [`crate::Literal`] it builds, so downstream analyses (the
//! `ldl-analysis` crate, error reporting) can point at the offending
//! source instead of describing it.
//!
//! Programs built programmatically (rewritings, tests, the API) carry
//! [`Span::NONE`]; spans are deliberately **excluded** from equality and
//! hashing of the carrying types, so a rewritten rule still compares
//! equal to its span-free twin and dedup sets behave as before.

use std::fmt;

/// A region of source text: `[start, end)` in 1-based lines/columns.
///
/// The all-zero value ([`Span::NONE`]) means "no source location" and is
/// used by every programmatic constructor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct Span {
    /// 1-based line of the first character (0 = unknown).
    pub line: u32,
    /// 1-based column of the first character (0 = unknown).
    pub col: u32,
    /// 1-based line of the position just past the element.
    pub end_line: u32,
    /// 1-based column of the position just past the element.
    pub end_col: u32,
}

impl Span {
    /// The absent span (all zeros).
    pub const NONE: Span = Span {
        line: 0,
        col: 0,
        end_line: 0,
        end_col: 0,
    };

    /// A span covering a single point (zero width) at `line:col`.
    pub fn point(line: u32, col: u32) -> Span {
        Span {
            line,
            col,
            end_line: line,
            end_col: col,
        }
    }

    /// A span from a start position to an end position.
    pub fn range(line: u32, col: u32, end_line: u32, end_col: u32) -> Span {
        Span {
            line,
            col,
            end_line,
            end_col,
        }
    }

    /// True for [`Span::NONE`] — no location information.
    pub fn is_none(&self) -> bool {
        self.line == 0
    }

    /// The smallest span covering both `self` and `other`; `NONE`
    /// operands are ignored.
    pub fn to(&self, other: Span) -> Span {
        if self.is_none() {
            return other;
        }
        if other.is_none() {
            return *self;
        }
        let (line, col) = if (self.line, self.col) <= (other.line, other.col) {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        let (end_line, end_col) =
            if (self.end_line, self.end_col) >= (other.end_line, other.end_col) {
                (self.end_line, self.end_col)
            } else {
                (other.end_line, other.end_col)
            };
        Span {
            line,
            col,
            end_line,
            end_col,
        }
    }
}

/// `Display` writes `line:col` (or `?:?` for `NONE`) — the head position
/// only, which is what diagnostics print next to the file name.
impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "?:?")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_default_and_detected() {
        assert_eq!(Span::default(), Span::NONE);
        assert!(Span::NONE.is_none());
        assert!(!Span::point(1, 1).is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Span::NONE.to_string(), "?:?");
        assert_eq!(Span::range(3, 7, 3, 12).to_string(), "3:7");
    }

    #[test]
    fn join_covers_both() {
        let a = Span::range(1, 5, 1, 9);
        let b = Span::range(2, 1, 2, 4);
        assert_eq!(a.to(b), Span::range(1, 5, 2, 4));
        assert_eq!(b.to(a), Span::range(1, 5, 2, 4));
        assert_eq!(a.to(Span::NONE), a);
        assert_eq!(Span::NONE.to(b), b);
    }
}
