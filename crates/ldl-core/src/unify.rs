//! Unification and substitutions.
//!
//! LDL's pattern-matching capability rests on syntactic unification of
//! complex terms. The evaluator uses it to match tuples against rule
//! heads with compound arguments, and the safety analyzer uses it when
//! reasoning about term norms.

use crate::literal::Atom;
use crate::span::Span;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::HashMap;

/// A substitution: a finite map from variables to terms.
///
/// Bindings are kept in *triangular* form (a bound term may itself contain
/// bound variables); [`Subst::resolve`] walks chains and
/// [`Subst::apply`] produces fully substituted terms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Subst {
    map: HashMap<Symbol, Term>,
}

impl Subst {
    /// Empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The binding of `v`, if any (one step, not chased).
    pub fn get(&self, v: Symbol) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Binds `v` to `t`. Panics if `v` is already bound (a unifier never
    /// rebinds — that would silently lose constraints).
    pub fn bind(&mut self, v: Symbol, t: Term) {
        let prev = self.map.insert(v, t);
        debug_assert!(prev.is_none(), "variable {v} bound twice");
    }

    /// Chases variable-to-variable chains: the representative term of `t`
    /// under this substitution, without descending into compounds.
    pub fn resolve<'a>(&'a self, mut t: &'a Term) -> &'a Term {
        while let Term::Var(v) = t {
            match self.map.get(v) {
                Some(next) => t = next,
                None => break,
            }
        }
        t
    }

    /// Fully applies the substitution to a term.
    pub fn apply(&self, t: &Term) -> Term {
        match self.resolve(t) {
            Term::Var(v) => Term::Var(*v),
            Term::Const(c) => Term::Const(*c),
            Term::Compound(f, args) => {
                Term::Compound(*f, args.iter().map(|a| self.apply(a)).collect())
            }
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred,
            args: a.args.iter().map(|t| self.apply(t)).collect(),
            negated: a.negated,
            span: a.span,
        }
    }

    /// Does `v` occur in `t` (after resolution)? The occurs check keeps
    /// unification sound (no infinite terms).
    fn occurs(&self, v: Symbol, t: &Term) -> bool {
        match self.resolve(t) {
            Term::Var(w) => *w == v,
            Term::Const(_) => false,
            Term::Compound(_, args) => args.iter().any(|a| self.occurs(v, a)),
        }
    }

    /// Extends the substitution so that `a` and `b` unify. On failure the
    /// substitution may be partially extended, so callers should clone
    /// first if they need rollback (the evaluator does).
    pub fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let ra = self.resolve(a).clone();
        let rb = self.resolve(b).clone();
        match (ra, rb) {
            (Term::Var(x), Term::Var(y)) if x == y => true,
            (Term::Var(x), t) | (t, Term::Var(x)) => {
                if self.occurs(x, &t) {
                    false
                } else {
                    self.bind(x, t);
                    true
                }
            }
            (Term::Const(c1), Term::Const(c2)) => c1 == c2,
            (Term::Compound(f1, args1), Term::Compound(f2, args2)) => {
                f1 == f2
                    && args1.len() == args2.len()
                    && args1.iter().zip(&args2).all(|(x, y)| self.unify(x, y))
            }
            _ => false,
        }
    }
}

/// Anti-unification: the *least general generalization* (lgg) of two
/// terms — the most specific term that subsumes both. Equal parts are
/// kept; differing parts become variables, consistently (the same pair
/// of subterms always maps to the same variable). §9 of the paper uses
/// this to generalize common subexpressions: the lgg of `p(a, b, X)` and
/// `p(a, Y, c)` is `p(a, G1, G2)`.
pub struct Lgg {
    table: HashMap<(Term, Term), Symbol>,
    counter: usize,
}

impl Default for Lgg {
    fn default() -> Self {
        Lgg::new()
    }
}

impl Lgg {
    /// Fresh generalization context (variable names `G1`, `G2`, ...).
    pub fn new() -> Lgg {
        Lgg {
            table: HashMap::new(),
            counter: 0,
        }
    }

    /// The lgg of two terms under this context.
    pub fn terms(&mut self, a: &Term, b: &Term) -> Term {
        if a == b {
            return a.clone();
        }
        if let (Term::Compound(f1, args1), Term::Compound(f2, args2)) = (a, b) {
            if f1 == f2 && args1.len() == args2.len() {
                return Term::Compound(
                    *f1,
                    args1
                        .iter()
                        .zip(args2)
                        .map(|(x, y)| self.terms(x, y))
                        .collect(),
                );
            }
        }
        let key = (a.clone(), b.clone());
        if let Some(&v) = self.table.get(&key) {
            return Term::Var(v);
        }
        self.counter += 1;
        let v = Symbol::intern(&format!("G{}", self.counter));
        self.table.insert(key, v);
        Term::Var(v)
    }

    /// The lgg of two atoms (None when the predicates differ).
    pub fn atoms(&mut self, a: &Atom, b: &Atom) -> Option<Atom> {
        if a.pred != b.pred || a.negated != b.negated {
            return None;
        }
        Some(Atom {
            pred: a.pred,
            args: a
                .args
                .iter()
                .zip(&b.args)
                .map(|(x, y)| self.terms(x, y))
                .collect(),
            negated: a.negated,
            span: Span::NONE,
        })
    }
}

/// One-shot lgg of two terms.
pub fn lgg(a: &Term, b: &Term) -> Term {
    Lgg::new().terms(a, b)
}

/// One-shot lgg of two atoms.
pub fn lgg_atoms(a: &Atom, b: &Atom) -> Option<Atom> {
    Lgg::new().atoms(a, b)
}

/// Most general unifier of two terms, if one exists.
pub fn mgu(a: &Term, b: &Term) -> Option<Subst> {
    let mut s = Subst::new();
    if s.unify(a, b) {
        Some(s)
    } else {
        None
    }
}

/// Most general unifier of two atoms (same predicate, pairwise args).
pub fn mgu_atoms(a: &Atom, b: &Atom) -> Option<Subst> {
    if a.pred != b.pred {
        return None;
    }
    let mut s = Subst::new();
    for (x, y) in a.args.iter().zip(&b.args) {
        if !s.unify(x, y) {
            return None;
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_var_with_const() {
        let s = mgu(&Term::var("X"), &Term::int(3)).unwrap();
        assert_eq!(s.apply(&Term::var("X")), Term::int(3));
    }

    #[test]
    fn unify_compounds() {
        let a = Term::compound("f", vec![Term::var("X"), Term::int(2)]);
        let b = Term::compound("f", vec![Term::int(1), Term::var("Y")]);
        let s = mgu(&a, &b).unwrap();
        assert_eq!(s.apply(&a), s.apply(&b));
        assert_eq!(s.apply(&a).to_string(), "f(1, 2)");
    }

    #[test]
    fn functor_mismatch_fails() {
        assert!(mgu(
            &Term::compound("f", vec![Term::int(1)]),
            &Term::compound("g", vec![Term::int(1)])
        )
        .is_none());
    }

    #[test]
    fn arity_mismatch_fails() {
        assert!(mgu(
            &Term::compound("f", vec![Term::int(1)]),
            &Term::compound("f", vec![Term::int(1), Term::int(2)])
        )
        .is_none());
    }

    #[test]
    fn occurs_check_blocks_infinite_terms() {
        let x = Term::var("X");
        let fx = Term::compound("f", vec![Term::var("X")]);
        assert!(mgu(&x, &fx).is_none());
    }

    #[test]
    fn chained_variables_resolve() {
        let mut s = Subst::new();
        assert!(s.unify(&Term::var("X"), &Term::var("Y")));
        assert!(s.unify(&Term::var("Y"), &Term::int(7)));
        assert_eq!(s.apply(&Term::var("X")), Term::int(7));
    }

    #[test]
    fn unify_lists() {
        // [H | T] = [1, 2, 3]
        let pat = Term::list_with_tail(vec![Term::var("H")], Term::var("T"));
        let lst = Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]);
        let s = mgu(&pat, &lst).unwrap();
        assert_eq!(s.apply(&Term::var("H")), Term::int(1));
        assert_eq!(s.apply(&Term::var("T")).to_string(), "[2, 3]");
    }

    #[test]
    fn atom_unification() {
        let a = Atom::new("p", vec![Term::var("X"), Term::sym("a")]);
        let b = Atom::new("p", vec![Term::int(1), Term::var("Y")]);
        let s = mgu_atoms(&a, &b).unwrap();
        assert_eq!(s.apply_atom(&a).to_string(), "p(1, a)");
        let c = Atom::new("q", vec![Term::int(1), Term::var("Y")]);
        assert!(mgu_atoms(&a, &c).is_none());
    }

    #[test]
    fn lgg_paper_section_9_example() {
        // lgg of P(a, b, X) and P(a, Y, c) keeps the shared constant a
        // and generalizes the rest — the paper's "computing P(a,Y,X)
        // once" candidate.
        let a = Atom::new("p", vec![Term::sym("a"), Term::sym("b"), Term::var("X")]);
        let b = Atom::new("p", vec![Term::sym("a"), Term::var("Y"), Term::sym("c")]);
        let g = lgg_atoms(&a, &b).unwrap();
        assert_eq!(g.args[0], Term::sym("a"));
        assert!(g.args[1].is_var());
        assert!(g.args[2].is_var());
        // Both originals are instances of the generalization.
        assert!(mgu_atoms(&g, &a).is_some());
        assert!(mgu_atoms(&g, &b).is_some());
    }

    #[test]
    fn lgg_is_consistent_across_repeats() {
        // f(X, X) vs f(1, 1): same pair generalizes to the SAME variable.
        let a = Term::compound("f", vec![Term::var("X"), Term::var("X")]);
        let b = Term::compound("f", vec![Term::int(1), Term::int(1)]);
        let g = lgg(&a, &b);
        match g {
            Term::Compound(_, args) => assert_eq!(args[0], args[1]),
            other => panic!("expected compound, got {other}"),
        }
    }

    #[test]
    fn lgg_of_equal_terms_is_identity() {
        let t = Term::compound("f", vec![Term::int(1), Term::var("X")]);
        assert_eq!(lgg(&t, &t), t);
    }

    #[test]
    fn lgg_descends_into_matching_structure() {
        let a = Term::compound("f", vec![Term::compound("g", vec![Term::int(1)])]);
        let b = Term::compound("f", vec![Term::compound("g", vec![Term::int(2)])]);
        let g = lgg(&a, &b);
        assert_eq!(g.to_string(), "f(g(G1))");
    }

    #[test]
    fn lgg_mismatched_predicates_is_none() {
        let a = Atom::new("p", vec![Term::int(1)]);
        let b = Atom::new("q", vec![Term::int(1)]);
        assert!(lgg_atoms(&a, &b).is_none());
    }

    #[test]
    fn shared_variable_consistency() {
        // p(X, X) with p(1, 2) must fail; with p(1, 1) must succeed.
        let pat = Atom::new("p", vec![Term::var("X"), Term::var("X")]);
        assert!(mgu_atoms(&pat, &Atom::new("p", vec![Term::int(1), Term::int(2)])).is_none());
        assert!(mgu_atoms(&pat, &Atom::new("p", vec![Term::int(1), Term::int(1)])).is_some());
    }
}
