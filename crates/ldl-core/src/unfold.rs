//! Unfolding — the `FU` (flatten/unflatten) transformation of §5.
//!
//! Flattening distributes a join over a union: replacing a derived body
//! literal by each of its definitions produces one rule per choice, with
//! the definition's body spliced in place. The paper excludes `FU` from
//! its first optimizer's search space as an "expedient decision", and
//! §8.3 shows the cost: the query `p(x,y,z), y = 2*x` over
//! `p(x,y,z) <- x = 3, z = x + y` is finite but unsafe under every goal
//! permutation — *unless* `p` is flattened into the caller, after which
//! the combined conjunct `{x = 3, z = x + y, y = 2*x}` has an obvious
//! safe order. "An extension of the LDL optimizer to support flattening
//! only requires adding another equivalence-preserving transformation" —
//! this module is that extension, offered as an explicit pre-processing
//! step.

use crate::error::{LdlError, Result};
use crate::literal::{Literal, Pred};
use crate::program::Program;
use crate::rule::Rule;
use crate::unify::{mgu_atoms, Subst};
use std::collections::BTreeSet;

fn apply_literal(s: &Subst, lit: &Literal) -> Literal {
    match lit {
        Literal::Atom(a) => Literal::Atom(s.apply_atom(a)),
        Literal::Builtin(b) => Literal::Builtin(crate::literal::BuiltinPred {
            op: b.op,
            lhs: s.apply(&b.lhs),
            rhs: s.apply(&b.rhs),
            span: b.span,
        }),
    }
}

/// One definition of a predicate: a rule, or a fact (empty body).
fn definitions(program: &Program, pred: Pred) -> Vec<Rule> {
    let mut defs: Vec<Rule> = program
        .rules_for(pred)
        .into_iter()
        .map(|(_, r)| r.clone())
        .collect();
    for f in &program.facts {
        if f.pred == pred {
            defs.push(Rule::fact(f.clone()));
        }
    }
    defs
}

/// Unfolds every *positive* occurrence of `pred` in the bodies of the
/// program's rules, removing `pred`'s own rules afterwards (its facts
/// stay, in case the predicate is queried directly).
///
/// Errors when `pred` is recursive (unfolding would not terminate), is
/// not derived, or occurs negated (unfolding under negation changes
/// semantics).
pub fn unfold_pred(program: &Program, pred: Pred) -> Result<Program> {
    // Rules or facts may define the predicate: a fact-only predicate
    // unfolds to constant propagation.
    let derived = program.derived_preds();
    let has_facts = program.facts.iter().any(|f| f.pred == pred);
    if !derived.contains(&pred) && !has_facts {
        return Err(LdlError::Validation(format!(
            "{pred} has no definitions (rules or facts) to unfold"
        )));
    }
    let graph = crate::depgraph::DependencyGraph::build(program);
    if graph.is_recursive(pred) {
        return Err(LdlError::Validation(format!(
            "{pred} is recursive; unfolding it would not terminate"
        )));
    }
    for rule in &program.rules {
        for a in rule.body.iter().filter_map(Literal::as_atom) {
            if a.negated && a.pred == pred {
                return Err(LdlError::Validation(format!(
                    "{pred} occurs negated; unfolding under negation is unsound"
                )));
            }
        }
    }
    let defs = definitions(program, pred);
    let mut out = Program {
        rules: Vec::new(),
        facts: program.facts.clone(),
    };
    let mut counter = 0usize;
    for rule in &program.rules {
        if rule.head.pred == pred {
            continue; // the definition itself disappears
        }
        for unfolded in unfold_rule(rule, pred, &defs, &mut counter) {
            out.rules.push(unfolded);
        }
    }
    Ok(out)
}

/// All ways of replacing every occurrence of `pred` in `rule` by one of
/// its definitions (cross product over occurrences; empty when some
/// occurrence matches no definition).
fn unfold_rule(rule: &Rule, pred: Pred, defs: &[Rule], counter: &mut usize) -> Vec<Rule> {
    let positions: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            l.as_atom()
                .map(|a| !a.negated && a.pred == pred)
                .unwrap_or(false)
        })
        .map(|(i, _)| i)
        .collect();
    if positions.is_empty() {
        return vec![rule.clone()];
    }
    // Expand one occurrence at a time, re-scanning (simple and correct;
    // positions never grow for a nonrecursive pred's definitions).
    let mut results = Vec::new();
    let occ = positions[0];
    let call = rule.body[occ]
        .as_atom()
        .expect("occurrence is an atom")
        .clone();
    for def in defs {
        *counter += 1;
        let fresh = def.standardized(*counter);
        let Some(s) = mgu_atoms(&call, &fresh.head) else {
            continue;
        };
        let mut body: Vec<Literal> = Vec::with_capacity(rule.body.len() - 1 + fresh.body.len());
        for (i, lit) in rule.body.iter().enumerate() {
            if i == occ {
                body.extend(fresh.body.iter().map(|l| apply_literal(&s, l)));
            } else {
                body.push(apply_literal(&s, lit));
            }
        }
        let new_rule = Rule::new(s.apply_atom(&rule.head), body);
        // Recurse to expand any remaining occurrences.
        results.extend(unfold_rule(&new_rule, pred, defs, counter));
    }
    results
}

/// Fully flattens the program with respect to `root`: repeatedly unfolds
/// every nonrecursive derived predicate other than `root` that is still
/// referenced, until only base predicates, builtins, and recursive
/// predicates remain in rule bodies.
pub fn flatten(program: &Program, root: Pred) -> Result<Program> {
    let mut current = program.clone();
    for _ in 0..current.all_preds().len() + 1 {
        let graph = crate::depgraph::DependencyGraph::build(&current);
        let derived = current.derived_preds();
        let candidates: BTreeSet<Pred> = current
            .rules
            .iter()
            .flat_map(|r| r.body_atoms())
            .filter(|a| !a.negated)
            .map(|a| a.pred)
            .filter(|p| *p != root && derived.contains(p) && !graph.is_recursive(*p))
            .collect();
        let Some(&next) = candidates.iter().next() else {
            return Ok(current);
        };
        current = unfold_pred(&current, next)?;
    }
    Err(LdlError::Validation("flattening did not converge".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn unfold_splices_definition_body() {
        let p = parse_program(
            r#"
            q(X, Z) <- p(X, Y), b(Y, Z).
            p(X, Y) <- c(X, W), d(W, Y).
            "#,
        )
        .unwrap();
        let u = unfold_pred(&p, Pred::new("p", 2)).unwrap();
        assert_eq!(u.rules.len(), 1);
        let r = &u.rules[0];
        assert_eq!(r.head.pred.name.as_str(), "q");
        assert_eq!(r.body.len(), 3); // c, d, b
        let names: Vec<&str> = r.body_atoms().map(|a| a.pred.name.as_str()).collect();
        assert_eq!(names, vec!["c", "d", "b"]);
    }

    #[test]
    fn unfold_multiplies_rules_over_union() {
        // p has two definitions: the caller splits into two rules (the
        // join distributes over the union — the paper's Figure 4-2).
        let p = parse_program(
            r#"
            q(X) <- p(X), b(X).
            p(X) <- c(X).
            p(X) <- d(X).
            "#,
        )
        .unwrap();
        let u = unfold_pred(&p, Pred::new("p", 1)).unwrap();
        assert_eq!(u.rules.len(), 2);
    }

    #[test]
    fn unfold_handles_multiple_occurrences() {
        let p = parse_program(
            r#"
            q(X, Y) <- p(X), p(Y).
            p(X) <- c(X).
            p(X) <- d(X).
            "#,
        )
        .unwrap();
        let u = unfold_pred(&p, Pred::new("p", 1)).unwrap();
        assert_eq!(u.rules.len(), 4); // 2 x 2 choices
    }

    #[test]
    fn unfold_unifies_constants() {
        let p = parse_program(
            r#"
            q(Y) <- p(3, Y).
            p(X, Y) <- e(X, Y).
            p(9, z9) <- marker(9).
            "#,
        )
        .unwrap();
        let u = unfold_pred(&p, Pred::new("p", 2)).unwrap();
        // The second definition's head p(9, z9) does not unify with
        // p(3, Y): only one unfolded rule survives.
        assert_eq!(u.rules.len(), 1);
        assert_eq!(
            u.rules[0].body[0].as_atom().unwrap().args[0],
            crate::Term::int(3)
        );
    }

    #[test]
    fn unfold_facts_ground_the_rule() {
        let p = parse_program(
            r#"
            q(Y) <- p(Y), b(Y).
            p(1). p(2).
            "#,
        )
        .unwrap();
        let u = unfold_pred(&p, Pred::new("p", 1)).unwrap();
        assert_eq!(u.rules.len(), 2);
        assert_eq!(u.rules[0].to_string(), "q(1) <- b(1).");
        assert_eq!(u.rules[1].to_string(), "q(2) <- b(2).");
    }

    #[test]
    fn recursive_pred_rejected() {
        let p = parse_program(
            r#"
            q(X) <- tc(X, X).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), e(Z, Y).
            "#,
        )
        .unwrap();
        assert!(unfold_pred(&p, Pred::new("tc", 2)).is_err());
    }

    #[test]
    fn negated_occurrence_rejected() {
        let p = parse_program(
            r#"
            q(X) <- b(X), ~p(X).
            p(X) <- c(X).
            "#,
        )
        .unwrap();
        assert!(unfold_pred(&p, Pred::new("p", 1)).is_err());
    }

    #[test]
    fn flatten_reaches_base_predicates() {
        let p = parse_program(
            r#"
            top(X) <- mid(X), b1(X).
            mid(X) <- low(X), b2(X).
            low(X) <- b3(X).
            "#,
        )
        .unwrap();
        let f = flatten(&p, Pred::new("top", 1)).unwrap();
        assert_eq!(f.rules.len(), 1);
        let names: Vec<&str> = f.rules[0]
            .body_atoms()
            .map(|a| a.pred.name.as_str())
            .collect();
        assert_eq!(names, vec!["b3", "b2", "b1"]);
    }

    #[test]
    fn flatten_stops_at_recursion() {
        let p = parse_program(
            r#"
            top(X) <- mid(X).
            mid(X) <- tc(X, X).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), e(Z, Y).
            "#,
        )
        .unwrap();
        let f = flatten(&p, Pred::new("top", 1)).unwrap();
        // mid unfolded, tc untouched.
        let top_rules: Vec<&Rule> = f
            .rules
            .iter()
            .filter(|r| r.head.pred.name.as_str() == "top")
            .collect();
        assert_eq!(top_rules.len(), 1);
        assert_eq!(
            top_rules[0].body_atoms().next().unwrap().pred.name.as_str(),
            "tc"
        );
        assert_eq!(f.rules.len(), 3);
    }

    #[test]
    fn paper_8_3_flattening_rescue_shape() {
        // q(X, Y, Z) <- p(X, Y, Z), Y = 2 * X   over
        // p(X, Y, Z) <- X = 3, Z = X + Y.
        // After unfolding p, the conjunct {X=3, Z=X+Y, Y=2*X} admits the
        // safe order X=3; Y=2*X; Z=X+Y.
        let p = parse_program(
            r#"
            q(X, Y, Z) <- p(X, Y, Z), Y = 2 * X.
            p(X, Y, Z) <- X = 3, Z = X + Y.
            "#,
        )
        .unwrap();
        let u = unfold_pred(&p, Pred::new("p", 3)).unwrap();
        assert_eq!(u.rules.len(), 1);
        let rule = &u.rules[0];
        assert_eq!(rule.body.len(), 3);
        // A safe order now exists where none existed before.
        use crate::binding::Adornment;
        let before = &p.rules[0];
        let after = rule;
        let free = Adornment::all_free(3);
        // (find_safe_order lives in ldl-optimizer; here we just verify the
        // unfold produced pure builtins which that analysis accepts —
        // the full round-trip is tested in the optimizer crate.)
        assert!(after.body.iter().all(|l| l.is_builtin()));
        assert!(!before.body.iter().all(|l| l.is_builtin()));
        let _ = free;
    }
}
