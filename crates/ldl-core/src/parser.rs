//! Concrete-syntax parser for LDL programs.
//!
//! The accepted syntax follows the paper's examples:
//!
//! ```text
//! % comments run to end of line
//! up(1, 2).                                   % ground fact
//! sg(X, Y) <- flat(X, Y).                     % rule ( :- also accepted)
//! sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
//! p(X, Y, Z) <- X = 3, Z = X + Y.             % evaluable predicates
//! len([], 0).
//! len([H | T], N) <- len(T, M), N = M + 1.    % lists & arithmetic
//! sg(1, Y)?                                   % query (ground arg = bound)
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` are variables;
//! lowercase identifiers are symbolic constants, predicate or function
//! names. Arithmetic (`+ - * / mod`) uses ordinary precedence and builds
//! compound terms, which the evaluator interprets inside `=` literals.

use crate::error::{LdlError, Result};
use crate::literal::{Atom, BuiltinPred, CmpOp, Literal};
use crate::program::{Program, Query};
use crate::rule::Rule;
use crate::span::Span;
use crate::term::Term;

/// A parsed compilation unit: the rule base plus any queries in the text.
#[derive(Clone, Debug, Default)]
pub struct Source {
    /// Rules and facts.
    pub program: Program,
    /// Queries (`goal?` statements), in source order.
    pub queries: Vec<Query>,
}

/// Parses a full source text into rules, facts, and queries.
pub fn parse_source(text: &str) -> Result<Source> {
    Parser::new(text)?.source()
}

/// Parses a source text, discarding any queries. Also validates the program.
pub fn parse_program(text: &str) -> Result<Program> {
    let src = parse_source(text)?;
    src.program.validate()?;
    Ok(src.program)
}

/// Parses a single query such as `sg(1, Y)?` (the trailing `?` optional).
pub fn parse_query(text: &str) -> Result<Query> {
    let mut p = Parser::new(text)?;
    let lit = p.literal()?;
    let atom = p.query_goal(lit)?;
    if p.peek_is(&Tok::Question) {
        p.bump();
    }
    p.expect_eof()?;
    Ok(Query::new(atom))
}

/// Parses a single term (used by tests and examples).
pub fn parse_term(text: &str) -> Result<Term> {
    let mut p = Parser::new(text)?;
    let t = p.expr()?;
    p.expect_eof()?;
    Ok(t)
}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String), // lowercase: constants, predicate & function names
    Var(String),   // uppercase / underscore: variables
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Question,
    Pipe,
    Tilde,
    Arrow, // <- or :-
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Eof,
}

/// One lexed token with its source extent: `[start, end)` in 1-based
/// line/column coordinates.
#[derive(Clone, Debug)]
struct LexTok {
    tok: Tok,
    line: usize,
    col: usize,
    end_line: usize,
    end_col: usize,
}

struct Parser {
    toks: Vec<LexTok>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Result<Parser> {
        Ok(Parser {
            toks: lex(text)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_is(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    /// Start position of the *next* token, as a `Span` anchor.
    fn start(&self) -> (usize, usize) {
        self.here()
    }

    /// End position of the most recently consumed token (falls back to
    /// the current token's start at the very beginning of the input).
    fn prev_end(&self) -> (usize, usize) {
        if self.pos == 0 {
            return self.here();
        }
        let t = &self.toks[self.pos - 1];
        (t.end_line, t.end_col)
    }

    /// The span from a recorded `start()` to the end of the last
    /// consumed token.
    fn span_from(&self, start: (usize, usize)) -> Span {
        let (el, ec) = self.prev_end();
        Span::range(start.0 as u32, start.1 as u32, el as u32, ec as u32)
    }

    fn err(&self, msg: String) -> LdlError {
        let (line, col) = self.here();
        LdlError::Parse { line, col, msg }
    }

    fn err_at(&self, span: Span, msg: String) -> LdlError {
        if span.is_none() {
            return self.err(msg);
        }
        LdlError::Parse {
            line: span.line as usize,
            col: span.col as usize,
            msg,
        }
    }

    /// Shared goal validation for `goal?` statements and
    /// [`parse_query`]: the goal must be a positive atom. Reports the
    /// span of the offending goal, not the cursor position.
    fn query_goal(&self, lit: Literal) -> Result<Atom> {
        match lit {
            Literal::Atom(a) if !a.negated => Ok(a),
            other => Err(self.err_at(
                other.span(),
                format!("query goal must be a positive atom, got {other}"),
            )),
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<()> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek_is(&Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn source(&mut self) -> Result<Source> {
        let mut src = Source::default();
        while !self.peek_is(&Tok::Eof) {
            self.statement(&mut src)?;
        }
        src.program.validate()?;
        Ok(src)
    }

    fn statement(&mut self, src: &mut Source) -> Result<()> {
        let start = self.start();
        let first = self.literal()?;
        match self.peek() {
            Tok::Dot => {
                self.bump();
                let head = self.head_atom(first)?;
                let span = self.span_from(start);
                src.program.push(Rule::fact(head).at(span));
                Ok(())
            }
            Tok::Question => {
                self.bump();
                let goal = self.query_goal(first)?;
                src.queries.push(Query::new(goal));
                Ok(())
            }
            Tok::Arrow => {
                self.bump();
                let head = self.head_atom(first)?;
                let mut body = vec![self.literal()?];
                while self.peek_is(&Tok::Comma) {
                    self.bump();
                    body.push(self.literal()?);
                }
                self.expect(Tok::Dot, "'.'")?;
                let span = self.span_from(start);
                src.program.push(Rule::new(head, body).at(span));
                Ok(())
            }
            other => Err(self.err(format!("expected '.', '?' or '<-', found {other:?}"))),
        }
    }

    fn head_atom(&self, lit: Literal) -> Result<Atom> {
        match lit {
            Literal::Atom(a) if !a.negated => Ok(a),
            other => Err(self.err_at(
                other.span(),
                format!("rule head must be a positive atom, got {other}"),
            )),
        }
    }

    /// literal := '~' atom | expr (cmpop expr)?
    fn literal(&mut self) -> Result<Literal> {
        let start = self.start();
        if self.peek_is(&Tok::Tilde) {
            self.bump();
            let t = self.expr()?;
            let mut atom = self.term_to_atom(t)?;
            atom.negated = true;
            atom.span = self.span_from(start);
            return Ok(Literal::Atom(atom));
        }
        let lhs = self.expr()?;
        let op = match self.peek() {
            Tok::Eq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.expr()?;
            let b = BuiltinPred::new(op, lhs, rhs).at(self.span_from(start));
            return Ok(Literal::Builtin(b));
        }
        let atom = self.term_to_atom(lhs)?.at(self.span_from(start));
        Ok(Literal::Atom(atom))
    }

    fn term_to_atom(&self, t: Term) -> Result<Atom> {
        match t {
            Term::Compound(name, args) => Ok(Atom {
                pred: crate::literal::Pred {
                    name,
                    arity: args.len(),
                },
                args,
                negated: false,
                span: Span::NONE,
            }),
            Term::Const(crate::term::Value::Sym(name)) => Ok(Atom {
                pred: crate::literal::Pred { name, arity: 0 },
                args: vec![],
                negated: false,
                span: Span::NONE,
            }),
            other => Err(self.err(format!("expected an atom, got term {other}"))),
        }
    }

    /// expr := mul (('+'|'-') mul)*
    fn expr(&mut self) -> Result<Term> {
        let mut lhs = self.mul()?;
        loop {
            let f = match self.peek() {
                Tok::Plus => "+",
                Tok::Minus => "-",
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            lhs = Term::compound(f, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    /// mul := primary (('*'|'/'|'mod') primary)*
    fn mul(&mut self) -> Result<Term> {
        let mut lhs = self.primary()?;
        loop {
            let f = match self.peek() {
                Tok::Star => "*",
                Tok::Slash => "/",
                Tok::Ident(s) if s == "mod" => "mod",
                _ => break,
            };
            self.bump();
            let rhs = self.primary()?;
            lhs = Term::compound(f, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    /// primary := int | '-' int | var | ident ['(' expr,* ')'] | list | '(' expr ')'
    fn primary(&mut self) -> Result<Term> {
        match self.bump() {
            Tok::Int(i) => Ok(Term::int(i)),
            Tok::Minus => match self.bump() {
                Tok::Int(i) => Ok(Term::int(-i)),
                other => {
                    Err(self.err(format!("expected integer after unary '-', found {other:?}")))
                }
            },
            Tok::Var(name) => Ok(Term::var(&name)),
            Tok::Ident(name) => {
                if self.peek_is(&Tok::LParen) {
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while self.peek_is(&Tok::Comma) {
                        self.bump();
                        args.push(self.expr()?);
                    }
                    self.expect(Tok::RParen, "')'")?;
                    Ok(Term::compound(&name, args))
                } else {
                    Ok(Term::sym(&name))
                }
            }
            Tok::LBracket => {
                if self.peek_is(&Tok::RBracket) {
                    self.bump();
                    return Ok(Term::list(vec![]));
                }
                let mut items = vec![self.expr()?];
                while self.peek_is(&Tok::Comma) {
                    self.bump();
                    items.push(self.expr()?);
                }
                let tail = if self.peek_is(&Tok::Pipe) {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::RBracket, "']'")?;
                Ok(match tail {
                    Some(t) => Term::list_with_tail(items, t),
                    None => Term::list(items),
                })
            }
            Tok::LBrace => {
                // Set literal {t1, ..., tn}: must be ground (a pattern
                // set would have ambiguous element order).
                if self.peek_is(&Tok::RBrace) {
                    self.bump();
                    return Ok(Term::set(vec![]));
                }
                let mut items = vec![self.expr()?];
                while self.peek_is(&Tok::Comma) {
                    self.bump();
                    items.push(self.expr()?);
                }
                self.expect(Tok::RBrace, "'}'")?;
                if let Some(bad) = items.iter().find(|t| !t.is_ground()) {
                    return Err(self.err(format!(
                        "set literals must be ground; {bad} contains variables"
                    )));
                }
                Ok(Term::set(items))
            }
            Tok::Lt => {
                // Grouping marker <t> (legal only in rule heads; the
                // program validator enforces placement).
                let inner = self.expr()?;
                self.expect(Tok::Gt, "'>'")?;
                Ok(Term::group(inner))
            }
            Tok::LParen => {
                let t = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(t)
            }
            other => Err(self.err(format!("expected a term, found {other:?}"))),
        }
    }
}

fn lex(text: &str) -> Result<Vec<LexTok>> {
    let mut toks: Vec<LexTok> = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    macro_rules! push {
        ($t:expr, $l:expr, $c:expr) => {
            // End positions are patched after the match arm advances.
            toks.push(LexTok {
                tok: $t,
                line: $l,
                col: $c,
                end_line: $l,
                end_col: $c,
            })
        };
    }
    fn advance_n(chars: &[char], i: &mut usize, line: &mut usize, col: &mut usize, n: usize) {
        for k in 0..n {
            if chars[*i + k] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        }
        *i += n;
    }
    while i < chars.len() {
        let c = chars[i];
        let (l0, c0) = (line, col);
        let len_before = toks.len();
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize, n: usize| {
            advance_n(&chars, i, line, col, n)
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance(&mut i, &mut line, &mut col, 1),
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '(' => {
                push!(Tok::LParen, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            ')' => {
                push!(Tok::RParen, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '[' => {
                push!(Tok::LBracket, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            ']' => {
                push!(Tok::RBracket, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '{' => {
                push!(Tok::LBrace, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '}' => {
                push!(Tok::RBrace, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            ',' => {
                push!(Tok::Comma, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '.' => {
                push!(Tok::Dot, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '?' => {
                push!(Tok::Question, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '|' => {
                push!(Tok::Pipe, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '~' => {
                push!(Tok::Tilde, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '+' => {
                push!(Tok::Plus, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '*' => {
                push!(Tok::Star, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '/' => {
                push!(Tok::Slash, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '-' => {
                push!(Tok::Minus, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '=' => {
                push!(Tok::Eq, l0, c0);
                advance(&mut i, &mut line, &mut col, 1);
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Tok::Ne, l0, c0);
                    advance(&mut i, &mut line, &mut col, 2);
                } else {
                    return Err(LdlError::Parse {
                        line: l0,
                        col: c0,
                        msg: "lone '!'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    push!(Tok::Arrow, l0, c0);
                    advance(&mut i, &mut line, &mut col, 2);
                } else if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Tok::Le, l0, c0);
                    advance(&mut i, &mut line, &mut col, 2);
                } else {
                    push!(Tok::Lt, l0, c0);
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Tok::Ge, l0, c0);
                    advance(&mut i, &mut line, &mut col, 2);
                } else {
                    push!(Tok::Gt, l0, c0);
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            ':' => {
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    push!(Tok::Arrow, l0, c0);
                    advance(&mut i, &mut line, &mut col, 2);
                } else {
                    return Err(LdlError::Parse {
                        line: l0,
                        col: c0,
                        msg: "lone ':'".into(),
                    });
                }
            }
            d if d.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let s: String = chars[i..j].iter().collect();
                let v: i64 = s.parse().map_err(|_| LdlError::Parse {
                    line: l0,
                    col: c0,
                    msg: format!("integer literal out of range: {s}"),
                })?;
                push!(Tok::Int(v), l0, c0);
                {
                    let n = j - i;
                    advance(&mut i, &mut line, &mut col, n);
                }
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let s: String = chars[i..j].iter().collect();
                let tok = if a.is_ascii_uppercase() || a == '_' {
                    Tok::Var(s)
                } else {
                    Tok::Ident(s)
                };
                push!(tok, l0, c0);
                {
                    let n = j - i;
                    advance(&mut i, &mut line, &mut col, n);
                }
            }
            other => {
                return Err(LdlError::Parse {
                    line: l0,
                    col: c0,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
        // Every arm that pushed a token also advanced past it, so the
        // cursor now sits just after the token: that is its end.
        if toks.len() > len_before {
            let t = toks.last_mut().expect("token just pushed");
            t.end_line = line;
            t.end_col = col;
        }
    }
    toks.push(LexTok {
        tok: Tok::Eof,
        line,
        col,
        end_line: line,
        end_col: col,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Pred;

    #[test]
    fn parses_facts_and_rules() {
        let p = parse_program(
            r#"
            up(1, 2).
            up(2, 3).
            sg(X, Y) <- flat(X, Y).
            sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
            "#,
        )
        .unwrap();
        assert_eq!(p.facts.len(), 2);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].body.len(), 3);
    }

    #[test]
    fn prolog_arrow_accepted() {
        let p = parse_program("p(X) :- q(X).").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn parses_queries() {
        let s = parse_source("sg(1, Y)? sg(X, Y)?").unwrap();
        assert_eq!(s.queries.len(), 2);
        assert_eq!(s.queries[0].adornment().to_string(), "bf");
        assert_eq!(s.queries[1].adornment().to_string(), "ff");
    }

    #[test]
    fn parse_query_helper() {
        let q = parse_query("anc(tom, X)?").unwrap();
        assert_eq!(q.pred(), Pred::new("anc", 2));
        assert_eq!(q.adornment().to_string(), "bf");
    }

    #[test]
    fn parses_builtins_and_arith() {
        let p = parse_program("p(X, Y, Z) <- X = 3, Z = X + Y, q(Y).").unwrap();
        let r = &p.rules[0];
        assert_eq!(r.body.len(), 3);
        assert!(r.body[0].is_builtin());
        let b = r.body[1].as_builtin().unwrap();
        assert_eq!(b.to_string(), "Z = +(X, Y)");
    }

    #[test]
    fn arith_precedence() {
        let t = parse_term("1 + 2 * 3").unwrap();
        assert_eq!(t.to_string(), "+(1, *(2, 3))");
        let t2 = parse_term("(1 + 2) * 3").unwrap();
        assert_eq!(t2.to_string(), "*(+(1, 2), 3)");
    }

    #[test]
    fn parses_lists() {
        let p = parse_program(
            r#"
            len([], 0).
            len([H | T], N) <- len(T, M), N = M + 1.
            "#,
        )
        .unwrap();
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].head.args[0].to_string(), "[H | T]");
    }

    #[test]
    fn parses_full_lists() {
        let t = parse_term("[1, 2, 3]").unwrap();
        let (items, tail) = t.as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert!(tail.is_none());
    }

    #[test]
    fn parses_negation() {
        let p = parse_source("ok(X) <- node(X), ~broken(X).").unwrap();
        let a = p.program.rules[0].body[1].as_atom().unwrap();
        assert!(a.negated);
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("% header\np(X) <- q(X). % trailing\n").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn negative_integers() {
        let p = parse_program("t(-5).").unwrap();
        assert_eq!(p.facts[0].args[0], Term::int(-5));
    }

    #[test]
    fn error_has_position() {
        let e = parse_program("p(X) <- q(X)").unwrap_err();
        match e {
            LdlError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_builtin_head() {
        assert!(parse_program("X = 3 <- p(X).").is_err());
    }

    #[test]
    fn zero_arity_atoms() {
        let p = parse_program("go <- p(X).").unwrap();
        assert_eq!(p.rules[0].head.pred.arity, 0);
    }

    #[test]
    fn compound_args_parse() {
        let p = parse_program("part(bike, wheel(front, spokes(32))).").unwrap();
        assert_eq!(p.facts[0].args[1].to_string(), "wheel(front, spokes(32))");
    }

    #[test]
    fn mod_operator() {
        let t = parse_term("X mod 2").unwrap();
        assert_eq!(t.to_string(), "mod(X, 2)");
    }
}
