//! Error types shared across the LDL system.

use std::fmt;

/// Any error raised by the language layer (and re-used by downstream
/// crates for validation failures).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LdlError {
    /// Concrete-syntax parse failure, with a line/column and message.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// A semantic validation failure (arity clash, unrestricted head
    /// variable, predicate both base and derived, ...).
    Validation(String),
    /// The optimizer proved the query unsafe: no ordering in the execution
    /// space has finite cost (§8.2 of the paper).
    Unsafe(String),
    /// Evaluation-time failure (type error in arithmetic, missing relation).
    Eval(String),
}

impl fmt::Display for LdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdlError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            LdlError::Validation(m) => write!(f, "validation error: {m}"),
            LdlError::Unsafe(m) => write!(f, "unsafe query: {m}"),
            LdlError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for LdlError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, LdlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = LdlError::Parse {
            line: 3,
            col: 7,
            msg: "expected ')'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected ')'");
        assert!(LdlError::Unsafe("no safe ordering".into())
            .to_string()
            .contains("unsafe"));
    }
}
