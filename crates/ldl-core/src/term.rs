//! Terms and ground values.
//!
//! LDL terms go beyond the flat constants of relational systems: they
//! include complex terms built from function symbols (hierarchies, lists,
//! heterogeneous structures — §1 of the paper). A [`Term`] is a variable, a
//! ground [`Value`], or a compound `f(t1, ..., tn)`; lists are sugar over
//! the binary functor `'.'` and the constant `nil`.

use crate::symbol::Symbol;
use std::fmt;

/// A ground scalar value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Interned symbolic constant (`tom`, `nil`, ...).
    Sym(Symbol),
}

impl Value {
    /// Symbolic constant from a string.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::intern(s))
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Sym(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

/// The list-cell functor `'.'` used by list sugar `[H|T]`.
pub fn cons_functor() -> Symbol {
    Symbol::intern(".")
}

/// The empty-list constant `nil` (concrete syntax `[]`).
pub fn nil_value() -> Value {
    Value::sym("nil")
}

/// The reserved functor for set terms `{a, b, c}` ([TZ 86]: LDL treats
/// sets as first-class complex terms). Set terms are kept sorted and
/// deduplicated so that structural equality is set equality.
pub fn set_functor() -> Symbol {
    Symbol::intern("$set")
}

/// The reserved functor marking a *grouping* argument `<X>` in a rule
/// head: the values of `X` per binding of the remaining head arguments
/// are collected into one set term.
pub fn group_functor() -> Symbol {
    Symbol::intern("$group")
}

/// An LDL term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A logic variable, named per rule (`X`, `Y1`, ...).
    Var(Symbol),
    /// A ground scalar.
    Const(Value),
    /// A complex term `f(t1, ..., tn)` with `n >= 1`.
    Compound(Symbol, Vec<Term>),
}

impl Term {
    /// Variable term from a name.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Integer constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// Symbolic constant term.
    pub fn sym(s: &str) -> Term {
        Term::Const(Value::sym(s))
    }

    /// Compound term `f(args...)`.
    pub fn compound(functor: &str, args: Vec<Term>) -> Term {
        Term::Compound(Symbol::intern(functor), args)
    }

    /// Builds a proper list term `[t1, ..., tn]` out of cons cells.
    pub fn list(items: Vec<Term>) -> Term {
        let mut tail = Term::Const(nil_value());
        for item in items.into_iter().rev() {
            tail = Term::Compound(cons_functor(), vec![item, tail]);
        }
        tail
    }

    /// A set term `{t1, ..., tn}`: sorted, deduplicated, so structural
    /// equality coincides with set equality.
    pub fn set(mut items: Vec<Term>) -> Term {
        items.sort();
        items.dedup();
        Term::Compound(set_functor(), items)
    }

    /// The elements, if this is a set term.
    pub fn as_set(&self) -> Option<&[Term]> {
        match self {
            Term::Compound(f, items) if *f == set_functor() => Some(items),
            _ => None,
        }
    }

    /// A grouping marker `<t>` (legal only in rule heads).
    pub fn group(inner: Term) -> Term {
        Term::Compound(group_functor(), vec![inner])
    }

    /// The grouped term, if this is a grouping marker.
    pub fn as_group(&self) -> Option<&Term> {
        match self {
            Term::Compound(f, items) if *f == group_functor() && items.len() == 1 => {
                Some(&items[0])
            }
            _ => None,
        }
    }

    /// Partial list `[t1, ..., tn | rest]`.
    pub fn list_with_tail(items: Vec<Term>, rest: Term) -> Term {
        let mut tail = rest;
        for item in items.into_iter().rev() {
            tail = Term::Compound(cons_functor(), vec![item, tail]);
        }
        tail
    }

    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) => true,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// True if the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Collects the variables occurring in the term, in first-occurrence
    /// order, into `out` (duplicates are skipped).
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Const(_) => {}
            Term::Compound(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// The variables of the term in first-occurrence order.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Structural size: number of constant/variable/functor occurrences.
    /// Used by the safety analyzer as a term norm (§8: well-founded orders).
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 1,
            Term::Compound(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Maximum nesting depth (a constant or variable has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 1,
            Term::Compound(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }

    /// Decodes a cons-cell chain back into `(items, tail)`. The tail is
    /// `None` for a proper (nil-terminated) list.
    pub fn as_list(&self) -> Option<(Vec<&Term>, Option<&Term>)> {
        let cons = cons_functor();
        let nil = nil_value();
        let mut items = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::Compound(f, args) if *f == cons && args.len() == 2 => {
                    items.push(&args[0]);
                    cur = &args[1];
                }
                Term::Const(v) if *v == nil => return Some((items, None)),
                Term::Var(_) if !items.is_empty() => return Some((items, Some(cur))),
                _ if items.is_empty() => return None,
                other => return Some((items, Some(other))),
            }
        }
    }

    /// Applies `f` to every variable, rebuilding the term. Used for
    /// renaming (standardization apart) and substitution application.
    pub fn map_vars(&self, f: &mut impl FnMut(Symbol) -> Term) -> Term {
        match self {
            Term::Var(v) => f(*v),
            Term::Const(c) => Term::Const(*c),
            Term::Compound(functor, args) => {
                Term::Compound(*functor, args.iter().map(|a| a.map_vars(f)).collect())
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(items) = self.as_set() {
            write!(f, "{{")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
            return write!(f, "}}");
        }
        if let Some(inner) = self.as_group() {
            return write!(f, "<{inner}>");
        }
        if let Some((items, tail)) = self.as_list() {
            write!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
            if let Some(t) = tail {
                write!(f, " | {t}")?;
            }
            return write!(f, "]");
        }
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Compound(functor, args) => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_detection() {
        assert!(Term::int(3).is_ground());
        assert!(Term::sym("tom").is_ground());
        assert!(!Term::var("X").is_ground());
        assert!(!Term::compound("f", vec![Term::int(1), Term::var("X")]).is_ground());
        assert!(Term::compound("f", vec![Term::int(1), Term::sym("a")]).is_ground());
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let t = Term::compound(
            "f",
            vec![
                Term::var("Y"),
                Term::compound("g", vec![Term::var("X"), Term::var("Y")]),
            ],
        );
        let names: Vec<&str> = t.vars().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["Y", "X"]);
    }

    #[test]
    fn list_round_trip_display() {
        let l = Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]);
        assert_eq!(l.to_string(), "[1, 2, 3]");
        let (items, tail) = l.as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert!(tail.is_none());
    }

    #[test]
    fn partial_list_display() {
        let l = Term::list_with_tail(vec![Term::int(1)], Term::var("T"));
        assert_eq!(l.to_string(), "[1 | T]");
        let (items, tail) = l.as_list().unwrap();
        assert_eq!(items.len(), 1);
        assert!(matches!(tail, Some(Term::Var(_))));
    }

    #[test]
    fn empty_list_is_nil() {
        let l = Term::list(vec![]);
        assert_eq!(l, Term::Const(nil_value()));
    }

    #[test]
    fn size_and_depth() {
        let t = Term::compound(
            "f",
            vec![Term::compound("g", vec![Term::int(1)]), Term::var("X")],
        );
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(Term::int(7).size(), 1);
        assert_eq!(Term::int(7).depth(), 1);
    }

    #[test]
    fn map_vars_renames() {
        let t = Term::compound("f", vec![Term::var("X"), Term::int(2)]);
        let renamed = t.map_vars(&mut |v| Term::Var(Symbol::intern(&format!("{v}_1"))));
        assert_eq!(renamed.to_string(), "f(X_1, 2)");
    }

    #[test]
    fn display_compound() {
        let t = Term::compound("edge", vec![Term::sym("a"), Term::var("Y")]);
        assert_eq!(t.to_string(), "edge(a, Y)");
    }

    #[test]
    fn set_terms_normalize() {
        let a = Term::set(vec![Term::int(3), Term::int(1), Term::int(3), Term::int(2)]);
        let b = Term::set(vec![Term::int(1), Term::int(2), Term::int(3)]);
        assert_eq!(a, b, "sets are order- and duplicate-insensitive");
        assert_eq!(a.to_string(), "{1, 2, 3}");
        assert_eq!(a.as_set().unwrap().len(), 3);
    }

    #[test]
    fn empty_set_displays() {
        assert_eq!(Term::set(vec![]).to_string(), "{}");
    }

    #[test]
    fn group_marker_round_trip() {
        let g = Term::group(Term::var("P"));
        assert_eq!(g.to_string(), "<P>");
        assert_eq!(g.as_group(), Some(&Term::var("P")));
        assert!(Term::var("P").as_group().is_none());
    }
}
