//! Access-pattern collection.
//!
//! A *search signature* of a predicate is the set of argument positions
//! that are ground when the pipelined executor reaches an occurrence of
//! that predicate: exactly the `key_cols` the executor computes at its
//! probe site. The collector replays the executor's binding discipline
//! statically, literal by literal in the stored body order (the order
//! the engine evaluates after SIP permutation):
//!
//! * a **positive atom** contributes a signature — the positions whose
//!   argument terms are ground under the current bound-variable set
//!   (constants count) — and then binds all of its variables;
//! * a **builtin** binds whatever [`ldl_core::BuiltinPred::binds`] says
//!   (the unbound side of an EC equality; comparisons bind nothing);
//! * a **negated atom** is a membership test, not an index probe: it
//!   contributes no signature and binds nothing;
//! * **`member/2`** enumerates a set term, not a relation: no signature,
//!   but its element pattern's variables become bound.
//!
//! Rules always start from an empty substitution bottom-up (magic /
//! counting constants live in seed *relations*, not seeds), so the
//! collected signatures are exactly the key sets the executor can
//! request — a superset in general (the executor may scan instead of
//! probing tiny relations), never a miss.

use ldl_core::adorn::AdornedProgram;
use ldl_core::{Literal, Pred, Program, Symbol};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// The signatures of one program: per predicate, every bound-column set
/// (each sorted ascending, nonempty) some rule occurrence will search.
pub type SignatureMap = BTreeMap<Pred, BTreeSet<Vec<usize>>>;

/// Collects the search signatures of every positive atom occurrence in
/// `program`'s rule bodies, walking bodies in stored order.
pub fn collect_signatures(program: &Program) -> SignatureMap {
    let mut map = SignatureMap::new();
    let member = Pred::new("member", 2);
    for rule in &program.rules {
        let mut bound: HashSet<Symbol> = HashSet::new();
        for lit in &rule.body {
            match lit {
                Literal::Builtin(b) => {
                    for v in b.binds(&bound) {
                        bound.insert(v);
                    }
                }
                Literal::Atom(a) if a.negated => {}
                Literal::Atom(a) if a.pred == member => {
                    // member(X, S) unifies X against the set elements.
                    for v in a.vars() {
                        bound.insert(v);
                    }
                }
                Literal::Atom(a) => {
                    let sig: Vec<usize> = a
                        .args
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.vars().iter().all(|v| bound.contains(v)))
                        .map(|(i, _)| i)
                        .collect();
                    if !sig.is_empty() {
                        map.entry(a.pred).or_default().insert(sig);
                    }
                    for v in a.vars() {
                        bound.insert(v);
                    }
                }
            }
        }
    }
    map
}

/// Collects signatures from an adorned program (the optimizer's view):
/// the adorned rules are lowered to a plain program — the same lowering
/// the magic/counting rewritings start from — and walked as above, so
/// the adornment-renamed predicates (`sg_bf`, ...) each get their own
/// signature sets.
pub fn collect_adorned_signatures(adorned: &AdornedProgram) -> SignatureMap {
    collect_signatures(&adorned.to_program())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    fn sigs(text: &str, pred: &str, arity: usize) -> Vec<Vec<usize>> {
        let p = parse_program(text).unwrap();
        collect_signatures(&p)
            .get(&Pred::new(pred, arity))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    #[test]
    fn linear_tc_probes_first_column_of_the_edge() {
        // tc(X,Y) <- e(X,Z), tc(Z,Y): e is reached free (no signature),
        // tc is reached with Z bound -> signature {0}.
        let text = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";
        assert!(sigs(text, "e", 2).is_empty());
        assert_eq!(sigs(text, "tc", 2), vec![vec![0]]);
    }

    #[test]
    fn sg_probes_up_and_dn() {
        let text = "sg(X, Y) <- flat(X, Y).\n\
                    sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).";
        // up is first: free. sg sees X1 bound at position 1. dn sees Y1
        // bound at position 0.
        assert!(sigs(text, "up", 2).is_empty());
        assert_eq!(sigs(text, "sg", 2), vec![vec![1]]);
        assert_eq!(sigs(text, "dn", 2), vec![vec![0]]);
    }

    #[test]
    fn constants_are_bound_positions() {
        let text = "p(X) <- e(1, X).";
        assert_eq!(sigs(text, "e", 2), vec![vec![0]]);
    }

    #[test]
    fn repeated_predicate_accumulates_signatures() {
        let text = "p(X, Z) <- e(X, Y), e(Y, Z).\nq(A, B) <- f(A), e(A, B).";
        // Occurrence 2 of rule 1 sees Y bound at position 0; the second
        // rule sees A bound at position 0 too -> one distinct signature.
        assert_eq!(sigs(text, "e", 2), vec![vec![0]]);
    }

    #[test]
    fn builtin_equality_binds_its_output() {
        // After Y = X + 1, Y is bound, so g is probed on both columns.
        let text = "p(X, Y) <- f(X), Y = X + 1, g(X, Y).";
        assert_eq!(sigs(text, "g", 2), vec![vec![0, 1]]);
    }

    #[test]
    fn comparisons_bind_nothing() {
        let text = "p(X, Y) <- f(X), X < Y, g(X, Y).";
        // Y is still free at g despite appearing in the comparison.
        assert_eq!(sigs(text, "g", 2), vec![vec![0]]);
    }

    #[test]
    fn negated_atoms_contribute_no_signature() {
        let text = "p(X) <- f(X), ~g(X).";
        assert!(sigs(text, "g", 1).is_empty());
    }

    #[test]
    fn member_binds_but_contributes_nothing() {
        let text = "p(X) <- s(S), member(X, S), f(X).";
        assert!(sigs(text, "member", 2).is_empty());
        assert_eq!(sigs(text, "f", 1), vec![vec![0]]);
    }

    #[test]
    fn compound_terms_need_every_variable_bound() {
        // wheel(S, N) at position 1 is ground only once S and N are.
        let text = "p(B) <- size(N), style(S), part(B, wheel(S, N)).";
        assert_eq!(sigs(text, "part", 2), vec![vec![1]]);
    }
}
