//! Access-pattern collection.
//!
//! A *search signature* of a predicate is the set of argument positions
//! that are ground when the pipelined executor reaches an occurrence of
//! that predicate: exactly the `key_cols` the executor computes at its
//! probe site. The collector replays the executor's binding discipline
//! statically, literal by literal in the stored body order (the order
//! the engine evaluates after SIP permutation):
//!
//! * a **positive atom** contributes a signature — the positions whose
//!   argument terms are ground under the current bound-variable set
//!   (constants count) — and then binds all of its variables;
//! * a **builtin** binds whatever [`ldl_core::BuiltinPred::binds`] says
//!   (the unbound side of an EC equality; comparisons bind nothing);
//! * a **negated atom** is a membership test, not an index probe: it
//!   contributes no signature and binds nothing;
//! * **`member/2`** enumerates a set term, not a relation: no signature,
//!   but its element pattern's variables become bound.
//!
//! Rules always start from an empty substitution bottom-up (magic /
//! counting constants live in seed *relations*, not seeds), so the
//! collected signatures are exactly the key sets the executor can
//! request — a superset in general (the executor may scan instead of
//! probing tiny relations), never a miss.

use ldl_core::adorn::AdornedProgram;
use ldl_core::{CmpOp, Literal, Pred, Program, Rule, Symbol, Term};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// The signatures of one program: per predicate, every bound-column set
/// (each sorted ascending, nonempty) some rule occurrence will search.
pub type SignatureMap = BTreeMap<Pred, BTreeSet<Vec<usize>>>;

/// Range signatures of one program: per predicate, every
/// `(equality prefix, range column)` pair some rule occurrence can fold
/// bound inequalities into. Unlike [`SignatureMap`] entries, the
/// equality prefix may be empty (`big(X) <- n(X), X > 5` ranges over
/// the whole relation).
pub type RangeSignatureMap = BTreeMap<Pred, BTreeSet<(Vec<usize>, usize)>>;

/// One positive-atom occurrence whose trailing comparisons can become a
/// range probe: the executor probes `eq_cols` by equality and scans the
/// ordered run of `range_col`, consuming the builtins at `consumed`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeDemand {
    /// Ground argument positions at the occurrence (sorted ascending).
    pub eq_cols: Vec<usize>,
    /// The argument position the folded inequalities constrain.
    pub range_col: usize,
    /// Indices into the evaluation `order` of the consumed builtins
    /// (the contiguous run directly after the atom).
    pub consumed: Vec<usize>,
}

/// Detects a foldable range demand at `order[at]` (which must hold a
/// positive, non-`member` atom) given the variables bound beforehand.
///
/// This is the *static* mirror of the executor's runtime folding rule,
/// shared by signature collection (identity order) and the optimizer
/// (permuted orders). Only the contiguous run of builtins directly
/// after the atom in `order` is eligible — stopping at the first
/// non-consumable literal preserves error order. A builtin is
/// consumable when it is a `<,<=,>,>=` comparison with one side a bare
/// unbound variable occurring top-level in the atom and the other side
/// fully bound. The first such builtin fixes the range column; further
/// comparisons on the same variable keep folding. The runtime adds
/// checks a static pass cannot (the bound evaluates to a scalar, the
/// column population is homogeneous), so a static hit is necessary but
/// not sufficient for an actual range probe — the fallback is the
/// residual filter, never a wrong answer.
pub fn range_demand(
    body: &[Literal],
    order: &[usize],
    at: usize,
    bound: &HashSet<Symbol>,
) -> Option<RangeDemand> {
    let atom = match &body[order[at]] {
        Literal::Atom(a) if !a.negated && a.pred != Pred::new("member", 2) => a,
        _ => return None,
    };
    let eq_cols: Vec<usize> = atom
        .args
        .iter()
        .enumerate()
        .filter(|(_, t)| t.vars().iter().all(|v| bound.contains(v)))
        .map(|(i, _)| i)
        .collect();
    // The unbound top-level variables of the atom, by position.
    let var_at = |v: Symbol| {
        atom.args
            .iter()
            .position(|t| matches!(t, Term::Var(u) if *u == v))
    };
    let mut range_var: Option<Symbol> = None;
    let mut range_col = 0usize;
    let mut consumed = Vec::new();
    for (j, &pos) in order.iter().enumerate().skip(at + 1) {
        let b = match &body[pos] {
            Literal::Builtin(b) => b,
            _ => break,
        };
        if !matches!(b.op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
            break;
        }
        let ground = |t: &Term| t.vars().iter().all(|v| bound.contains(v));
        // Which side is the probe variable?
        let var_side = match (&b.lhs, &b.rhs) {
            (Term::Var(v), other) if !bound.contains(v) && ground(other) => Some(*v),
            (other, Term::Var(v)) if !bound.contains(v) && ground(other) => Some(*v),
            _ => None,
        };
        let v = match var_side {
            Some(v) if range_var.is_none() || range_var == Some(v) => v,
            _ => break,
        };
        if range_var.is_none() {
            match var_at(v) {
                Some(p) => {
                    range_var = Some(v);
                    range_col = p;
                }
                None => break,
            }
        }
        consumed.push(j);
    }
    if consumed.is_empty() {
        return None;
    }
    Some(RangeDemand {
        eq_cols,
        range_col,
        consumed,
    })
}

/// Collects equality *and* range signatures, walking each rule body in
/// the evaluation order `order_of` supplies (a permutation of
/// `0..body.len()` given the rule's index and the rule) instead of the
/// stored order. This is the re-collection API behind join-order ×
/// index-set co-optimization: after the optimizer proposes candidate
/// permutations, the demands of *those* orders — not the source
/// program's — feed the chain cover. The binding discipline is the
/// executor's, replayed over the permuted order, so for the identity
/// permutation this agrees exactly with [`collect_signatures`] and
/// [`collect_range_signatures`] (which are implemented through it).
///
/// An `order_of` result that is not a permutation of the body degrades
/// to the stored order rather than panicking: re-collection must never
/// be less robust than the identity walk.
pub fn collect_signatures_in_orders(
    program: &Program,
    order_of: &mut dyn FnMut(usize, &Rule) -> Vec<usize>,
) -> (SignatureMap, RangeSignatureMap) {
    let mut eq = SignatureMap::new();
    let mut ranges = RangeSignatureMap::new();
    let member = Pred::new("member", 2);
    for (ri, rule) in program.rules.iter().enumerate() {
        let n = rule.body.len();
        let mut order = order_of(ri, rule);
        {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            if sorted != (0..n).collect::<Vec<usize>>() {
                order = (0..n).collect();
            }
        }
        let mut bound: HashSet<Symbol> = HashSet::new();
        for (at, &li) in order.iter().enumerate() {
            match &rule.body[li] {
                Literal::Builtin(b) => {
                    for v in b.binds(&bound) {
                        bound.insert(v);
                    }
                }
                Literal::Atom(a) if a.negated => {}
                Literal::Atom(a) if a.pred == member => {
                    // member(X, S) unifies X against the set elements.
                    for v in a.vars() {
                        bound.insert(v);
                    }
                }
                Literal::Atom(a) => {
                    let sig: Vec<usize> = a
                        .args
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.vars().iter().all(|v| bound.contains(v)))
                        .map(|(i, _)| i)
                        .collect();
                    if !sig.is_empty() {
                        eq.entry(a.pred).or_default().insert(sig);
                    }
                    if let Some(d) = range_demand(&rule.body, &order, at, &bound) {
                        ranges
                            .entry(a.pred)
                            .or_default()
                            .insert((d.eq_cols, d.range_col));
                    }
                    for v in a.vars() {
                        bound.insert(v);
                    }
                }
            }
        }
    }
    (eq, ranges)
}

/// Collects the range signatures of every positive atom occurrence in
/// `program`'s rule bodies: the `(equality prefix, range column)` pairs
/// [`range_demand`] detects when bodies are walked in stored order.
pub fn collect_range_signatures(program: &Program) -> RangeSignatureMap {
    collect_signatures_in_orders(program, &mut |_, r| (0..r.body.len()).collect()).1
}

/// Collects the search signatures of every positive atom occurrence in
/// `program`'s rule bodies, walking bodies in stored order.
pub fn collect_signatures(program: &Program) -> SignatureMap {
    collect_signatures_in_orders(program, &mut |_, r| (0..r.body.len()).collect()).0
}

/// Collects signatures from an adorned program (the optimizer's view):
/// the adorned rules are lowered to a plain program — the same lowering
/// the magic/counting rewritings start from — and walked as above, so
/// the adornment-renamed predicates (`sg_bf`, ...) each get their own
/// signature sets.
pub fn collect_adorned_signatures(adorned: &AdornedProgram) -> SignatureMap {
    collect_signatures(&adorned.to_program())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    fn sigs(text: &str, pred: &str, arity: usize) -> Vec<Vec<usize>> {
        let p = parse_program(text).unwrap();
        collect_signatures(&p)
            .get(&Pred::new(pred, arity))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    #[test]
    fn linear_tc_probes_first_column_of_the_edge() {
        // tc(X,Y) <- e(X,Z), tc(Z,Y): e is reached free (no signature),
        // tc is reached with Z bound -> signature {0}.
        let text = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";
        assert!(sigs(text, "e", 2).is_empty());
        assert_eq!(sigs(text, "tc", 2), vec![vec![0]]);
    }

    #[test]
    fn sg_probes_up_and_dn() {
        let text = "sg(X, Y) <- flat(X, Y).\n\
                    sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).";
        // up is first: free. sg sees X1 bound at position 1. dn sees Y1
        // bound at position 0.
        assert!(sigs(text, "up", 2).is_empty());
        assert_eq!(sigs(text, "sg", 2), vec![vec![1]]);
        assert_eq!(sigs(text, "dn", 2), vec![vec![0]]);
    }

    #[test]
    fn constants_are_bound_positions() {
        let text = "p(X) <- e(1, X).";
        assert_eq!(sigs(text, "e", 2), vec![vec![0]]);
    }

    #[test]
    fn repeated_predicate_accumulates_signatures() {
        let text = "p(X, Z) <- e(X, Y), e(Y, Z).\nq(A, B) <- f(A), e(A, B).";
        // Occurrence 2 of rule 1 sees Y bound at position 0; the second
        // rule sees A bound at position 0 too -> one distinct signature.
        assert_eq!(sigs(text, "e", 2), vec![vec![0]]);
    }

    #[test]
    fn builtin_equality_binds_its_output() {
        // After Y = X + 1, Y is bound, so g is probed on both columns.
        let text = "p(X, Y) <- f(X), Y = X + 1, g(X, Y).";
        assert_eq!(sigs(text, "g", 2), vec![vec![0, 1]]);
    }

    #[test]
    fn comparisons_bind_nothing() {
        let text = "p(X, Y) <- f(X), X < Y, g(X, Y).";
        // Y is still free at g despite appearing in the comparison.
        assert_eq!(sigs(text, "g", 2), vec![vec![0]]);
    }

    #[test]
    fn negated_atoms_contribute_no_signature() {
        let text = "p(X) <- f(X), ~g(X).";
        assert!(sigs(text, "g", 1).is_empty());
    }

    #[test]
    fn member_binds_but_contributes_nothing() {
        let text = "p(X) <- s(S), member(X, S), f(X).";
        assert!(sigs(text, "member", 2).is_empty());
        assert_eq!(sigs(text, "f", 1), vec![vec![0]]);
    }

    #[test]
    fn compound_terms_need_every_variable_bound() {
        // wheel(S, N) at position 1 is ground only once S and N are.
        let text = "p(B) <- size(N), style(S), part(B, wheel(S, N)).";
        assert_eq!(sigs(text, "part", 2), vec![vec![1]]);
    }

    fn rsigs(text: &str, pred: &str, arity: usize) -> Vec<(Vec<usize>, usize)> {
        let p = parse_program(text).unwrap();
        collect_range_signatures(&p)
            .get(&Pred::new(pred, arity))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    #[test]
    fn range_after_equality_prefix() {
        // f reached with K bound; V constrained by two bounds.
        let text = "hit(K, V) <- m(K), f(K, V), V >= 3, V < 9.";
        assert_eq!(rsigs(text, "f", 2), vec![(vec![0], 1)]);
        assert!(rsigs(text, "m", 1).is_empty());
    }

    #[test]
    fn range_with_empty_prefix() {
        let text = "big(X) <- n(X), X > 5.";
        assert_eq!(rsigs(text, "n", 1), vec![(vec![], 0)]);
    }

    #[test]
    fn range_stops_at_first_non_consumable() {
        let p = parse_program("q(X, Y) <- f(X, Y), X > 1, Y = 2, X < 9.").unwrap();
        let order: Vec<usize> = (0..p.rules[0].body.len()).collect();
        let d = range_demand(&p.rules[0].body, &order, 0, &HashSet::new()).unwrap();
        // Only `X > 1` folds: the equality breaks the run before `X < 9`.
        assert_eq!(d.range_col, 0);
        assert_eq!(d.consumed, vec![1]);
    }

    #[test]
    fn range_requires_bound_other_side() {
        // Y is unbound when `X > Y` is reached: nothing to fold.
        let text = "q(X) <- f(X), X > Y, g(Y).";
        assert!(rsigs(text, "f", 1).is_empty());
    }

    #[test]
    fn range_variable_must_be_top_level_in_atom() {
        // X occurs only inside a compound argument: no probe column.
        let text = "q(X) <- f(w(X)), X > 1.";
        assert!(rsigs(text, "f", 1).is_empty());
    }

    #[test]
    fn comparisons_on_two_different_vars_fold_only_the_first() {
        let p = parse_program("q(X, Y) <- f(X, Y), X > 1, Y > 2.").unwrap();
        let order: Vec<usize> = (0..p.rules[0].body.len()).collect();
        let d = range_demand(&p.rules[0].body, &order, 0, &HashSet::new()).unwrap();
        assert_eq!(d.range_col, 0);
        assert_eq!(d.consumed, vec![1]);
    }

    #[test]
    fn bound_comparison_is_not_a_range_demand() {
        // Both sides bound: it's a pure filter, not a probe refinement.
        let p = parse_program("q(X) <- f(X), X > 1.").unwrap();
        let order: Vec<usize> = (0..p.rules[0].body.len()).collect();
        let bound: HashSet<Symbol> = [Symbol::intern("X")].into_iter().collect();
        assert!(range_demand(&p.rules[0].body, &order, 0, &bound).is_none());
    }

    #[test]
    fn range_demand_follows_the_given_order() {
        // Permuted order [1, 0] puts the builtin right after the atom.
        let p = parse_program("q(X) <- X > 5, n(X).").unwrap();
        let ident: Vec<usize> = vec![0, 1];
        assert!(range_demand(&p.rules[0].body, &ident, 1, &HashSet::new()).is_none());
        let perm = vec![1, 0];
        let d = range_demand(&p.rules[0].body, &perm, 0, &HashSet::new()).unwrap();
        assert_eq!(d.range_col, 0);
        assert_eq!(d.consumed, vec![1]);
    }

    #[test]
    fn collection_in_permuted_orders_sees_the_permuted_demands() {
        // Stored order reaches g free then f with both columns of g
        // bound; the reversed order probes g on column 0 instead.
        let p = parse_program("q(X, Y) <- g(X, Y), f(X, Y).").unwrap();
        let (eq, _) = collect_signatures_in_orders(&p, &mut |_, _| vec![1, 0]);
        let f = Pred::new("f", 2);
        let g = Pred::new("g", 2);
        assert!(!eq.contains_key(&f));
        assert_eq!(
            eq.get(&g).cloned().unwrap_or_default(),
            BTreeSet::from([vec![0, 1]])
        );
        // Range demands follow the permuted order too: the comparison
        // placed directly after the atom folds only in order [1, 0, 2].
        let p = parse_program("q(X) <- X > 5, n(X), m(X).").unwrap();
        let (_, rg) = collect_signatures_in_orders(&p, &mut |_, _| vec![1, 0, 2]);
        assert_eq!(
            rg.get(&Pred::new("n", 1)).cloned().unwrap_or_default(),
            BTreeSet::from([(vec![], 0)])
        );
    }

    #[test]
    fn identity_orders_agree_with_the_plain_collectors() {
        let text = "hit(K, V) <- m(K), f(K, V), V >= 3, V < 9.\n\
                    sg(X, Y) <- flat(X, Y).\n\
                    sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).";
        let p = parse_program(text).unwrap();
        let (eq, rg) = collect_signatures_in_orders(&p, &mut |_, r| (0..r.body.len()).collect());
        assert_eq!(eq, collect_signatures(&p));
        assert_eq!(rg, collect_range_signatures(&p));
    }

    #[test]
    fn malformed_order_degrades_to_stored_order() {
        let p = parse_program("q(X) <- f(X), g(X).").unwrap();
        let (eq, _) = collect_signatures_in_orders(&p, &mut |_, _| vec![0, 0]);
        assert_eq!(eq, collect_signatures(&p));
    }
}
