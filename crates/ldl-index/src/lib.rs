//! # ldl-index — automatic index selection
//!
//! The paper's cost model (§6) prices every AND node by its access
//! method, but an executor that fabricates one ad-hoc hash index per
//! distinct bound-column set pays a rebuild per (signature, relation
//! version) and gives the optimizer nothing to price one access path
//! against another. This crate makes access paths a compile-time
//! artifact:
//!
//! * [`collect`] — the **access-pattern collector**: walks a program (or
//!   an adorned program) exactly the way the pipelined executor will,
//!   extracting per predicate the set of *search signatures* — the
//!   bound-column sets its rules probe;
//! * [`cover`] — the **minimum chain cover solver**: signatures ordered
//!   by strict set inclusion form a poset; by Dilworth/Mirsky (applied
//!   to index selection by Jordan, Scholz & Subotić, "Optimal On The Fly
//!   Index Selection in Polynomial Time"), the minimal number of
//!   lexicographic orders such that every signature is a *prefix* of
//!   some order equals the size of a minimum chain cover, computable in
//!   polynomial time via maximum bipartite matching (Hopcroft–Karp);
//! * [`catalog`] — the [`IndexCatalog`]: the selected orders per
//!   predicate, with the signature → order lookup the executor performs
//!   at probe sites.
//!
//! The storage layer (`ldl-storage`) holds the ordered index structure
//! itself; the evaluator (`ldl-eval`) consults the catalog before
//! falling back to on-demand hash indexes; the optimizer
//! (`ldl-optimizer`) uses the catalog to classify base accesses as
//! full-scan / hash-probe / ordered-prefix.

pub mod catalog;
pub mod collect;
pub mod cover;

pub use catalog::IndexCatalog;
pub use collect::{
    collect_adorned_signatures, collect_range_signatures, collect_signatures,
    collect_signatures_in_orders, range_demand, RangeDemand, RangeSignatureMap, SignatureMap,
};
pub use cover::{chain_to_order, min_chain_cover, minimal_cover_size_brute_force};
