//! The index catalog: selected lexicographic orders per predicate.
//!
//! Built once per program (collect → chain-cover → lower each chain to
//! one order), then consulted by the executor at every probe site: the
//! runtime's bound-column set maps to the order serving it as a prefix,
//! or to `None` (fall back to an on-demand hash index). Lookups for
//! collected signatures are O(1); a signature the collector never saw
//! (over-approximation holes are possible in principle, not observed)
//! falls back to a prefix scan over the predicate's orders.

use crate::collect::{
    collect_range_signatures, collect_signatures, RangeSignatureMap, SignatureMap,
};
use crate::cover::{chain_to_order, min_chain_cover};
use ldl_core::{Pred, Program};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The selected ordered indexes of one program.
#[derive(Clone, Debug, Default)]
pub struct IndexCatalog {
    /// Selected column orders per predicate (one per chain).
    orders: HashMap<Pred, Vec<Vec<usize>>>,
    /// Collected signature → index into `orders[pred]`.
    by_signature: HashMap<(Pred, Vec<usize>), usize>,
    /// Collected `(equality prefix, range column)` → index into
    /// `orders[pred]` of an order serving it (prefix columns first,
    /// range column immediately after).
    by_range: HashMap<(Pred, Vec<usize>, usize), usize>,
}

/// Does order `o` serve a range probe on `range_col` after the equality
/// prefix `eq_cols` (sorted)? The first `eq_cols.len()` columns must be
/// exactly that set and the *next* column must be the range column.
fn order_serves_range(o: &[usize], eq_cols: &[usize], range_col: usize) -> bool {
    o.len() > eq_cols.len() && o[eq_cols.len()] == range_col && {
        let mut prefix = o[..eq_cols.len()].to_vec();
        prefix.sort_unstable();
        prefix == eq_cols
    }
}

impl IndexCatalog {
    /// Collects the program's search signatures (equality and range)
    /// and solves the minimum chain cover per predicate.
    pub fn build(program: &Program) -> IndexCatalog {
        IndexCatalog::from_signature_maps(
            &collect_signatures(program),
            &collect_range_signatures(program),
        )
    }

    /// Catalog from an explicit signature map (exposed for tests and
    /// for callers that collect from an adorned program).
    pub fn from_signatures(map: &SignatureMap) -> IndexCatalog {
        IndexCatalog::from_signature_maps(map, &RangeSignatureMap::new())
    }

    /// Catalog from explicit equality and range signature maps. Range
    /// demands feed the chain cover as synthetic `E ∪ {r}` signatures —
    /// so `p` probed on `{0}` equality and ranged on column 1 after
    /// prefix `{0}` still shares one order `[0, 1]` — but only real
    /// equality signatures register in the O(1) lookup table (the
    /// synthetic sets are not key sets the executor probes by
    /// equality). Any demand the cover happens to lower with the range
    /// column *not* directly after its prefix gets a dedicated
    /// appended order, so every collected demand is served.
    pub fn from_signature_maps(map: &SignatureMap, ranges: &RangeSignatureMap) -> IndexCatalog {
        let mut catalog = IndexCatalog::default();
        let preds: BTreeSet<Pred> = map.keys().chain(ranges.keys()).copied().collect();
        for pred in preds {
            let real: BTreeSet<Vec<usize>> = map.get(&pred).cloned().unwrap_or_default();
            let mut all = real.clone();
            if let Some(demands) = ranges.get(&pred) {
                for (e, r) in demands {
                    let mut sig = e.clone();
                    sig.push(*r);
                    sig.sort_unstable();
                    all.insert(sig);
                }
            }
            let sigs: Vec<Vec<usize>> = all.iter().cloned().collect();
            let chains = min_chain_cover(&sigs);
            let mut orders = Vec::with_capacity(chains.len());
            for chain in &chains {
                let oi = orders.len();
                orders.push(chain_to_order(chain));
                for sig in chain {
                    if real.contains(sig) {
                        catalog.by_signature.insert((pred, sig.clone()), oi);
                    }
                }
            }
            if let Some(demands) = ranges.get(&pred) {
                for (e, r) in demands {
                    let oi = match orders.iter().position(|o| order_serves_range(o, e, *r)) {
                        Some(oi) => oi,
                        None => {
                            let mut o = e.clone();
                            o.push(*r);
                            orders.push(o);
                            orders.len() - 1
                        }
                    };
                    catalog.by_range.insert((pred, e.clone(), *r), oi);
                }
            }
            catalog.orders.insert(pred, orders);
        }
        catalog
    }

    /// The selected orders for `pred` (empty slice when none).
    pub fn orders(&self, pred: Pred) -> &[Vec<usize>] {
        self.orders.get(&pred).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The order serving the bound-column set `key_cols` (sorted
    /// ascending) as a prefix, if any.
    pub fn lookup(&self, pred: Pred, key_cols: &[usize]) -> Option<&[usize]> {
        if let Some(&oi) = self.by_signature.get(&(pred, key_cols.to_vec())) {
            return Some(&self.orders[&pred][oi]);
        }
        // Uncollected signature: any order whose first |key_cols|
        // columns are exactly that set still serves it.
        self.orders.get(&pred).and_then(|orders| {
            orders
                .iter()
                .find(|o| {
                    o.len() >= key_cols.len() && {
                        let mut prefix = o[..key_cols.len()].to_vec();
                        prefix.sort_unstable();
                        prefix == key_cols
                    }
                })
                .map(|o| o.as_slice())
        })
    }

    /// The order serving a range probe on `range_col` after the
    /// equality prefix `eq_cols` (sorted ascending), if any: the order
    /// starts with exactly the prefix columns and lists `range_col`
    /// next, so the probe is one `equal_run` plus two binary searches.
    pub fn lookup_range(
        &self,
        pred: Pred,
        eq_cols: &[usize],
        range_col: usize,
    ) -> Option<&[usize]> {
        if let Some(&oi) = self.by_range.get(&(pred, eq_cols.to_vec(), range_col)) {
            return Some(&self.orders[&pred][oi]);
        }
        // Uncollected demand: scan for any order that serves it.
        self.orders.get(&pred).and_then(|orders| {
            orders
                .iter()
                .find(|o| order_serves_range(o, eq_cols, range_col))
                .map(|o| o.as_slice())
        })
    }

    /// A catalog equal to `self` except that every predicate `winner`
    /// has orders for takes its orders *and* lookup tables wholesale
    /// from `winner`. This is how a co-optimized index set overlays the
    /// executor's self-built catalog: the winner's per-predicate
    /// decisions replace the defaults, while predicates the winner
    /// never considered (magic-renamed adorned predicates of the
    /// rewritten program, for instance) keep their built orders.
    pub fn overridden_by(&self, winner: &IndexCatalog) -> IndexCatalog {
        let mut out = self.clone();
        for (&pred, orders) in &winner.orders {
            out.orders.insert(pred, orders.clone());
            out.by_signature.retain(|(p, _), _| *p != pred);
            out.by_range.retain(|(p, _, _), _| *p != pred);
        }
        for ((p, sig), &oi) in &winner.by_signature {
            out.by_signature.insert((*p, sig.clone()), oi);
        }
        for ((p, e, r), &oi) in &winner.by_range {
            out.by_range.insert((*p, e.clone(), *r), oi);
        }
        out
    }

    /// Deterministic snapshot of the selected orders — per predicate
    /// (sorted), the set of column orders — for display and for
    /// comparing two catalogs' index sets.
    pub fn orders_by_pred(&self) -> BTreeMap<Pred, BTreeSet<Vec<usize>>> {
        self.orders
            .iter()
            .map(|(&p, os)| (p, os.iter().cloned().collect()))
            .collect()
    }

    /// Total number of selected orders across all predicates.
    pub fn total_orders(&self) -> usize {
        self.orders.values().map(|v| v.len()).sum()
    }

    /// Number of distinct collected signatures across all predicates.
    pub fn total_signatures(&self) -> usize {
        self.by_signature.len()
    }

    /// Predicates with at least one selected order.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.orders.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    #[test]
    fn tc_catalog_has_one_order_for_tc() {
        let p = parse_program("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).").unwrap();
        let c = IndexCatalog::build(&p);
        assert_eq!(c.orders(Pred::new("tc", 2)), &[vec![0]]);
        assert!(c.orders(Pred::new("e", 2)).is_empty());
        assert_eq!(c.lookup(Pred::new("tc", 2), &[0]), Some(&[0usize][..]));
        assert_eq!(c.lookup(Pred::new("tc", 2), &[1]), None);
    }

    #[test]
    fn nested_signatures_share_one_order() {
        // p probed on {0} in one rule and {0,1} in another: one chain,
        // one order [0, 1], both lookups hit it.
        let text = "a(X, Z) <- f(X), p(X, Z).\n\
                    b(X, Y) <- f(X), g(Y), p(X, Y).";
        let prog = parse_program(text).unwrap();
        let c = IndexCatalog::build(&prog);
        let p = Pred::new("p", 2);
        assert_eq!(c.orders(p).len(), 1);
        assert_eq!(c.lookup(p, &[0]), Some(&[0usize, 1][..]));
        assert_eq!(c.lookup(p, &[0, 1]), Some(&[0usize, 1][..]));
        assert_eq!(c.total_signatures(), 2); // p:{0} and p:{0,1}; f and g are reached free
    }

    #[test]
    fn uncollected_signature_falls_back_to_prefix_scan() {
        let p = parse_program("a(X, Z) <- f(X), p(X, Z).").unwrap();
        let c = IndexCatalog::build(&p);
        // {0} was collected; a hypothetical longer key {0,1} was not,
        // but order [0] cannot serve it — lookup must miss...
        assert_eq!(c.lookup(Pred::new("p", 2), &[0, 1]), None);
        // ...while the recorded prefix hits.
        assert!(c.lookup(Pred::new("p", 2), &[0]).is_some());
    }

    #[test]
    fn unknown_pred_is_empty() {
        let c = IndexCatalog::default();
        assert!(c.orders(Pred::new("nope", 3)).is_empty());
        assert!(c.lookup(Pred::new("nope", 3), &[0]).is_none());
        assert!(c.lookup_range(Pred::new("nope", 3), &[], 0).is_none());
        assert_eq!(c.total_orders(), 0);
    }

    #[test]
    fn range_demand_shares_the_equality_chain() {
        // f probed on {0} equality in one rule, ranged on column 1
        // after prefix {0} in another: one order [0, 1] serves both.
        let text = "a(K, V) <- m(K), f(K, V).\n\
                    b(K, V) <- m(K), f(K, V), V > 3.";
        let prog = parse_program(text).unwrap();
        let c = IndexCatalog::build(&prog);
        let f = Pred::new("f", 2);
        assert_eq!(c.orders(f), &[vec![0, 1]]);
        assert_eq!(c.lookup(f, &[0]), Some(&[0usize, 1][..]));
        assert_eq!(c.lookup_range(f, &[0], 1), Some(&[0usize, 1][..]));
        // Only f:{0} is a collected equality signature; the synthetic
        // {0,1} set from the range demand does not register.
        assert_eq!(c.total_signatures(), 1);
    }

    #[test]
    fn empty_prefix_range_demand_gets_an_order() {
        let prog = parse_program("big(X) <- n(X), X > 5.").unwrap();
        let c = IndexCatalog::build(&prog);
        let n = Pred::new("n", 1);
        assert_eq!(c.lookup_range(n, &[], 0), Some(&[0usize][..]));
        // No equality signature was collected for n (the order exists
        // purely for the range demand).
        assert_eq!(c.total_signatures(), 0);
    }

    #[test]
    fn unserved_demand_gets_a_dedicated_appended_order() {
        use crate::collect::RangeSignatureMap;
        use std::collections::BTreeSet;
        // Force a cover that lowers {0,1} with 1 first: equality sigs
        // {1} ⊂ {0,1} chain to order [1, 0], which cannot serve a range
        // on column 1 after prefix {0}.
        let p = Pred::new("p", 2);
        let mut eq = SignatureMap::new();
        eq.insert(p, BTreeSet::from([vec![1], vec![0, 1]]));
        let mut ranges = RangeSignatureMap::new();
        ranges.insert(p, BTreeSet::from([(vec![0], 1)]));
        let c = IndexCatalog::from_signature_maps(&eq, &ranges);
        assert_eq!(c.lookup_range(p, &[0], 1), Some(&[0usize, 1][..]));
        // Both equality signatures still hit the chain order.
        assert_eq!(c.lookup(p, &[1]), Some(&[1usize, 0][..]));
        assert_eq!(c.lookup(p, &[0, 1]), Some(&[1usize, 0][..]));
    }

    #[test]
    fn override_replaces_per_pred_and_keeps_the_rest() {
        // Base catalog: tc:{0} (from the recursive rule) and e free.
        let p = parse_program("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).").unwrap();
        let base = IndexCatalog::build(&p);
        // Winner: e probed on {1} (some permuted candidate's demand),
        // silent about tc.
        let e = Pred::new("e", 2);
        let mut eq = SignatureMap::new();
        eq.insert(e, BTreeSet::from([vec![1]]));
        let winner = IndexCatalog::from_signatures(&eq);
        let merged = base.overridden_by(&winner);
        assert_eq!(merged.lookup(e, &[1]), Some(&[1usize][..]));
        // tc keeps its built order; e's old (empty) entry is replaced.
        assert_eq!(merged.lookup(Pred::new("tc", 2), &[0]), Some(&[0usize][..]));
        let obp = merged.orders_by_pred();
        assert_eq!(obp[&e], BTreeSet::from([vec![1]]));
    }
}
