//! The index catalog: selected lexicographic orders per predicate.
//!
//! Built once per program (collect → chain-cover → lower each chain to
//! one order), then consulted by the executor at every probe site: the
//! runtime's bound-column set maps to the order serving it as a prefix,
//! or to `None` (fall back to an on-demand hash index). Lookups for
//! collected signatures are O(1); a signature the collector never saw
//! (over-approximation holes are possible in principle, not observed)
//! falls back to a prefix scan over the predicate's orders.

use crate::collect::{collect_signatures, SignatureMap};
use crate::cover::{chain_to_order, min_chain_cover};
use ldl_core::{Pred, Program};
use std::collections::HashMap;

/// The selected ordered indexes of one program.
#[derive(Clone, Debug, Default)]
pub struct IndexCatalog {
    /// Selected column orders per predicate (one per chain).
    orders: HashMap<Pred, Vec<Vec<usize>>>,
    /// Collected signature → index into `orders[pred]`.
    by_signature: HashMap<(Pred, Vec<usize>), usize>,
}

impl IndexCatalog {
    /// Collects the program's search signatures and solves the minimum
    /// chain cover per predicate.
    pub fn build(program: &Program) -> IndexCatalog {
        IndexCatalog::from_signatures(&collect_signatures(program))
    }

    /// Catalog from an explicit signature map (exposed for tests and
    /// for callers that collect from an adorned program).
    pub fn from_signatures(map: &SignatureMap) -> IndexCatalog {
        let mut catalog = IndexCatalog::default();
        for (&pred, sig_set) in map {
            let sigs: Vec<Vec<usize>> = sig_set.iter().cloned().collect();
            let chains = min_chain_cover(&sigs);
            let mut orders = Vec::with_capacity(chains.len());
            for chain in &chains {
                let oi = orders.len();
                orders.push(chain_to_order(chain));
                for sig in chain {
                    catalog.by_signature.insert((pred, sig.clone()), oi);
                }
            }
            catalog.orders.insert(pred, orders);
        }
        catalog
    }

    /// The selected orders for `pred` (empty slice when none).
    pub fn orders(&self, pred: Pred) -> &[Vec<usize>] {
        self.orders.get(&pred).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The order serving the bound-column set `key_cols` (sorted
    /// ascending) as a prefix, if any.
    pub fn lookup(&self, pred: Pred, key_cols: &[usize]) -> Option<&[usize]> {
        if let Some(&oi) = self.by_signature.get(&(pred, key_cols.to_vec())) {
            return Some(&self.orders[&pred][oi]);
        }
        // Uncollected signature: any order whose first |key_cols|
        // columns are exactly that set still serves it.
        self.orders.get(&pred).and_then(|orders| {
            orders
                .iter()
                .find(|o| {
                    o.len() >= key_cols.len() && {
                        let mut prefix = o[..key_cols.len()].to_vec();
                        prefix.sort_unstable();
                        prefix == key_cols
                    }
                })
                .map(|o| o.as_slice())
        })
    }

    /// Total number of selected orders across all predicates.
    pub fn total_orders(&self) -> usize {
        self.orders.values().map(|v| v.len()).sum()
    }

    /// Number of distinct collected signatures across all predicates.
    pub fn total_signatures(&self) -> usize {
        self.by_signature.len()
    }

    /// Predicates with at least one selected order.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.orders.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    #[test]
    fn tc_catalog_has_one_order_for_tc() {
        let p = parse_program("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).").unwrap();
        let c = IndexCatalog::build(&p);
        assert_eq!(c.orders(Pred::new("tc", 2)), &[vec![0]]);
        assert!(c.orders(Pred::new("e", 2)).is_empty());
        assert_eq!(c.lookup(Pred::new("tc", 2), &[0]), Some(&[0usize][..]));
        assert_eq!(c.lookup(Pred::new("tc", 2), &[1]), None);
    }

    #[test]
    fn nested_signatures_share_one_order() {
        // p probed on {0} in one rule and {0,1} in another: one chain,
        // one order [0, 1], both lookups hit it.
        let text = "a(X, Z) <- f(X), p(X, Z).\n\
                    b(X, Y) <- f(X), g(Y), p(X, Y).";
        let prog = parse_program(text).unwrap();
        let c = IndexCatalog::build(&prog);
        let p = Pred::new("p", 2);
        assert_eq!(c.orders(p).len(), 1);
        assert_eq!(c.lookup(p, &[0]), Some(&[0usize, 1][..]));
        assert_eq!(c.lookup(p, &[0, 1]), Some(&[0usize, 1][..]));
        assert_eq!(c.total_signatures(), 2); // p:{0} and p:{0,1}; f and g are reached free
    }

    #[test]
    fn uncollected_signature_falls_back_to_prefix_scan() {
        let p = parse_program("a(X, Z) <- f(X), p(X, Z).").unwrap();
        let c = IndexCatalog::build(&p);
        // {0} was collected; a hypothetical longer key {0,1} was not,
        // but order [0] cannot serve it — lookup must miss...
        assert_eq!(c.lookup(Pred::new("p", 2), &[0, 1]), None);
        // ...while the recorded prefix hits.
        assert!(c.lookup(Pred::new("p", 2), &[0]).is_some());
    }

    #[test]
    fn unknown_pred_is_empty() {
        let c = IndexCatalog::default();
        assert!(c.orders(Pred::new("nope", 3)).is_empty());
        assert!(c.lookup(Pred::new("nope", 3), &[0]).is_none());
        assert_eq!(c.total_orders(), 0);
    }
}
