//! Minimum chain cover over the search-signature lattice.
//!
//! Signatures (sets of bound columns) are partially ordered by strict
//! inclusion. A *chain* S₁ ⊂ S₂ ⊂ … ⊂ Sₖ corresponds to one
//! lexicographic index order — the columns of S₁ (ascending), then
//! S₂ ∖ S₁ (ascending), and so on — under which every Sᵢ is exactly the
//! set of the order's first |Sᵢ| columns, i.e. every signature in the
//! chain is served by a *prefix probe* of the same ordered index. The
//! minimum number of indexes covering all signatures is therefore a
//! minimum chain cover of the poset, which by Dilworth's theorem (via
//! Fulkerson's reduction) equals `n − |maximum matching|` in the
//! bipartite graph with an edge u → v whenever `sig(u) ⊂ sig(v)`. The
//! matching is computed with Hopcroft–Karp in O(E·√V) — polynomial,
//! exactly the result of Jordan, Scholz & Subotić ("Optimal On The Fly
//! Index Selection in Polynomial Time") this module reproduces.

const NIL: usize = usize::MAX;

/// Is `a` a strict subset of `b`? Both sorted ascending.
fn strict_subset(a: &[usize], b: &[usize]) -> bool {
    if a.len() >= b.len() {
        return false;
    }
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Hopcroft–Karp maximum bipartite matching. `adj[u]` lists the right
/// vertices of left vertex `u`; returns `match_left` (right partner of
/// each left vertex or [`NIL`]).
fn hopcroft_karp(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    let mut match_left = vec![NIL; n_left];
    let mut match_right = vec![NIL; n_right];
    let mut dist = vec![0usize; n_left];

    // BFS layering from unmatched left vertices; true if an augmenting
    // path exists.
    let bfs = |match_left: &[usize], match_right: &[usize], dist: &mut [usize]| -> bool {
        let mut queue = std::collections::VecDeque::new();
        for u in 0..n_left {
            if match_left[u] == NIL {
                dist[u] = 0;
                queue.push_back(u);
            } else {
                dist[u] = usize::MAX;
            }
        }
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                match match_right[v] {
                    NIL => found = true,
                    w if dist[w] == usize::MAX => {
                        dist[w] = dist[u] + 1;
                        queue.push_back(w);
                    }
                    _ => {}
                }
            }
        }
        found
    };

    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        match_left: &mut [usize],
        match_right: &mut [usize],
        dist: &mut [usize],
    ) -> bool {
        for i in 0..adj[u].len() {
            let v = adj[u][i];
            let w = match_right[v];
            if w == NIL || (dist[w] == dist[u] + 1 && dfs(w, adj, match_left, match_right, dist)) {
                match_left[u] = v;
                match_right[v] = u;
                return true;
            }
        }
        dist[u] = usize::MAX;
        false
    }

    while bfs(&match_left, &match_right, &mut dist) {
        for u in 0..n_left {
            if match_left[u] == NIL {
                dfs(u, adj, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }
    match_left
}

/// Computes a minimum chain cover of `sigs` (each sorted ascending,
/// distinct). Returns the chains, each ascending by strict inclusion;
/// every input signature appears in exactly one chain. The number of
/// chains is minimal (Dilworth).
pub fn min_chain_cover(sigs: &[Vec<usize>]) -> Vec<Vec<Vec<usize>>> {
    let n = sigs.len();
    debug_assert!(
        sigs.iter().all(|s| s.windows(2).all(|w| w[0] < w[1])),
        "signatures must be sorted"
    );
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            (0..n)
                .filter(|&v| strict_subset(&sigs[u], &sigs[v]))
                .collect()
        })
        .collect();
    let match_left = hopcroft_karp(n, n, &adj);
    let mut has_pred = vec![false; n];
    for &v in &match_left {
        if v != NIL {
            has_pred[v] = true;
        }
    }
    let mut chains = Vec::new();
    for (start, &covered) in has_pred.iter().enumerate() {
        if covered {
            continue;
        }
        let mut chain = Vec::new();
        let mut u = start;
        loop {
            chain.push(sigs[u].clone());
            match match_left[u] {
                NIL => break,
                v => u = v,
            }
        }
        chains.push(chain);
    }
    chains
}

/// Lowers one chain S₁ ⊂ … ⊂ Sₖ to its lexicographic index order:
/// columns of S₁ ascending, then each Sᵢ₊₁ ∖ Sᵢ ascending. Every Sᵢ is
/// the set of the first |Sᵢ| columns of the result.
pub fn chain_to_order(chain: &[Vec<usize>]) -> Vec<usize> {
    let mut order: Vec<usize> = Vec::new();
    for sig in chain {
        let mut fresh: Vec<usize> = sig.iter().copied().filter(|c| !order.contains(c)).collect();
        fresh.sort_unstable();
        order.extend(fresh);
    }
    order
}

/// Exponential-time oracle for tests: the true minimum number of chains
/// covering `sigs`, found by backtracking over chain assignments.
pub fn minimal_cover_size_brute_force(sigs: &[Vec<usize>]) -> usize {
    fn comparable(a: &[usize], b: &[usize]) -> bool {
        strict_subset(a, b) || strict_subset(b, a) || a == b
    }
    // Assign signatures one by one to chains; a chain stays valid iff it
    // is totally ordered by inclusion.
    fn go(sigs: &[Vec<usize>], i: usize, chains: &mut Vec<Vec<usize>>, best: &mut usize) {
        if chains.len() >= *best {
            return; // cannot beat the incumbent
        }
        if i == sigs.len() {
            *best = chains.len();
            return;
        }
        for c in 0..chains.len() {
            if chains[c].iter().all(|&j| comparable(&sigs[j], &sigs[i])) {
                chains[c].push(i);
                go(sigs, i + 1, chains, best);
                chains[c].pop();
            }
        }
        chains.push(vec![i]);
        go(sigs, i + 1, chains, best);
        chains.pop();
    }
    if sigs.is_empty() {
        return 0;
    }
    let mut best = sigs.len() + 1;
    let mut chains = Vec::new();
    go(sigs, 0, &mut chains, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(sigs: &[&[usize]]) -> Vec<Vec<Vec<usize>>> {
        let v: Vec<Vec<usize>> = sigs.iter().map(|s| s.to_vec()).collect();
        min_chain_cover(&v)
    }

    /// Every signature must be a prefix (as a set) of its chain's order.
    fn assert_covered(chains: &[Vec<Vec<usize>>]) {
        for chain in chains {
            let order = chain_to_order(chain);
            for sig in chain {
                let prefix: Vec<usize> = {
                    let mut p = order[..sig.len()].to_vec();
                    p.sort_unstable();
                    p
                };
                assert_eq!(
                    &prefix, sig,
                    "signature {sig:?} is not a prefix of {order:?}"
                );
            }
        }
    }

    #[test]
    fn single_chain_when_nested() {
        let chains = cover(&[&[0], &[0, 1], &[0, 1, 2]]);
        assert_eq!(chains.len(), 1);
        assert_eq!(chain_to_order(&chains[0]), vec![0, 1, 2]);
        assert_covered(&chains);
    }

    #[test]
    fn antichain_needs_one_index_each() {
        let chains = cover(&[&[0], &[1], &[2]]);
        assert_eq!(chains.len(), 3);
        assert_covered(&chains);
    }

    /// The worked lattice from the index-selection paper's running
    /// example family: {x}, {y}, {x,y}, {x,y,z} — two chains suffice
    /// ({x} ⊂ {x,y} ⊂ {x,y,z} and {y}), three single-signature indexes
    /// would be wasteful and four naive ones worse.
    #[test]
    fn paper_lattice_example() {
        let chains = cover(&[&[0], &[1], &[0, 1], &[0, 1, 2]]);
        assert_eq!(chains.len(), 2);
        assert_covered(&chains);
        let total: usize = chains.iter().map(|c| c.len()).sum();
        assert_eq!(total, 4, "every signature assigned exactly once");
    }

    #[test]
    fn diamond_needs_two_chains() {
        // {0} and {1} both below {0,1}: cover size 2.
        let chains = cover(&[&[0], &[1], &[0, 1]]);
        assert_eq!(chains.len(), 2);
        assert_covered(&chains);
    }

    #[test]
    fn brute_force_oracle_agrees_on_small_cases() {
        let cases: Vec<Vec<Vec<usize>>> = vec![
            vec![vec![0]],
            vec![vec![0], vec![1]],
            vec![vec![0], vec![0, 1]],
            vec![vec![0], vec![1], vec![0, 1]],
            vec![
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![1, 2],
                vec![0, 1, 2],
            ],
            vec![vec![1], vec![0, 2], vec![0, 1, 2], vec![2]],
        ];
        for sigs in cases {
            let fast = min_chain_cover(&sigs).len();
            let slow = minimal_cover_size_brute_force(&sigs);
            assert_eq!(fast, slow, "on {sigs:?}");
        }
    }

    /// Exhaustive minimality proof on a small universe: every set of
    /// signatures over columns {0,1,2} (all 2⁷ subsets of the 7 nonempty
    /// column sets) — the solver's cover size equals the brute-force
    /// minimum, and every signature is prefix-covered.
    #[test]
    fn exhaustive_minimality_over_three_columns() {
        let universe: Vec<Vec<usize>> = vec![
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![0, 1, 2],
        ];
        for mask in 0u32..(1 << universe.len()) {
            let sigs: Vec<Vec<usize>> = universe
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, s)| s.clone())
                .collect();
            let chains = min_chain_cover(&sigs);
            assert_covered(&chains);
            let total: usize = chains.iter().map(|c| c.len()).sum();
            assert_eq!(
                total,
                sigs.len(),
                "mask {mask:b}: every signature covered once"
            );
            assert_eq!(
                chains.len(),
                minimal_cover_size_brute_force(&sigs),
                "mask {mask:b}: cover not minimal"
            );
        }
    }

    #[test]
    fn empty_input_is_empty_cover() {
        assert!(min_chain_cover(&[]).is_empty());
        assert_eq!(minimal_cover_size_brute_force(&[]), 0);
    }
}
