//! Differential update-stream harness for incremental view
//! maintenance.
//!
//! Random update streams run against maintained [`Engine`]s at
//! {1, 4 threads} × {Selected, ForceScan} access paths; after every
//! step each maintained state is compared bit-for-bit — rows *and* row
//! order — against a from-scratch `Engine::evaluate` over the same EDB,
//! and periodically against the one-shot semi-naive and magic-set query
//! paths. Runs on `ldl_support::prop` with greedy shrinking; replay any
//! failure with the `LDL_PROP_SEED` value printed in the panic message.
//!
//! The program under maintenance exercises every maintenance strategy
//! at once: a recursive transitive closure (DRed), a join and a
//! stratified negation over it (counting), and a grouping head over the
//! closure (recompute).

use ldl_core::parser::{parse_program, parse_query};
use ldl_core::{Pred, Term};
use ldl_eval::engine::{evaluate_query, Method};
use ldl_eval::naive::AccessPaths;
use ldl_eval::{EdbDelta, Engine, FixpointConfig};
use ldl_storage::Tuple;
use ldl_support::prop::{check, pairs, triples, usizes, vecs, Config};
use ldl_support::SplitMix64;

/// One stream step: `kind` picks the operation, `a`/`b` the tuple.
type Op = (usize, usize, usize);

const RULES: &str = "tc(X, Y) <- e(X, Y).\n\
                     tc(X, Y) <- e(X, Z), tc(Z, Y).\n\
                     q(X, Z) <- e(X, Y), tc(Y, Z).\n\
                     unr(X) <- n(X), ~tc(X, X).\n\
                     grp(X, <Y>) <- tc(X, Y).\n";

/// Predicates compared after every step: every derived predicate plus
/// the base relations themselves.
const COMPARED: &[(&str, usize)] = &[
    ("tc", 2),
    ("q", 2),
    ("unr", 1),
    ("grp", 2),
    ("e", 2),
    ("n", 1),
];

fn program_text(edges: &[(usize, usize)], nodes: &[usize]) -> String {
    let mut text = String::new();
    for (a, b) in edges {
        text.push_str(&format!("e({a}, {b}).\n"));
    }
    for x in nodes {
        text.push_str(&format!("n({x}).\n"));
    }
    // Keep both base relations present even when the random prefix is
    // empty, so every engine sees the same schema.
    text.push_str("e(0, 0).\nn(0).\n");
    text.push_str(RULES);
    text
}

fn op_delta(op: &Op) -> EdbDelta {
    let (kind, a, b) = *op;
    let e = Pred::new("e", 2);
    let n = Pred::new("n", 1);
    let et = Tuple(vec![Term::int(a as i64), Term::int(b as i64)]);
    let nt = Tuple(vec![Term::int(a as i64)]);
    let mut d = EdbDelta::new();
    match kind % 6 {
        0 | 1 => d.insert(e, et),
        2 => d.retract(e, et),
        3 => d.insert(n, nt),
        4 => d.retract(n, nt),
        // Churn batch: retract + insert of the same edge in one batch
        // (a no-op) alongside a real node insert.
        _ => d.retract(e, et.clone()).insert(e, et).insert(n, nt),
    };
    d
}

fn maintained_engines(text: &str) -> Vec<(String, Engine)> {
    let program = parse_program(text).unwrap();
    let db = ldl_storage::Database::from_program(&program);
    let mut engines = Vec::new();
    for threads in [1usize, 4] {
        for paths in [AccessPaths::Selected, AccessPaths::ForceScan] {
            let cfg = FixpointConfig::serial()
                .with_threads(threads)
                .with_access_paths(paths);
            let label = format!("threads={threads} paths={paths:?}");
            engines.push((label, Engine::evaluate(&program, &db, &cfg).unwrap()));
        }
    }
    engines
}

/// Applies `delta` everywhere and checks every maintained state against
/// a from-scratch evaluation of the same EDB.
fn step_and_compare(engines: &mut [(String, Engine)], delta: &EdbDelta, step: usize) {
    for (label, engine) in engines.iter_mut() {
        engine
            .apply_delta(delta)
            .unwrap_or_else(|err| panic!("step {step} [{label}]: {err}"));
    }
    let reference = Engine::evaluate(
        engines[0].1.program(),
        engines[0].1.database(),
        &FixpointConfig::serial(),
    )
    .unwrap();
    for (label, engine) in engines.iter() {
        for &(name, arity) in COMPARED {
            let p = Pred::new(name, arity);
            let got = engine.relation(p);
            let want = reference.relation(p);
            assert_eq!(
                got.map(|r| r.rows()),
                want.map(|r| r.rows()),
                "step {step} [{label}]: {name} diverged from from-scratch"
            );
        }
    }
}

/// Compares maintained query answers against the one-shot semi-naive
/// and magic-set evaluators (canonicalized on both sides — magic's
/// insertion order is its own).
fn compare_query_paths(engines: &[(String, Engine)], step: usize) {
    let engine = &engines[0].1;
    for goal in ["tc(1, Y)?", "q(X, 2)?", "unr(X)?"] {
        let query = parse_query(goal).unwrap();
        let maintained = engine.answers(&query);
        for method in [Method::SemiNaive, Method::Magic] {
            let mut got = evaluate_query(
                engine.program(),
                engine.database(),
                &query,
                method,
                &FixpointConfig::serial(),
            )
            .unwrap()
            .tuples;
            got.canonicalize();
            assert_eq!(
                got,
                maintained,
                "step {step}: {} disagrees with maintained answers on {goal}",
                method.name()
            );
        }
    }
}

/// Random programs × random update streams: maintained relations stay
/// bit-for-bit identical to from-scratch evaluation after every step.
#[test]
fn ivm_differential_random_streams() {
    let node = || usizes(0..6);
    let gen = triples(
        vecs(pairs(node(), node()), 0..8),
        vecs(node(), 0..5),
        vecs(triples(usizes(0..6), node(), node()), 1..14),
    );
    check(
        "ivm_differential_random_streams",
        &Config::with_cases(24),
        &gen,
        |(edges, nodes, ops)| {
            let text = program_text(edges, nodes);
            let mut engines = maintained_engines(&text);
            for (step, op) in ops.iter().enumerate() {
                step_and_compare(&mut engines, &op_delta(op), step);
            }
            compare_query_paths(&engines, ops.len());
        },
    );
}

/// The acceptance-criteria stream: ≥50 steps of mixed single-op and
/// multi-op batches over one program, every step differentially checked
/// and the query paths re-checked every tenth step.
#[test]
fn ivm_sixty_step_stream() {
    let mut rng = SplitMix64::seed_from_u64(0x1d1_1988);
    let text = program_text(&[(0, 1), (1, 2), (2, 3), (3, 4)], &[0, 1, 2, 3]);
    let mut engines = maintained_engines(&text);
    for step in 0..60 {
        // Batch 1–3 random ops so batch normalization (retract-before-
        // insert, in-batch cancellation) sees sustained use.
        let mut delta = EdbDelta::new();
        for _ in 0..rng.gen_range(1..4usize) {
            let op: Op = (
                rng.gen_range(0..6usize),
                rng.gen_range(0..6usize),
                rng.gen_range(0..6usize),
            );
            delta = merge(delta, op_delta(&op));
        }
        step_and_compare(&mut engines, &delta, step);
        if step % 10 == 9 {
            compare_query_paths(&engines, step);
        }
    }
}

/// The magic-rewritten query path sees committed deltas: answering a
/// goal through `Method::Magic`, then committing a batch through the
/// maintenance engine and re-asking the *same* goal, must agree with a
/// from-scratch evaluation of the updated EDB. The magic path carries
/// no state between calls — it re-runs its rewriting against the
/// engine's current database — so a stale answer here would mean the
/// maintenance commit failed to publish the updated EDB. This pins the
/// contract the `ldl-serve` commit/query cycle relies on.
#[test]
fn magic_query_after_delta_agrees_with_scratch() {
    let text = program_text(&[(1, 2), (2, 3)], &[1, 2, 3]);
    let program = parse_program(&text).unwrap();
    let db = ldl_storage::Database::from_program(&program);
    let cfg = FixpointConfig::serial();
    let mut engine = Engine::evaluate(&program, &db, &cfg).unwrap();
    let query = parse_query("tc(1, Y)?").unwrap();

    let ask_magic = |engine: &Engine| {
        let mut t = evaluate_query(
            engine.program(),
            engine.database(),
            &query,
            Method::Magic,
            &cfg,
        )
        .unwrap()
        .tuples;
        t.canonicalize();
        t
    };
    let before = ask_magic(&engine);
    assert_eq!(before, engine.answers(&query));
    assert_eq!(before.len(), 2);

    // Commit a batch extending the chain and retracting a node.
    let mut delta = EdbDelta::new();
    delta
        .insert(Pred::new("e", 2), Tuple(vec![Term::int(3), Term::int(4)]))
        .retract(Pred::new("n", 1), Tuple(vec![Term::int(2)]));
    engine.apply_delta(&delta).unwrap();

    // The re-asked magic query reflects the commit...
    let after = ask_magic(&engine);
    assert_eq!(after.len(), 3);
    assert_eq!(after, engine.answers(&query));
    // ...and agrees bit-for-bit with a from-scratch evaluation of the
    // same EDB, on this goal and on every compared relation.
    let scratch = Engine::evaluate(engine.program(), engine.database(), &cfg).unwrap();
    assert_eq!(after, scratch.answers(&query));
    for &(name, arity) in COMPARED {
        let p = Pred::new(name, arity);
        assert_eq!(
            engine.relation(p).map(|r| r.rows()),
            scratch.relation(p).map(|r| r.rows()),
            "{name}/{arity} diverged after the post-query delta"
        );
    }
}

/// Folds two staged batches into one (retracts of both apply before
/// inserts of both — the same batch semantics `apply_delta` defines).
fn merge(mut a: EdbDelta, b: EdbDelta) -> EdbDelta {
    // EdbDelta exposes only staging; replay b's ops onto a.
    for (p, ts) in b.staged_retracts() {
        for t in ts {
            a.retract(p, t.clone());
        }
    }
    for (p, ts) in b.staged_inserts() {
        for t in ts {
            a.insert(p, t.clone());
        }
    }
    a
}
