//! Property-based tests for the evaluator: executor equivalences
//! (pipelined vs materialized, any order, any join method), fixpoint
//! method agreement on random data, and SLD vs bottom-up agreement on
//! terminating programs.
//!
//! Runs on `ldl_support::prop`; replay any failure with the
//! `LDL_PROP_SEED` value printed in the panic message.

use ldl_core::parser::{parse_program, parse_query};
use ldl_core::unify::Subst;
use ldl_core::Pred;
use ldl_eval::materialized::eval_rule_materialized;
use ldl_eval::ops::JoinMethod;
use ldl_eval::rule_eval::{eval_rule, OverlaySource};
use ldl_eval::sld::{solve_sld, SldConfig};
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_storage::{Database, Relation, Tuple};
use ldl_support::prop::{check, i64s, pairs, quads, triples, u64s, usizes, vecs, Config, Gen};
use ldl_support::{SliceRandom, SplitMix64};

fn cfg() -> Config {
    Config::with_cases(32)
}

fn edges_text(edges: &[(i64, i64)], pred: &str) -> String {
    let mut s = String::new();
    for (a, b) in edges {
        s.push_str(&format!("{pred}({a}, {b}).\n"));
    }
    s
}

fn edge_lists(node_range: i64, len: std::ops::Range<usize>) -> Gen<Vec<(i64, i64)>> {
    vecs(pairs(i64s(0..node_range), i64s(0..node_range)), len)
}

/// The pipelined and materialized executors agree on every order and
/// every join method, for random two-join rules.
#[test]
fn executors_agree() {
    let gen = quads(
        edge_lists(8, 1..20),
        edge_lists(8, 1..20),
        usizes(0..2),
        usizes(0..3),
    );
    check(
        "executors_agree",
        &cfg(),
        &gen,
        |(e1, e2, order_pick, method_pick)| {
            let text = format!(
                "{}{}q(X, Z) <- a(X, Y), b(Y, Z).",
                edges_text(e1, "a"),
                edges_text(e2, "b")
            );
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let rule = &program.rules[0];
            let order: Vec<usize> = if *order_pick == 0 {
                vec![0, 1]
            } else {
                vec![1, 0]
            };
            let method = JoinMethod::ALL[*method_pick];
            let source = OverlaySource {
                base: |p: Pred| db.relation(p),
                overlay: None,
                restrict: None,
            };
            let mat = eval_rule_materialized(rule, &order, method, &source).unwrap();
            let mut pipe = Relation::new(2);
            eval_rule(rule, &order, &Subst::new(), &source, &mut |t| {
                pipe.insert(t);
            })
            .unwrap();
            assert_eq!(mat, pipe);
        },
    );
}

/// All four fixpoint methods agree on bound same-generation queries
/// over random forests (up is functional: each child one parent).
#[test]
fn methods_agree_on_random_sg() {
    let gen = pairs(vecs(usizes(0..8), 1..16), i64s(0..24));
    check(
        "methods_agree_on_random_sg",
        &cfg(),
        &gen,
        |(parents, query_node)| {
            // Node i+1..n+1 gets parent `parents[i] % (i+1)` mapped into
            // existing ids — guarantees acyclic, functional up.
            let mut text = String::new();
            for (i, &p) in parents.iter().enumerate() {
                let child = (i + 1) as i64;
                let parent = (p % (i + 1)) as i64;
                text.push_str(&format!("up({child}, {parent}).\ndn({parent}, {child}).\n"));
            }
            text.push_str("flat(0, 0).\n");
            text.push_str(
                "sg(X, Y) <- flat(X, Y).\nsg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).\n",
            );
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let q = parse_query(&format!("sg({query_node}, Y)?")).unwrap();
            let cfg = FixpointConfig::with_max_iterations(10_000);
            let reference = evaluate_query(&program, &db, &q, Method::Naive, &cfg)
                .unwrap()
                .tuples;
            for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
                let got = evaluate_query(&program, &db, &q, m, &cfg).unwrap().tuples;
                assert_eq!(&got, &reference, "{} disagrees", m.name());
            }
        },
    );
}

/// SLD resolution agrees with bottom-up evaluation on terminating
/// (right-recursive, acyclic) programs.
#[test]
fn sld_agrees_with_fixpoint() {
    let gen = pairs(vecs(usizes(0..6), 1..12), i64s(0..13));
    check(
        "sld_agrees_with_fixpoint",
        &cfg(),
        &gen,
        |(parents, start)| {
            let mut text = String::new();
            for (i, &p) in parents.iter().enumerate() {
                let child = (i + 1) as i64;
                let parent = (p % (i + 1)) as i64;
                text.push_str(&format!("e({parent}, {child}).\n"));
            }
            text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let q = parse_query(&format!("tc({start}, Y)?")).unwrap();
            let (sld, stats) = solve_sld(&program, &db, &q, &SldConfig::default()).unwrap();
            assert!(!stats.depth_exceeded);
            let fix = evaluate_query(
                &program,
                &db,
                &q,
                Method::SemiNaive,
                &FixpointConfig::default(),
            )
            .unwrap()
            .tuples;
            assert_eq!(sld, fix);
        },
    );
}

/// Magic-sets evaluation agrees with seminaive on bound queries over
/// arbitrary (possibly cyclic) edge sets — the rewriting restricts
/// *work*, never *answers*.
#[test]
fn magic_agrees_with_seminaive_on_bound_queries() {
    let gen = pairs(edge_lists(10, 1..30), i64s(0..10));
    check(
        "magic_agrees_with_seminaive_on_bound_queries",
        &Config::with_cases(48),
        &gen,
        |(edges, start)| {
            let mut text = edges_text(edges, "e");
            text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let q = parse_query(&format!("tc({start}, Y)?")).unwrap();
            let cfg = FixpointConfig::default();
            let semi = evaluate_query(&program, &db, &q, Method::SemiNaive, &cfg)
                .unwrap()
                .tuples;
            let magic = evaluate_query(&program, &db, &q, Method::Magic, &cfg)
                .unwrap()
                .tuples;
            assert_eq!(magic, semi);
        },
    );
}

/// Parallel fixpoint rounds are bit-for-bit deterministic: at 2 and 4
/// worker threads, both evaluators produce the same relations — the
/// same tuples in the same *insertion order* — and identical [`Metrics`]
/// as single-threaded execution, on arbitrary (cyclic) edge sets.
#[test]
fn parallel_fixpoint_is_bit_identical_to_serial() {
    use ldl_eval::naive::eval_program_naive;
    use ldl_eval::seminaive::eval_program_seminaive;
    let gen = edge_lists(12, 1..60);
    check(
        "parallel_fixpoint_is_bit_identical_to_serial",
        &cfg(),
        &gen,
        |edges| {
            let mut text = edges_text(edges, "e");
            text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).\n");
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let serial = FixpointConfig::serial();
            let (semi_rel, semi_m) = eval_program_seminaive(&program, &db, &serial).unwrap();
            let (naive_rel, naive_m) = eval_program_naive(&program, &db, &serial).unwrap();
            for threads in [2, 4] {
                let par = FixpointConfig::default().with_threads(threads);
                let (rel, m) = eval_program_seminaive(&program, &db, &par).unwrap();
                assert_eq!(m, semi_m, "semi-naive metrics diverge at {threads} threads");
                for (p, serial_rel) in &semi_rel {
                    assert_eq!(
                        rel[p].rows(),
                        serial_rel.rows(),
                        "semi-naive row order for {p} diverges at {threads} threads"
                    );
                }
                let (rel, m) = eval_program_naive(&program, &db, &par).unwrap();
                assert_eq!(m, naive_m, "naive metrics diverge at {threads} threads");
                for (p, serial_rel) in &naive_rel {
                    assert_eq!(
                        rel[p].rows(),
                        serial_rel.rows(),
                        "naive row order for {p} diverges at {threads} threads"
                    );
                }
            }
        },
    );
}

/// The three access-path policies (selected ordered indexes, on-demand
/// hashes, forced scans) are bit-for-bit interchangeable: identical
/// relations in identical *row order* and identical [`ldl_eval::Metrics`],
/// at 1 and 4 worker threads, on arbitrary (cyclic) edge sets driving
/// both a linear tc and a same-generation clique.
#[test]
fn access_paths_are_bit_identical() {
    use ldl_eval::seminaive::eval_program_seminaive;
    use ldl_eval::AccessPaths;
    let gen = pairs(edge_lists(10, 1..50), edge_lists(10, 1..30));
    check(
        "access_paths_are_bit_identical",
        &cfg(),
        &gen,
        |(e1, e2)| {
            let mut text = edges_text(e1, "e");
            text.push_str(&edges_text(e2, "up"));
            text.push_str(&edges_text(e2, "dn"));
            text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
            text.push_str("sg(X, Y) <- e(X, Y).\nsg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).\n");
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let reference = FixpointConfig::serial().with_access_paths(AccessPaths::ForceScan);
            let (ref_rel, ref_m) = eval_program_seminaive(&program, &db, &reference).unwrap();
            for paths in [
                AccessPaths::Selected,
                AccessPaths::HashOnDemand,
                AccessPaths::ForceScan,
            ] {
                for threads in [1, 4] {
                    let cfg = FixpointConfig::default()
                        .with_threads(threads)
                        .with_access_paths(paths);
                    let (rel, m) = eval_program_seminaive(&program, &db, &cfg).unwrap();
                    assert_eq!(m, ref_m, "{paths:?} metrics diverge at {threads} threads");
                    for (p, r) in &ref_rel {
                        assert_eq!(
                            rel[p].rows(),
                            r.rows(),
                            "{paths:?} row order for {p} diverges at {threads} threads"
                        );
                    }
                }
            }
        },
    );
}

/// Range folding is invisible: programs whose rules carry random bound
/// inequality builtins — an equality-prefix range rule and an
/// empty-prefix, partially-foldable rule — produce bit-identical
/// relations (same rows, same insertion order) and identical
/// [`ldl_eval::Metrics`] across all three access-path policies at 1 and
/// 4 worker threads, under naive and semi-naive evaluation; magic on a
/// bound query agrees with semi-naive on answers.
#[test]
fn range_probes_are_bit_identical_across_policies() {
    use ldl_eval::naive::eval_program_naive;
    use ldl_eval::seminaive::eval_program_seminaive;
    use ldl_eval::AccessPaths;
    let facts = vecs(triples(i64s(0..4), i64s(0..20), i64s(0..20)), 1..40);
    let gen = quads(facts, i64s(0..20), i64s(0..20), i64s(0..4));
    check(
        "range_probes_are_bit_identical_across_policies",
        &cfg(),
        &gen,
        |(rows, lo, hi, key)| {
            let mut text = String::new();
            for (k, x, y) in rows {
                text.push_str(&format!("r({k}, {x}, {y}).\n"));
            }
            text.push_str(&format!("k({key}). k({}).\n", (key + 1) % 4));
            text.push_str(&format!(
                "q(X, Y) <- k(K), r(K, X, Y), X >= {lo}, X < {hi}.\n"
            ));
            text.push_str(&format!("big(X) <- r(K, X, Y), X > {lo}, Y <= {hi}.\n"));
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let reference = FixpointConfig::serial().with_access_paths(AccessPaths::ForceScan);
            let (semi_ref, semi_m) = eval_program_seminaive(&program, &db, &reference).unwrap();
            let (naive_ref, naive_m) = eval_program_naive(&program, &db, &reference).unwrap();
            for paths in [
                AccessPaths::Selected,
                AccessPaths::HashOnDemand,
                AccessPaths::ForceScan,
            ] {
                for threads in [1, 4] {
                    let c = FixpointConfig::default()
                        .with_threads(threads)
                        .with_access_paths(paths);
                    let (rel, m) = eval_program_seminaive(&program, &db, &c).unwrap();
                    assert_eq!(m, semi_m, "{paths:?} semi metrics diverge at {threads}");
                    for (p, r) in &semi_ref {
                        assert_eq!(
                            rel[p].rows(),
                            r.rows(),
                            "{paths:?} semi rows for {p} diverge at {threads} threads"
                        );
                    }
                    let (rel, m) = eval_program_naive(&program, &db, &c).unwrap();
                    assert_eq!(m, naive_m, "{paths:?} naive metrics diverge at {threads}");
                    for (p, r) in &naive_ref {
                        assert_eq!(
                            rel[p].rows(),
                            r.rows(),
                            "{paths:?} naive rows for {p} diverge at {threads} threads"
                        );
                    }
                }
            }
            // Magic on the bound form agrees on answers.
            let q = parse_query(&format!("q({lo}, Y)?")).unwrap();
            let c = FixpointConfig::default();
            let semi = evaluate_query(&program, &db, &q, Method::SemiNaive, &c)
                .unwrap()
                .tuples;
            let magic = evaluate_query(&program, &db, &q, Method::Magic, &c)
                .unwrap()
                .tuples;
            assert_eq!(magic, semi);
        },
    );
}

/// Grouping results are independent of fact order and method.
#[test]
fn grouping_is_deterministic() {
    let gen = pairs(vecs(pairs(i64s(0..5), i64s(0..10)), 1..20), u64s(0..50));
    check(
        "grouping_is_deterministic",
        &cfg(),
        &gen,
        |(pairs, seed)| {
            let base = format!("{}g(K, <V>) <- e(K, V).", edges_text(pairs, "e"));
            let mut shuffled_pairs = pairs.clone();
            shuffled_pairs.shuffle(&mut SplitMix64::seed_from_u64(*seed));
            let shuffled = format!("{}g(K, <V>) <- e(K, V).", edges_text(&shuffled_pairs, "e"));
            let q = parse_query("g(K, S)?").unwrap();
            let cfg = FixpointConfig::default();
            let run = |text: &str, m: Method| {
                let program = parse_program(text).unwrap();
                let db = Database::from_program(&program);
                evaluate_query(&program, &db, &q, m, &cfg).unwrap().tuples
            };
            let a = run(&base, Method::SemiNaive);
            let b = run(&shuffled, Method::SemiNaive);
            let c = run(&base, Method::Naive);
            assert_eq!(&a, &b);
            assert_eq!(&a, &c);
        },
    );
}

/// Arithmetic evaluation agrees between executors and is deterministic
/// for random filter thresholds.
#[test]
fn arithmetic_filters_agree() {
    let gen = pairs(vecs(i64s(-30..30), 1..25), i64s(-30..30));
    check("arithmetic_filters_agree", &cfg(), &gen, |(ns, cut)| {
        let cut = *cut;
        let mut text = String::new();
        let mut expected = std::collections::BTreeSet::new();
        for &n in ns {
            text.push_str(&format!("n({n}).\n"));
            if n > cut {
                expected.insert((n, n * 3));
            }
        }
        text.push_str(&format!("big(X, Y) <- n(X), X > {cut}, Y = X * 3.\n"));
        let program = parse_program(&text).unwrap();
        let db = Database::from_program(&program);
        let q = parse_query("big(A, B)?").unwrap();
        let got = evaluate_query(
            &program,
            &db,
            &q,
            Method::SemiNaive,
            &FixpointConfig::default(),
        )
        .unwrap()
        .tuples;
        assert_eq!(got.len(), expected.len());
        for (a, b) in expected {
            assert!(got.contains(&Tuple::ints(&[a, b])));
        }
    });
}
