//! Property-based tests for the evaluator: executor equivalences
//! (pipelined vs materialized, any order, any join method), fixpoint
//! method agreement on random data, and SLD vs bottom-up agreement on
//! terminating programs.

use ldl_core::parser::{parse_program, parse_query};
use ldl_core::unify::Subst;
use ldl_core::Pred;
use ldl_eval::materialized::eval_rule_materialized;
use ldl_eval::ops::JoinMethod;
use ldl_eval::rule_eval::{eval_rule, OverlaySource};
use ldl_eval::sld::{solve_sld, SldConfig};
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_storage::{Database, Relation, Tuple};
use proptest::prelude::*;

fn edges_text(edges: &[(i64, i64)], pred: &str) -> String {
    let mut s = String::new();
    for (a, b) in edges {
        s.push_str(&format!("{pred}({a}, {b}).\n"));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pipelined and materialized executors agree on every order and
    /// every join method, for random two-join rules.
    #[test]
    fn executors_agree(
        e1 in proptest::collection::vec((0i64..8, 0i64..8), 1..20),
        e2 in proptest::collection::vec((0i64..8, 0i64..8), 1..20),
        order_pick in 0usize..2,
        method_pick in 0usize..3,
    ) {
        let text = format!(
            "{}{}q(X, Z) <- a(X, Y), b(Y, Z).",
            edges_text(&e1, "a"),
            edges_text(&e2, "b")
        );
        let program = parse_program(&text).unwrap();
        let db = Database::from_program(&program);
        let rule = &program.rules[0];
        let order: Vec<usize> = if order_pick == 0 { vec![0, 1] } else { vec![1, 0] };
        let method = JoinMethod::ALL[method_pick];
        let source = OverlaySource { base: |p: Pred| db.relation(p), overlay: None };
        let mat = eval_rule_materialized(rule, &order, method, &source).unwrap();
        let mut pipe = Relation::new(2);
        eval_rule(rule, &order, &Subst::new(), &source, &mut |t| {
            pipe.insert(t);
        })
        .unwrap();
        prop_assert_eq!(mat, pipe);
    }

    /// All four fixpoint methods agree on bound same-generation queries
    /// over random forests (up is functional: each child one parent).
    #[test]
    fn methods_agree_on_random_sg(
        parents in proptest::collection::vec(0usize..8, 1..16),
        query_node in 0i64..24,
    ) {
        // Node i+1..n+1 gets parent `parents[i] % (i+1)` mapped into
        // existing ids — guarantees acyclic, functional up.
        let mut text = String::new();
        for (i, &p) in parents.iter().enumerate() {
            let child = (i + 1) as i64;
            let parent = (p % (i + 1)) as i64;
            text.push_str(&format!("up({child}, {parent}).\ndn({parent}, {child}).\n"));
        }
        text.push_str("flat(0, 0).\n");
        text.push_str("sg(X, Y) <- flat(X, Y).\nsg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).\n");
        let program = parse_program(&text).unwrap();
        let db = Database::from_program(&program);
        let q = parse_query(&format!("sg({query_node}, Y)?")).unwrap();
        let cfg = FixpointConfig { max_iterations: 10_000 };
        let reference = evaluate_query(&program, &db, &q, Method::Naive, &cfg).unwrap().tuples;
        for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
            let got = evaluate_query(&program, &db, &q, m, &cfg).unwrap().tuples;
            prop_assert_eq!(&got, &reference, "{} disagrees", m.name());
        }
    }

    /// SLD resolution agrees with bottom-up evaluation on terminating
    /// (right-recursive, acyclic) programs.
    #[test]
    fn sld_agrees_with_fixpoint(
        parents in proptest::collection::vec(0usize..6, 1..12),
        start in 0i64..13,
    ) {
        let mut text = String::new();
        for (i, &p) in parents.iter().enumerate() {
            let child = (i + 1) as i64;
            let parent = (p % (i + 1)) as i64;
            text.push_str(&format!("e({parent}, {child}).\n"));
        }
        text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
        let program = parse_program(&text).unwrap();
        let db = Database::from_program(&program);
        let q = parse_query(&format!("tc({start}, Y)?")).unwrap();
        let (sld, stats) = solve_sld(&program, &db, &q, &SldConfig::default()).unwrap();
        prop_assert!(!stats.depth_exceeded);
        let fix = evaluate_query(&program, &db, &q, Method::SemiNaive, &FixpointConfig::default())
            .unwrap()
            .tuples;
        prop_assert_eq!(sld, fix);
    }

    /// Grouping results are independent of fact order and method.
    #[test]
    fn grouping_is_deterministic(mut pairs in proptest::collection::vec((0i64..5, 0i64..10), 1..20), seed in 0u64..50) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let base = format!("{}g(K, <V>) <- e(K, V).", edges_text(&pairs, "e"));
        pairs.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let shuffled = format!("{}g(K, <V>) <- e(K, V).", edges_text(&pairs, "e"));
        let q = parse_query("g(K, S)?").unwrap();
        let cfg = FixpointConfig::default();
        let run = |text: &str, m: Method| {
            let program = parse_program(text).unwrap();
            let db = Database::from_program(&program);
            evaluate_query(&program, &db, &q, m, &cfg).unwrap().tuples
        };
        let a = run(&base, Method::SemiNaive);
        let b = run(&shuffled, Method::SemiNaive);
        let c = run(&base, Method::Naive);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// Arithmetic evaluation agrees between executors and is
    /// deterministic for random filter thresholds.
    #[test]
    fn arithmetic_filters_agree(ns in proptest::collection::vec(-30i64..30, 1..25), cut in -30i64..30) {
        let mut text = String::new();
        let mut expected = std::collections::BTreeSet::new();
        for &n in &ns {
            text.push_str(&format!("n({n}).\n"));
            if n > cut {
                expected.insert((n, n * 3));
            }
        }
        text.push_str(&format!("big(X, Y) <- n(X), X > {cut}, Y = X * 3.\n"));
        let program = parse_program(&text).unwrap();
        let db = Database::from_program(&program);
        let q = parse_query("big(A, B)?").unwrap();
        let got = evaluate_query(&program, &db, &q, Method::SemiNaive, &FixpointConfig::default())
            .unwrap()
            .tuples;
        prop_assert_eq!(got.len(), expected.len());
        for (a, b) in expected {
            prop_assert!(got.contains(&Tuple::ints(&[a, b])));
        }
    }
}
