//! Naive bottom-up fixpoint evaluation.
//!
//! The baseline recursive method: evaluate strata bottom-up; within a
//! recursive clique, re-fire *every* rule against the *full* current
//! relations until nothing new appears. Correct, and maximally wasteful —
//! every iteration rederives everything the previous iterations found,
//! which is exactly why the paper's method set includes semi-naive and
//! the binding-propagating methods (magic sets, counting).

use crate::metrics::Metrics;
use crate::parallel::{run_round, Firing};
use crate::rule_eval::AccessPlan;
use ldl_core::depgraph::DependencyGraph;
use ldl_core::{LdlError, Pred, Program, Result};
use ldl_index::IndexCatalog;
use ldl_storage::{Database, Relation};
use std::collections::HashMap;

/// Which access paths the fixpoint evaluators give their probe sites
/// (the owned counterpart of [`AccessPlan`], which borrows a catalog).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AccessPaths {
    /// Solve the minimum chain cover over the program's search
    /// signatures once per evaluation and probe the selected ordered
    /// indexes, falling back to on-demand hashes for anything the
    /// catalog does not serve. The default.
    #[default]
    Selected,
    /// On-demand hash indexes only (the pre-selection behavior).
    HashOnDemand,
    /// Full scans only — the baseline the equivalence tests compare
    /// both probing modes against.
    ForceScan,
}

impl AccessPaths {
    /// The policy named by the `LDL_ACCESS_PATHS` environment variable
    /// (`selected` / `hash` / `scan`), or `Selected` when unset or
    /// unrecognized. [`FixpointConfig::default`] reads this, so every
    /// entry point — shell, session, benches — honors the override.
    pub fn from_env() -> AccessPaths {
        match std::env::var("LDL_ACCESS_PATHS").as_deref() {
            Ok("hash") => AccessPaths::HashOnDemand,
            Ok("scan") => AccessPaths::ForceScan,
            _ => AccessPaths::Selected,
        }
    }

    /// Parses a policy name as accepted by `LDL_ACCESS_PATHS` and the
    /// shell's `--access-paths` flag.
    pub fn parse(name: &str) -> Option<AccessPaths> {
        match name {
            "selected" => Some(AccessPaths::Selected),
            "hash" => Some(AccessPaths::HashOnDemand),
            "scan" => Some(AccessPaths::ForceScan),
            _ => None,
        }
    }
}

/// Runtime knobs of the fixpoint evaluators: the iteration bound
/// guarding non-terminating fixpoints (an unsafe execution shows up as
/// an iteration-bound overflow at run time), the worker-thread count
/// for round-level parallelism, and the access-path / strictness
/// policies. Answers and metrics are identical across every setting of
/// `threads` and `access_paths`.
#[derive(Clone, Debug)]
pub struct FixpointConfig {
    /// Maximum iterations per recursive clique before the evaluation is
    /// declared divergent.
    pub max_iterations: usize,
    /// Worker threads per fixpoint round (`1` = serial). Results and
    /// metrics are identical at any value; see `crate::parallel`.
    /// Defaults to `LDL_EVAL_THREADS` or the machine's parallelism.
    pub threads: usize,
    /// Access-path policy for probe sites (see [`AccessPaths`]).
    /// Defaults to `LDL_ACCESS_PATHS` (`selected` / `hash` / `scan`) or
    /// [`AccessPaths::Selected`].
    pub access_paths: AccessPaths,
    /// Route materialized selections through `ops::select_strict`, so an
    /// ordering comparison over unordered values is a typed error
    /// instead of a silently dropped row. Default `false`: the lenient
    /// `ops::select` collapse is the documented materialized behavior.
    pub strict_select: bool,
    /// Static-analysis gate run by the query entry points before
    /// planning (see [`AnalysisPolicy`]).
    pub analysis: AnalysisPolicy,
    /// Apply the sound rewrite pass (`ldl_analysis::transform`) to the
    /// program before planning: constant propagation, ground-builtin
    /// folding, duplicate/subsumed-rule removal. Off by default;
    /// answers are bit-identical either way (pinned by the differential
    /// property tests).
    pub rewrite: bool,
    /// Co-optimized index-set override. When set (and the policy is
    /// [`AccessPaths::Selected`]), the executor still builds its own
    /// catalog for the program it actually evaluates — which may be a
    /// magic-rewritten program with adornment-renamed predicates — and
    /// then takes this catalog's per-predicate decisions wholesale
    /// where they exist ([`IndexCatalog::overridden_by`]). This is how
    /// the optimizer's co-optimized (order, index-set) pair reaches the
    /// probe sites: the executor builds exactly the indexes the
    /// optimizer priced. Access paths never change answers or metrics,
    /// so the override is a pure performance knob.
    pub index_catalog: Option<std::sync::Arc<IndexCatalog>>,
}

/// What the engine does with the `ldl-analysis` front end before
/// planning a query ([`crate::engine::evaluate_query`] and friends).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AnalysisPolicy {
    /// Skip the analyzer entirely.
    Off,
    /// Run it and reject on error-severity diagnostics with
    /// [`ldl_core::LdlError::Unsafe`] carrying the rendered findings;
    /// warnings are discarded. The default: an unsafe query fails up
    /// front with a witness instead of deep inside the optimizer.
    #[default]
    Deny,
    /// Run it and print every finding to stderr, but never reject.
    Warn,
}

impl Default for FixpointConfig {
    fn default() -> Self {
        FixpointConfig {
            max_iterations: 100_000,
            threads: ldl_support::par::default_threads(),
            access_paths: AccessPaths::from_env(),
            strict_select: false,
            analysis: AnalysisPolicy::default(),
            rewrite: false,
            index_catalog: None,
        }
    }
}

impl FixpointConfig {
    /// Default configuration with an explicit iteration bound.
    pub fn with_max_iterations(max_iterations: usize) -> FixpointConfig {
        FixpointConfig {
            max_iterations,
            ..FixpointConfig::default()
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> FixpointConfig {
        self.threads = threads.max(1);
        self
    }

    /// Sets the access-path policy.
    pub fn with_access_paths(mut self, access_paths: AccessPaths) -> FixpointConfig {
        self.access_paths = access_paths;
        self
    }

    /// Sets the strict-selection flag (see [`FixpointConfig::strict_select`]).
    pub fn with_strict_select(mut self, strict: bool) -> FixpointConfig {
        self.strict_select = strict;
        self
    }

    /// Sets the pre-planning analysis policy.
    pub fn with_analysis(mut self, analysis: AnalysisPolicy) -> FixpointConfig {
        self.analysis = analysis;
        self
    }

    /// Enables or disables the pre-planning rewrite pass (see
    /// [`FixpointConfig::rewrite`]).
    pub fn with_rewrite(mut self, rewrite: bool) -> FixpointConfig {
        self.rewrite = rewrite;
        self
    }

    /// Sets the co-optimized index-set override (see
    /// [`FixpointConfig::index_catalog`]).
    pub fn with_index_catalog(mut self, catalog: std::sync::Arc<IndexCatalog>) -> FixpointConfig {
        self.index_catalog = Some(catalog);
        self
    }

    /// Default configuration forced to single-threaded execution.
    pub fn serial() -> FixpointConfig {
        FixpointConfig::default().with_threads(1)
    }

    /// The selected-index catalog for `program` under this policy:
    /// `Some` only in [`AccessPaths::Selected`] mode, built from the
    /// program actually being evaluated and overlaid with the
    /// co-optimized override when one is attached. Callers hold the
    /// catalog and borrow it into an [`AccessPlan`] via
    /// [`FixpointConfig::plan`].
    pub(crate) fn catalog(&self, program: &Program) -> Option<IndexCatalog> {
        (self.access_paths == AccessPaths::Selected).then(|| {
            let built = IndexCatalog::build(program);
            match &self.index_catalog {
                Some(winner) => built.overridden_by(winner),
                None => built,
            }
        })
    }

    /// The borrow-level access plan for a catalog built by
    /// [`FixpointConfig::catalog`].
    pub(crate) fn plan<'a>(&self, catalog: &'a Option<IndexCatalog>) -> AccessPlan<'a> {
        match (self.access_paths, catalog) {
            (AccessPaths::Selected, Some(cat)) => AccessPlan::Selected(cat),
            (AccessPaths::ForceScan, _) => AccessPlan::ForceScan,
            _ => AccessPlan::HashOnDemand,
        }
    }
}

/// Groups derived predicates into evaluation units, bottom-up: each
/// recursive clique is one group, every other predicate is a singleton.
pub(crate) fn evaluation_groups(program: &Program, graph: &DependencyGraph) -> Vec<Vec<Pred>> {
    let mut groups: Vec<Vec<Pred>> = Vec::new();
    let mut current_clique: Option<usize> = None;
    for &p in graph.bottom_up_order() {
        match graph.clique_id_of(p) {
            Some(cid) => {
                if current_clique == Some(cid) {
                    groups.last_mut().expect("group exists").push(p);
                } else {
                    groups.push(vec![p]);
                    current_clique = Some(cid);
                }
            }
            None => {
                groups.push(vec![p]);
                current_clique = None;
            }
        }
    }
    let _ = program;
    groups
}

/// Evaluates every derived predicate of `program` naively.
pub fn eval_program_naive(
    program: &Program,
    db: &Database,
    cfg: &FixpointConfig,
) -> Result<(HashMap<Pred, Relation>, Metrics)> {
    let graph = DependencyGraph::build(program);
    graph.check_stratified()?;
    // Facts may exist for derived predicates too (e.g. `reach(1).` next to
    // recursive reach rules); seed the derived relations with them so the
    // database copy is not shadowed.
    let mut derived: HashMap<Pred, Relation> = program
        .derived_preds()
        .into_iter()
        .map(|p| {
            let rel = db
                .relation(p)
                .cloned()
                .unwrap_or_else(|| Relation::new(p.arity));
            (p, rel)
        })
        .collect();
    let mut metrics = Metrics::default();
    // One chain-cover solve per evaluation; every round borrows it.
    let catalog = cfg.catalog(program);

    for group in evaluation_groups(program, &graph) {
        let recursive = group.iter().any(|&p| graph.is_recursive(p));
        let rules: Vec<usize> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| group.contains(&r.head.pred))
            .map(|(i, _)| i)
            .collect();
        if recursive {
            if let Some(&ri) = rules
                .iter()
                .find(|&&ri| crate::grouping::has_grouping(&program.rules[ri]))
            {
                return Err(LdlError::Eval(format!(
                    "grouping head {} inside a recursive clique is not stratifiable",
                    program.rules[ri].head
                )));
            }
        }
        let firings: Vec<Firing> = rules
            .iter()
            .map(|&ri| Firing {
                rule_index: ri,
                overlay: None,
            })
            .collect();
        let mut iters = 0usize;
        loop {
            iters += 1;
            if iters > cfg.max_iterations {
                return Err(LdlError::Eval(format!(
                    "naive fixpoint for {:?} exceeded {} iterations (divergent / unsafe)",
                    group.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
                    cfg.max_iterations
                )));
            }
            metrics.iterations += 1;
            // Relations are frozen for the round: every firing reads the
            // same state, so the firings run on worker threads and merge
            // in rule order — exactly the serial insertion order.
            let (new_tuples, round_metrics) = {
                let base = |p: Pred| derived.get(&p).or_else(|| db.relation(p));
                run_round(program, &firings, &base, cfg.threads, cfg.plan(&catalog))?
            };
            metrics.absorb(round_metrics);
            let mut changed = false;
            for (p, t) in new_tuples {
                let rel = derived.get_mut(&p).expect("derived relation exists");
                if rel.insert(t) {
                    changed = true;
                    metrics.tuples_derived += 1;
                }
            }
            if !changed || !recursive {
                break;
            }
        }
    }
    Ok((derived, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;
    use ldl_storage::Tuple;

    fn eval(text: &str) -> HashMap<Pred, Relation> {
        let p = parse_program(text).unwrap();
        let db = Database::from_program(&p);
        eval_program_naive(&p, &db, &FixpointConfig::default())
            .unwrap()
            .0
    }

    #[test]
    fn transitive_closure() {
        let d = eval(
            r#"
            e(1, 2). e(2, 3). e(3, 4).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), e(Z, Y).
            "#,
        );
        let tc = &d[&Pred::new("tc", 2)];
        assert_eq!(tc.len(), 6);
        assert!(tc.contains(&Tuple::ints(&[1, 4])));
    }

    #[test]
    fn same_generation() {
        // up/dn tree: 1 up to a, 2 up to a => 1 and 2 same generation.
        let d = eval(
            r#"
            up(1, 10). up(2, 10). up(3, 20).
            flat(10, 10). flat(10, 20).
            dn(10, 1). dn(10, 2). dn(20, 3).
            sg(X, Y) <- flat(X, Y).
            sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
            "#,
        );
        let sg = &d[&Pred::new("sg", 2)];
        // flat gives (10,10),(10,20); recursion: up(1,10), sg(Y1,10), dn(Y1,Y):
        // sg(10,10) -> Y1=10 -> dn(10,{1,2}) => sg(1,1), sg(1,2); sg(10,20)?
        // sg(Y1,X1)=sg(10,10): for X=1: up(1,10), sg(10,10), dn(10,Y) => sg(1,1), sg(1,2).
        assert!(sg.contains(&Tuple::ints(&[1, 1])));
        assert!(sg.contains(&Tuple::ints(&[1, 2])));
        assert!(sg.contains(&Tuple::ints(&[2, 1])));
    }

    #[test]
    fn stratified_negation_evaluates() {
        let d = eval(
            r#"
            edge(1, 2). edge(2, 3).
            node(1). node(2). node(3). node(4).
            reach(1).
            reach(X) <- reach(Y), edge(Y, X).
            unreachable(X) <- node(X), ~reach(X).
            "#,
        );
        let u = &d[&Pred::new("unreachable", 1)];
        assert_eq!(u.len(), 1);
        assert!(u.contains(&Tuple::ints(&[4])));
    }

    #[test]
    fn mutual_recursion() {
        let d = eval(
            r#"
            zero(0).
            succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4).
            even(X) <- zero(X).
            even(X) <- succ(Y, X), odd(Y).
            odd(X) <- succ(Y, X), even(Y).
            "#,
        );
        let even = &d[&Pred::new("even", 1)];
        let odd = &d[&Pred::new("odd", 1)];
        assert!(even.contains(&Tuple::ints(&[0])));
        assert!(even.contains(&Tuple::ints(&[2])));
        assert!(even.contains(&Tuple::ints(&[4])));
        assert!(odd.contains(&Tuple::ints(&[1])));
        assert!(odd.contains(&Tuple::ints(&[3])));
        assert_eq!(even.len(), 3);
        assert_eq!(odd.len(), 2);
    }

    #[test]
    fn arithmetic_in_recursion_terminates_with_filter() {
        let d = eval(
            r#"
            start(0).
            count(X) <- start(X).
            count(Y) <- count(X), X < 5, Y = X + 1.
            "#,
        );
        let c = &d[&Pred::new("count", 1)];
        assert_eq!(c.len(), 6); // 0..=5
    }

    #[test]
    fn divergent_fixpoint_hits_bound() {
        let p = parse_program(
            r#"
            start(0).
            inf(X) <- start(X).
            inf(Y) <- inf(X), Y = X + 1.
            "#,
        )
        .unwrap();
        let db = Database::from_program(&p);
        let r = eval_program_naive(&p, &db, &FixpointConfig::with_max_iterations(50));
        assert!(r.is_err());
    }

    #[test]
    fn empty_base_relation_yields_empty_derived() {
        let d = eval("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).");
        assert!(d[&Pred::new("tc", 2)].is_empty());
    }
}
