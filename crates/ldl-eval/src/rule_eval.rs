//! The tuple-at-a-time rule evaluator.
//!
//! Evaluates one rule body in an explicit literal order — the SIP chosen
//! by the optimizer — by backtracking over substitutions. Each positive
//! atom is solved against its relation, probing a hash index on the
//! argument positions that are already ground (the pipelined index join
//! of §4); remaining argument patterns unify tuple-by-tuple, which is what
//! makes complex terms work. Builtins execute via [`crate::builtins`];
//! negated atoms test set membership against a completed relation
//! (stratified semantics).

use crate::builtins::{eval_builtin, eval_cmp_operand};
use ldl_core::unify::Subst;
use ldl_core::{CmpOp, LdlError, Literal, Pred, Result, Rule, Symbol, Term, Value};
use ldl_index::IndexCatalog;
use ldl_storage::{note_rows_enumerated, ColClass, Relation, Tuple};
use std::ops::Bound;

/// How positive-atom probe sites pick their access path.
///
/// The three modes produce identical solution streams (ordered probes
/// return row ids ascending, the same order hash probes and scans
/// enumerate), so answers and [`crate::Metrics`] are bit-for-bit equal
/// across modes — only the index work differs.
#[derive(Clone, Copy, Debug, Default)]
pub enum AccessPlan<'a> {
    /// Build a hash index per distinct key-column set on demand (the
    /// pre-selection behavior).
    #[default]
    HashOnDemand,
    /// Consult a selected-index catalog first: a bound-column set served
    /// by one of the catalog's lexicographic orders probes that shared
    /// ordered index; anything else falls back to an on-demand hash.
    Selected(&'a IndexCatalog),
    /// Never probe — always scan. The determinism baseline.
    ForceScan,
}

/// Supplies the relation to read for each body atom. Implementations
/// distinguish base relations, completed derived relations, and — for
/// semi-naive evaluation — the *delta* of one designated occurrence.
pub trait RelSource {
    /// Relation for the atom at original body position `lit_index` with
    /// predicate `pred`. `None` means empty.
    fn relation(&self, lit_index: usize, pred: Pred) -> Option<&Relation>;
}

/// A [`RelSource`] built from three lookups: a general per-predicate
/// map, an override for one specific literal position (the delta slot),
/// and a second positional override used by the parallel evaluator to
/// restrict one occurrence to a *chunk* of its relation's rows.
///
/// `restrict` wins over `overlay` at its position; the two are only
/// ever aimed at different positions (when the partitioned occurrence
/// *is* the delta occurrence, the chunk is cut from the delta and
/// installed as the `overlay` itself).
pub struct OverlaySource<'a, F>
where
    F: Fn(Pred) -> Option<&'a Relation>,
{
    /// General lookup.
    pub base: F,
    /// `(literal index, relation)` override, if any.
    pub overlay: Option<(usize, &'a Relation)>,
    /// `(literal index, row-chunk relation)` override, if any.
    pub restrict: Option<(usize, &'a Relation)>,
}

impl<'a, F> RelSource for OverlaySource<'a, F>
where
    F: Fn(Pred) -> Option<&'a Relation>,
{
    fn relation(&self, lit_index: usize, pred: Pred) -> Option<&Relation> {
        if let Some((i, rel)) = self.restrict {
            if i == lit_index {
                return Some(rel);
            }
        }
        if let Some((i, rel)) = self.overlay {
            if i == lit_index {
                return Some(rel);
            }
        }
        (self.base)(pred)
    }
}

/// Result counters for one rule evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct FiringStats {
    /// Substitutions that reached the head (tuples produced, pre-dedup).
    pub produced: usize,
}

/// Evaluates `rule` with body literal order `order` (a permutation of
/// `0..body.len()`), starting from `seed` (bindings implied by the
/// pipeline, e.g. magic constants). Emits one ground head tuple per
/// solution via `emit`.
pub fn eval_rule(
    rule: &Rule,
    order: &[usize],
    seed: &Subst,
    source: &dyn RelSource,
    emit: &mut dyn FnMut(Tuple),
) -> Result<FiringStats> {
    eval_rule_with(rule, order, seed, source, AccessPlan::HashOnDemand, emit)
}

/// [`eval_rule`] with an explicit access plan for its probe sites.
pub fn eval_rule_with(
    rule: &Rule,
    order: &[usize],
    seed: &Subst,
    source: &dyn RelSource,
    plan: AccessPlan<'_>,
    emit: &mut dyn FnMut(Tuple),
) -> Result<FiringStats> {
    debug_assert_eq!(order.len(), rule.body.len());
    let mut stats = FiringStats::default();
    solve(
        rule,
        order,
        0,
        0,
        seed.clone(),
        source,
        plan,
        emit,
        &mut stats,
    )?;
    Ok(stats)
}

/// One bound comparison eligible for folding into a range probe,
/// normalized so the probe variable sits on the left of `op`.
struct FoldedCmp {
    op: CmpOp,
    /// The evaluated ground side: always a `Const` scalar.
    val: Term,
    /// `1 << j` for its index `j` into the evaluation order.
    bit: u64,
}

/// Collects the contiguous run of bound `<,<=,>,>=` comparisons directly
/// after `order[k]` that constrain a single unbound top-level variable
/// of the instantiated atom `inst`. Returns the constrained argument
/// position and the normalized comparisons.
///
/// Stopping at the first non-consumable literal — a binding builtin, a
/// comparison on a second variable, a ground side that fails to reduce
/// to a scalar — keeps every residual literal at its original place in
/// the per-row evaluation, so error behavior matches scan-and-filter
/// exactly.
fn collect_foldable(
    body: &[Literal],
    order: &[usize],
    k: usize,
    subst: &Subst,
    inst: &[Term],
) -> Option<(usize, Vec<FoldedCmp>)> {
    let mut var: Option<Symbol> = None;
    let mut col = 0usize;
    let mut cmps = Vec::new();
    for (j, &pos) in order.iter().enumerate().skip(k + 1) {
        let b = match &body[pos] {
            Literal::Builtin(b) => b,
            _ => break,
        };
        if !matches!(b.op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
            break;
        }
        let lhs = subst.apply(&b.lhs);
        let rhs = subst.apply(&b.rhs);
        let (v, op, ground) = match (&lhs, &rhs) {
            (Term::Var(v), g) if g.is_ground() => (*v, b.op, g),
            (g, Term::Var(v)) if g.is_ground() => (*v, b.op.flipped(), g),
            _ => break,
        };
        if var.is_some_and(|u| u != v) {
            break;
        }
        // The bound must reduce to a scalar here and now; an erroring or
        // structured ground side stays residual so it surfaces (or not)
        // per enumerated row, exactly as on a scan.
        let val = match eval_cmp_operand(ground) {
            Ok(t @ Term::Const(_)) => t,
            _ => break,
        };
        if var.is_none() {
            match inst
                .iter()
                .position(|t| matches!(t, Term::Var(u) if *u == v))
            {
                Some(p) => {
                    var = Some(v);
                    col = p;
                }
                None => break,
            }
        }
        cmps.push(FoldedCmp {
            op,
            val,
            bit: 1u64 << j,
        });
    }
    if cmps.is_empty() {
        None
    } else {
        Some((col, cmps))
    }
}

/// Replaces `cur` with `cand` when `cand` is the tighter *lower* bound
/// (strict beats inclusive at equal values). Only called with bounds of
/// one value class, where `Term`'s ordering agrees with the builtin
/// comparison semantics.
fn tighten_lo(cur: &mut Bound<Term>, cand: Bound<Term>) {
    let (cv, strict) = match &cand {
        Bound::Included(t) => (t, false),
        Bound::Excluded(t) => (t, true),
        Bound::Unbounded => return,
    };
    let replace = match &*cur {
        Bound::Unbounded => true,
        Bound::Included(t) => cv > t || (cv == t && strict),
        Bound::Excluded(t) => cv > t,
    };
    if replace {
        *cur = cand;
    }
}

/// Like [`tighten_lo`] for the *upper* bound.
fn tighten_hi(cur: &mut Bound<Term>, cand: Bound<Term>) {
    let (cv, strict) = match &cand {
        Bound::Included(t) => (t, false),
        Bound::Excluded(t) => (t, true),
        Bound::Unbounded => return,
    };
    let replace = match &*cur {
        Bound::Unbounded => true,
        Bound::Included(t) => cv < t || (cv == t && strict),
        Bound::Excluded(t) => cv < t,
    };
    if replace {
        *cur = cand;
    }
}

#[allow(clippy::too_many_arguments)]
fn solve(
    rule: &Rule,
    order: &[usize],
    k: usize,
    consumed: u64,
    subst: Subst,
    source: &dyn RelSource,
    plan: AccessPlan<'_>,
    emit: &mut dyn FnMut(Tuple),
    stats: &mut FiringStats,
) -> Result<()> {
    if k == order.len() {
        let head = subst.apply_atom(&rule.head);
        if !head.is_ground() {
            return Err(LdlError::Eval(format!(
                "non-ground head {head} produced by rule {rule}; the ordering is unsafe"
            )));
        }
        stats.produced += 1;
        emit(Tuple::new(head.args));
        return Ok(());
    }
    let li = order[k];
    match &rule.body[li] {
        Literal::Builtin(b) => {
            // A comparison folded into an upstream range probe already
            // held for every enumerated row: skip it.
            if consumed & (1u64 << k) != 0 {
                return solve(
                    rule,
                    order,
                    k + 1,
                    consumed,
                    subst,
                    source,
                    plan,
                    emit,
                    stats,
                );
            }
            if let Some(next) = eval_builtin(b, &subst)? {
                solve(
                    rule,
                    order,
                    k + 1,
                    consumed,
                    next,
                    source,
                    plan,
                    emit,
                    stats,
                )?;
            }
            Ok(())
        }
        Literal::Atom(a) if a.negated => {
            let ga = subst.apply_atom(a);
            if !ga.is_ground() {
                return Err(LdlError::Eval(format!(
                    "negated literal ~{} not ground at evaluation time",
                    ga
                )));
            }
            let present = source
                .relation(li, a.pred)
                .map(|r| r.contains(&Tuple::new(ga.args)))
                .unwrap_or(false);
            if !present {
                solve(
                    rule,
                    order,
                    k + 1,
                    consumed,
                    subst,
                    source,
                    plan,
                    emit,
                    stats,
                )?;
            }
            Ok(())
        }
        Literal::Atom(a) => {
            // member(X, S): the reserved set predicate — enumerates (or
            // tests) the elements of a bound set term.
            if a.pred == Pred::new("member", 2) {
                let set_term = subst.apply(&a.args[1]);
                if !set_term.is_ground() {
                    return Err(LdlError::Eval(format!(
                        "member/2 reached with unbound set argument in {a}"
                    )));
                }
                if let Some(items) = set_term.as_set() {
                    for item in items {
                        let mut s = subst.clone();
                        if s.unify(&a.args[0], item) {
                            solve(rule, order, k + 1, consumed, s, source, plan, emit, stats)?;
                        }
                    }
                }
                return Ok(()); // non-set ground term: no elements
            }
            let Some(rel) = source.relation(li, a.pred) else {
                return Ok(()); // empty relation: no solutions from here
            };
            // Ground argument positions (after substitution) become index
            // key columns; the rest unify per row.
            let inst: Vec<Term> = a.args.iter().map(|t| subst.apply(t)).collect();
            let mut key_cols = Vec::new();
            let mut key_vals = Vec::new();
            for (i, t) in inst.iter().enumerate() {
                if t.is_ground() {
                    key_cols.push(i);
                    key_vals.push(t.clone());
                }
            }
            let try_row = |row: &Tuple,
                           consumed: u64,
                           subst: &Subst,
                           source: &dyn RelSource,
                           emit: &mut dyn FnMut(Tuple),
                           stats: &mut FiringStats|
             -> Result<()> {
                let mut s = subst.clone();
                let ok = inst.iter().zip(&row.0).all(|(pat, val)| s.unify(pat, val));
                if ok {
                    solve(rule, order, k + 1, consumed, s, source, plan, emit, stats)?;
                }
                Ok(())
            };
            // Range fold (Selected only): bound comparisons directly
            // after this atom become an ordered range probe when the
            // catalog has an order with `key_cols` as prefix and the
            // constrained column next, and the column population is
            // homogeneous in the bounds' type (so no skipped row could
            // have errored — or survived — the residual filter). Checked
            // before the scan guard so empty-prefix ranges fold too.
            if let AccessPlan::Selected(cat) = plan {
                if order.len() <= 64 {
                    if let Some((col, cmps)) = collect_foldable(&rule.body, order, k, &subst, &inst)
                    {
                        if let Some(order_cols) = cat.lookup_range(a.pred, &key_cols, col) {
                            let oi = rel.ordered_index_on(order_cols);
                            let class = oi.col_class(key_cols.len());
                            let class_ok = |t: &Term| {
                                matches!(
                                    (class, t),
                                    (ColClass::Empty, _)
                                        | (ColClass::Ints, Term::Const(Value::Int(_)))
                                        | (ColClass::Syms, Term::Const(Value::Sym(_)))
                                )
                            };
                            // Only the class-matched prefix of the run
                            // folds; the rest stays residual, preserving
                            // per-row error order.
                            let n = cmps.iter().take_while(|c| class_ok(&c.val)).count();
                            if n > 0 {
                                let mut lo = Bound::Unbounded;
                                let mut hi = Bound::Unbounded;
                                let mut bits = 0u64;
                                for c in &cmps[..n] {
                                    match c.op {
                                        CmpOp::Gt => {
                                            tighten_lo(&mut lo, Bound::Excluded(c.val.clone()))
                                        }
                                        CmpOp::Ge => {
                                            tighten_lo(&mut lo, Bound::Included(c.val.clone()))
                                        }
                                        CmpOp::Lt => {
                                            tighten_hi(&mut hi, Bound::Excluded(c.val.clone()))
                                        }
                                        CmpOp::Le => {
                                            tighten_hi(&mut hi, Bound::Included(c.val.clone()))
                                        }
                                        _ => unreachable!(),
                                    }
                                    bits |= c.bit;
                                }
                                let key: Vec<Term> = order_cols[..key_cols.len()]
                                    .iter()
                                    .map(|c| {
                                        key_vals[key_cols.binary_search(c).expect("prefix column")]
                                            .clone()
                                    })
                                    .collect();
                                let rids = oi.probe_range_bounds(
                                    rel.rows(),
                                    &key,
                                    lo.as_ref(),
                                    hi.as_ref(),
                                );
                                note_rows_enumerated(rids.len() as u64);
                                for rid in rids {
                                    try_row(
                                        rel.row(rid),
                                        consumed | bits,
                                        &subst,
                                        source,
                                        emit,
                                        stats,
                                    )?;
                                }
                                return Ok(());
                            }
                        }
                    }
                }
            }
            let scan = key_cols.is_empty()
                || key_cols.len() == inst.len() && rel.len() <= 8
                || matches!(plan, AccessPlan::ForceScan);
            if scan {
                // Full scan (no usable key, trivial relation, or forced).
                note_rows_enumerated(rel.len() as u64);
                for row in rel.iter() {
                    try_row(row, consumed, &subst, source, emit, stats)?;
                }
            } else {
                // Selected mode: a catalog order serving `key_cols` as a
                // prefix probes the shared ordered index; its row ids come
                // back ascending — the same order a hash probe yields — so
                // the solution stream is identical either way.
                let selected = match plan {
                    AccessPlan::Selected(cat) => cat.lookup(a.pred, &key_cols),
                    _ => None,
                };
                if let Some(order_cols) = selected {
                    let oi = rel.ordered_index_on(order_cols);
                    let key: Vec<Term> = order_cols[..key_cols.len()]
                        .iter()
                        .map(|c| {
                            key_vals[key_cols.binary_search(c).expect("prefix column")].clone()
                        })
                        .collect();
                    let rids = oi.probe_prefix(rel.rows(), &key);
                    note_rows_enumerated(rids.len() as u64);
                    for rid in rids {
                        try_row(rel.row(rid), consumed, &subst, source, emit, stats)?;
                    }
                } else {
                    let idx = rel.index_on(&key_cols);
                    let rids = idx.probe(&key_vals);
                    note_rows_enumerated(rids.len() as u64);
                    for &rid in rids {
                        try_row(rel.row(rid), consumed, &subst, source, emit, stats)?;
                    }
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::{parse_program, parse_query};
    use ldl_storage::Database;
    use std::collections::HashMap;

    fn run(
        text: &str,
        rule_idx: usize,
        order: Vec<usize>,
        derived: &HashMap<Pred, Relation>,
    ) -> Vec<Tuple> {
        let src = parse_program(text).unwrap();
        let db = Database::from_program(&src);
        let rule = &src.rules[rule_idx];
        let source = OverlaySource {
            base: |p: Pred| derived.get(&p).or_else(|| db.relation(p)),
            overlay: None,
            restrict: None,
        };
        let mut out = Vec::new();
        eval_rule(rule, &order, &Subst::new(), &source, &mut |t| out.push(t)).unwrap();
        out
    }

    #[test]
    fn single_join_produces_pairs() {
        let out = run(
            r#"
            e(1, 2). e(2, 3).
            p(X, Z) <- e(X, Y), e(Y, Z).
            "#,
            0,
            vec![0, 1],
            &HashMap::new(),
        );
        assert_eq!(out, vec![Tuple::ints(&[1, 3])]);
    }

    #[test]
    fn order_does_not_change_result() {
        let text = r#"
            a(1). a(2). a(3).
            b(2). b(3). b(4).
            both(X) <- a(X), b(X).
        "#;
        let fwd = run(text, 0, vec![0, 1], &HashMap::new());
        let mut rev = run(text, 0, vec![1, 0], &HashMap::new());
        rev.sort_by_key(|t| format!("{t}"));
        let mut fwd = fwd;
        fwd.sort_by_key(|t| format!("{t}"));
        assert_eq!(fwd, rev);
        assert_eq!(fwd.len(), 2);
    }

    #[test]
    fn builtins_execute_in_order() {
        let out = run(
            r#"
            n(1). n(2). n(3).
            big(X, Y) <- n(X), X > 1, Y = X * 10.
            "#,
            0,
            vec![0, 1, 2],
            &HashMap::new(),
        );
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::ints(&[2, 20])));
        assert!(out.contains(&Tuple::ints(&[3, 30])));
    }

    #[test]
    fn bad_order_is_runtime_error() {
        // Evaluating Y = X * 10 before n(X) is not EC.
        let src = parse_program(
            r#"
            n(1).
            big(X, Y) <- n(X), Y = X * 10.
            "#,
        )
        .unwrap();
        let db = Database::from_program(&src);
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: None,
            restrict: None,
        };
        let mut out = Vec::new();
        let r = eval_rule(&src.rules[0], &[1, 0], &Subst::new(), &source, &mut |t| {
            out.push(t)
        });
        assert!(r.is_err());
    }

    #[test]
    fn negation_filters() {
        let out = run(
            r#"
            node(1). node(2). node(3).
            broken(2).
            ok(X) <- node(X), ~broken(X).
            "#,
            0,
            vec![0, 1],
            &HashMap::new(),
        );
        assert_eq!(out.len(), 2);
        assert!(!out.contains(&Tuple::ints(&[2])));
    }

    #[test]
    fn complex_terms_unify_in_rules() {
        let out = run(
            r#"
            part(bike, wheel(front, 32)). part(bike, frame(steel)).
            spokes(B, N) <- part(B, wheel(P, N)).
            "#,
            0,
            vec![0],
            &HashMap::new(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(1), &Term::int(32));
    }

    #[test]
    fn overlay_replaces_one_occurrence() {
        let src = parse_program(
            r#"
            e(1, 2).
            p(X, Z) <- e(X, Y), e(Y, Z).
            "#,
        )
        .unwrap();
        let db = Database::from_program(&src);
        // Override the SECOND occurrence with {(2,9)}.
        let delta = Relation::from_tuples(2, [Tuple::ints(&[2, 9])]);
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: Some((1, &delta)),
            restrict: None,
        };
        let mut out = Vec::new();
        eval_rule(&src.rules[0], &[0, 1], &Subst::new(), &source, &mut |t| {
            out.push(t)
        })
        .unwrap();
        assert_eq!(out, vec![Tuple::ints(&[1, 9])]);
    }

    #[test]
    fn seed_binds_variables_like_a_pipeline() {
        let src = parse_program(
            r#"
            e(1, 2). e(2, 3).
            p(X, Y) <- e(X, Y).
            "#,
        )
        .unwrap();
        let db = Database::from_program(&src);
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: None,
            restrict: None,
        };
        let mut seed = Subst::new();
        seed.bind(ldl_core::Symbol::intern("X"), Term::int(2));
        let mut out = Vec::new();
        eval_rule(&src.rules[0], &[0], &seed, &source, &mut |t| out.push(t)).unwrap();
        assert_eq!(out, vec![Tuple::ints(&[2, 3])]);
    }

    #[test]
    fn query_constants_via_seed() {
        // Equivalent of answering p(1, Y)? by seeding X=1.
        let q = parse_query("p(1, Y)?").unwrap();
        assert_eq!(q.adornment().to_string(), "bf");
    }

    /// Evaluates rule 0 of `text` under the given plan (catalog built
    /// from the program itself for `Selected`), returning the emitted
    /// stream or the error.
    fn run_plan(text: &str, order: &[usize], selected: bool) -> Result<Vec<Tuple>> {
        let src = parse_program(text).unwrap();
        let db = Database::from_program(&src);
        let cat = IndexCatalog::build(&src);
        let plan = if selected {
            AccessPlan::Selected(&cat)
        } else {
            AccessPlan::ForceScan
        };
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: None,
            restrict: None,
        };
        let mut out = Vec::new();
        eval_rule_with(
            &src.rules[0],
            order,
            &Subst::new(),
            &source,
            plan,
            &mut |t| out.push(t),
        )?;
        Ok(out)
    }

    #[test]
    fn range_fold_is_bit_identical_to_scan() {
        use ldl_storage::IndexCounters;
        let text = "n(4). n(9). n(1). n(7). n(2). n(8). n(3). n(6). n(5).\n\
                    big(X) <- n(X), X > 2, X <= 7.";
        let before = IndexCounters::snapshot();
        let folded = run_plan(text, &[0, 1, 2], true).unwrap();
        let d = before.delta_since();
        assert!(d.range_probes >= 1, "fold must issue a range probe");
        let scanned = run_plan(text, &[0, 1, 2], false).unwrap();
        // Same tuples in the same emission order (insertion order of n).
        assert_eq!(folded, scanned);
        assert_eq!(folded.len(), 5); // 3..=7 in fact order: 4,7,3,6,5
        assert_eq!(folded[0], Tuple::ints(&[4]));
    }

    #[test]
    fn range_fold_with_equality_prefix() {
        let text = "m(1). m(2).\n\
                    f(1, 10). f(1, 20). f(2, 30). f(1, 15). f(2, 40).\n\
                    hit(K, V) <- m(K), f(K, V), V >= 15, V < 35.";
        let folded = run_plan(text, &[0, 1, 2, 3], true).unwrap();
        let scanned = run_plan(text, &[0, 1, 2, 3], false).unwrap();
        assert_eq!(folded, scanned);
        assert_eq!(folded.len(), 3); // (1,20), (1,15), (2,30)
    }

    #[test]
    fn empty_range_folds_to_nothing() {
        let text = "n(1). n(2). n(3).\nq(X) <- n(X), X > 5, X < 3.";
        let folded = run_plan(text, &[0, 1, 2], true).unwrap();
        let scanned = run_plan(text, &[0, 1, 2], false).unwrap();
        assert!(folded.is_empty());
        assert_eq!(folded, scanned);
    }

    #[test]
    fn mixed_type_column_never_folds_and_errors_like_a_scan() {
        // A symbol in an otherwise-integer column makes the class Other:
        // the fold must decline so the undefined comparison surfaces
        // exactly as a scan would surface it.
        let text = "n(1). n(tom).\nbig(X) <- n(X), X > 5.";
        let folded = run_plan(text, &[0, 1], true);
        let scanned = run_plan(text, &[0, 1], false);
        assert!(folded.is_err());
        assert!(scanned.is_err());
    }

    #[test]
    fn binding_builtin_stops_the_foldable_run() {
        // Only X > 2 folds; Y = X + 1 blocks the run and X < 9 stays a
        // residual filter. Answers still match the scan bit-for-bit.
        let text = "n(1). n(3). n(10). n(5).\n\
                    q(X, Y) <- n(X), X > 2, Y = X + 1, X < 9.";
        let folded = run_plan(text, &[0, 1, 2, 3], true).unwrap();
        let scanned = run_plan(text, &[0, 1, 2, 3], false).unwrap();
        assert_eq!(folded, scanned);
        assert_eq!(folded.len(), 2);
        assert!(folded.contains(&Tuple::ints(&[3, 4])));
        assert!(folded.contains(&Tuple::ints(&[5, 6])));
    }

    #[test]
    fn symbol_ranges_fold_lexicographically() {
        let text = "w(cherry). w(apple). w(fig). w(banana). w(date).\n\
                    mid(X) <- w(X), X >= banana, X < fig.";
        let folded = run_plan(text, &[0, 1, 2], true).unwrap();
        let scanned = run_plan(text, &[0, 1, 2], false).unwrap();
        assert_eq!(folded, scanned);
        assert_eq!(folded.len(), 3); // cherry, banana, date in fact order
    }
}
