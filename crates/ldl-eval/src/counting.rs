//! The generalized counting rewriting [SZ 86].
//!
//! For *linear* recursive cliques, counting refines magic sets by
//! remembering the derivation depth: the binding-passing predicate
//! carries a counter (`cnt_p_a(I, bound args)`), and answers are produced
//! level by level on the way back down (`p_a'(I, t̄)`), so tuples for
//! different recursion depths never mix. On acyclic data this avoids the
//! joins magic sets must perform to reconnect answers with bindings,
//! which is why the paper lists counting among "the most efficient"
//! methods for bound recursive queries.
//!
//! The rewriting below produces an ordinary Horn program with integer
//! arithmetic (`I1 = I + 1`), evaluated by the same semi-naive engine:
//!
//! ```text
//! exit rule   h.a(t̄) <- body                 (no clique literal)
//!   =>        ans_h_a(I, t̄) <- cnt_h_a(I, b(t̄)), body'.
//! rec rule    h.a(t̄) <- pre, r.b(s̄), post    (one clique literal)
//!   =>        cnt_r_b(I1, b(s̄)) <- cnt_h_a(I, b(t̄)), pre', I1 = I + 1.
//!             ans_h_a(I, t̄) <- cnt_h_a(I, b(t̄)), pre', I1 = I + 1,
//!                              ans_r_b(I1, s̄), post'.
//! seed        cnt_q_a(0, query constants).
//! answers     ans_q_a(0, t̄) projected onto t̄.
//! ```
//!
//! Counting's known limitation is inherited faithfully: on *cyclic* data
//! the counter grows without bound and the evaluation aborts at the
//! fixpoint iteration limit (the classic counting-method divergence).

use ldl_core::adorn::{AdornedPred, AdornedProgram};
use ldl_core::{Atom, LdlError, Literal, Pred, Program, Query, Result, Rule, Span, Symbol, Term};
use ldl_storage::{Database, Tuple};
use std::collections::BTreeSet;

/// An upper bound on the recursion depth the counting method can reach
/// on *acyclic* data: every level of the counter consumes at least one
/// fresh piece of the stored data, so the depth can never exceed the
/// total structural size of the active domain. We charge one unit per
/// term node of every stored tuple (so a list of length n contributes
/// ~2n, covering list-walking recursions), plus one per rule and a
/// small constant for the rewriting's seed/projection rounds. A
/// semi-naive evaluation of the counting program that runs past this
/// bound can only be the counter spinning on a data cycle.
pub fn active_domain_iteration_bound(program: &Program, db: &Database) -> usize {
    let domain: usize = db
        .preds()
        .iter()
        .filter_map(|&p| db.relation(p))
        .map(|r| {
            r.rows()
                .iter()
                .map(|t| t.0.iter().map(Term::size).sum::<usize>())
                .sum::<usize>()
        })
        .sum();
    domain + program.rules.len() + 8
}

/// Rewrites the generic fixpoint-limit error produced when the counting
/// program's `cnt_*`/`ans_*` relations spin past the active-domain
/// bound into a dedicated diagnostic naming the counting method's
/// cyclic-data limitation and the way out (magic sets terminates on
/// cycles because its binding-passing predicate carries no counter).
/// Any other error passes through unchanged.
pub fn map_divergence_error(e: LdlError, query: &Query, bound: usize) -> LdlError {
    match &e {
        LdlError::Eval(msg)
            if msg.contains("exceeded") && (msg.contains("cnt_") || msg.contains("ans_")) =>
        {
            LdlError::Eval(format!(
                "counting method diverged on query {}: the derivation counter passed the \
                 active-domain bound of {bound} iterations, so the data reachable from the \
                 query is cyclic and the counting rewriting [SZ 86] cannot terminate on it; \
                 re-run this query with the magic-sets method, which handles cyclic data",
                query.goal
            ))
        }
        _ => e,
    }
}

/// Result of the counting rewriting.
#[derive(Clone, Debug)]
pub struct CountingProgram {
    /// The rewritten rules.
    pub program: Program,
    /// Seed predicate `cnt_q_a` (arity = 1 + #bound).
    pub seed_pred: Pred,
    /// Seed tuple `(0, constants...)`.
    pub seed: Tuple,
    /// Answer predicate `ans_q_a` (arity = 1 + original arity).
    pub answer_pred: Pred,
    /// Original arity of the query predicate.
    pub query_arity: usize,
}

fn cnt_pred(ap: &AdornedPred) -> Pred {
    Pred {
        name: Symbol::intern(&format!("cnt_{}", ap.renamed().name)),
        arity: 1 + ap.adornment.bound_count(),
    }
}

fn ans_pred(ap: &AdornedPred) -> Pred {
    Pred {
        name: Symbol::intern(&format!("ans_{}", ap.renamed().name)),
        arity: 1 + ap.pred.arity,
    }
}

/// Rewrites an adorned program into a counting program.
///
/// Requirements (checked): *linearity* — every rule has at most one
/// positive derived literal in its body; with two or more, the recursion
/// depth would have to fork into independent counters (the non-linear
/// case [SZ 86]'s generalized counting does not cover either). Negated
/// derived literals are handled through stratification, like
/// [`crate::magic::magic_rewrite`].
pub fn counting_rewrite(
    adorned: &AdornedProgram,
    program: &Program,
    query: &Query,
) -> Result<CountingProgram> {
    if query.pred() != adorned.query.pred || query.adornment() != adorned.query.adornment {
        return Err(LdlError::Validation(format!(
            "query {query} does not match adorned program for {}",
            adorned.query
        )));
    }

    // Linearity requirement: at most one positive derived literal per
    // rule. (With two or more, the recursion depth would have to fork
    // into independent counters — the non-linear case the generalized
    // counting method of [SZ 86] does not cover either.) The set of
    // derived predicates is exactly the set of adorned heads.
    let derived: BTreeSet<Pred> = adorned.adorned_preds.iter().map(|ap| ap.pred).collect();

    let counter = || Term::var("CNT_I");
    let counter1 = || Term::var("CNT_I1");
    let mut out = Program::new();

    for ar in &adorned.rules {
        if ar.head_atom.args.iter().any(|a| a.as_group().is_some()) {
            return Err(LdlError::Validation(format!(
                "counting rewriting does not support grouping heads ({})",
                ar.head_atom
            )));
        }
        let head_ap = AdornedPred::new(ar.head.pred, ar.head.adornment);
        let bound = ar.head.adornment.bound_positions();
        // cnt_h_a(I, bound args of head)
        let cnt_head_args: Vec<Term> = std::iter::once(counter())
            .chain(bound.iter().map(|&i| ar.head_atom.args[i].clone()))
            .collect();
        let cnt_head_lit = Literal::Atom(Atom {
            pred: cnt_pred(&head_ap),
            args: cnt_head_args,
            negated: false,
            span: Span::NONE,
        });

        // Find the (single) derived literal, if any.
        let mut clique_pos: Option<(usize, &Atom, ldl_core::Adornment)> = None;
        for (j, (lit, ad)) in ar.body.iter().enumerate() {
            if let (Literal::Atom(a), Some(ad)) = (lit, ad) {
                debug_assert!(!a.negated, "negated atoms are never adorned");
                if derived.contains(&a.pred) {
                    if clique_pos.is_some() {
                        return Err(LdlError::Validation(format!(
                            "counting requires linear recursion; rule {ar} has two derived literals"
                        )));
                    }
                    clique_pos = Some((j, a, *ad));
                }
            }
        }

        // ans head: ans_h_a(I, t̄)
        let ans_head_args: Vec<Term> = std::iter::once(counter())
            .chain(ar.head_atom.args.iter().cloned())
            .collect();
        let ans_head = Atom {
            pred: ans_pred(&head_ap),
            args: ans_head_args,
            negated: false,
            span: Span::NONE,
        };

        match clique_pos {
            None => {
                // Exit rule: ans_h_a(I, t̄) <- cnt_h_a(I, b(t̄)), body.
                let mut body = vec![cnt_head_lit];
                body.extend(ar.body.iter().map(|(l, _)| l.clone()));
                out.push(Rule::new(ans_head, body));
            }
            Some((j, ratom, rad)) => {
                let rec_ap = AdornedPred::new(ratom.pred, rad);
                let rbound = rad.bound_positions();
                let incr = Literal::Builtin(ldl_core::BuiltinPred::new(
                    ldl_core::CmpOp::Eq,
                    counter1(),
                    Term::compound("+", vec![counter(), Term::int(1)]),
                ));
                // cnt rule: cnt_r_b(I1, b(s̄)) <- cnt_h_a(I, b(t̄)), pre, I1 = I + 1.
                let cnt_rec_args: Vec<Term> = std::iter::once(counter1())
                    .chain(rbound.iter().map(|&i| ratom.args[i].clone()))
                    .collect();
                let cnt_rec_head = Atom {
                    pred: cnt_pred(&rec_ap),
                    args: cnt_rec_args,
                    negated: false,
                    span: Span::NONE,
                };
                let mut cbody = vec![cnt_head_lit.clone()];
                cbody.extend(ar.body[..j].iter().map(|(l, _)| l.clone()));
                cbody.push(incr.clone());
                out.push(Rule::new(cnt_rec_head, cbody));

                // ans rule: ans_h_a(I, t̄) <- cnt_h_a(I, b(t̄)), pre,
                //            I1 = I + 1, ans_r_b(I1, s̄), post.
                let ans_rec_args: Vec<Term> = std::iter::once(counter1())
                    .chain(ratom.args.iter().cloned())
                    .collect();
                let ans_rec_lit = Literal::Atom(Atom {
                    pred: ans_pred(&rec_ap),
                    args: ans_rec_args,
                    negated: false,
                    span: Span::NONE,
                });
                let mut abody = vec![cnt_head_lit];
                abody.extend(ar.body[..j].iter().map(|(l, _)| l.clone()));
                abody.push(incr);
                abody.push(ans_rec_lit);
                abody.extend(ar.body[j + 1..].iter().map(|(l, _)| l.clone()));
                out.push(Rule::new(ans_head, abody));
            }
        }
    }

    // Fact-import rules (facts asserted directly on derived predicates;
    // see the matching comment in `magic`):
    //   ans_p_a(I, x̄) <- cnt_p_a(I, x̄_bound), p(x̄).
    for ap in &adorned.adorned_preds {
        let vars: Vec<Term> = (0..ap.pred.arity)
            .map(|i| Term::var(&format!("FI_{i}")))
            .collect();
        let bound = ap.adornment.bound_positions();
        let cargs: Vec<Term> = std::iter::once(counter())
            .chain(bound.iter().map(|&i| vars[i].clone()))
            .collect();
        let guard = Atom {
            pred: cnt_pred(ap),
            args: cargs,
            negated: false,
            span: Span::NONE,
        };
        let orig = Atom {
            pred: ap.pred,
            args: vars.clone(),
            negated: false,
            span: Span::NONE,
        };
        let hargs: Vec<Term> = std::iter::once(counter()).chain(vars).collect();
        let head = Atom {
            pred: ans_pred(ap),
            args: hargs,
            negated: false,
            span: Span::NONE,
        };
        out.push(Rule::new(
            head,
            vec![Literal::Atom(guard), Literal::Atom(orig)],
        ));
    }

    // Stratified negation: negated predicates' full rules, unrenamed.
    for r in crate::magic::negated_derived_closure(adorned, program) {
        out.push(r);
    }

    let qap = AdornedPred::new(adorned.query.pred, adorned.query.adornment);
    let bound = adorned.query.adornment.bound_positions();
    let consts: Vec<Term> = std::iter::once(Term::int(0))
        .chain(bound.iter().map(|&i| query.goal.args[i].clone()))
        .collect();

    Ok(CountingProgram {
        program: out,
        seed_pred: cnt_pred(&qap),
        seed: Tuple::new(consts),
        answer_pred: ans_pred(&qap),
        query_arity: qap.pred.arity,
    })
}

/// Extracts the query answers from the `ans_q_a` relation: rows with
/// counter 0, counter column dropped.
pub fn extract_answers(
    ans_rel: &ldl_storage::Relation,
    query_arity: usize,
) -> ldl_storage::Relation {
    let mut out = ldl_storage::Relation::new(query_arity);
    for row in ans_rel.iter() {
        if row.get(0) == &Term::int(0) {
            out.insert(row.project(&(1..=query_arity).collect::<Vec<_>>()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::FixpointConfig;
    use crate::seminaive::eval_program_seminaive;
    use ldl_core::adorn::{adorn_program, GreedySip};
    use ldl_core::parser::{parse_program, parse_query};
    use ldl_storage::{Database, Relation};

    fn run_counting(text: &str, qtext: &str) -> Result<(Relation, crate::Metrics)> {
        let program = parse_program(text).unwrap();
        let query = parse_query(qtext).unwrap();
        let adorned = adorn_program(&program, query.pred(), query.adornment(), &GreedySip);
        let counting = counting_rewrite(&adorned, &program, &query)?;
        let mut db = Database::from_program(&program);
        db.relation_mut(counting.seed_pred)
            .insert(counting.seed.clone());
        let (derived, metrics) = eval_program_seminaive(
            &counting.program,
            &db,
            &FixpointConfig::with_max_iterations(500),
        )?;
        let ans = extract_answers(&derived[&counting.answer_pred], counting.query_arity);
        Ok((ans, metrics))
    }

    const TC: &str = r#"
        e(1, 2). e(2, 3). e(3, 4). e(10, 11).
        tc(X, Y) <- e(X, Y).
        tc(X, Y) <- e(X, Z), tc(Z, Y).
    "#;

    #[test]
    fn counting_tc_bound_query() {
        let (ans, _) = run_counting(TC, "tc(1, Y)?").unwrap();
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&Tuple::ints(&[1, 2])));
        assert!(ans.contains(&Tuple::ints(&[1, 3])));
        assert!(ans.contains(&Tuple::ints(&[1, 4])));
    }

    #[test]
    fn counting_sg_paper_clique() {
        let text = r#"
            up(1, 10). up(2, 10). up(3, 20).
            flat(10, 10). flat(20, 20).
            dn(10, 1). dn(10, 2). dn(20, 3).
            sg(X, Y) <- flat(X, Y).
            sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
        "#;
        let (ans, _) = run_counting(text, "sg(1, Y)?").unwrap();
        assert!(ans.contains(&Tuple::ints(&[1, 1])));
        assert!(ans.contains(&Tuple::ints(&[1, 2])));
        assert!(!ans.iter().any(|t| t.get(0) != &Term::int(1)));
    }

    #[test]
    fn nonlinear_clique_rejected() {
        let text = r#"
            e(1, 2).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), tc(Z, Y).
        "#;
        let err = run_counting(text, "tc(1, Y)?");
        assert!(err.is_err());
    }

    #[test]
    fn cyclic_data_diverges_at_iteration_bound() {
        let text = r#"
            e(1, 2). e(2, 1).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- e(X, Z), tc(Z, Y).
        "#;
        // The counting method's classic failure mode: counter grows
        // without bound on cycles and the evaluation aborts.
        let r = run_counting(text, "tc(1, Y)?");
        assert!(r.is_err());
    }

    #[test]
    fn counting_matches_magic_on_dag() {
        let text = r#"
            e(1, 2). e(1, 3). e(2, 4). e(3, 4). e(4, 5).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- e(X, Z), tc(Z, Y).
        "#;
        let (ans, _) = run_counting(text, "tc(1, Y)?").unwrap();
        assert_eq!(ans.len(), 4); // 2,3,4,5
    }

    #[test]
    fn bb_query_membership() {
        let (ans, _) = run_counting(TC, "tc(1, 4)?").unwrap();
        assert!(ans.contains(&Tuple::ints(&[1, 4])));
    }

    #[test]
    fn facts_on_derived_predicates_survive_rewriting() {
        let text = r#"
            edge(1, 2). edge(2, 3).
            reach(1).
            reach(Y) <- reach(X), edge(X, Y).
        "#;
        let (ans, _) = run_counting(text, "reach(3)?").unwrap();
        assert!(ans.contains(&Tuple::ints(&[3])), "got {ans:?}");
    }

    #[test]
    fn list_length_via_counting() {
        let text = "len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.";
        let (ans, _) = run_counting(text, "len([10, 20, 30, 40], N)?").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.rows()[0].get(1), &Term::int(4));
    }

    #[test]
    fn list_append_via_counting() {
        let text = "app([], L, L).\napp([H | T], L, [H | R]) <- app(T, L, R).";
        let (ans, _) = run_counting(text, "app([1, 2], [3], Z)?").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.rows()[0].get(2).to_string(), "[1, 2, 3]");
    }

    #[test]
    fn seed_shape() {
        let program = parse_program(TC).unwrap();
        let query = parse_query("tc(1, Y)?").unwrap();
        let adorned = adorn_program(&program, query.pred(), query.adornment(), &GreedySip);
        let c = counting_rewrite(&adorned, &program, &query).unwrap();
        assert_eq!(c.seed, Tuple::ints(&[0, 1]));
        assert_eq!(c.seed_pred.name.as_str(), "cnt_tc_bf");
        assert_eq!(c.answer_pred.name.as_str(), "ans_tc_bf");
        assert_eq!(c.answer_pred.arity, 3);
    }
}
