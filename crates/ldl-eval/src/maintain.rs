//! Incremental view maintenance on EDB deltas.
//!
//! Semi-naive evaluation already computes *with* deltas; this module
//! generalizes that differential machinery into *maintenance*: an
//! [`Engine`] holds an evaluated program and repairs every derived
//! relation in place when an [`EdbDelta`] batch (inserts + retracts per
//! base relation) arrives, doing work proportional to the change rather
//! than to the database.
//!
//! Strata are dispatched off the existing dependency graph, one of
//! three ways:
//!
//! * **Counting** (non-recursive strata): a [`SupportCounts`] table
//!   tracks how many distinct derivations each tuple has. A delta batch
//!   is translated into *delta rules* by finite differencing — for each
//!   rule and each body occurrence `k` of a changed predicate, fire the
//!   rule with occurrence `k` restricted to the delta, occurrences
//!   before `k` reading the *new* state and occurrences after `k` the
//!   *old* state. That factorization partitions the changed derivations
//!   exactly (each lost or gained derivation is counted once), so the
//!   new count is `old + gained - lost` and a tuple leaves the relation
//!   exactly when its count reaches zero. Negated subgoals participate
//!   with inverted polarity: tuples *entering* a negated predicate
//!   destroy derivations, tuples *leaving* it create them, and the
//!   delta occurrence is evaluated as a positive match against the
//!   delta relation.
//! * **DRed** (recursive cliques): counting does not terminate under
//!   recursion (a cycle supports itself), so deletions run
//!   delete-rederive: over-delete the deletion fixpoint evaluated over
//!   the pre-update state, re-derive over-deleted tuples that still
//!   have an immediate derivation from the surviving state, then
//!   propagate re-derivations and the insertion delta semi-naively.
//! * **Recompute** (grouping strata): an aggregate can change without
//!   its inputs identifying which group key is affected cheaply; the
//!   grouping rule's output is recomputed wholesale — work bounded by
//!   the rule's input, and groups re-emit in sorted group-key order
//!   exactly as from scratch.
//!
//! **Determinism contract.** Derivation order is inherently
//! path-dependent: a retraction can change which derivation of an
//! unchanged tuple comes first, so no delta-proportional algorithm can
//! reproduce from-scratch *insertion* order. The engine therefore keeps
//! every derived relation in *canonical* order (ascending by `Term`'s
//! total order — [`Relation::canonicalize`]) after initial evaluation
//! and after every `apply_delta`. Under that contract the guarantee is
//! exact: any sequence of updates arriving at the same EDB state yields
//! bit-for-bit identical derived relations — rows *and* row order —
//! across maintenance vs. from-scratch construction, any thread count,
//! and any access-path policy.

use crate::grouping::has_grouping;
use crate::metrics::Metrics;
use crate::naive::{evaluation_groups, FixpointConfig};
use crate::parallel::{run_round, Firing};
use crate::rule_eval::{eval_rule_with, AccessPlan, RelSource};
use ldl_core::depgraph::DependencyGraph;
use ldl_core::unify::Subst;
use ldl_core::{LdlError, Literal, Pred, Program, Result, Rule};
use ldl_index::IndexCatalog;
use ldl_storage::{Database, Relation, SupportCounts, Tuple};
use ldl_support::par::scoped_map;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A batch of base-relation updates: inserts and retracts per
/// predicate. Within one batch retracts apply before inserts; a tuple
/// both retracted and inserted is a no-op. Retracting an absent tuple
/// and inserting a present one are no-ops too (set semantics), dropped
/// during normalization so they cost nothing downstream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdbDelta {
    inserts: BTreeMap<Pred, Vec<Tuple>>,
    retracts: BTreeMap<Pred, Vec<Tuple>>,
}

impl EdbDelta {
    /// Empty batch.
    pub fn new() -> EdbDelta {
        EdbDelta::default()
    }

    /// Stages an insert.
    pub fn insert(&mut self, pred: Pred, t: Tuple) -> &mut EdbDelta {
        self.inserts.entry(pred).or_default().push(t);
        self
    }

    /// Stages a retract.
    pub fn retract(&mut self, pred: Pred, t: Tuple) -> &mut EdbDelta {
        self.retracts.entry(pred).or_default().push(t);
        self
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }

    /// Number of staged operations (inserts + retracts).
    pub fn len(&self) -> usize {
        self.inserts.values().map(Vec::len).sum::<usize>()
            + self.retracts.values().map(Vec::len).sum::<usize>()
    }

    /// Every predicate the batch mentions.
    pub fn preds(&self) -> BTreeSet<Pred> {
        self.inserts
            .keys()
            .chain(self.retracts.keys())
            .copied()
            .collect()
    }

    /// Staged inserts, per predicate.
    pub fn staged_inserts(&self) -> impl Iterator<Item = (Pred, &[Tuple])> {
        self.inserts.iter().map(|(&p, ts)| (p, ts.as_slice()))
    }

    /// Staged retracts, per predicate.
    pub fn staged_retracts(&self) -> impl Iterator<Item = (Pred, &[Tuple])> {
        self.retracts.iter().map(|(&p, ts)| (p, ts.as_slice()))
    }
}

/// What one [`Engine::apply_delta`] call did.
#[derive(Clone, Debug, Default)]
pub struct MaintenanceReport {
    /// Base tuples actually inserted (after no-op normalization).
    pub base_inserted: usize,
    /// Base tuples actually retracted.
    pub base_retracted: usize,
    /// Net derived tuples inserted across all strata.
    pub derived_inserted: usize,
    /// Net derived tuples retracted across all strata.
    pub derived_retracted: usize,
    /// Strata whose inputs changed (they did work).
    pub groups_touched: usize,
    /// Strata skipped because no input of theirs changed.
    pub groups_skipped: usize,
    /// Net per-predicate derived changes, in stratum order:
    /// `(predicate, inserted, retracted)`.
    pub changes: Vec<(Pred, usize, usize)>,
    /// Work metrics of the delta rules that ran.
    pub metrics: Metrics,
}

/// How one stratum is maintained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Strategy {
    /// Non-recursive: per-tuple derivation counts.
    Counting,
    /// Non-recursive with grouping heads: recompute the stratum.
    Recompute,
    /// Recursive clique: delete-rederive.
    DRed,
}

/// One evaluation group (stratum) of the engine's program.
#[derive(Clone, Debug)]
struct Group {
    preds: Vec<Pred>,
    rules: Vec<usize>,
    strategy: Strategy,
}

/// Normalized per-predicate deltas flowing through the strata during
/// one `apply_delta`. Entries are always non-empty relations.
#[derive(Default)]
struct DeltaState {
    minus: HashMap<Pred, Relation>,
    plus: HashMap<Pred, Relation>,
}

impl DeltaState {
    fn touches(&self, p: Pred) -> bool {
        self.minus.contains_key(&p) || self.plus.contains_key(&p)
    }
}

/// An evaluated program whose derived relations can be repaired
/// incrementally as base relations change. Build one with
/// [`Engine::evaluate`], then feed it [`EdbDelta`] batches through
/// [`Engine::apply_delta`].
pub struct Engine {
    program: Program,
    db: Database,
    cfg: FixpointConfig,
    groups: Vec<Group>,
    derived: HashMap<Pred, Relation>,
    support: HashMap<Pred, SupportCounts>,
    eval_metrics: Metrics,
}

impl Engine {
    /// Evaluates `program` against `db` from scratch and returns the
    /// maintainable engine. Derived relations come out in canonical
    /// order (see the module docs); non-recursive strata additionally
    /// get their [`SupportCounts`] populated.
    pub fn evaluate(program: &Program, db: &Database, cfg: &FixpointConfig) -> Result<Engine> {
        let graph = DependencyGraph::build(program);
        graph.check_stratified()?;
        let mut groups = Vec::new();
        for preds in evaluation_groups(program, &graph) {
            let rules: Vec<usize> = program
                .rules
                .iter()
                .enumerate()
                .filter(|(_, r)| preds.contains(&r.head.pred))
                .map(|(i, _)| i)
                .collect();
            let recursive = preds.iter().any(|&p| graph.is_recursive(p));
            let grouping = rules.iter().any(|&ri| has_grouping(&program.rules[ri]));
            if recursive && grouping {
                return Err(LdlError::Eval(format!(
                    "grouping head {} inside a recursive clique is not stratifiable",
                    program.rules[rules[0]].head
                )));
            }
            let strategy = if recursive {
                Strategy::DRed
            } else if grouping {
                Strategy::Recompute
            } else {
                Strategy::Counting
            };
            groups.push(Group {
                preds,
                rules,
                strategy,
            });
        }
        let mut engine = Engine {
            program: program.clone(),
            db: db.clone(),
            cfg: cfg.clone(),
            groups,
            derived: HashMap::new(),
            support: HashMap::new(),
            eval_metrics: Metrics::default(),
        };
        engine.full_eval()?;
        Ok(engine)
    }

    /// The engine's program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The engine's base relations (current EDB state).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The relation backing `p`: derived if `p` has rules, else base.
    pub fn relation(&self, p: Pred) -> Option<&Relation> {
        self.derived.get(&p).or_else(|| self.db.relation(p))
    }

    /// All maintained derived relations.
    pub fn derived(&self) -> &HashMap<Pred, Relation> {
        &self.derived
    }

    /// The derivation count of `t` in `p`'s support table, when `p`
    /// belongs to a counting (non-recursive, non-grouping) stratum.
    pub fn support_count(&self, p: Pred, t: &Tuple) -> Option<u64> {
        self.support.get(&p).map(|s| s.get(t))
    }

    /// Metrics of the initial from-scratch evaluation.
    pub fn eval_metrics(&self) -> Metrics {
        self.eval_metrics
    }

    /// Query answers against the maintained state: the goal's relation
    /// filtered by the goal's ground arguments.
    pub fn answers(&self, query: &ldl_core::Query) -> Relation {
        match self.relation(query.pred()) {
            Some(rel) => crate::engine::filter_answers(rel, &query.goal),
            None => Relation::new(query.pred().arity),
        }
    }

    /// From-scratch evaluation of every stratum, populating `derived`
    /// and, for counting strata, `support`.
    fn full_eval(&mut self) -> Result<()> {
        let Engine {
            program,
            db,
            cfg,
            groups,
            derived,
            support,
            eval_metrics,
        } = self;
        let mut metrics = Metrics::default();
        *derived = program
            .derived_preds()
            .into_iter()
            .map(|p| {
                let rel = db
                    .relation(p)
                    .cloned()
                    .unwrap_or_else(|| Relation::new(p.arity));
                (p, rel)
            })
            .collect();
        let catalog = cfg.catalog(program);
        for group in groups.iter() {
            match group.strategy {
                Strategy::Counting | Strategy::Recompute => {
                    if group.strategy == Strategy::Counting {
                        for &p in &group.preds {
                            // Asserted facts are axioms: one derivation each.
                            let mut sup = SupportCounts::new();
                            for t in derived[&p].rows() {
                                sup.add(t, 1);
                            }
                            support.insert(p, sup);
                        }
                    }
                    let (out, round_metrics) = {
                        let firings: Vec<Firing> = group
                            .rules
                            .iter()
                            .map(|&ri| Firing {
                                rule_index: ri,
                                overlay: None,
                            })
                            .collect();
                        let base = |p: Pred| derived.get(&p).or_else(|| db.relation(p));
                        run_round(program, &firings, &base, cfg.threads, cfg.plan(&catalog))?
                    };
                    metrics.absorb(round_metrics);
                    metrics.iterations += 1;
                    for (p, t) in out {
                        if let Some(sup) = support.get_mut(&p) {
                            sup.add(&t, 1);
                        }
                        if derived.get_mut(&p).expect("group relation").insert(t) {
                            metrics.tuples_derived += 1;
                        }
                    }
                }
                Strategy::DRed => {
                    eval_recursive_group(program, db, cfg, &catalog, group, derived, &mut metrics)?;
                }
            }
        }
        for rel in derived.values_mut() {
            rel.canonicalize();
        }
        for (p, sup) in support.iter_mut() {
            sup.set_synced(derived[p].version());
        }
        *eval_metrics = metrics;
        Ok(())
    }

    /// Checks that a staged batch is applicable without mutating
    /// anything: no derived or reserved predicates, arities match.
    /// `apply_delta` runs the same checks first; services can call this
    /// on stage so a bad fact is rejected before it reaches a commit.
    pub fn validate_delta(&self, delta: &EdbDelta) -> Result<()> {
        let derived_preds = self.program.derived_preds();
        let member = Pred::new("member", 2);
        for (p, ts) in delta.retracts.iter().chain(delta.inserts.iter()) {
            if derived_preds.contains(p) {
                return Err(LdlError::Eval(format!(
                    "cannot apply an EDB delta to derived predicate {p}"
                )));
            }
            if *p == member {
                return Err(LdlError::Eval(
                    "member/2 is a reserved set predicate".into(),
                ));
            }
            for t in ts {
                if t.arity() != p.arity {
                    return Err(LdlError::Eval(format!(
                        "delta tuple {t} has arity {} but {p} expects {}",
                        t.arity(),
                        p.arity
                    )));
                }
            }
        }
        Ok(())
    }

    /// Applies one update batch: mutates the base relations, then
    /// repairs every affected stratum bottom-up. Untouched strata cost
    /// nothing. Derived relations come out canonical, bit-for-bit
    /// identical to a fresh [`Engine::evaluate`] over the updated EDB.
    ///
    /// **Atomicity:** on `Err` the engine is exactly as it was — the
    /// batch is validated before any mutation, and if a maintenance
    /// stratum fails mid-repair the touched base relations are restored
    /// and the derived state rebuilt by a deterministic from-scratch
    /// pass over the restored EDB, which reproduces the pre-delta state
    /// bit-for-bit (the canonical-order contract).
    pub fn apply_delta(&mut self, delta: &EdbDelta) -> Result<MaintenanceReport> {
        let mut report = MaintenanceReport::default();
        self.validate_delta(delta)?;

        // Normalize to net per-predicate deltas against the current EDB:
        // retracts of present tuples (unless re-inserted in the same
        // batch), inserts of absent tuples.
        let mut deltas = DeltaState::default();
        for (&p, ts) in &delta.retracts {
            let Some(rel) = self.db.relation(p) else {
                continue;
            };
            let reinserted = delta.inserts.get(&p);
            let mut d = Relation::new(p.arity);
            for t in ts {
                if rel.contains(t) && !reinserted.is_some_and(|ins| ins.contains(t)) {
                    d.insert(t.clone());
                }
            }
            if !d.is_empty() {
                deltas.minus.insert(p, d);
            }
        }
        for (&p, ts) in &delta.inserts {
            let cur = self.db.relation(p);
            let mut d = Relation::new(p.arity);
            for t in ts {
                if !cur.is_some_and(|r| r.contains(t)) {
                    d.insert(t.clone());
                }
            }
            if !d.is_empty() {
                deltas.plus.insert(p, d);
            }
        }
        let touched: BTreeSet<Pred> = deltas
            .minus
            .keys()
            .chain(deltas.plus.keys())
            .copied()
            .collect();
        if touched.is_empty() {
            report.groups_skipped = self.groups.len();
            return Ok(report);
        }

        // Snapshot old states, then commit to the base relations. The
        // maintainers extend `old` with derived-relation snapshots as
        // they go, so keep a separate copy of just the base pre-images
        // for rollback.
        let mut old: HashMap<Pred, Relation> = HashMap::new();
        for &p in &touched {
            let rel = self.db.relation_mut(p);
            old.insert(p, rel.clone());
            if let Some(d) = deltas.minus.get(&p) {
                report.base_retracted += rel.remove_batch(d.rows());
            }
            if let Some(d) = deltas.plus.get(&p) {
                report.base_inserted += rel.extend(d.rows().iter().cloned());
            }
        }
        let base_backup = old.clone();

        match self.repair_groups(&mut deltas, &mut old, &mut report) {
            Ok(()) => Ok(report),
            Err(e) => {
                // Roll back: restore the touched base relations, then
                // rebuild derived relations and support counts from
                // scratch over the restored EDB. Evaluation is
                // deterministic, so this reproduces the pre-delta
                // state bit-for-bit.
                for (p, rel) in base_backup {
                    self.db.set_relation(p, rel);
                }
                self.full_eval().map_err(|re| {
                    LdlError::Eval(format!(
                        "rollback re-evaluation failed after maintenance error ({e}): {re}"
                    ))
                })?;
                Err(e)
            }
        }
    }

    /// The repair loop of [`Engine::apply_delta`]: walks strata
    /// bottom-up, skipping any whose body predicates are untouched.
    fn repair_groups(
        &mut self,
        deltas: &mut DeltaState,
        old: &mut HashMap<Pred, Relation>,
        report: &mut MaintenanceReport,
    ) -> Result<()> {
        let groups = self.groups.clone();
        let cfg = self.cfg.clone();
        let catalog = cfg.catalog(&self.program);
        for group in &groups {
            let touched = group.rules.iter().any(|&ri| {
                self.program.rules[ri]
                    .body
                    .iter()
                    .filter_map(Literal::as_atom)
                    .any(|a| deltas.touches(a.pred))
            });
            if !touched {
                report.groups_skipped += 1;
                continue;
            }
            report.groups_touched += 1;
            match group.strategy {
                Strategy::Counting => maintain_counting(
                    &self.program,
                    &self.db,
                    &cfg,
                    &catalog,
                    group,
                    &mut self.derived,
                    &mut self.support,
                    deltas,
                    old,
                    report,
                )?,
                Strategy::Recompute => maintain_recompute(
                    &self.program,
                    &self.db,
                    &cfg,
                    &catalog,
                    group,
                    &mut self.derived,
                    deltas,
                    old,
                    report,
                )?,
                Strategy::DRed => maintain_dred(
                    &self.program,
                    &self.db,
                    &cfg,
                    &catalog,
                    group,
                    &mut self.derived,
                    deltas,
                    old,
                    report,
                )?,
            }
        }
        Ok(())
    }
}

/// The semi-naive fixpoint of one recursive clique (mirrors
/// `eval_program_seminaive`'s clique loop; kept separate so the
/// from-scratch pass and maintenance share the engine's group
/// structure).
fn eval_recursive_group(
    program: &Program,
    db: &Database,
    cfg: &FixpointConfig,
    catalog: &Option<IndexCatalog>,
    group: &Group,
    derived: &mut HashMap<Pred, Relation>,
    metrics: &mut Metrics,
) -> Result<()> {
    let in_group = |p: Pred| group.preds.contains(&p);
    let (exit, rec): (Vec<usize>, Vec<usize>) = group
        .rules
        .iter()
        .partition(|&&ri| !program.rules[ri].body_atoms().any(|a| in_group(a.pred)));

    let mut delta: HashMap<Pred, Relation> = group
        .preds
        .iter()
        .map(|&p| (p, derived[&p].clone()))
        .collect();
    let (out, round_metrics) = {
        let firings: Vec<Firing> = exit
            .iter()
            .map(|&ri| Firing {
                rule_index: ri,
                overlay: None,
            })
            .collect();
        let base = |p: Pred| derived.get(&p).or_else(|| db.relation(p));
        run_round(program, &firings, &base, cfg.threads, cfg.plan(catalog))?
    };
    metrics.absorb(round_metrics);
    for (p, t) in out {
        if derived.get_mut(&p).expect("relation").insert(t.clone()) {
            metrics.tuples_derived += 1;
            delta.get_mut(&p).expect("delta relation").insert(t);
        }
    }
    metrics.iterations += 1;

    let mut iters = 0usize;
    while delta.values().any(|r| !r.is_empty()) {
        iters += 1;
        if iters > cfg.max_iterations {
            return Err(LdlError::Eval(format!(
                "semi-naive fixpoint for {:?} exceeded {} iterations (divergent / unsafe)",
                group
                    .preds
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>(),
                cfg.max_iterations
            )));
        }
        metrics.iterations += 1;
        let (produced, round_metrics) = {
            let mut firings: Vec<Firing> = Vec::new();
            for &ri in &rec {
                let rule = &program.rules[ri];
                for (j, l) in rule.body.iter().enumerate() {
                    let delta_occ = l
                        .as_atom()
                        .filter(|a| !a.negated && in_group(a.pred))
                        .map(|a| &delta[&a.pred]);
                    if let Some(drel) = delta_occ {
                        if !drel.is_empty() {
                            firings.push(Firing {
                                rule_index: ri,
                                overlay: Some((j, drel)),
                            });
                        }
                    }
                }
            }
            let base = |p: Pred| derived.get(&p).or_else(|| db.relation(p));
            run_round(program, &firings, &base, cfg.threads, cfg.plan(catalog))?
        };
        metrics.absorb(round_metrics);
        let mut next_delta: HashMap<Pred, Relation> = group
            .preds
            .iter()
            .map(|&p| (p, Relation::new(p.arity)))
            .collect();
        for (p, t) in produced {
            if derived.get_mut(&p).expect("relation").insert(t.clone()) {
                metrics.tuples_derived += 1;
                next_delta.get_mut(&p).expect("delta").insert(t);
            }
        }
        delta = next_delta;
    }
    Ok(())
}

/// Which side of the change a delta round computes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Derivations lost: positive occurrences read the retract delta,
    /// negated occurrences the insert delta.
    Destructive,
    /// Derivations gained: the mirror image.
    Constructive,
}

/// Which non-delta occurrences of changed predicates read the *old*
/// state in a delta firing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OldSpan {
    /// Occurrences after the delta position — the exact finite
    /// differencing used by counting maintenance.
    Suffix,
    /// Every other occurrence — DRed's over-deletion, evaluated
    /// entirely over the pre-update state.
    All,
    /// None: everything else reads the current state (insertion
    /// propagation, where over-enumeration is harmless).
    None,
}

/// One maintenance rule firing: an owned rule (negated delta
/// occurrences are flipped positive so the delta enumerates) plus
/// per-position relation overrides.
struct DeltaFiring<'a> {
    rule: Rule,
    head: Pred,
    overrides: Vec<(usize, &'a Relation)>,
}

/// Builds the delta firings of `rules` for one direction: one firing
/// per body occurrence of a predicate with a relevant delta, the
/// occurrence reading the delta relation and other changed-predicate
/// occurrences reading old state per `old_span`.
fn build_delta_firings<'a>(
    program: &Program,
    rules: &[usize],
    minus: &'a HashMap<Pred, Relation>,
    plus: &'a HashMap<Pred, Relation>,
    old: &'a HashMap<Pred, Relation>,
    dir: Dir,
    old_span: OldSpan,
) -> Vec<DeltaFiring<'a>> {
    let member = Pred::new("member", 2);
    let mut firings = Vec::new();
    for &ri in rules {
        let rule = &program.rules[ri];
        for (k, lit) in rule.body.iter().enumerate() {
            let Some(a) = lit.as_atom() else { continue };
            if a.pred == member {
                continue;
            }
            let drel = match (dir, a.negated) {
                (Dir::Destructive, false) | (Dir::Constructive, true) => minus.get(&a.pred),
                (Dir::Destructive, true) | (Dir::Constructive, false) => plus.get(&a.pred),
            };
            let Some(drel) = drel.filter(|r| !r.is_empty()) else {
                continue;
            };
            let mut frule = rule.clone();
            if a.negated {
                if let Literal::Atom(fa) = &mut frule.body[k] {
                    fa.negated = false;
                }
            }
            let mut overrides = vec![(k, drel)];
            if old_span != OldSpan::None {
                for (j, l2) in rule.body.iter().enumerate() {
                    if j == k || (old_span == OldSpan::Suffix && j < k) {
                        continue;
                    }
                    if let Some(a2) = l2.as_atom() {
                        if let Some(o) = old.get(&a2.pred) {
                            overrides.push((j, o));
                        }
                    }
                }
            }
            firings.push(DeltaFiring {
                rule: frule,
                head: rule.head.pred,
                overrides,
            });
        }
    }
    firings
}

/// A [`RelSource`] with per-position overrides over a per-predicate
/// base — the multi-position generalization of `OverlaySource` that
/// delta firings need (delta at one slot, old state at others).
struct MultiSource<'s, 'a, F>
where
    F: Fn(Pred) -> Option<&'a Relation>,
{
    base: F,
    overrides: &'s [(usize, &'a Relation)],
}

impl<'s, 'a, F> RelSource for MultiSource<'s, 'a, F>
where
    F: Fn(Pred) -> Option<&'a Relation>,
{
    fn relation(&self, lit_index: usize, pred: Pred) -> Option<&Relation> {
        for (i, rel) in self.overrides {
            if *i == lit_index {
                return Some(rel);
            }
        }
        (self.base)(pred)
    }
}

/// Executes delta firings on up to `threads` workers, merging the
/// produced `(head, tuple)` stream in firing order — the same
/// deterministic merge discipline as the round executor, so maintenance
/// results are bit-for-bit identical at any thread count.
fn run_delta_round<'a>(
    firings: &[DeltaFiring<'a>],
    base: &(dyn Fn(Pred) -> Option<&'a Relation> + Sync),
    threads: usize,
    plan: AccessPlan<'_>,
) -> Result<(Vec<(Pred, Tuple)>, Metrics)> {
    let scope = ldl_storage::scope_handle();
    let results = scoped_map(
        threads,
        firings.len(),
        |i| -> Result<(Vec<(Pred, Tuple)>, Metrics)> {
            let _counters = scope.enter();
            let firing = &firings[i];
            let order: Vec<usize> = (0..firing.rule.body.len()).collect();
            let source = MultiSource {
                base: |p: Pred| base(p),
                overrides: firing.overrides.as_slice(),
            };
            let mut out: Vec<(Pred, Tuple)> = Vec::new();
            let st = eval_rule_with(
                &firing.rule,
                &order,
                &Subst::new(),
                &source,
                plan,
                &mut |t| out.push((firing.head, t)),
            )?;
            let metrics = Metrics {
                tuples_produced: st.produced,
                rule_firings: 1,
                ..Metrics::default()
            };
            Ok((out, metrics))
        },
    );
    let mut merged: Vec<(Pred, Tuple)> = Vec::new();
    let mut metrics = Metrics::default();
    for res in results {
        let (tuples, m) = res?;
        metrics.absorb(m);
        merged.extend(tuples);
    }
    Ok((merged, metrics))
}

/// Records a stratum's net changes into the flowing delta state and the
/// report.
#[allow(clippy::too_many_arguments)]
fn commit_group_delta(
    p: Pred,
    out_minus: Relation,
    out_plus: Relation,
    deltas: &mut DeltaState,
    report: &mut MaintenanceReport,
) {
    if out_minus.is_empty() && out_plus.is_empty() {
        return;
    }
    report.derived_inserted += out_plus.len();
    report.derived_retracted += out_minus.len();
    report.changes.push((p, out_plus.len(), out_minus.len()));
    if !out_minus.is_empty() {
        deltas.minus.insert(p, out_minus);
    }
    if !out_plus.is_empty() {
        deltas.plus.insert(p, out_plus);
    }
}

/// Counting maintenance of one non-recursive stratum: exact lost/gained
/// derivation multisets via finite differencing, committed as
/// `new count = old + gained - lost`.
#[allow(clippy::too_many_arguments)]
fn maintain_counting(
    program: &Program,
    db: &Database,
    cfg: &FixpointConfig,
    catalog: &Option<IndexCatalog>,
    group: &Group,
    derived: &mut HashMap<Pred, Relation>,
    support: &mut HashMap<Pred, SupportCounts>,
    deltas: &mut DeltaState,
    old: &mut HashMap<Pred, Relation>,
    report: &mut MaintenanceReport,
) -> Result<()> {
    debug_assert_eq!(group.preds.len(), 1, "non-recursive strata are singletons");
    let p = group.preds[0];
    let (lost, gained) = {
        let base = |q: Pred| derived.get(&q).or_else(|| db.relation(q));
        let dfir = build_delta_firings(
            program,
            &group.rules,
            &deltas.minus,
            &deltas.plus,
            old,
            Dir::Destructive,
            OldSpan::Suffix,
        );
        let (lost, m) = run_delta_round(&dfir, &base, cfg.threads, cfg.plan(catalog))?;
        report.metrics.absorb(m);
        let cfir = build_delta_firings(
            program,
            &group.rules,
            &deltas.minus,
            &deltas.plus,
            old,
            Dir::Constructive,
            OldSpan::Suffix,
        );
        let (gained, m) = run_delta_round(&cfir, &base, cfg.threads, cfg.plan(catalog))?;
        report.metrics.absorb(m);
        (lost, gained)
    };
    if lost.is_empty() && gained.is_empty() {
        return Ok(());
    }
    let mut loss: HashMap<&Tuple, u64> = HashMap::new();
    for (_, t) in &lost {
        *loss.entry(t).or_insert(0) += 1;
    }
    let mut gain: HashMap<&Tuple, u64> = HashMap::new();
    for (_, t) in &gained {
        *gain.entry(t).or_insert(0) += 1;
    }
    let rel = derived.get_mut(&p).expect("derived relation");
    let sup = support.get_mut(&p).expect("support counts");
    debug_assert_eq!(
        sup.synced_version(),
        rel.version(),
        "support counts out of sync with {p}"
    );
    let before_rel = rel.clone();
    let mut out_minus = Relation::new(p.arity);
    let mut out_plus = Relation::new(p.arity);
    let mut handled: HashSet<&Tuple> = HashSet::new();
    for (_, t) in lost.iter().chain(gained.iter()) {
        if !handled.insert(t) {
            continue;
        }
        let l = loss.get(t).copied().unwrap_or(0);
        let g = gain.get(t).copied().unwrap_or(0);
        let before = sup.get(t);
        debug_assert!(
            before + g >= l,
            "support underflow for {t}: {before} + {g} < {l}"
        );
        let after = (before + g).saturating_sub(l);
        sup.set(t, after);
        if before > 0 && after == 0 {
            out_minus.insert(t.clone());
        } else if before == 0 && after > 0 {
            rel.insert(t.clone());
            out_plus.insert(t.clone());
        }
    }
    // One batched pass: per-tuple `remove` would repack the row store
    // (and bump the version) once per departure.
    rel.remove_batch(out_minus.rows());
    rel.canonicalize();
    sup.set_synced(rel.version());
    if !out_minus.is_empty() || !out_plus.is_empty() {
        old.insert(p, before_rel);
    }
    commit_group_delta(p, out_minus, out_plus, deltas, report);
    Ok(())
}

/// Recompute maintenance of one grouping stratum: re-run its rules
/// against the updated inputs (work bounded by the rule input, not the
/// database) and diff against the previous output. Groups re-emit in
/// sorted group-key order because the replacement is canonicalized like
/// every maintained relation.
#[allow(clippy::too_many_arguments)]
fn maintain_recompute(
    program: &Program,
    db: &Database,
    cfg: &FixpointConfig,
    catalog: &Option<IndexCatalog>,
    group: &Group,
    derived: &mut HashMap<Pred, Relation>,
    deltas: &mut DeltaState,
    old: &mut HashMap<Pred, Relation>,
    report: &mut MaintenanceReport,
) -> Result<()> {
    let mut fresh: HashMap<Pred, Relation> = group
        .preds
        .iter()
        .map(|&p| {
            let rel = db
                .relation(p)
                .cloned()
                .unwrap_or_else(|| Relation::new(p.arity));
            (p, rel)
        })
        .collect();
    let (out, m) = {
        let firings: Vec<Firing> = group
            .rules
            .iter()
            .map(|&ri| Firing {
                rule_index: ri,
                overlay: None,
            })
            .collect();
        let base = |q: Pred| derived.get(&q).or_else(|| db.relation(q));
        run_round(program, &firings, &base, cfg.threads, cfg.plan(catalog))?
    };
    report.metrics.absorb(m);
    for (p, t) in out {
        fresh.get_mut(&p).expect("group relation").insert(t);
    }
    for &p in &group.preds {
        let mut new_rel = fresh.remove(&p).expect("group relation");
        new_rel.canonicalize();
        let old_rel = derived.get(&p).expect("derived relation");
        let mut out_minus = Relation::new(p.arity);
        for t in old_rel.rows() {
            if !new_rel.contains(t) {
                out_minus.insert(t.clone());
            }
        }
        let mut out_plus = Relation::new(p.arity);
        for t in new_rel.rows() {
            if !old_rel.contains(t) {
                out_plus.insert(t.clone());
            }
        }
        if out_minus.is_empty() && out_plus.is_empty() {
            continue; // same set: keep the existing canonical relation
        }
        old.insert(p, old_rel.clone());
        derived.insert(p, new_rel);
        commit_group_delta(p, out_minus, out_plus, deltas, report);
    }
    Ok(())
}

/// DRed maintenance of one recursive clique: over-delete the deletion
/// fixpoint (evaluated over the pre-update state), re-derive
/// over-deleted tuples that still have an immediate derivation from the
/// surviving state, then propagate re-derivations and the insertion
/// delta semi-naively over the current state.
#[allow(clippy::too_many_arguments)]
fn maintain_dred(
    program: &Program,
    db: &Database,
    cfg: &FixpointConfig,
    catalog: &Option<IndexCatalog>,
    group: &Group,
    derived: &mut HashMap<Pred, Relation>,
    deltas: &mut DeltaState,
    old: &mut HashMap<Pred, Relation>,
    report: &mut MaintenanceReport,
) -> Result<()> {
    let plan_threads = cfg.threads;
    let empty: HashMap<Pred, Relation> = HashMap::new();
    // Pre-update snapshot: phase A's evaluation state, the downstream
    // groups' old state, and the baseline the net delta is diffed from.
    for &p in &group.preds {
        old.insert(p, derived[&p].clone());
    }

    // --- Phase A: over-deletion fixpoint over the old state. ---
    let mut overdeleted: HashMap<Pred, Relation> = group
        .preds
        .iter()
        .map(|&p| (p, Relation::new(p.arity)))
        .collect();
    let mut pending = {
        let fir = build_delta_firings(
            program,
            &group.rules,
            &deltas.minus,
            &deltas.plus,
            old,
            Dir::Destructive,
            OldSpan::All,
        );
        let base = |q: Pred| derived.get(&q).or_else(|| db.relation(q));
        let (out, m) = run_delta_round(&fir, &base, plan_threads, cfg.plan(catalog))?;
        report.metrics.absorb(m);
        out
    };
    let mut iters = 0usize;
    loop {
        let mut round_del: HashMap<Pred, Relation> = group
            .preds
            .iter()
            .map(|&p| (p, Relation::new(p.arity)))
            .collect();
        for (p, t) in pending {
            // Phase A evaluates entirely over the `old` overrides, so
            // `derived` stays untouched until the fixpoint settles —
            // "already over-deleted" is tracked in `overdeleted`.
            if overdeleted[&p].contains(&t) {
                continue;
            }
            if !derived.get(&p).expect("clique relation").contains(&t) {
                continue;
            }
            // Asserted facts are axioms, never over-deleted.
            if db.relation(p).is_some_and(|r| r.contains(&t)) {
                continue;
            }
            overdeleted.get_mut(&p).expect("clique").insert(t.clone());
            round_del.get_mut(&p).expect("clique").insert(t);
        }
        if round_del.values().all(|r| r.is_empty()) {
            break;
        }
        iters += 1;
        if iters > cfg.max_iterations {
            return Err(LdlError::Eval(format!(
                "DRed over-deletion for {:?} exceeded {} iterations",
                group
                    .preds
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>(),
                cfg.max_iterations
            )));
        }
        pending = {
            let fir = build_delta_firings(
                program,
                &group.rules,
                &round_del,
                &empty,
                old,
                Dir::Destructive,
                OldSpan::All,
            );
            let base = |q: Pred| derived.get(&q).or_else(|| db.relation(q));
            let (out, m) = run_delta_round(&fir, &base, plan_threads, cfg.plan(catalog))?;
            report.metrics.absorb(m);
            out
        };
    }

    // Apply the over-deletion in one batched pass per predicate: the
    // fixpoint above never reads `derived` for clique predicates (every
    // occurrence reads `old`), so deferring the removal changes nothing
    // except the number of row-store repacks (one instead of one per
    // over-deleted tuple).
    for (&p, dels) in &overdeleted {
        if !dels.is_empty() {
            derived
                .get_mut(&p)
                .expect("clique relation")
                .remove_batch(dels.rows());
        }
    }

    // --- Phase B: re-derive survivors from the post-deletion state. ---
    let mut rederived: Vec<(Pred, Tuple)> = Vec::new();
    {
        let base = |q: Pred| derived.get(&q).or_else(|| db.relation(q));
        for &p in &group.preds {
            for t in overdeleted[&p].rows() {
                if has_immediate_derivation(program, &group.rules, p, t, &base, cfg.plan(catalog))?
                {
                    rederived.push((p, t.clone()));
                }
            }
        }
    }
    let mut round_ins: HashMap<Pred, Relation> = group
        .preds
        .iter()
        .map(|&p| (p, Relation::new(p.arity)))
        .collect();
    let mut out_plus: HashMap<Pred, Relation> = group
        .preds
        .iter()
        .map(|&p| (p, Relation::new(p.arity)))
        .collect();
    for (p, t) in rederived {
        derived
            .get_mut(&p)
            .expect("clique relation")
            .insert(t.clone());
        round_ins.get_mut(&p).expect("clique").insert(t);
    }

    // --- Phase C: seed new derivations from the incoming constructive
    // deltas, then propagate everything semi-naively. ---
    let seeded = {
        let fir = build_delta_firings(
            program,
            &group.rules,
            &deltas.minus,
            &deltas.plus,
            old,
            Dir::Constructive,
            OldSpan::None,
        );
        let base = |q: Pred| derived.get(&q).or_else(|| db.relation(q));
        let (out, m) = run_delta_round(&fir, &base, plan_threads, cfg.plan(catalog))?;
        report.metrics.absorb(m);
        out
    };
    for (p, t) in seeded {
        if derived
            .get_mut(&p)
            .expect("clique relation")
            .insert(t.clone())
        {
            if !old[&p].contains(&t) {
                out_plus.get_mut(&p).expect("clique").insert(t.clone());
            }
            round_ins.get_mut(&p).expect("clique").insert(t);
        }
    }
    let mut iters = 0usize;
    while round_ins.values().any(|r| !r.is_empty()) {
        iters += 1;
        if iters > cfg.max_iterations {
            return Err(LdlError::Eval(format!(
                "DRed insertion propagation for {:?} exceeded {} iterations",
                group
                    .preds
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>(),
                cfg.max_iterations
            )));
        }
        let produced = {
            let fir = build_delta_firings(
                program,
                &group.rules,
                &empty,
                &round_ins,
                old,
                Dir::Constructive,
                OldSpan::None,
            );
            let base = |q: Pred| derived.get(&q).or_else(|| db.relation(q));
            let (out, m) = run_delta_round(&fir, &base, plan_threads, cfg.plan(catalog))?;
            report.metrics.absorb(m);
            out
        };
        let mut next: HashMap<Pred, Relation> = group
            .preds
            .iter()
            .map(|&p| (p, Relation::new(p.arity)))
            .collect();
        for (p, t) in produced {
            if derived
                .get_mut(&p)
                .expect("clique relation")
                .insert(t.clone())
            {
                if !old[&p].contains(&t) {
                    out_plus.get_mut(&p).expect("clique").insert(t.clone());
                }
                next.get_mut(&p).expect("clique").insert(t);
            }
        }
        round_ins = next;
    }

    // --- Net deltas and canonical order. ---
    for &p in &group.preds {
        let rel = derived.get_mut(&p).expect("clique relation");
        let mut out_minus = Relation::new(p.arity);
        for t in overdeleted[&p].rows() {
            if !rel.contains(t) {
                out_minus.insert(t.clone());
            }
        }
        rel.canonicalize();
        let plus = out_plus.remove(&p).expect("clique");
        commit_group_delta(p, out_minus, plus, deltas, report);
    }
    Ok(())
}

/// Does `t` have an immediate derivation through any of `rules` for
/// head predicate `p`, evaluated against `base`? Unifies the rule head
/// with `t` and runs the body from that seed — the selective,
/// index-probed backward check DRed's re-derivation phase needs.
fn has_immediate_derivation<'a>(
    program: &Program,
    rules: &[usize],
    p: Pred,
    t: &Tuple,
    base: &(dyn Fn(Pred) -> Option<&'a Relation> + Sync),
    plan: AccessPlan<'_>,
) -> Result<bool> {
    for &ri in rules {
        let rule = &program.rules[ri];
        if rule.head.pred != p {
            continue;
        }
        let mut seed = Subst::new();
        if !rule
            .head
            .args
            .iter()
            .zip(&t.0)
            .all(|(pat, val)| seed.unify(pat, val))
        {
            continue;
        }
        let order: Vec<usize> = (0..rule.body.len()).collect();
        let source = MultiSource {
            base: |q: Pred| base(q),
            overrides: &[],
        };
        let mut found = false;
        eval_rule_with(rule, &order, &seed, &source, plan, &mut |_| {
            found = true;
        })?;
        if found {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::{parse_program, parse_query};
    use ldl_core::Term;

    fn t(vals: &[i64]) -> Tuple {
        Tuple(vals.iter().map(|&v| Term::int(v)).collect())
    }

    fn engine(text: &str, cfg: &FixpointConfig) -> Engine {
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        Engine::evaluate(&program, &db, cfg).unwrap()
    }

    fn scratch_rows(engine: &Engine, p: &str, arity: usize) -> Vec<Tuple> {
        // From-scratch reference over the engine's current EDB.
        let fresh = Engine::evaluate(
            engine.program(),
            engine.database(),
            &FixpointConfig::serial(),
        )
        .unwrap();
        fresh
            .relation(Pred::new(p, arity))
            .map(|r| r.rows().to_vec())
            .unwrap_or_default()
    }

    /// Retracting one of two derivations decrements the count but keeps
    /// the tuple; retracting the second removes it.
    #[test]
    fn retract_with_surviving_derivation_keeps_tuple() {
        let mut e = engine(
            "a(1, 2).\nb(1, 2).\np(X, Y) <- a(X, Y).\np(X, Y) <- b(X, Y).",
            &FixpointConfig::serial(),
        );
        let p = Pred::new("p", 2);
        assert_eq!(e.support_count(p, &t(&[1, 2])), Some(2));

        let mut d = EdbDelta::new();
        d.retract(Pred::new("a", 2), t(&[1, 2]));
        let report = e.apply_delta(&d).unwrap();
        assert_eq!(report.base_retracted, 1);
        assert_eq!(report.derived_retracted, 0, "tuple must survive");
        assert_eq!(e.support_count(p, &t(&[1, 2])), Some(1));
        assert_eq!(e.relation(p).unwrap().rows(), &[t(&[1, 2])]);

        let mut d = EdbDelta::new();
        d.retract(Pred::new("b", 2), t(&[1, 2]));
        let report = e.apply_delta(&d).unwrap();
        assert_eq!(report.derived_retracted, 1);
        assert_eq!(e.support_count(p, &t(&[1, 2])), Some(0));
        assert!(e.relation(p).unwrap().is_empty());
    }

    /// Deleting an edge inside a recursive clique keeps closure tuples
    /// that an alternate path re-derives (DRed phase B).
    #[test]
    fn dred_rederives_alternate_path() {
        let text = "e(1, 2).\ne(2, 3).\ne(1, 3).\n\
                    tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";
        let mut e = engine(text, &FixpointConfig::serial());
        let tc = Pred::new("tc", 2);
        assert_eq!(e.relation(tc).unwrap().len(), 3);

        // tc(1,3) is over-deleted with tc(2,3) but survives via e(1,3).
        let mut d = EdbDelta::new();
        d.retract(Pred::new("e", 2), t(&[2, 3]));
        let report = e.apply_delta(&d).unwrap();
        assert_eq!(report.derived_retracted, 1, "only tc(2,3) goes");
        assert_eq!(e.relation(tc).unwrap().rows(), &[t(&[1, 2]), t(&[1, 3])]);
        assert_eq!(e.relation(tc).unwrap().rows(), scratch_rows(&e, "tc", 2));
    }

    /// Retracting an absent tuple is a no-op: no underflow, no stratum
    /// work, relations untouched.
    #[test]
    fn retract_absent_is_noop() {
        let mut e = engine("e(1, 2).\np(X, Y) <- e(X, Y).", &FixpointConfig::serial());
        let before = e.relation(Pred::new("p", 2)).unwrap().clone();
        let mut d = EdbDelta::new();
        d.retract(Pred::new("e", 2), t(&[9, 9]));
        let report = e.apply_delta(&d).unwrap();
        assert_eq!(report.base_retracted, 0);
        assert_eq!(report.groups_touched, 0);
        assert_eq!(report.groups_skipped, 1);
        assert_eq!(e.relation(Pred::new("p", 2)).unwrap(), &before);
        assert_eq!(e.support_count(Pred::new("p", 2), &t(&[1, 2])), Some(1));
    }

    /// Duplicate inserts in one batch and re-inserts of present tuples
    /// collapse under set semantics: counts stay capped.
    #[test]
    fn duplicate_insert_is_capped() {
        let mut e = engine("e(1, 2).\np(X, Y) <- e(X, Y).", &FixpointConfig::serial());
        let p = Pred::new("p", 2);
        let mut d = EdbDelta::new();
        d.insert(Pred::new("e", 2), t(&[3, 4]));
        d.insert(Pred::new("e", 2), t(&[3, 4])); // duplicate in-batch
        d.insert(Pred::new("e", 2), t(&[1, 2])); // already present
        let report = e.apply_delta(&d).unwrap();
        assert_eq!(report.base_inserted, 1);
        assert_eq!(report.derived_inserted, 1);
        assert_eq!(e.support_count(p, &t(&[3, 4])), Some(1));
        assert_eq!(e.support_count(p, &t(&[1, 2])), Some(1));
        assert_eq!(e.database().relation(Pred::new("e", 2)).unwrap().len(), 2);
    }

    /// An update flipping a stratified-negation subgoal retracts and
    /// later re-derives the dependent tuple.
    #[test]
    fn negation_subgoal_flip() {
        let text = "e(1, 2).\nbad(9).\np(X) <- e(X, Y), ~bad(Y).";
        let mut e = engine(text, &FixpointConfig::serial());
        let p = Pred::new("p", 1);
        assert_eq!(e.relation(p).unwrap().rows(), &[t(&[1])]);

        // bad(2) arrives: the negated subgoal now fails.
        let mut d = EdbDelta::new();
        d.insert(Pred::new("bad", 1), t(&[2]));
        let report = e.apply_delta(&d).unwrap();
        assert_eq!(report.derived_retracted, 1);
        assert!(e.relation(p).unwrap().is_empty());
        assert_eq!(e.relation(p).unwrap().rows(), scratch_rows(&e, "p", 1));

        // bad(2) leaves: the derivation comes back.
        let mut d = EdbDelta::new();
        d.retract(Pred::new("bad", 1), t(&[2]));
        let report = e.apply_delta(&d).unwrap();
        assert_eq!(report.derived_inserted, 1);
        assert_eq!(e.relation(p).unwrap().rows(), &[t(&[1])]);
        assert_eq!(e.support_count(p, &t(&[1])), Some(1));
    }

    /// A retraction that changes a group's aggregate re-emits the
    /// grouping stratum in sorted group-key order.
    #[test]
    fn grouping_reemits_sorted_after_retract() {
        let text = "s(2, 20).\ns(1, 10).\ns(1, 30).\ng(X, <Y>) <- s(X, Y).";
        let mut e = engine(text, &FixpointConfig::serial());
        let g = Pred::new("g", 2);
        assert_eq!(e.relation(g).unwrap().len(), 2);

        let mut d = EdbDelta::new();
        d.retract(Pred::new("s", 2), t(&[1, 30]));
        let report = e.apply_delta(&d).unwrap();
        // The key-1 set changed: old aggregate out, new aggregate in.
        assert_eq!(report.derived_retracted, 1);
        assert_eq!(report.derived_inserted, 1);
        let rows = e.relation(g).unwrap().rows().to_vec();
        assert_eq!(rows, scratch_rows(&e, "g", 2), "canonical order restored");
        assert!(
            rows.windows(2).all(|w| w[0].0 <= w[1].0),
            "sorted group keys"
        );

        // Retracting a group's last member drops the group entirely.
        let mut d = EdbDelta::new();
        d.retract(Pred::new("s", 2), t(&[1, 10]));
        e.apply_delta(&d).unwrap();
        assert_eq!(e.relation(g).unwrap().len(), 1);
        assert_eq!(e.relation(g).unwrap().rows(), scratch_rows(&e, "g", 2));
    }

    /// Deltas aimed at derived predicates or with wrong arity are
    /// rejected before any state changes.
    #[test]
    fn invalid_deltas_rejected() {
        let mut e = engine("e(1, 2).\np(X, Y) <- e(X, Y).", &FixpointConfig::serial());
        let mut d = EdbDelta::new();
        d.insert(Pred::new("p", 2), t(&[3, 4]));
        assert!(e.apply_delta(&d).is_err(), "derived predicate");
        let mut d = EdbDelta::new();
        d.insert(Pred::new("e", 2), t(&[3]));
        assert!(e.apply_delta(&d).is_err(), "arity mismatch");
        assert_eq!(e.database().relation(Pred::new("e", 2)).unwrap().len(), 1);
    }

    /// The same update stream maintained at 1 and 4 threads, under both
    /// Selected and ForceScan access paths, stays bit-for-bit identical
    /// to from-scratch evaluation.
    #[test]
    fn maintained_matches_scratch_across_threads_and_plans() {
        use crate::naive::AccessPaths;
        let text = "e(0, 1).\ne(1, 2).\ne(2, 3).\ne(3, 0).\ne(1, 4).\n\
                    tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n\
                    q(X) <- tc(X, 4), ~tc(4, X).";
        let cfgs = [
            FixpointConfig::serial(),
            FixpointConfig::serial().with_threads(4),
            FixpointConfig::serial().with_access_paths(AccessPaths::ForceScan),
            FixpointConfig::serial()
                .with_threads(4)
                .with_access_paths(AccessPaths::ForceScan),
        ];
        let mut engines: Vec<Engine> = cfgs.iter().map(|c| engine(text, c)).collect();
        let ops: Vec<(bool, i64, i64)> = vec![
            (true, 4, 0),
            (false, 1, 2),
            (true, 2, 1),
            (false, 3, 0),
            (true, 0, 3),
            (false, 1, 4),
            (true, 1, 2),
        ];
        let ep = Pred::new("e", 2);
        for (ins, a, b) in ops {
            let mut d = EdbDelta::new();
            if ins {
                d.insert(ep, t(&[a, b]));
            } else {
                d.retract(ep, t(&[a, b]));
            }
            for e in engines.iter_mut() {
                e.apply_delta(&d).unwrap();
            }
            let reference = Engine::evaluate(
                engines[0].program(),
                engines[0].database(),
                &FixpointConfig::serial(),
            )
            .unwrap();
            for (i, e) in engines.iter().enumerate() {
                for pname in [("tc", 2), ("q", 1)] {
                    let p = Pred::new(pname.0, pname.1);
                    assert_eq!(
                        e.relation(p).unwrap(),
                        reference.relation(p).unwrap(),
                        "cfg {i} diverged on {}",
                        pname.0
                    );
                }
            }
            // Query answers agree with the one-shot evaluator too.
            let q = parse_query("tc(1, Y)?").unwrap();
            let via_engine = engines[0].answers(&q);
            let mut via_eval = crate::engine::evaluate_query(
                engines[0].program(),
                engines[0].database(),
                &q,
                crate::engine::Method::SemiNaive,
                &FixpointConfig::serial(),
            )
            .unwrap()
            .tuples;
            via_eval.canonicalize();
            assert_eq!(via_engine, via_eval);
        }
    }

    /// A batch that fails validation leaves engine, database, and the
    /// caller's staged delta untouched (nothing was consumed).
    #[test]
    fn failed_validation_mutates_nothing() {
        let mut e = engine(
            "e(1, 2). e(2, 3).\ntc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).",
            &FixpointConfig::serial(),
        );
        let tc = Pred::new("tc", 2);
        let ep = Pred::new("e", 2);
        let base_before = e.database().relation(ep).unwrap().rows().to_vec();
        let derived_before = e.relation(tc).unwrap().rows().to_vec();

        // Valid insert + invalid write to a derived predicate, staged in
        // one batch: validation must reject the whole batch up front.
        let mut d = EdbDelta::new();
        d.insert(ep, t(&[3, 4]));
        d.insert(tc, t(&[9, 9]));
        let err = e.apply_delta(&d).unwrap_err();
        assert!(err.to_string().contains("derived predicate"), "{err}");

        assert_eq!(e.database().relation(ep).unwrap().rows(), &base_before[..]);
        assert_eq!(e.relation(tc).unwrap().rows(), &derived_before[..]);
        // The staged batch still holds both facts; nothing was drained.
        assert_eq!(d.len(), 2);
    }

    /// A maintenance failure *mid-apply* — after an earlier stratum has
    /// already been repaired — rolls the engine back bit-for-bit: base
    /// relations, derived relations, and support counts all match the
    /// pre-delta state, and a later valid commit behaves normally.
    #[test]
    fn mid_apply_failure_rolls_back_bit_for_bit() {
        // Stratum 1 (counting): a <- e. Stratum 2 (DRed): p over g,
        // gated on a so it is repaired strictly after the counting
        // stratum. A tight iteration budget lets the initial chain
        // evaluate but makes the delta's much longer chain diverge in
        // DRed insertion propagation — after `a` was already mutated.
        let cfg = FixpointConfig::with_max_iterations(8);
        let mut e = engine(
            "e(1). e(2). e(3).\n\
             g(1, 2). g(2, 3).\n\
             a(X) <- e(X).\n\
             p(X, Y) <- g(X, Y), a(X).\n\
             p(X, Y) <- g(X, Z), p(Z, Y).",
            &cfg,
        );
        let (ep, gp) = (Pred::new("e", 1), Pred::new("g", 2));
        let (ap, pp) = (Pred::new("a", 1), Pred::new("p", 2));
        let base_e = e.database().relation(ep).unwrap().rows().to_vec();
        let base_g = e.database().relation(gp).unwrap().rows().to_vec();
        let derived_a = e.relation(ap).unwrap().rows().to_vec();
        let derived_p = e.relation(pp).unwrap().rows().to_vec();
        let support_a: Vec<_> = derived_a
            .iter()
            .map(|row| e.support_count(ap, row))
            .collect();

        let mut d = EdbDelta::new();
        for i in 4..40 {
            d.insert(ep, t(&[i]));
            d.insert(gp, t(&[i - 1, i]));
        }
        let err = e.apply_delta(&d).unwrap_err();
        assert!(err.to_string().contains("exceeded"), "{err}");

        assert_eq!(e.database().relation(ep).unwrap().rows(), &base_e[..]);
        assert_eq!(e.database().relation(gp).unwrap().rows(), &base_g[..]);
        assert_eq!(e.relation(ap).unwrap().rows(), &derived_a[..]);
        assert_eq!(e.relation(pp).unwrap().rows(), &derived_p[..]);
        let support_after: Vec<_> = derived_a
            .iter()
            .map(|row| e.support_count(ap, row))
            .collect();
        assert_eq!(support_after, support_a);

        // The engine is fully usable: a small valid commit still agrees
        // with from-scratch evaluation.
        let mut ok = EdbDelta::new();
        ok.insert(ep, t(&[4]));
        ok.insert(gp, t(&[3, 4]));
        e.apply_delta(&ok).unwrap();
        assert_eq!(
            e.relation(pp).unwrap().rows().to_vec(),
            scratch_rows(&e, "p", 2)
        );
        assert_eq!(
            e.relation(ap).unwrap().rows().to_vec(),
            scratch_rows(&e, "a", 1)
        );
    }

    /// `validate_delta` is the same gate `apply_delta` runs, usable
    /// without an `&mut` engine.
    #[test]
    fn validate_delta_rejects_without_mutating() {
        let e = engine("e(1, 2).\nq(X) <- e(X, _).", &FixpointConfig::serial());
        let mut bad = EdbDelta::new();
        bad.insert(Pred::new("e", 2), Tuple::ints(&[1]));
        let err = e.validate_delta(&bad).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        let mut reserved = EdbDelta::new();
        reserved.insert(Pred::new("member", 2), t(&[1, 2]));
        assert!(e.validate_delta(&reserved).is_err());
        let mut good = EdbDelta::new();
        good.insert(Pred::new("e", 2), t(&[5, 6]));
        assert!(e.validate_delta(&good).is_ok());
    }
}
