//! Prolog-style SLD resolution — the §1 baseline.
//!
//! "Prolog visits and expands the rule goals in a strictly
//! lexicographical order; thus, it is up to the programmer to make sure
//! that this order leads to a safe and efficient execution." This module
//! is that execution model: top-down, depth-first resolution taking rule
//! bodies in *textual* order, builtins evaluated when reached (throwing
//! the equivalent of Prolog's instantiation error if unbound), negation
//! as failure on ground goals.
//!
//! Its two classic failure modes are exactly what the LDL optimizer
//! removes (experiment E9): left-recursive programs loop until the depth
//! bound, and badly ordered bodies hit instantiation errors — while the
//! same programs run fine through the fixpoint methods with
//! optimizer-chosen orders.

use crate::builtins::eval_builtin;
use ldl_core::unify::Subst;
use ldl_core::{Atom, LdlError, Literal, Program, Query, Result};
use ldl_storage::{Database, Relation, Tuple};

/// Resolution limits.
#[derive(Clone, Copy, Debug)]
pub struct SldConfig {
    /// Maximum resolution depth before the search is cut (a cut branch
    /// marks the result incomplete rather than failing the whole query).
    /// The resolver recurses on the call stack, so this is clamped to
    /// [`MAX_SUPPORTED_DEPTH`] internally.
    pub max_depth: usize,
    /// Stop after this many distinct answers (None = all).
    pub max_answers: Option<usize>,
    /// Hard cap on resolution steps (guards infinite *breadth*).
    pub max_resolutions: usize,
}

impl Default for SldConfig {
    fn default() -> Self {
        SldConfig {
            max_depth: 512,
            max_answers: None,
            max_resolutions: 5_000_000,
        }
    }
}

/// What happened during the search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SldStats {
    /// Rule/fact resolution steps performed.
    pub resolutions: usize,
    /// True when some branch hit the depth bound: the answer set may be
    /// incomplete (Prolog would have looped here).
    pub depth_exceeded: bool,
}

struct Solver<'a> {
    program: &'a Program,
    db: &'a Database,
    cfg: SldConfig,
    stats: SldStats,
    answers: Relation,
    goal_atom: Atom,
    rename: usize,
}

enum Outcome {
    Continue,
    Done, // answer budget reached
}

impl<'a> Solver<'a> {
    fn solve(&mut self, goals: &[Literal], subst: Subst, depth: usize) -> Result<Outcome> {
        if self.stats.resolutions >= self.cfg.max_resolutions {
            return Err(LdlError::Eval(format!(
                "SLD resolution exceeded {} steps",
                self.cfg.max_resolutions
            )));
        }
        if depth >= self.cfg.max_depth {
            self.stats.depth_exceeded = true;
            return Ok(Outcome::Continue); // cut this branch
        }
        let Some((goal, rest)) = goals.split_first() else {
            let ans = subst.apply_atom(&self.goal_atom);
            if !ans.is_ground() {
                return Err(LdlError::Eval(format!(
                    "non-ground answer {ans}: the query denotes an infinite relation"
                )));
            }
            self.answers.insert(Tuple::new(ans.args));
            if let Some(maxn) = self.cfg.max_answers {
                if self.answers.len() >= maxn {
                    return Ok(Outcome::Done);
                }
            }
            return Ok(Outcome::Continue);
        };
        match goal {
            Literal::Builtin(b) => {
                // Prolog evaluates when reached; unbound = instantiation
                // error, surfaced as Err like the paper's unsafe orders.
                match eval_builtin(b, &subst)? {
                    Some(s2) => self.solve(rest, s2, depth + 1),
                    None => Ok(Outcome::Continue),
                }
            }
            Literal::Atom(a) if a.negated => {
                let ga = subst.apply_atom(a);
                if !ga.is_ground() {
                    return Err(LdlError::Eval(format!(
                        "negation as failure on non-ground goal ~{ga}"
                    )));
                }
                let positive = Atom {
                    negated: false,
                    ..ga
                };
                // Sub-search for one solution.
                let mut sub = Solver {
                    program: self.program,
                    db: self.db,
                    cfg: SldConfig {
                        max_answers: Some(1),
                        ..self.cfg
                    },
                    stats: SldStats::default(),
                    answers: Relation::new(positive.pred.arity),
                    goal_atom: positive.clone(),
                    rename: self.rename + 1_000_000,
                };
                sub.solve(&[Literal::Atom(positive)], Subst::new(), depth + 1)?;
                self.stats.resolutions += sub.stats.resolutions;
                self.stats.depth_exceeded |= sub.stats.depth_exceeded;
                if sub.answers.is_empty() {
                    self.solve(rest, subst, depth + 1)
                } else {
                    Ok(Outcome::Continue)
                }
            }
            Literal::Atom(a) => {
                let a_inst = subst.apply_atom(a);
                // Facts first (database), then rules, in order — Prolog's
                // clause order.
                let nrows = self.db.relation(a_inst.pred).map(|r| r.len()).unwrap_or(0);
                for i in 0..nrows {
                    // Re-borrow per row: the recursive call below needs
                    // `&mut self`, so no relation borrow may live across it.
                    let row = self
                        .db
                        .relation(a_inst.pred)
                        .expect("relation existed above")
                        .row(i as u32)
                        .clone();
                    self.stats.resolutions += 1;
                    let mut s = subst.clone();
                    if a_inst.args.iter().zip(&row.0).all(|(p, v)| s.unify(p, v)) {
                        if let Outcome::Done = self.solve(rest, s, depth + 1)? {
                            return Ok(Outcome::Done);
                        }
                    }
                }
                let rule_idxs: Vec<usize> = self
                    .program
                    .rules_for(a_inst.pred)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect();
                for ri in rule_idxs {
                    self.stats.resolutions += 1;
                    self.rename += 1;
                    let fresh = self.program.rules[ri].standardized(self.rename);
                    let mut s = subst.clone();
                    let unifies = a_inst
                        .args
                        .iter()
                        .zip(&fresh.head.args)
                        .all(|(x, y)| s.unify(x, y));
                    if !unifies {
                        continue;
                    }
                    // Prepend the rule body (textual order!) to the goals.
                    let mut new_goals: Vec<Literal> =
                        Vec::with_capacity(fresh.body.len() + rest.len());
                    new_goals.extend(fresh.body.iter().cloned());
                    new_goals.extend(rest.iter().cloned());
                    if let Outcome::Done = self.solve(&new_goals, s, depth + 1)? {
                        return Ok(Outcome::Done);
                    }
                }
                Ok(Outcome::Continue)
            }
        }
    }
}

/// Answers `query` by SLD resolution over the program's textual rule and
/// goal order. Returns the (possibly incomplete — check
/// [`SldStats::depth_exceeded`]) answer set.
/// Hard ceiling on [`SldConfig::max_depth`]: the resolver is a
/// recursive-descent search, so depth costs call-stack frames. The
/// search runs on a dedicated thread with a stack sized for this depth.
pub const MAX_SUPPORTED_DEPTH: usize = 4096;

/// Stack size for the search thread: generous headroom for
/// [`MAX_SUPPORTED_DEPTH`] frames even in unoptimized builds.
const SEARCH_STACK_BYTES: usize = 64 << 20;

pub fn solve_sld(
    program: &Program,
    db: &Database,
    query: &Query,
    cfg: &SldConfig,
) -> Result<(Relation, SldStats)> {
    let cfg = SldConfig {
        max_depth: cfg.max_depth.min(MAX_SUPPORTED_DEPTH),
        ..*cfg
    };
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("sld-search".into())
            .stack_size(SEARCH_STACK_BYTES)
            .spawn_scoped(scope, move || {
                let mut solver = Solver {
                    program,
                    db,
                    cfg,
                    stats: SldStats::default(),
                    answers: Relation::new(query.pred().arity),
                    goal_atom: query.goal.clone(),
                    rename: 0,
                };
                solver.solve(&[Literal::Atom(query.goal.clone())], Subst::new(), 0)?;
                Ok((solver.answers, solver.stats))
            })
            .expect("spawn sld search thread")
            .join()
            .expect("sld search thread panicked")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_query, FixpointConfig, Method};
    use ldl_core::parser::{parse_program, parse_query};

    fn run(text: &str, q: &str, cfg: &SldConfig) -> Result<(Relation, SldStats)> {
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        solve_sld(&program, &db, &parse_query(q).unwrap(), cfg)
    }

    const RIGHT_TC: &str = r#"
        e(1, 2). e(2, 3). e(3, 4).
        tc(X, Y) <- e(X, Y).
        tc(X, Y) <- e(X, Z), tc(Z, Y).
    "#;

    const LEFT_TC: &str = r#"
        e(1, 2). e(2, 3). e(3, 4).
        tc(X, Y) <- e(X, Y).
        tc(X, Y) <- tc(X, Z), e(Z, Y).
    "#;

    #[test]
    fn right_recursive_tc_terminates() {
        let (ans, stats) = run(RIGHT_TC, "tc(1, Y)?", &SldConfig::default()).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(!stats.depth_exceeded);
    }

    #[test]
    fn left_recursive_tc_hits_depth_bound() {
        // Prolog's classic failure: tc(X,Y) <- tc(X,Z), e(Z,Y) loops.
        let cfg = SldConfig {
            max_depth: 64,
            ..SldConfig::default()
        };
        let (_, stats) = run(LEFT_TC, "tc(1, Y)?", &cfg).unwrap();
        assert!(
            stats.depth_exceeded,
            "left recursion must exhaust the depth bound"
        );
        // The LDL engine evaluates the same program effortlessly.
        let program = parse_program(LEFT_TC).unwrap();
        let db = Database::from_program(&program);
        let q = parse_query("tc(1, Y)?").unwrap();
        let fix =
            evaluate_query(&program, &db, &q, Method::Magic, &FixpointConfig::default()).unwrap();
        assert_eq!(fix.tuples.len(), 3);
    }

    #[test]
    fn textual_order_instantiation_error() {
        // Builtin first in the body: Prolog throws; LDL reorders.
        let text = "n(1). n(2).\nbig(Y, X) <- Y = X * 10, n(X).";
        let err = run(text, "big(A, B)?", &SldConfig::default());
        assert!(err.is_err(), "expected instantiation error");
    }

    #[test]
    fn agrees_with_fixpoint_on_safe_programs() {
        let text = r#"
            p(1, a). p(2, b). q(a, x). q(b, y).
            join2(X, Z) <- p(X, Y), q(Y, Z).
        "#;
        let (ans, _) = run(text, "join2(X, Z)?", &SldConfig::default()).unwrap();
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let q = parse_query("join2(X, Z)?").unwrap();
        let fix = evaluate_query(
            &program,
            &db,
            &q,
            Method::SemiNaive,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(ans, fix.tuples);
    }

    #[test]
    fn negation_as_failure_on_ground_goals() {
        let text = r#"
            node(1). node(2). node(3).
            bad(2).
            ok(X) <- node(X), ~bad(X).
        "#;
        let (ans, _) = run(text, "ok(X)?", &SldConfig::default()).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(!ans.contains(&Tuple::ints(&[2])));
    }

    #[test]
    fn unbound_negation_is_an_error() {
        let text = "p(X) <- ~q(X).\nq(1).";
        assert!(run(text, "p(A)?", &SldConfig::default()).is_err());
    }

    #[test]
    fn answer_budget_stops_early() {
        let cfg = SldConfig {
            max_answers: Some(1),
            ..SldConfig::default()
        };
        let (ans, _) = run(RIGHT_TC, "tc(1, Y)?", &cfg).unwrap();
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn bound_query_does_less_work_than_free() {
        let cfg = SldConfig::default();
        let (_, bound) = run(RIGHT_TC, "tc(3, Y)?", &cfg).unwrap();
        let (_, free) = run(RIGHT_TC, "tc(X, Y)?", &cfg).unwrap();
        assert!(bound.resolutions < free.resolutions);
    }

    #[test]
    fn arithmetic_in_correct_order_works() {
        let text = "n(3).\ndouble(X, Y) <- n(X), Y = X * 2.";
        let (ans, _) = run(text, "double(A, B)?", &SldConfig::default()).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Tuple::ints(&[3, 6])));
    }

    #[test]
    fn lists_work_top_down() {
        // Top-down, list recursion is natural (this is where Prolog
        // shines and bottom-up needs magic).
        let text = "len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.";
        let (ans, _) = run(text, "len([9, 8, 7], N)?", &SldConfig::default()).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.rows()[0].get(1), &ldl_core::Term::int(3));
    }
}
