//! # ldl-eval — extended relational algebra with fixpoint methods
//!
//! The paper's target language is "a relational algebra extended with
//! additional constructs to handle complex terms and fixpoint
//! computations" (§4). This crate is that target:
//!
//! * [`builtins`] — evaluable predicates (comparisons, arithmetic) with
//!   their effective-computability semantics (§8);
//! * [`rule_eval`] — the tuple-at-a-time rule evaluator: a pipelined
//!   nested-loop/index join over an explicit literal order (the SIP the
//!   optimizer chose), with full unification for complex terms;
//! * [`ops`] — materialized relational operators with exchangeable join
//!   methods (nested-loop / hash / index — the `EL` transformation);
//! * [`naive`] / [`seminaive`] — fixpoint computation of recursive
//!   cliques, stratum by stratum, with rounds executed in parallel on
//!   scoped worker threads (deterministic: results and metrics are
//!   identical to serial execution at any thread count);
//! * [`magic`] — the magic-set rewriting of an adorned program [BMSU 85];
//! * [`counting`] — the generalized counting rewriting [SZ 86] for
//!   linear cliques;
//! * [`materialized`] — the materialized counterpart of the pipelined
//!   rule executor (the `MP` dimension of §4);
//! * [`grouping`] — LDL's set collection (`<X>` heads) and the
//!   `member/2` set predicate;
//! * [`sld`] — a Prolog-style SLD resolver, the §1 baseline the
//!   optimizer is contrasted with;
//! * [`engine`] — one entry point tying program + database + query +
//!   method together, with derivation metrics for the experiments;
//! * [`maintain`] — incremental view maintenance: an [`Engine`] that
//!   repairs derived relations on [`EdbDelta`] batches (counting for
//!   non-recursive strata, DRed for recursive cliques) with work
//!   proportional to the change.

pub mod builtins;
pub mod counting;
pub mod engine;
pub mod grouping;
pub mod magic;
pub mod maintain;
pub mod materialized;
pub mod metrics;
pub mod naive;
pub mod ops;
mod parallel;
pub mod rule_eval;
pub mod seminaive;
pub mod sld;

pub use engine::{evaluate_query, Method, QueryAnswer};
pub use maintain::{EdbDelta, Engine, MaintenanceReport};
pub use metrics::Metrics;
pub use naive::{AccessPaths, FixpointConfig};
pub use rule_eval::AccessPlan;
