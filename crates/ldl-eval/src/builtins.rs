//! Evaluable predicates: arithmetic and comparisons.
//!
//! §8 of the paper: evaluable predicates are formally infinite relations
//! (`x > y` is the set of all ordered pairs), executed by calls to
//! built-in routines. They are only *effectively computable* under
//! sufficient bindings; the optimizer guarantees those bindings occur, and
//! this module implements the actual routines the execution uses.

use ldl_core::unify::Subst;
use ldl_core::{BuiltinPred, CmpOp, LdlError, Result, Symbol, Term, Value};

/// Evaluates a ground arithmetic expression to a value.
///
/// Integers evaluate to themselves; `+ - * / mod` recurse; any symbolic
/// constant is returned as-is (so `X = tom` works), but symbolic operands
/// inside arithmetic are errors.
pub fn eval_arith(t: &Term) -> Result<Value> {
    match t {
        Term::Const(v) => Ok(*v),
        Term::Var(v) => Err(LdlError::Eval(format!(
            "unbound variable {v} in arithmetic"
        ))),
        Term::Compound(f, args) => {
            let op = f.as_str();
            if args.len() != 2 || !matches!(op, "+" | "-" | "*" | "/" | "mod") {
                return Err(LdlError::Eval(format!("not an arithmetic expression: {t}")));
            }
            let l = int_of(eval_arith(&args[0])?, t)?;
            let r = int_of(eval_arith(&args[1])?, t)?;
            let v = match op {
                "+" => l.checked_add(r),
                "-" => l.checked_sub(r),
                "*" => l.checked_mul(r),
                "/" => {
                    if r == 0 {
                        return Err(LdlError::Eval(format!("division by zero in {t}")));
                    }
                    l.checked_div(r)
                }
                "mod" => {
                    if r == 0 {
                        return Err(LdlError::Eval(format!("mod by zero in {t}")));
                    }
                    l.checked_rem(r)
                }
                _ => unreachable!(),
            };
            v.map(Value::Int)
                .ok_or_else(|| LdlError::Eval(format!("integer overflow in {t}")))
        }
    }
}

fn int_of(v: Value, ctx: &Term) -> Result<i64> {
    v.as_int()
        .ok_or_else(|| LdlError::Eval(format!("non-integer operand in arithmetic: {ctx}")))
}

/// True when `t` looks like an arithmetic expression (so `=` should
/// evaluate it rather than unify structurally).
pub fn is_arith_expr(t: &Term) -> bool {
    match t {
        Term::Compound(f, args) if args.len() == 2 => {
            matches!(f.as_str(), "+" | "-" | "*" | "/" | "mod")
        }
        _ => false,
    }
}

/// Normalizes a term for `=`: if it is a ground arithmetic expression,
/// reduce it to its value; otherwise return it unchanged.
fn normalize(t: &Term) -> Result<Term> {
    if is_arith_expr(t) && t.is_ground() {
        Ok(Term::Const(eval_arith(t)?))
    } else {
        Ok(t.clone())
    }
}

/// Executes `b` under the substitution `subst`.
///
/// Returns `Ok(Some(subst'))` when the builtin succeeds (possibly
/// extending the substitution through `=`), `Ok(None)` when it fails as a
/// filter, and `Err` when it is not effectively computable under the
/// current bindings — a condition the optimizer's safety analysis is
/// supposed to have ruled out, so the error names the literal.
pub fn eval_builtin(b: &BuiltinPred, subst: &Subst) -> Result<Option<Subst>> {
    let lhs = subst.apply(&b.lhs);
    let rhs = subst.apply(&b.rhs);
    match b.op {
        CmpOp::Eq => {
            let l = normalize(&lhs)?;
            let r = normalize(&rhs)?;
            if !l.is_ground() && !r.is_ground() {
                return Err(LdlError::Eval(format!(
                    "equality {b} not effectively computable: neither side ground"
                )));
            }
            // One side ground: a ground arithmetic side is already
            // reduced. A non-ground arithmetic side is *solved* for its
            // single unknown when the chain is invertible (`5 = 3 + W`
            // binds `W = 2`); non-invertible forms error, mirroring the
            // EC model's `BuiltinPred::is_ec`.
            let (ground, open) = if l.is_ground() { (&l, &r) } else { (&r, &l) };
            if is_arith_expr(open) {
                let target = match ground {
                    Term::Const(Value::Int(i)) => *i,
                    _ => {
                        return Err(LdlError::Eval(format!(
                            "cannot solve {b}: arithmetic against a non-integer value"
                        )))
                    }
                };
                return match solve_unknown(open, target, b)? {
                    Some((v, val)) => {
                        let mut s = subst.clone();
                        s.bind(v, Term::int(val));
                        Ok(Some(s))
                    }
                    None => Ok(None),
                };
            }
            let mut s = subst.clone();
            Ok(if s.unify(&l, &r) { Some(s) } else { None })
        }
        op => {
            if !lhs.is_ground() || !rhs.is_ground() {
                return Err(LdlError::Eval(format!(
                    "comparison {b} not effectively computable: unbound operand"
                )));
            }
            let l = eval_cmp_operand(&lhs)?;
            let r = eval_cmp_operand(&rhs)?;
            let holds = compare(op, &l, &r)?;
            Ok(if holds { Some(subst.clone()) } else { None })
        }
    }
}

/// Solves `expr = target` for the single unbound variable in `expr`.
///
/// `expr` is a non-ground arithmetic term. Inverts chains of `+`, `-`
/// and `*` (exact division only); returns `Ok(Some((var, value)))` for
/// a unique solution, `Ok(None)` when no integer solution exists (the
/// equality fails as a filter, e.g. `5 = 2 * W`), and `Err` when the
/// form is not invertible: two unknown operands, `/` or `mod` around
/// the unknown (integer division loses information), a structural term
/// inside the chain, an underdetermined `0 * W = 0`, or overflow while
/// back-substituting.
fn solve_unknown(expr: &Term, target: i64, b: &BuiltinPred) -> Result<Option<(Symbol, i64)>> {
    let overflow = || LdlError::Eval(format!("integer overflow solving {b}"));
    match expr {
        Term::Var(v) => Ok(Some((*v, target))),
        Term::Compound(f, args) if args.len() == 2 && matches!(f.as_str(), "+" | "-" | "*") => {
            let (known, open, open_is_rhs) = if args[0].is_ground() && !args[1].is_ground() {
                (&args[0], &args[1], true)
            } else if args[1].is_ground() && !args[0].is_ground() {
                (&args[1], &args[0], false)
            } else {
                return Err(LdlError::Eval(format!(
                    "cannot solve {b}: more than one unknown operand"
                )));
            };
            let k = int_of(eval_arith(known)?, expr)?;
            match f.as_str() {
                // k + W = t  or  W + k = t  →  W = t - k
                "+" => solve_unknown(open, target.checked_sub(k).ok_or_else(overflow)?, b),
                "-" if open_is_rhs => {
                    // k - W = t  →  W = k - t
                    solve_unknown(open, k.checked_sub(target).ok_or_else(overflow)?, b)
                }
                // W - k = t  →  W = t + k
                "-" => solve_unknown(open, target.checked_add(k).ok_or_else(overflow)?, b),
                "*" => {
                    if k == 0 {
                        return if target == 0 {
                            // 0 * W = 0 holds for every W: underdetermined.
                            Err(LdlError::Eval(format!(
                                "cannot solve {b}: zero coefficient is underdetermined"
                            )))
                        } else {
                            Ok(None)
                        };
                    }
                    match (target.checked_rem(k), target.checked_div(k)) {
                        (Some(0), Some(q)) => solve_unknown(open, q, b),
                        // Inexact division: no integer solution.
                        (Some(_), _) => Ok(None),
                        // i64::MIN / -1 style overflow.
                        _ => Err(overflow()),
                    }
                }
                _ => unreachable!(),
            }
        }
        _ => Err(LdlError::Eval(format!(
            "arithmetic expression with unbound variables in {b}"
        ))),
    }
}

/// Operand of a comparison: arithmetic expressions reduce, other ground
/// terms stand for themselves. Also used by the rule evaluator's range
/// folding to reduce the ground side of a bound comparison.
pub(crate) fn eval_cmp_operand(t: &Term) -> Result<Term> {
    if is_arith_expr(t) {
        Ok(Term::Const(eval_arith(t)?))
    } else {
        Ok(t.clone())
    }
}

fn compare(op: CmpOp, l: &Term, r: &Term) -> Result<bool> {
    match op {
        CmpOp::Eq => Ok(l == r),
        CmpOp::Ne => Ok(l != r),
        ordering => match (l, r) {
            (Term::Const(Value::Int(a)), Term::Const(Value::Int(b))) => Ok(match ordering {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                _ => unreachable!(),
            }),
            // Symbolic constants order lexicographically (deterministic,
            // handy for range predicates over names).
            (Term::Const(Value::Sym(a)), Term::Const(Value::Sym(b))) => {
                let (a, b) = (a.as_str(), b.as_str());
                Ok(match ordering {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    _ => unreachable!(),
                })
            }
            _ => Err(LdlError::Eval(format!(
                "cannot order {l} {} {r}: mixed or structured operands",
                op.symbol()
            ))),
        },
    }
}

/// The variables a builtin would newly bind, given already-bound vars —
/// re-exported helper used by the adornment and safety code.
pub fn builtin_binds(b: &BuiltinPred, bound: &std::collections::HashSet<Symbol>) -> Vec<Symbol> {
    b.binds(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_term;

    fn b(op: CmpOp, l: &str, r: &str) -> BuiltinPred {
        BuiltinPred::new(op, parse_term(l).unwrap(), parse_term(r).unwrap())
    }

    #[test]
    fn arith_evaluates() {
        assert_eq!(
            eval_arith(&parse_term("1 + 2 * 3").unwrap()).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            eval_arith(&parse_term("10 / 3").unwrap()).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_arith(&parse_term("10 mod 3").unwrap()).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_arith(&parse_term("2 - 5").unwrap()).unwrap(),
            Value::Int(-3)
        );
    }

    #[test]
    fn arith_errors() {
        assert!(eval_arith(&parse_term("1 / 0").unwrap()).is_err());
        assert!(eval_arith(&parse_term("X + 1").unwrap()).is_err());
        assert!(eval_arith(&parse_term("tom + 1").unwrap()).is_err());
    }

    #[test]
    fn eq_binds_variable() {
        let lit = b(CmpOp::Eq, "X", "2 + 3");
        let s = eval_builtin(&lit, &Subst::new()).unwrap().unwrap();
        assert_eq!(s.apply(&Term::var("X")), Term::int(5));
    }

    #[test]
    fn eq_as_filter() {
        let lit = b(CmpOp::Eq, "3", "2 + 1");
        assert!(eval_builtin(&lit, &Subst::new()).unwrap().is_some());
        let lit2 = b(CmpOp::Eq, "3", "2 + 2");
        assert!(eval_builtin(&lit2, &Subst::new()).unwrap().is_none());
    }

    #[test]
    fn eq_structural_on_symbols() {
        let lit = b(CmpOp::Eq, "X", "tom");
        let s = eval_builtin(&lit, &Subst::new()).unwrap().unwrap();
        assert_eq!(s.apply(&Term::var("X")), Term::sym("tom"));
    }

    #[test]
    fn eq_both_unbound_is_not_ec() {
        let lit = b(CmpOp::Eq, "X", "Y");
        assert!(eval_builtin(&lit, &Subst::new()).is_err());
    }

    #[test]
    fn eq_with_unbound_arith_is_not_ec() {
        // X = Y + 1 with neither bound.
        let lit = b(CmpOp::Eq, "X", "Y + 1");
        assert!(eval_builtin(&lit, &Subst::new()).is_err());
    }

    #[test]
    fn eq_inverts_single_unknown_sum() {
        // 5 = 3 + W binds W = 2 (the ROADMAP EC-model gap).
        let lit = b(CmpOp::Eq, "5", "3 + W");
        let s = eval_builtin(&lit, &Subst::new()).unwrap().unwrap();
        assert_eq!(s.apply(&Term::var("W")), Term::int(2));
        // Both subtraction orientations.
        let s = eval_builtin(&b(CmpOp::Eq, "2", "10 - W"), &Subst::new())
            .unwrap()
            .unwrap();
        assert_eq!(s.apply(&Term::var("W")), Term::int(8));
        let s = eval_builtin(&b(CmpOp::Eq, "2", "W - 10"), &Subst::new())
            .unwrap()
            .unwrap();
        assert_eq!(s.apply(&Term::var("W")), Term::int(12));
        // Unknown on the left of the equality works too.
        let s = eval_builtin(&b(CmpOp::Eq, "W + 1", "7"), &Subst::new())
            .unwrap()
            .unwrap();
        assert_eq!(s.apply(&Term::var("W")), Term::int(6));
    }

    #[test]
    fn eq_inverts_nested_chains() {
        // 11 = 3 + 2 * W  →  W = 4.
        let lit = b(CmpOp::Eq, "11", "3 + 2 * W");
        let s = eval_builtin(&lit, &Subst::new()).unwrap().unwrap();
        assert_eq!(s.apply(&Term::var("W")), Term::int(4));
    }

    #[test]
    fn eq_inversion_inexact_division_filters() {
        // 5 = 2 * W has no integer solution: filter failure, not error.
        let lit = b(CmpOp::Eq, "5", "2 * W");
        assert!(eval_builtin(&lit, &Subst::new()).unwrap().is_none());
        // Exact division succeeds.
        let s = eval_builtin(&b(CmpOp::Eq, "6", "2 * W"), &Subst::new())
            .unwrap()
            .unwrap();
        assert_eq!(s.apply(&Term::var("W")), Term::int(3));
    }

    #[test]
    fn eq_inversion_zero_coefficient() {
        // 0 * W = 5: no W works — filter failure.
        assert!(eval_builtin(&b(CmpOp::Eq, "5", "0 * W"), &Subst::new())
            .unwrap()
            .is_none());
        // 0 * W = 0: every W works — underdetermined, an error.
        assert!(eval_builtin(&b(CmpOp::Eq, "0", "0 * W"), &Subst::new()).is_err());
    }

    #[test]
    fn eq_inversion_rejects_div_mod_and_two_unknowns() {
        assert!(eval_builtin(&b(CmpOp::Eq, "5", "W / 2"), &Subst::new()).is_err());
        assert!(eval_builtin(&b(CmpOp::Eq, "5", "W mod 2"), &Subst::new()).is_err());
        assert!(eval_builtin(&b(CmpOp::Eq, "5", "W + U"), &Subst::new()).is_err());
    }

    #[test]
    fn eq_inversion_rejects_non_integer_target() {
        // tom = W + 1: no symbolic arithmetic.
        assert!(eval_builtin(&b(CmpOp::Eq, "tom", "W + 1"), &Subst::new()).is_err());
    }

    #[test]
    fn comparisons_filter() {
        assert!(eval_builtin(&b(CmpOp::Lt, "1", "2"), &Subst::new())
            .unwrap()
            .is_some());
        assert!(eval_builtin(&b(CmpOp::Lt, "2", "2"), &Subst::new())
            .unwrap()
            .is_none());
        assert!(eval_builtin(&b(CmpOp::Ge, "2", "2"), &Subst::new())
            .unwrap()
            .is_some());
        assert!(eval_builtin(&b(CmpOp::Ne, "1", "2"), &Subst::new())
            .unwrap()
            .is_some());
    }

    #[test]
    fn comparison_with_unbound_errors() {
        assert!(eval_builtin(&b(CmpOp::Gt, "X", "2"), &Subst::new()).is_err());
    }

    #[test]
    fn comparison_evaluates_expressions() {
        assert!(eval_builtin(&b(CmpOp::Gt, "2 * 3", "5"), &Subst::new())
            .unwrap()
            .is_some());
    }

    #[test]
    fn symbol_ordering_is_lexicographic() {
        assert!(eval_builtin(&b(CmpOp::Lt, "abel", "cain"), &Subst::new())
            .unwrap()
            .is_some());
    }

    #[test]
    fn mixed_ordering_errors() {
        assert!(eval_builtin(&b(CmpOp::Lt, "1", "tom"), &Subst::new()).is_err());
    }

    #[test]
    fn eq_under_substitution() {
        // Y = X + 1 with X bound to 4.
        let lit = b(CmpOp::Eq, "Y", "X + 1");
        let mut s = Subst::new();
        s.bind(Symbol::intern("X"), Term::int(4));
        let out = eval_builtin(&lit, &s).unwrap().unwrap();
        assert_eq!(out.apply(&Term::var("Y")), Term::int(5));
    }

    #[test]
    fn structural_eq_of_compounds() {
        let lit = b(CmpOp::Eq, "f(X, 2)", "f(1, 2)");
        let s = eval_builtin(&lit, &Subst::new()).unwrap().unwrap();
        assert_eq!(s.apply(&Term::var("X")), Term::int(1));
    }
}
