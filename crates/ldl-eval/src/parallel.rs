//! Parallel execution of one fixpoint round.
//!
//! Both fixpoint evaluators reduce a round to a list of *firings* —
//! rule evaluations against relations that are frozen for the duration
//! of the round (naive: every clique rule against the full relations;
//! semi-naive: every recursive-rule/delta-occurrence pair). Firings
//! within a round are therefore independent, and [`run_round`] fans
//! them out over scoped workers ([`ldl_support::par`]), each writing
//! into a private tuple buffer that is merged in deterministic
//! (rule-index, occurrence-index, chunk-index) order.
//!
//! A clique with few rules (transitive closure has one recursive rule
//! with one delta occurrence) would get nothing from firing-level
//! parallelism alone, so each firing is additionally *partitioned*: the
//! first positive body atom's relation is split into contiguous row
//! chunks, one job per chunk, installed through the `restrict` slot of
//! [`OverlaySource`]. Builtins and negated literals ahead of that atom
//! are filters (at most one continuation each), so partitioning the
//! first *enumerating* literal partitions the firing's solutions into
//! contiguous runs — concatenating the chunk buffers in chunk order
//! reproduces the serial emission order exactly. The merged tuple
//! stream and the merged [`Metrics`] are bit-for-bit identical to
//! serial execution at any thread count.
//!
//! `member/2` also enumerates (the elements of a set term, not a
//! relation), so a firing whose first enumerating literal is `member`
//! falls back to a single job, as do grouping rules (their aggregation
//! must see every solution).

use crate::metrics::Metrics;
use crate::rule_eval::{eval_rule_with, AccessPlan, OverlaySource};
use ldl_core::unify::Subst;
use ldl_core::{Literal, Pred, Program, Result, Rule};
use ldl_storage::{Relation, Tuple};
use ldl_support::par::scoped_map;

/// One schedulable rule evaluation: rule `rule_index` of the program,
/// with an optional semi-naive delta overlay at one body position.
pub(crate) struct Firing<'a> {
    /// Index into `program.rules`.
    pub rule_index: usize,
    /// `(body position, delta relation)` for differential firings.
    pub overlay: Option<(usize, &'a Relation)>,
}

/// Don't bother cutting chunks smaller than this: the per-chunk
/// relation build (tuple clones + dedup map) must stay negligible next
/// to the join work it parallelizes.
const MIN_CHUNK_ROWS: usize = 16;

/// One worker job: a firing, optionally restricted to a row chunk.
struct JobSpec {
    /// Index into the firing list.
    firing: usize,
    /// `(body position, chunk-store index)` restriction for a
    /// non-delta occurrence.
    restrict: Option<(usize, usize)>,
    /// Chunk-store index replacing the delta overlay (used when the
    /// partitioned occurrence *is* the delta occurrence).
    overlay_chunk: Option<usize>,
    /// True on the first chunk of each firing: exactly one job per
    /// firing contributes the `rule_firings` count, matching serial.
    count_firing: bool,
}

/// Executes every firing of one round on up to `threads` workers and
/// returns the produced `(head predicate, tuple)` stream in serial
/// emission order plus the round's metrics contribution. `base` is the
/// frozen per-predicate lookup (completed strata + current clique
/// relations); the caller inserts the merged stream afterwards, so
/// workers never write shared state.
pub(crate) fn run_round<'a>(
    program: &'a Program,
    firings: &[Firing<'a>],
    base: &(dyn Fn(Pred) -> Option<&'a Relation> + Sync),
    threads: usize,
    plan: AccessPlan<'_>,
) -> Result<(Vec<(Pred, Tuple)>, Metrics)> {
    // Plan jobs: cut row chunks up front so workers share them by
    // reference. Chunk relations live in `chunks`, specs index into it.
    let mut chunks: Vec<Relation> = Vec::new();
    let mut specs: Vec<JobSpec> = Vec::new();
    for (fi, firing) in firings.iter().enumerate() {
        let rule = &program.rules[firing.rule_index];
        let axis = if threads > 1 && !crate::grouping::has_grouping(rule) {
            chunk_axis(rule, firing.overlay, base)
        } else {
            None
        };
        let whole = JobSpec {
            firing: fi,
            restrict: None,
            overlay_chunk: None,
            count_firing: true,
        };
        match axis {
            Some((pos, rel)) => {
                let n = rel.len();
                let parts = threads.min(n / MIN_CHUNK_ROWS).max(1);
                if parts <= 1 {
                    specs.push(whole);
                    continue;
                }
                let per = n.div_ceil(parts);
                let is_delta_pos = matches!(firing.overlay, Some((j, _)) if j == pos);
                for (k, lo) in (0..n).step_by(per).enumerate() {
                    let hi = (lo + per).min(n);
                    let chunk =
                        Relation::from_tuples(rel.arity(), rel.rows()[lo..hi].iter().cloned());
                    let ci = chunks.len();
                    chunks.push(chunk);
                    specs.push(JobSpec {
                        firing: fi,
                        restrict: (!is_delta_pos).then_some((pos, ci)),
                        overlay_chunk: is_delta_pos.then_some(ci),
                        count_firing: k == 0,
                    });
                }
            }
            None => specs.push(whole),
        }
    }

    // Workers re-enter the caller's counter scopes so scoped index-work
    // measurements (IndexCounters::scoped) see parallel rounds too.
    let scope = ldl_storage::scope_handle();
    let chunks = &chunks;
    let results = scoped_map(
        threads,
        specs.len(),
        |i| -> Result<(Vec<(Pred, Tuple)>, Metrics)> {
            let _counters = scope.enter();
            let spec = &specs[i];
            let firing = &firings[spec.firing];
            let rule = &program.rules[firing.rule_index];
            let order: Vec<usize> = (0..rule.body.len()).collect();
            let overlay = match (firing.overlay, spec.overlay_chunk) {
                (Some((j, _)), Some(ci)) => Some((j, &chunks[ci])),
                (other, _) => other,
            };
            let restrict = spec.restrict.map(|(pos, ci)| (pos, &chunks[ci]));
            let source = OverlaySource {
                base: |p: Pred| base(p),
                overlay,
                restrict,
            };
            let head_pred = rule.head.pred;
            let mut out: Vec<(Pred, Tuple)> = Vec::new();
            let mut m = Metrics::default();
            if crate::grouping::has_grouping(rule) {
                let (tuples, st) =
                    crate::grouping::eval_grouping_rule_with(rule, &order, &source, plan)?;
                m.tuples_produced = st.produced;
                out.extend(tuples.into_iter().map(|t| (head_pred, t)));
            } else {
                let st = eval_rule_with(rule, &order, &Subst::new(), &source, plan, &mut |t| {
                    out.push((head_pred, t));
                })?;
                m.tuples_produced = st.produced;
            }
            if spec.count_firing {
                m.rule_firings = 1;
            }
            Ok((out, m))
        },
    );

    // Ordered merge: job order == (firing, chunk) order == serial order.
    let mut merged: Vec<(Pred, Tuple)> = Vec::new();
    let mut metrics = Metrics::default();
    for res in results {
        let (tuples, m) = res?;
        metrics.absorb(m);
        merged.extend(tuples);
    }
    Ok((merged, metrics))
}

/// Picks the body occurrence to partition: the first literal that
/// *enumerates* (a positive, non-`member` atom), provided its relation
/// is big enough to be worth cutting. Builtins and negated literals are
/// filters and may safely precede the partition point; anything that
/// multiplies solutions before it would break the serial emission
/// order, so `member/2` first means "do not partition".
fn chunk_axis<'a>(
    rule: &Rule,
    overlay: Option<(usize, &'a Relation)>,
    base: &(dyn Fn(Pred) -> Option<&'a Relation> + Sync),
) -> Option<(usize, &'a Relation)> {
    for (i, lit) in rule.body.iter().enumerate() {
        match lit {
            Literal::Builtin(_) => continue,
            Literal::Atom(a) if a.negated => continue,
            Literal::Atom(a) => {
                if a.pred == Pred::new("member", 2) {
                    return None;
                }
                let rel = match overlay {
                    Some((j, d)) if j == i => Some(d),
                    _ => base(a.pred),
                };
                return rel
                    .filter(|r| r.len() >= 2 * MIN_CHUNK_ROWS)
                    .map(|r| (i, r));
            }
        }
    }
    None
}
