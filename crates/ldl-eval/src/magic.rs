//! The magic-set rewriting [BMSU 85].
//!
//! Given the adorned program produced for a query form (§7.3 of the
//! paper), magic sets simulate the top-down propagation of bindings in a
//! bottom-up evaluation: for every adorned predicate `p.a` a *magic*
//! predicate `m_p_a` holds the binding tuples that can actually reach
//! `p.a`, each original rule is guarded by its head's magic predicate,
//! and extra rules push bindings sideways into derived body literals. The
//! query's own constants seed the magic set.
//!
//! The rewriting here is the classic non-supplementary variant: magic
//! rules re-evaluate body prefixes. This costs some repeated work but
//! keeps the rewritten program in the same Horn-clause language, so the
//! rest of the system (semi-naive evaluation, metrics, safety) applies
//! unchanged.

use ldl_core::adorn::{AdornedProgram, AdornedRule};
use ldl_core::{Atom, LdlError, Literal, Pred, Program, Query, Result, Rule, Span, Symbol, Term};
use ldl_storage::Tuple;

/// Result of the magic rewriting.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten rules (guarded originals + magic rules).
    pub program: Program,
    /// The magic seed predicate (`m_sg_bf`).
    pub seed_pred: Pred,
    /// The seed tuple: the query's constants at bound positions.
    pub seed: Tuple,
    /// The renamed adorned query predicate whose relation holds answers.
    pub answer_pred: Pred,
}

/// Name of the magic predicate for a renamed adorned predicate.
fn magic_pred(renamed: Pred, bound_count: usize) -> Pred {
    Pred {
        name: Symbol::intern(&format!("m_{}", renamed.name)),
        arity: bound_count,
    }
}

/// The magic guard atom for an adorned rule head: `m_p_a(bound args)`.
fn magic_head_atom(ar: &AdornedRule) -> Atom {
    let bound = ar.head.adornment.bound_positions();
    let args: Vec<Term> = bound
        .iter()
        .map(|&i| ar.head_atom.args[i].clone())
        .collect();
    Atom {
        pred: magic_pred(ar.head.renamed(), bound.len()),
        args,
        negated: false,
        span: Span::NONE,
    }
}

/// Collects the full original rules of every derived predicate that is
/// referenced *negatively* in the adorned program, together with the
/// rules of everything those predicates transitively use. Negation is a
/// membership test against a completed lower stratum, so these
/// predicates are evaluated in full (no magic restriction) under their
/// original names — stratified-negation support for the rewritings.
pub(crate) fn negated_derived_closure(adorned: &AdornedProgram, program: &Program) -> Vec<Rule> {
    use std::collections::BTreeSet;
    let derived = program.derived_preds();
    let mut queue: Vec<ldl_core::Pred> = adorned
        .rules
        .iter()
        .flat_map(|ar| ar.body.iter())
        .filter_map(|(lit, _)| lit.as_atom())
        .filter(|a| a.negated && derived.contains(&a.pred))
        .map(|a| a.pred)
        .collect();
    let mut wanted: BTreeSet<ldl_core::Pred> = BTreeSet::new();
    while let Some(p) = queue.pop() {
        if !wanted.insert(p) {
            continue;
        }
        for (_, rule) in program.rules_for(p) {
            for a in rule.body_atoms() {
                if derived.contains(&a.pred) {
                    queue.push(a.pred);
                }
            }
        }
    }
    program
        .rules
        .iter()
        .filter(|r| wanted.contains(&r.head.pred))
        .cloned()
        .collect()
}

/// Rewrites an adorned program for the given query into a magic program.
///
/// Negated derived literals are supported through stratification: the
/// negated predicate's original rules (and their closure) are appended
/// unrenamed, so the lower stratum is computed in full before the
/// membership tests run.
pub fn magic_rewrite(
    adorned: &AdornedProgram,
    program: &Program,
    query: &Query,
) -> Result<MagicProgram> {
    if query.pred() != adorned.query.pred || query.adornment() != adorned.query.adornment {
        return Err(LdlError::Validation(format!(
            "query {query} does not match adorned program for {}",
            adorned.query
        )));
    }
    let mut out = Program::new();

    for ar in &adorned.rules {
        if ar.head_atom.args.iter().any(|a| a.as_group().is_some()) {
            return Err(LdlError::Validation(format!(
                "magic rewriting does not support grouping heads ({}); \
                 evaluate with semi-naive",
                ar.head_atom
            )));
        }
        // Guarded original rule:  p_a(t̄) <- m_p_a(t̄_bound), body' .
        let head = ar.head_atom.renamed(ar.head.renamed().name);
        let mut body: Vec<Literal> = Vec::with_capacity(ar.body.len() + 1);
        body.push(Literal::Atom(magic_head_atom(ar)));
        for (lit, ad) in &ar.body {
            match (lit, ad) {
                (Literal::Atom(a), Some(ad)) => {
                    debug_assert!(!a.negated, "negated atoms are never adorned");
                    let renamed = ldl_core::adorn::AdornedPred::new(a.pred, *ad).renamed();
                    body.push(Literal::Atom(a.renamed(renamed.name)));
                }
                (lit, _) => body.push((*lit).clone()),
            }
        }
        out.push(Rule::new(head, body));

        // Magic rules: one per positive derived body literal.
        //   m_q_b(s̄_bound) <- m_p_a(t̄_bound), L1' .. L(j-1)' .
        for (j, (lit, ad)) in ar.body.iter().enumerate() {
            let (Literal::Atom(a), Some(ad)) = (lit, ad) else {
                continue;
            };
            let renamed = ldl_core::adorn::AdornedPred::new(a.pred, *ad).renamed();
            let bound = ad.bound_positions();
            let margs: Vec<Term> = bound.iter().map(|&i| a.args[i].clone()).collect();
            let mhead = Atom {
                pred: magic_pred(renamed, bound.len()),
                args: margs,
                negated: false,
                span: Span::NONE,
            };
            let mut mbody: Vec<Literal> = Vec::with_capacity(j + 1);
            mbody.push(Literal::Atom(magic_head_atom(ar)));
            for (lit2, ad2) in &ar.body[..j] {
                match (lit2, ad2) {
                    (Literal::Atom(a2), Some(ad2)) => {
                        let rn = ldl_core::adorn::AdornedPred::new(a2.pred, *ad2).renamed();
                        mbody.push(Literal::Atom(a2.renamed(rn.name)));
                    }
                    (lit2, _) => mbody.push((*lit2).clone()),
                }
            }
            out.push(Rule::new(mhead, mbody));
        }
    }

    // Fact-import rules: facts may be asserted directly on a derived
    // predicate (`reach(1).` next to recursive reach rules). The
    // original predicate appears nowhere else in the rewritten program,
    // so it acts as a base relation holding exactly those facts:
    //   p_a(x̄) <- m_p_a(x̄_bound), p(x̄).
    for ap in &adorned.adorned_preds {
        let renamed = ap.renamed();
        let vars: Vec<Term> = (0..ap.pred.arity)
            .map(|i| Term::var(&format!("FI_{i}")))
            .collect();
        let bound = ap.adornment.bound_positions();
        let margs: Vec<Term> = bound.iter().map(|&i| vars[i].clone()).collect();
        let guard = Atom {
            pred: magic_pred(renamed, bound.len()),
            args: margs,
            negated: false,
            span: Span::NONE,
        };
        let orig = Atom {
            pred: ap.pred,
            args: vars.clone(),
            negated: false,
            span: Span::NONE,
        };
        let head = Atom {
            pred: renamed,
            args: vars,
            negated: false,
            span: Span::NONE,
        };
        out.push(Rule::new(
            head,
            vec![Literal::Atom(guard), Literal::Atom(orig)],
        ));
    }

    // Stratified negation: append the full rules of negated predicates.
    for r in negated_derived_closure(adorned, program) {
        out.push(r);
    }

    // Seed: the query's constants at its bound positions.
    let qren =
        ldl_core::adorn::AdornedPred::new(adorned.query.pred, adorned.query.adornment).renamed();
    let bound = adorned.query.adornment.bound_positions();
    let seed_pred = magic_pred(qren, bound.len());
    let consts: Vec<Term> = bound.iter().map(|&i| query.goal.args[i].clone()).collect();
    debug_assert!(consts.iter().all(Term::is_ground));
    Ok(MagicProgram {
        program: out,
        seed_pred,
        seed: Tuple::new(consts),
        answer_pred: qren,
    })
}

/// The *supplementary* magic-set variant [BMSU 85]: instead of
/// re-evaluating body prefixes inside every magic rule, each prefix is
/// materialized once in a supplementary predicate:
///
/// ```text
/// sup_r_1(v1..) <- m_p_a(bound), L1'.
/// sup_r_j(vj..) <- sup_r_{j-1}(..), Lj'.
/// p_a(args)     <- sup_r_k(vk..).
/// m_q_b(bound)  <- sup_r_{j-1}(..).      (for derived Lj)
/// ```
///
/// Each supplementary keeps exactly the variables still needed
/// downstream (by later literals, the head, or magic-rule heads).
/// Compared with the plain rewriting this trades extra intermediate
/// relations for never running a prefix twice — the ablation in this
/// module's tests measures the difference in tuples produced.
pub fn magic_rewrite_supplementary(
    adorned: &AdornedProgram,
    program: &Program,
    query: &Query,
) -> Result<MagicProgram> {
    if query.pred() != adorned.query.pred || query.adornment() != adorned.query.adornment {
        return Err(LdlError::Validation(format!(
            "query {query} does not match adorned program for {}",
            adorned.query
        )));
    }
    use ldl_core::Symbol as Sym;
    let mut out = Program::new();

    for (rix, ar) in adorned.rules.iter().enumerate() {
        if ar.head_atom.args.iter().any(|a| a.as_group().is_some()) {
            return Err(LdlError::Validation(format!(
                "magic rewriting does not support grouping heads ({})",
                ar.head_atom
            )));
        }
        let k = ar.body.len();
        // Renamed body literals (derived atoms get adorned names).
        let body_lits: Vec<Literal> = ar
            .body
            .iter()
            .map(|(lit, ad)| match (lit, ad) {
                (Literal::Atom(a), Some(ad)) => {
                    let rn = ldl_core::adorn::AdornedPred::new(a.pred, *ad).renamed();
                    Literal::Atom(a.renamed(rn.name))
                }
                (lit, _) => (*lit).clone(),
            })
            .collect();

        // Variables bound after each prefix (same walk as adornment).
        let mut bound: std::collections::HashSet<Sym> = std::collections::HashSet::new();
        for (i, arg) in ar.head_atom.args.iter().enumerate() {
            if ar.head.adornment.is_bound(i) {
                for v in arg.vars() {
                    bound.insert(v);
                }
            }
        }
        let mut bound_after: Vec<Vec<Sym>> = Vec::with_capacity(k + 1);
        bound_after.push(bound.iter().copied().collect());
        for (lit, _) in &ar.body {
            match lit {
                Literal::Atom(a) if !a.negated => {
                    for v in a.vars() {
                        bound.insert(v);
                    }
                }
                Literal::Builtin(b) => {
                    for v in b.binds(&bound) {
                        bound.insert(v);
                    }
                }
                _ => {}
            }
            let mut snapshot: Vec<Sym> = bound.iter().copied().collect();
            snapshot.sort();
            bound_after.push(snapshot);
        }

        // Variables needed at or after each position.
        let head_vars: Vec<Sym> = ar.head_atom.vars();
        let mut needed_after: Vec<std::collections::HashSet<Sym>> =
            vec![head_vars.iter().copied().collect(); k + 1];
        for j in (0..k).rev() {
            let mut s = needed_after[j + 1].clone();
            for v in ar.body[j].0.vars() {
                s.insert(v);
            }
            needed_after[j] = s;
        }

        // sup_j keeps bound-after-j intersect needed-after-j, sorted for
        // determinism. sup_0 is the magic guard itself.
        let sup_pred = |j: usize, width: usize| Pred {
            name: Symbol::intern(&format!("sup_{rix}_{j}")),
            arity: width,
        };
        let sup_vars: Vec<Vec<Sym>> = (0..=k)
            .map(|j| {
                let mut v: Vec<Sym> = bound_after[j]
                    .iter()
                    .copied()
                    .filter(|s| needed_after[j].contains(s))
                    .collect();
                v.sort();
                v
            })
            .collect();
        let sup_atom = |j: usize| -> Atom {
            Atom {
                pred: sup_pred(j, sup_vars[j].len()),
                args: sup_vars[j].iter().map(|&v| Term::Var(v)).collect(),
                negated: false,
                span: Span::NONE,
            }
        };

        // Chain rules.
        for j in 1..=k {
            let prev: Literal = if j == 1 {
                Literal::Atom(magic_head_atom(ar))
            } else {
                Literal::Atom(sup_atom(j - 1))
            };
            out.push(Rule::new(sup_atom(j), vec![prev, body_lits[j - 1].clone()]));
        }
        // Head rule.
        let head = ar.head_atom.renamed(ar.head.renamed().name);
        let last: Literal = if k == 0 {
            Literal::Atom(magic_head_atom(ar))
        } else {
            Literal::Atom(sup_atom(k))
        };
        out.push(Rule::new(head, vec![last]));

        // Magic rules from the supplementaries.
        for (j, (lit, ad)) in ar.body.iter().enumerate() {
            let (Literal::Atom(a), Some(ad)) = (lit, ad) else {
                continue;
            };
            let renamed = ldl_core::adorn::AdornedPred::new(a.pred, *ad).renamed();
            let bpos = ad.bound_positions();
            let margs: Vec<Term> = bpos.iter().map(|&i| a.args[i].clone()).collect();
            let mhead = Atom {
                pred: magic_pred(renamed, bpos.len()),
                args: margs,
                negated: false,
                span: Span::NONE,
            };
            let prev: Literal = if j == 0 {
                Literal::Atom(magic_head_atom(ar))
            } else {
                Literal::Atom(sup_atom(j))
            };
            out.push(Rule::new(mhead, vec![prev]));
        }
    }

    // Fact imports and negated closure, as in the plain rewriting.
    for ap in &adorned.adorned_preds {
        let renamed = ap.renamed();
        let vars: Vec<Term> = (0..ap.pred.arity)
            .map(|i| Term::var(&format!("FI_{i}")))
            .collect();
        let bound = ap.adornment.bound_positions();
        let margs: Vec<Term> = bound.iter().map(|&i| vars[i].clone()).collect();
        let guard = Atom {
            pred: magic_pred(renamed, bound.len()),
            args: margs,
            negated: false,
            span: Span::NONE,
        };
        let orig = Atom {
            pred: ap.pred,
            args: vars.clone(),
            negated: false,
            span: Span::NONE,
        };
        let head = Atom {
            pred: renamed,
            args: vars,
            negated: false,
            span: Span::NONE,
        };
        out.push(Rule::new(
            head,
            vec![Literal::Atom(guard), Literal::Atom(orig)],
        ));
    }
    for r in negated_derived_closure(adorned, program) {
        out.push(r);
    }

    let qren =
        ldl_core::adorn::AdornedPred::new(adorned.query.pred, adorned.query.adornment).renamed();
    let bound = adorned.query.adornment.bound_positions();
    let seed_pred = magic_pred(qren, bound.len());
    let consts: Vec<Term> = bound.iter().map(|&i| query.goal.args[i].clone()).collect();
    Ok(MagicProgram {
        program: out,
        seed_pred,
        seed: Tuple::new(consts),
        answer_pred: qren,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::FixpointConfig;
    use crate::seminaive::eval_program_seminaive;
    use ldl_core::adorn::{adorn_program, LeftToRight};
    use ldl_core::parser::{parse_program, parse_query};
    use ldl_storage::{Database, Relation};

    fn run_magic(text: &str, qtext: &str) -> (Relation, crate::Metrics) {
        let program = parse_program(text).unwrap();
        let query = parse_query(qtext).unwrap();
        let adorned = adorn_program(&program, query.pred(), query.adornment(), &LeftToRight);
        let magic = magic_rewrite(&adorned, &program, &query).unwrap();
        let mut db = Database::from_program(&program);
        db.relation_mut(magic.seed_pred).insert(magic.seed.clone());
        let (derived, metrics) =
            eval_program_seminaive(&magic.program, &db, &FixpointConfig::default()).unwrap();
        // The answer relation holds answers for every reachable subquery;
        // restrict to the original goal (as the engine does).
        let ans = crate::engine::filter_answers(&derived[&magic.answer_pred], &query.goal);
        (ans, metrics)
    }

    fn run_plain(text: &str) -> std::collections::HashMap<Pred, Relation> {
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        eval_program_seminaive(&program, &db, &FixpointConfig::default())
            .unwrap()
            .0
    }

    const TC: &str = r#"
        e(1, 2). e(2, 3). e(3, 4). e(10, 11).
        tc(X, Y) <- e(X, Y).
        tc(X, Y) <- e(X, Z), tc(Z, Y).
    "#;

    #[test]
    fn magic_tc_matches_full_evaluation_restricted() {
        let (ans, _) = run_magic(TC, "tc(1, Y)?");
        let full = run_plain(TC);
        let tc = &full[&Pred::new("tc", 2)];
        let from1: Vec<&Tuple> = tc.iter().filter(|t| t.get(0) == &Term::int(1)).collect();
        assert_eq!(ans.len(), from1.len());
        for t in from1 {
            assert!(ans.contains(t));
        }
    }

    #[test]
    fn magic_avoids_irrelevant_subgraph() {
        // The detached edge (10,11) must never be derived for tc(1, Y)?.
        let (ans, m) = run_magic(TC, "tc(1, Y)?");
        assert_eq!(ans.len(), 3);
        assert!(!ans.contains(&Tuple::ints(&[10, 11])));
        // Magic derives answers for every reachable subquery (tc from
        // 1, 2, 3, 4 = 6 tuples) plus 3 magic tuples, but never touches
        // the detached component.
        assert!(m.tuples_derived <= 9, "unexpected derivation volume: {m}");
    }

    #[test]
    fn magic_sg_bound_first_argument() {
        let text = r#"
            up(1, 10). up(2, 10). up(3, 20).
            flat(10, 10). flat(20, 20).
            dn(10, 1). dn(10, 2). dn(20, 3).
            sg(X, Y) <- flat(X, Y).
            sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
        "#;
        let (ans, _) = run_magic(text, "sg(1, Y)?");
        let full = run_plain(text);
        let sg = &full[&Pred::new("sg", 2)];
        let expect: Vec<&Tuple> = sg.iter().filter(|t| t.get(0) == &Term::int(1)).collect();
        assert_eq!(ans.len(), expect.len(), "got {ans:?}");
        for t in expect {
            assert!(ans.contains(t));
        }
    }

    #[test]
    fn seed_matches_query_constants() {
        let program = parse_program(TC).unwrap();
        let query = parse_query("tc(3, Y)?").unwrap();
        let adorned = adorn_program(&program, query.pred(), query.adornment(), &LeftToRight);
        let magic = magic_rewrite(&adorned, &program, &query).unwrap();
        assert_eq!(magic.seed, Tuple::ints(&[3]));
        assert_eq!(magic.seed_pred.arity, 1);
        assert_eq!(magic.answer_pred.name.as_str(), "tc_bf");
    }

    #[test]
    fn all_free_query_degenerates_to_full_evaluation() {
        let (ans, _) = run_magic(TC, "tc(X, Y)?");
        let full = run_plain(TC);
        assert_eq!(ans, full[&Pred::new("tc", 2)]);
    }

    #[test]
    fn bb_query_checks_membership() {
        let (ans, _) = run_magic(TC, "tc(1, 4)?");
        assert!(ans.contains(&Tuple::ints(&[1, 4])));
        let (ans2, _) = run_magic(TC, "tc(1, 10)?");
        assert!(!ans2.contains(&Tuple::ints(&[1, 10])));
    }

    #[test]
    fn mismatched_query_is_rejected() {
        let program = parse_program(TC).unwrap();
        let q1 = parse_query("tc(1, Y)?").unwrap();
        let q2 = parse_query("tc(X, 4)?").unwrap();
        let adorned = adorn_program(&program, q1.pred(), q1.adornment(), &LeftToRight);
        assert!(magic_rewrite(&adorned, &program, &q2).is_err());
    }

    #[test]
    fn negated_derived_literal_evaluated_through_stratification() {
        let text = r#"
            base(1). base(2). base(3).
            other(2).
            p(X) <- base(X), ~q(X).
            q(X) <- other(X).
        "#;
        let (ans, _) = run_magic(text, "p(X)?");
        assert_eq!(ans.len(), 2, "got {ans:?}");
        assert!(ans.contains(&Tuple::ints(&[1])));
        assert!(ans.contains(&Tuple::ints(&[3])));
        assert!(!ans.contains(&Tuple::ints(&[2])));
    }

    #[test]
    fn negation_below_recursion_through_magic() {
        // The negated predicate is itself recursive: its whole clique is
        // imported and evaluated in full before the membership tests.
        let text = r#"
            edge(1, 2). edge(2, 3).
            node(1). node(2). node(3). node(4).
            reach(1).
            reach(Y) <- reach(X), edge(X, Y).
            lost(X) <- node(X), ~reach(X).
        "#;
        let (ans, _) = run_magic(text, "lost(X)?");
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Tuple::ints(&[4])));
    }

    #[test]
    fn facts_on_derived_predicates_survive_rewriting() {
        // `reach(1).` is a fact on a DERIVED predicate: the rewrite must
        // import it through the renamed relation.
        let text = r#"
            edge(1, 2). edge(2, 3).
            reach(1).
            reach(Y) <- reach(X), edge(X, Y).
        "#;
        let (ans, _) = run_magic(text, "reach(Y)?");
        assert_eq!(ans.len(), 3, "got {ans:?}");
        assert!(ans.contains(&Tuple::ints(&[1])));
        assert!(ans.contains(&Tuple::ints(&[3])));
    }

    #[test]
    fn list_length_executes_under_magic() {
        let text = "len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.";
        let program = parse_program(text).unwrap();
        let query = parse_query("len([10, 20, 30], N)?").unwrap();
        // Use the binding-aware SIP (source order here is already right).
        let adorned = adorn_program(&program, query.pred(), query.adornment(), &LeftToRight);
        let magic = magic_rewrite(&adorned, &program, &query).unwrap();
        let mut db = Database::from_program(&program);
        db.relation_mut(magic.seed_pred).insert(magic.seed.clone());
        let (derived, _) =
            eval_program_seminaive(&magic.program, &db, &FixpointConfig::default()).unwrap();
        let ans = crate::engine::filter_answers(&derived[&magic.answer_pred], &query.goal);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.rows()[0].get(1), &Term::int(3));
    }

    fn run_magic_supplementary(text: &str, qtext: &str) -> (Relation, crate::Metrics) {
        let program = parse_program(text).unwrap();
        let query = parse_query(qtext).unwrap();
        let adorned = adorn_program(&program, query.pred(), query.adornment(), &LeftToRight);
        let magic = magic_rewrite_supplementary(&adorned, &program, &query).unwrap();
        let mut db = Database::from_program(&program);
        db.relation_mut(magic.seed_pred).insert(magic.seed.clone());
        let (derived, metrics) =
            eval_program_seminaive(&magic.program, &db, &FixpointConfig::default()).unwrap();
        let ans = crate::engine::filter_answers(&derived[&magic.answer_pred], &query.goal);
        (ans, metrics)
    }

    #[test]
    fn supplementary_matches_plain_on_tc() {
        let (plain, _) = run_magic(TC, "tc(1, Y)?");
        let (sup, _) = run_magic_supplementary(TC, "tc(1, Y)?");
        assert_eq!(plain, sup);
    }

    #[test]
    fn supplementary_matches_plain_on_sg() {
        let text = r#"
            up(1, 10). up(2, 10). up(3, 20).
            flat(10, 10). flat(20, 20).
            dn(10, 1). dn(10, 2). dn(20, 3).
            sg(X, Y) <- flat(X, Y).
            sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
        "#;
        let (plain, _) = run_magic(text, "sg(1, Y)?");
        let (sup, _) = run_magic_supplementary(text, "sg(1, Y)?");
        assert_eq!(plain, sup);
    }

    #[test]
    fn supplementary_agrees_on_multi_derived_bodies() {
        // A rule whose body holds a base-join prefix plus two derived
        // literals: the plain rewriting re-joins the prefix inside each
        // magic rule, the supplementary variant materializes it once.
        // (Which one produces fewer raw tuples is workload-dependent:
        // supplementaries add materialized rows but remove re-join work —
        // the classic space/time trade-off of [BMSU 85]. Here we pin the
        // semantics; the benches measure the costs.)
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("e({}, {}).\n", i, i + 1));
        }
        text.push_str(
            "hop(X, Y) <- e(X, Y).\n\
             hop(X, Y) <- e(X, Z), hop(Z, Y).\n\
             two(X, Y) <- e(X, A), e(A, B), hop(B, M), hop(M, Y).\n",
        );
        let (plain, pm) = run_magic(&text, "two(0, Y)?");
        let (sup, sm) = run_magic_supplementary(&text, "two(0, Y)?");
        assert_eq!(plain, sup);
        assert!(sm.tuples_derived > 0 && pm.tuples_derived > 0);
    }

    #[test]
    fn supplementary_handles_builtins_and_negation() {
        let text = r#"
            n(1). n(2). n(3). n(4).
            skip(3).
            q(X, Y) <- n(X), ~skip(X), Y = X * 2, n(Y).
        "#;
        let (plain, _) = run_magic(text, "q(A, B)?");
        let (sup, _) = run_magic_supplementary(text, "q(A, B)?");
        assert_eq!(plain, sup);
        assert_eq!(plain.len(), 2); // (1,2), (2,4)
    }

    #[test]
    fn nonlinear_tc_also_works() {
        let text = r#"
            e(1, 2). e(2, 3). e(3, 4).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), tc(Z, Y).
        "#;
        let (ans, _) = run_magic(text, "tc(1, Y)?");
        assert_eq!(ans.len(), 3);
    }
}
