//! Evaluation metrics, used by the experiment harness.

use std::fmt;

/// Counters accumulated during one query evaluation. These are the
/// quantities the paper's method comparisons are about: how much work a
/// fixpoint method performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Tuples newly derived (inserted for the first time).
    pub tuples_derived: usize,
    /// Tuples produced including duplicates (rule-firing output size).
    pub tuples_produced: usize,
    /// Fixpoint iterations executed across all cliques.
    pub iterations: usize,
    /// Individual rule evaluations.
    pub rule_firings: usize,
}

impl Metrics {
    /// Adds another metrics bundle into this one.
    ///
    /// This is also the merge step of the parallel round executor
    /// (`crate::parallel`): worker threads accumulate into private
    /// `Metrics` values, which the round absorbs in deterministic job
    /// order, so parallel totals are identical to serial ones.
    pub fn absorb(&mut self, other: Metrics) {
        self.tuples_derived += other.tuples_derived;
        self.tuples_produced += other.tuples_produced;
        self.iterations += other.iterations;
        self.rule_firings += other.rule_firings;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "derived={} produced={} iterations={} firings={}",
            self.tuples_derived, self.tuples_produced, self.iterations, self.rule_firings
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums() {
        let mut a = Metrics {
            tuples_derived: 1,
            tuples_produced: 2,
            iterations: 3,
            rule_firings: 4,
        };
        a.absorb(Metrics {
            tuples_derived: 10,
            tuples_produced: 20,
            iterations: 30,
            rule_firings: 40,
        });
        assert_eq!(a.tuples_derived, 11);
        assert_eq!(a.iterations, 33);
    }
}
