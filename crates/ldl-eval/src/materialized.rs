//! Materialized execution of a rule body — the `MP` dimension.
//!
//! §4 of the paper distinguishes square (materialized) from triangle
//! (pipelined) nodes: a materialized subtree is computed bottom-up in
//! full before its ancestor starts, with no sideways information
//! passing. [`crate::rule_eval`] is the pipelined executor; this module
//! is its materialized counterpart, built from the relational operators
//! of [`crate::ops`]: each body atom becomes a full relation, joined
//! left-to-right on shared variables with an exchangeable join method,
//! builtins applied as filters (or column computations for `=`) once
//! their variables are available.
//!
//! Both executors return identical relations (the MP transformation is
//! equivalence-preserving); the `join_methods` bench and the MP ablation
//! compare their costs.

use crate::builtins::eval_builtin;
use crate::ops::{join, ColPredicate, JoinMethod};
use crate::rule_eval::RelSource;
use ldl_core::unify::Subst;
use ldl_core::{BuiltinPred, LdlError, Literal, Result, Rule, Symbol, Term};
use ldl_storage::{Relation, Tuple};

/// Intermediate result: a relation whose columns are named by variables.
struct Intermediate {
    rel: Relation,
    schema: Vec<Symbol>,
}

impl Intermediate {
    fn col_of(&self, v: Symbol) -> Option<usize> {
        self.schema.iter().position(|&s| s == v)
    }
}

/// Materializes one atom occurrence into an [`Intermediate`]: constant
/// arguments and repeated variables are resolved by per-row unification
/// (which also handles compound-term patterns), and each distinct
/// variable becomes one column.
fn materialize_atom(atom: &ldl_core::Atom, rel: &Relation) -> Intermediate {
    let vars = atom.vars();
    let mut out = Relation::new(vars.len());
    for row in rel.iter() {
        let mut s = Subst::new();
        if atom
            .args
            .iter()
            .zip(&row.0)
            .all(|(pat, val)| s.unify(pat, val))
        {
            let tuple: Vec<Term> = vars.iter().map(|&v| s.apply(&Term::Var(v))).collect();
            out.insert(Tuple::new(tuple));
        }
    }
    Intermediate {
        rel: out,
        schema: vars,
    }
}

/// A builtin comparison that can run as a relational selection: one
/// side a variable already materialized as a column, the other a plain
/// constant (no arithmetic to evaluate).
fn pushdown_predicate(b: &BuiltinPred, acc: &Intermediate) -> Option<ColPredicate> {
    let (v, value, op) = match (&b.lhs, &b.rhs) {
        (Term::Var(v), c @ Term::Const(_)) => (*v, c.clone(), b.op),
        (c @ Term::Const(_), Term::Var(v)) => (*v, c.clone(), b.op.flipped()),
        _ => return None,
    };
    acc.col_of(v).map(|col| ColPredicate { col, op, value })
}

/// Executes `rule`'s body fully materialized, in the order `order`, with
/// the given join method, returning the deduplicated head relation.
///
/// Errors mirror the pipelined executor: non-EC builtins, unbound
/// negation, or unbound head variables mean the order is unsafe.
///
/// Column-vs-constant comparison filters run through the *lenient*
/// [`crate::ops::select`]: an ordering comparison over unordered values
/// silently drops the row, where the pipelined executor's per-row
/// builtin raises a typed error. Use [`eval_rule_materialized_cfg`]
/// with [`crate::FixpointConfig::strict_select`] set to route those
/// filters through [`crate::ops::select_strict`] and restore agreement
/// on ill-typed data.
pub fn eval_rule_materialized(
    rule: &Rule,
    order: &[usize],
    method: JoinMethod,
    source: &dyn RelSource,
) -> Result<Relation> {
    eval_rule_materialized_inner(rule, order, method, source, false)
}

/// [`eval_rule_materialized`] honoring the engine configuration's
/// selection strictness (see [`crate::FixpointConfig::strict_select`]).
pub fn eval_rule_materialized_cfg(
    rule: &Rule,
    order: &[usize],
    method: JoinMethod,
    source: &dyn RelSource,
    cfg: &crate::FixpointConfig,
) -> Result<Relation> {
    eval_rule_materialized_inner(rule, order, method, source, cfg.strict_select)
}

fn eval_rule_materialized_inner(
    rule: &Rule,
    order: &[usize],
    method: JoinMethod,
    source: &dyn RelSource,
    strict: bool,
) -> Result<Relation> {
    debug_assert_eq!(order.len(), rule.body.len());
    // Start from a unit relation (one empty tuple): joins extend it.
    let mut acc = Intermediate {
        rel: Relation::from_tuples(0, [Tuple::new(vec![])]),
        schema: vec![],
    };
    for &li in order {
        match &rule.body[li] {
            Literal::Atom(a) if !a.negated => {
                let base = source
                    .relation(li, a.pred)
                    .cloned()
                    .unwrap_or_else(|| Relation::new(a.pred.arity));
                let right = materialize_atom(a, &base);
                // Shared variables become equi-join columns.
                let on: Vec<(usize, usize)> = right
                    .schema
                    .iter()
                    .enumerate()
                    .filter_map(|(rc, &v)| acc.col_of(v).map(|lc| (lc, rc)))
                    .collect();
                let joined = join(&acc.rel, &right.rel, &on, method);
                // New schema: left columns then right's new variables;
                // project away duplicated join columns from the right.
                let mut keep: Vec<usize> = (0..acc.schema.len()).collect();
                let mut schema = acc.schema.clone();
                for (rc, &v) in right.schema.iter().enumerate() {
                    if acc.col_of(v).is_none() {
                        keep.push(acc.schema.len() + rc);
                        schema.push(v);
                    }
                }
                let projected = crate::ops::project(&joined, &keep);
                acc = Intermediate {
                    rel: projected,
                    schema,
                };
            }
            Literal::Atom(a) => {
                // Negation: anti-join on the (fully bound) argument tuple.
                let vars = a.vars();
                if !vars.iter().all(|v| acc.col_of(*v).is_some()) {
                    return Err(LdlError::Eval(format!(
                        "negated literal ~{a} not bound under materialized order {order:?}"
                    )));
                }
                let neg_rel = source
                    .relation(li, a.pred)
                    .cloned()
                    .unwrap_or_else(|| Relation::new(a.pred.arity));
                let mut out = Relation::new(acc.rel.arity());
                for row in acc.rel.iter() {
                    let mut s = Subst::new();
                    for (c, &v) in acc.schema.iter().enumerate() {
                        if !s.unify(&Term::Var(v), row.get(c)) {
                            unreachable!("schema binding cannot fail");
                        }
                    }
                    let ground = s.apply_atom(a);
                    if !neg_rel.contains(&Tuple::new(ground.args)) {
                        out.insert(row.clone());
                    }
                }
                acc = Intermediate {
                    rel: out,
                    schema: acc.schema,
                };
            }
            Literal::Builtin(b) => {
                // Column-vs-constant comparisons are relational
                // selections; the strict flag picks which select runs.
                if let Some(pred) = pushdown_predicate(b, &acc) {
                    let preds = std::slice::from_ref(&pred);
                    let selected = if strict {
                        crate::ops::select_strict(&acc.rel, preds)?
                    } else {
                        crate::ops::select(&acc.rel, preds)
                    };
                    acc = Intermediate {
                        rel: selected,
                        schema: acc.schema,
                    };
                    continue;
                }
                // Apply per row: filters drop rows, `=` may add a column.
                let new_vars: Vec<Symbol> = b
                    .vars()
                    .into_iter()
                    .filter(|v| acc.col_of(*v).is_none())
                    .collect();
                let mut out_schema = acc.schema.clone();
                out_schema.extend(new_vars.iter().copied());
                let mut out = Relation::new(out_schema.len());
                for row in acc.rel.iter() {
                    let mut s = Subst::new();
                    for (c, &v) in acc.schema.iter().enumerate() {
                        let ok = s.unify(&Term::Var(v), row.get(c));
                        debug_assert!(ok);
                    }
                    if let Some(s2) = eval_builtin(b, &s)? {
                        let mut tuple = row.0.clone();
                        for &v in &new_vars {
                            let t = s2.apply(&Term::Var(v));
                            if !t.is_ground() {
                                return Err(LdlError::Eval(format!(
                                    "builtin {b} left {v} unbound"
                                )));
                            }
                            tuple.push(t);
                        }
                        out.insert(Tuple::new(tuple));
                    }
                }
                acc = Intermediate {
                    rel: out,
                    schema: out_schema,
                };
            }
        }
    }
    // Project to the head.
    let head_vars = rule.head.vars();
    let mut out = Relation::new(rule.head.args.len());
    for row in acc.rel.iter() {
        let mut s = Subst::new();
        for (c, &v) in acc.schema.iter().enumerate() {
            let ok = s.unify(&Term::Var(v), row.get(c));
            debug_assert!(ok);
        }
        let head = s.apply_atom(&rule.head);
        if !head.is_ground() {
            return Err(LdlError::Eval(format!(
                "unbound head variable(s) {:?} under materialized order {order:?}",
                head_vars
                    .iter()
                    .filter(|v| acc.col_of(**v).is_none())
                    .map(|v| v.as_str())
                    .collect::<Vec<_>>()
            )));
        }
        out.insert(Tuple::new(head.args));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule_eval::{eval_rule, OverlaySource};
    use ldl_core::parser::parse_program;
    use ldl_core::Pred;
    use ldl_storage::Database;

    fn both_executors(text: &str, rule_idx: usize, order: &[usize]) -> (Relation, Relation) {
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let rule = &program.rules[rule_idx];
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: None,
            restrict: None,
        };
        let mat = eval_rule_materialized(rule, order, JoinMethod::Hash, &source).unwrap();
        let mut pipe = Relation::new(rule.head.args.len());
        eval_rule(rule, order, &Subst::new(), &source, &mut |t| {
            pipe.insert(t);
        })
        .unwrap();
        (mat, pipe)
    }

    #[test]
    fn matches_pipelined_on_joins() {
        let (mat, pipe) = both_executors(
            r#"
            e(1, 2). e(2, 3). e(3, 4). e(2, 5).
            p(X, Z) <- e(X, Y), e(Y, Z).
            "#,
            0,
            &[0, 1],
        );
        assert_eq!(mat, pipe);
        assert_eq!(mat.len(), 3);
    }

    #[test]
    fn matches_pipelined_with_builtins() {
        let (mat, pipe) = both_executors(
            r#"
            n(1). n(2). n(3). n(4).
            big(X, Y) <- n(X), X > 2, Y = X * 10.
            "#,
            0,
            &[0, 1, 2],
        );
        assert_eq!(mat, pipe);
        assert_eq!(mat.len(), 2);
    }

    #[test]
    fn matches_pipelined_with_negation() {
        let (mat, pipe) = both_executors(
            r#"
            node(1). node(2). node(3).
            bad(2).
            ok(X) <- node(X), ~bad(X).
            "#,
            0,
            &[0, 1],
        );
        assert_eq!(mat, pipe);
        assert_eq!(mat.len(), 2);
    }

    #[test]
    fn matches_pipelined_on_complex_terms() {
        let (mat, pipe) = both_executors(
            r#"
            part(bike, wheel(front, 32)). part(bike, wheel(rear, 36)). part(bike, frame(x)).
            spokes(B, N) <- part(B, wheel(S, N)).
            "#,
            0,
            &[0],
        );
        assert_eq!(mat, pipe);
        assert_eq!(mat.len(), 2);
    }

    #[test]
    fn all_join_methods_agree_materialized() {
        let text = r#"
            e(1, 2). e(2, 3). e(3, 4). e(2, 5).
            p(X, Z) <- e(X, Y), e(Y, Z).
        "#;
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let rule = &program.rules[0];
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: None,
            restrict: None,
        };
        let results: Vec<Relation> = JoinMethod::ALL
            .iter()
            .map(|&m| eval_rule_materialized(rule, &[0, 1], m, &source).unwrap())
            .collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn repeated_variables_within_atom() {
        let (mat, pipe) = both_executors(
            r#"
            e(1, 1). e(1, 2). e(3, 3).
            loop2(X) <- e(X, X).
            "#,
            0,
            &[0],
        );
        assert_eq!(mat, pipe);
        assert_eq!(mat.len(), 2);
    }

    #[test]
    fn order_independence_of_results() {
        let text = r#"
            a(1, 2). a(2, 3).
            b(2, 10). b(3, 20).
            c(10). c(20).
            q(X, Z) <- a(X, Y), b(Y, Z), c(Z).
        "#;
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let rule = &program.rules[0];
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: None,
            restrict: None,
        };
        let r1 = eval_rule_materialized(rule, &[0, 1, 2], JoinMethod::Hash, &source).unwrap();
        let r2 = eval_rule_materialized(rule, &[2, 1, 0], JoinMethod::Hash, &source).unwrap();
        let r3 = eval_rule_materialized(rule, &[1, 2, 0], JoinMethod::Index, &source).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        assert_eq!(r1.len(), 2);
    }

    #[test]
    fn unsafe_order_detected() {
        let text = r#"
            n(1).
            big(X, Y) <- n(X), Y = X * 10.
        "#;
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let rule = &program.rules[0];
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: None,
            restrict: None,
        };
        assert!(eval_rule_materialized(rule, &[1, 0], JoinMethod::Hash, &source).is_err());
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let (mat, pipe) = both_executors(
            r#"
            a(1). a(2).
            b(10). b(20). b(30).
            pair(X, Y) <- a(X), b(Y).
            "#,
            0,
            &[0, 1],
        );
        assert_eq!(mat, pipe);
        assert_eq!(mat.len(), 6);
    }
}
