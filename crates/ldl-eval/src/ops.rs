//! Materialized relational operators with exchangeable join methods.
//!
//! §4 of the paper labels every interior node of a processing tree with
//! the method used, and the `EL` (exchange label) transformation swaps
//! one method for another. These are the physical operators behind those
//! labels: joins on column-equality predicates with nested-loop, hash,
//! or index implementations; selection; projection; union. They are used
//! by the join-method benchmarks and give the optimizer's cost model its
//! ground truth.

use ldl_core::{CmpOp, LdlError, Result, Term, Value};
use ldl_storage::{Relation, Tuple};

/// Physical join algorithms (the `EL` label alphabet for joins).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JoinMethod {
    /// Compare every pair of tuples: O(|L|·|R|).
    NestedLoop,
    /// Build a hash table on the right operand's key: O(|L| + |R|).
    Hash,
    /// Probe a (cached) index on the right operand: O(|L| · match).
    Index,
}

impl JoinMethod {
    /// All methods, for enumeration by the optimizer.
    pub const ALL: [JoinMethod; 3] = [JoinMethod::NestedLoop, JoinMethod::Hash, JoinMethod::Index];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinMethod::NestedLoop => "nested-loop",
            JoinMethod::Hash => "hash",
            JoinMethod::Index => "index",
        }
    }
}

/// Equi-join of `left` and `right` on `on` = pairs `(lcol, rcol)`.
/// Output tuples are `left ++ right` column-wise.
pub fn join(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
    method: JoinMethod,
) -> Relation {
    let out_arity = left.arity() + right.arity();
    let mut out = Relation::new(out_arity);
    match method {
        JoinMethod::NestedLoop => {
            for l in left.iter() {
                for r in right.iter() {
                    if on.iter().all(|&(lc, rc)| l.get(lc) == r.get(rc)) {
                        out.insert(l.concat(r));
                    }
                }
            }
        }
        JoinMethod::Hash => {
            use std::collections::HashMap;
            let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();
            let mut table: HashMap<Vec<Term>, Vec<&Tuple>> = HashMap::new();
            for r in right.iter() {
                let key: Vec<Term> = rcols.iter().map(|&c| r.get(c).clone()).collect();
                table.entry(key).or_default().push(r);
            }
            let lcols: Vec<usize> = on.iter().map(|&(lc, _)| lc).collect();
            for l in left.iter() {
                let key: Vec<Term> = lcols.iter().map(|&c| l.get(c).clone()).collect();
                if let Some(matches) = table.get(&key) {
                    for r in matches {
                        out.insert(l.concat(r));
                    }
                }
            }
        }
        JoinMethod::Index => {
            let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();
            let idx = right.index_on(&rcols);
            let lcols: Vec<usize> = on.iter().map(|&(lc, _)| lc).collect();
            for l in left.iter() {
                let key: Vec<Term> = lcols.iter().map(|&c| l.get(c).clone()).collect();
                for &rid in idx.probe(&key) {
                    out.insert(l.concat(right.row(rid)));
                }
            }
        }
    }
    out
}

/// Cartesian product (join with no predicate).
pub fn product(left: &Relation, right: &Relation) -> Relation {
    join(left, right, &[], JoinMethod::NestedLoop)
}

/// A selection predicate on a single column.
#[derive(Clone, Debug)]
pub struct ColPredicate {
    /// Column index.
    pub col: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant to compare with.
    pub value: Term,
}

impl ColPredicate {
    /// `col = value` shorthand.
    pub fn eq(col: usize, value: Term) -> ColPredicate {
        ColPredicate {
            col,
            op: CmpOp::Eq,
            value,
        }
    }

    /// Does the tuple satisfy the predicate?
    ///
    /// This is deliberately *three-valued collapsed to false*: an
    /// ordering comparison (`<`, `<=`, `>`, `>=`) between values that
    /// have no order — a symbol against an integer, a complex term —
    /// is neither true nor false, and `matches` reports it as `false`,
    /// silently dropping the row. That matches the pipelined builtins'
    /// behavior for the type-correct programs the safety layer admits,
    /// but it cannot distinguish "ordered and smaller" from "not
    /// ordered at all". Strict call sites (anything surfacing results
    /// directly to a user) should use [`ColPredicate::check_matches`] /
    /// [`select_strict`], which turn the undefined comparison into a
    /// typed [`LdlError::Eval`] instead.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.check_matches(t).unwrap_or(false)
    }

    /// Strict variant of [`ColPredicate::matches`]: `Ok(bool)` for
    /// defined comparisons, [`LdlError::Eval`] when an ordering operator
    /// meets a pair of values with no order (instead of silently
    /// collapsing the undefined comparison to `false`).
    pub fn check_matches(&self, t: &Tuple) -> Result<bool> {
        let v = t.get(self.col);
        match self.op {
            CmpOp::Eq => Ok(v == &self.value),
            CmpOp::Ne => Ok(v != &self.value),
            ord => match (v, &self.value) {
                (Term::Const(Value::Int(a)), Term::Const(Value::Int(b))) => Ok(match ord {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    _ => unreachable!(),
                }),
                _ => Err(LdlError::Eval(format!(
                    "ordering comparison {} {} {} between unordered values",
                    v, self.op, self.value
                ))),
            },
        }
    }
}

/// Selection: rows satisfying every predicate. Rows where an ordering
/// comparison is undefined are dropped (see [`ColPredicate::matches`]);
/// use [`select_strict`] to surface those as errors instead.
pub fn select(rel: &Relation, preds: &[ColPredicate]) -> Relation {
    let mut out = Relation::new(rel.arity());
    for t in rel.iter() {
        if preds.iter().all(|p| p.matches(t)) {
            out.insert(t.clone());
        }
    }
    out
}

/// Strict selection: like [`select`], but an ordering comparison over
/// unordered values is an [`LdlError::Eval`] rather than a silently
/// dropped row.
pub fn select_strict(rel: &Relation, preds: &[ColPredicate]) -> Result<Relation> {
    let mut out = Relation::new(rel.arity());
    'rows: for t in rel.iter() {
        for p in preds {
            if !p.check_matches(t)? {
                continue 'rows;
            }
        }
        out.insert(t.clone());
    }
    Ok(out)
}

/// Projection onto `cols` (duplicates removed by construction).
pub fn project(rel: &Relation, cols: &[usize]) -> Relation {
    let mut out = Relation::new(cols.len());
    for t in rel.iter() {
        out.insert(t.project(cols));
    }
    out
}

/// Union of two same-arity relations.
pub fn union(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.arity(), b.arity(), "union arity mismatch");
    let mut out = Relation::new(a.arity());
    for t in a.iter() {
        out.insert(t.clone());
    }
    for t in b.iter() {
        out.insert(t.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(2, pairs.iter().map(|&(a, b)| Tuple::ints(&[a, b])))
    }

    #[test]
    fn all_join_methods_agree() {
        let l = edges(&[(1, 2), (2, 3), (3, 4), (1, 3)]);
        let r = edges(&[(2, 10), (3, 20), (9, 30)]);
        let nl = join(&l, &r, &[(1, 0)], JoinMethod::NestedLoop);
        let h = join(&l, &r, &[(1, 0)], JoinMethod::Hash);
        let ix = join(&l, &r, &[(1, 0)], JoinMethod::Index);
        assert_eq!(nl, h);
        assert_eq!(nl, ix);
        assert_eq!(nl.len(), 3); // (1,2,2,10), (2,3,3,20), (1,3,3,20)
    }

    #[test]
    fn multi_column_join() {
        let l = Relation::from_tuples(3, [Tuple::ints(&[1, 2, 3]), Tuple::ints(&[1, 5, 6])]);
        let r = Relation::from_tuples(2, [Tuple::ints(&[1, 2]), Tuple::ints(&[1, 5])]);
        for m in JoinMethod::ALL {
            let j = join(&l, &r, &[(0, 0), (1, 1)], m);
            assert_eq!(j.len(), 2, "{}", m.name());
        }
    }

    #[test]
    fn empty_join_key_is_product() {
        let l = edges(&[(1, 2), (3, 4)]);
        let r = edges(&[(5, 6)]);
        assert_eq!(product(&l, &r).len(), 2);
    }

    #[test]
    fn select_filters() {
        let r = edges(&[(1, 10), (2, 20), (3, 30)]);
        let s = select(
            &r,
            &[ColPredicate {
                col: 1,
                op: CmpOp::Gt,
                value: Term::int(15),
            }],
        );
        assert_eq!(s.len(), 2);
        let e = select(&r, &[ColPredicate::eq(0, Term::int(2))]);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn project_dedups() {
        let r = edges(&[(1, 10), (1, 20), (2, 30)]);
        let p = project(&r, &[0]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn union_dedups() {
        let a = edges(&[(1, 2), (2, 3)]);
        let b = edges(&[(2, 3), (3, 4)]);
        assert_eq!(union(&a, &b).len(), 3);
    }

    /// Pins the documented three-valued collapse: lenient `select`
    /// silently drops the row with the undefined comparison...
    #[test]
    fn select_ordering_on_symbols_is_false() {
        let r = Relation::from_tuples(1, [Tuple(vec![Term::sym("a")])]);
        let s = select(
            &r,
            &[ColPredicate {
                col: 0,
                op: CmpOp::Lt,
                value: Term::int(5),
            }],
        );
        assert!(s.is_empty());
    }

    /// ...while the strict path reports it as a typed evaluation error,
    /// and still agrees with `select` when every comparison is defined.
    #[test]
    fn select_strict_errors_on_unordered_comparison() {
        let r = Relation::from_tuples(1, [Tuple(vec![Term::sym("a")])]);
        let p = [ColPredicate {
            col: 0,
            op: CmpOp::Lt,
            value: Term::int(5),
        }];
        match select_strict(&r, &p) {
            Err(LdlError::Eval(msg)) => assert!(msg.contains("unordered"), "msg: {msg}"),
            other => panic!("expected Eval error, got {other:?}"),
        }
        // Equality between mixed types stays defined (and false).
        let eq = [ColPredicate::eq(0, Term::int(5))];
        assert!(select_strict(&r, &eq).unwrap().is_empty());
        // On ordered data the strict path equals the lenient one.
        let ints = edges(&[(1, 10), (2, 20), (3, 30)]);
        let gt = [ColPredicate {
            col: 1,
            op: CmpOp::Gt,
            value: Term::int(15),
        }];
        assert_eq!(select_strict(&ints, &gt).unwrap(), select(&ints, &gt));
    }
}
