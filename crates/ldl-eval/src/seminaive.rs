//! Semi-naive (differential) fixpoint evaluation.
//!
//! The standard improvement over naive iteration: after initializing a
//! clique from its exit rules, each round fires every recursive rule once
//! per occurrence of a clique predicate, with that occurrence restricted
//! to the previous round's *delta*. A derivation is attempted only if it
//! uses at least one new tuple, so work per round is proportional to
//! growth instead of to the whole relation.

use crate::metrics::Metrics;
use crate::naive::{evaluation_groups, FixpointConfig};
use crate::parallel::{run_round, Firing};
use ldl_core::depgraph::DependencyGraph;
use ldl_core::{LdlError, Pred, Program, Result};
use ldl_storage::{Database, Relation};
use std::collections::HashMap;

/// Evaluates every derived predicate of `program` semi-naively.
pub fn eval_program_seminaive(
    program: &Program,
    db: &Database,
    cfg: &FixpointConfig,
) -> Result<(HashMap<Pred, Relation>, Metrics)> {
    let graph = DependencyGraph::build(program);
    graph.check_stratified()?;
    // Seed derived relations with any facts asserted for them (see the
    // matching comment in `naive`); those facts also enter the first delta.
    let mut derived: HashMap<Pred, Relation> = program
        .derived_preds()
        .into_iter()
        .map(|p| {
            let rel = db
                .relation(p)
                .cloned()
                .unwrap_or_else(|| Relation::new(p.arity));
            (p, rel)
        })
        .collect();
    let mut metrics = Metrics::default();
    // One chain-cover solve per evaluation; every round borrows it.
    let catalog = cfg.catalog(program);

    for group in evaluation_groups(program, &graph) {
        let in_group = |p: Pred| group.contains(&p);
        let recursive = group.iter().any(|&p| graph.is_recursive(p));
        let group_rules: Vec<usize> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| in_group(r.head.pred))
            .map(|(i, _)| i)
            .collect();

        if !recursive {
            // Single pass; bodies only reference completed strata, so
            // the group's rules are independent and run as one round.
            let (out, round_metrics) = {
                let firings: Vec<Firing> = group_rules
                    .iter()
                    .map(|&ri| Firing {
                        rule_index: ri,
                        overlay: None,
                    })
                    .collect();
                let base = |p: Pred| derived.get(&p).or_else(|| db.relation(p));
                run_round(program, &firings, &base, cfg.threads, cfg.plan(&catalog))?
            };
            metrics.absorb(round_metrics);
            for (p, t) in out {
                if derived.get_mut(&p).expect("relation").insert(t) {
                    metrics.tuples_derived += 1;
                }
            }
            metrics.iterations += 1;
            continue;
        }

        // Split into exit rules (no clique atom in body) and recursive ones.
        for &ri in &group_rules {
            if crate::grouping::has_grouping(&program.rules[ri]) {
                return Err(LdlError::Eval(format!(
                    "grouping head {} inside a recursive clique is not stratifiable",
                    program.rules[ri].head
                )));
            }
        }
        let (exit, rec): (Vec<usize>, Vec<usize>) = group_rules
            .iter()
            .partition(|&&ri| !program.rules[ri].body_atoms().any(|a| in_group(a.pred)));

        // Round 0: asserted facts for the clique's predicates plus the
        // exit rules, both evaluated against completed strata.
        let mut delta: HashMap<Pred, Relation> =
            group.iter().map(|&p| (p, derived[&p].clone())).collect();
        let (out, round_metrics) = {
            let firings: Vec<Firing> = exit
                .iter()
                .map(|&ri| Firing {
                    rule_index: ri,
                    overlay: None,
                })
                .collect();
            let base = |p: Pred| derived.get(&p).or_else(|| db.relation(p));
            run_round(program, &firings, &base, cfg.threads, cfg.plan(&catalog))?
        };
        metrics.absorb(round_metrics);
        for (p, t) in out {
            if derived.get_mut(&p).expect("relation").insert(t.clone()) {
                metrics.tuples_derived += 1;
                delta.get_mut(&p).expect("delta relation").insert(t);
            }
        }
        metrics.iterations += 1;

        // Differential rounds.
        let mut iters = 0usize;
        while delta.values().any(|r| !r.is_empty()) {
            iters += 1;
            if iters > cfg.max_iterations {
                return Err(LdlError::Eval(format!(
                    "semi-naive fixpoint for {:?} exceeded {} iterations (divergent / unsafe)",
                    group.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
                    cfg.max_iterations
                )));
            }
            metrics.iterations += 1;
            // One firing per clique-predicate occurrence of each
            // recursive rule, that occurrence reading the delta. The
            // firings are independent (they read the frozen `derived` +
            // `delta` state), so the round fans out over workers and
            // merges in (rule, occurrence) order — the serial order.
            let (produced, round_metrics) = {
                let mut firings: Vec<Firing> = Vec::new();
                for &ri in &rec {
                    let rule = &program.rules[ri];
                    for (j, l) in rule.body.iter().enumerate() {
                        let delta_occ = l
                            .as_atom()
                            .filter(|a| !a.negated && in_group(a.pred))
                            .map(|a| &delta[&a.pred]);
                        match delta_occ {
                            Some(drel) if !drel.is_empty() => {
                                firings.push(Firing {
                                    rule_index: ri,
                                    overlay: Some((j, drel)),
                                });
                            }
                            _ => {}
                        }
                    }
                }
                let base = |p: Pred| derived.get(&p).or_else(|| db.relation(p));
                run_round(program, &firings, &base, cfg.threads, cfg.plan(&catalog))?
            };
            metrics.absorb(round_metrics);
            let mut next_delta: HashMap<Pred, Relation> =
                group.iter().map(|&p| (p, Relation::new(p.arity))).collect();
            for (p, t) in produced {
                if derived.get_mut(&p).expect("relation").insert(t.clone()) {
                    metrics.tuples_derived += 1;
                    next_delta.get_mut(&p).expect("delta").insert(t);
                }
            }
            delta = next_delta;
        }
    }
    Ok((derived, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::eval_program_naive;
    use ldl_core::parser::parse_program;

    fn both(
        text: &str,
    ) -> (
        HashMap<Pred, Relation>,
        HashMap<Pred, Relation>,
        Metrics,
        Metrics,
    ) {
        let p = parse_program(text).unwrap();
        let db = Database::from_program(&p);
        let (n, nm) = eval_program_naive(&p, &db, &FixpointConfig::default()).unwrap();
        let (s, sm) = eval_program_seminaive(&p, &db, &FixpointConfig::default()).unwrap();
        (n, s, nm, sm)
    }

    #[test]
    fn agrees_with_naive_on_tc() {
        let (n, s, nm, sm) = both(
            r#"
            e(1, 2). e(2, 3). e(3, 4). e(4, 5). e(2, 5).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), e(Z, Y).
            "#,
        );
        let p = Pred::new("tc", 2);
        assert_eq!(n[&p], s[&p]);
        // Semi-naive must not produce more raw tuples than naive.
        assert!(sm.tuples_produced <= nm.tuples_produced, "{sm} vs {nm}");
    }

    #[test]
    fn agrees_on_same_generation() {
        let (n, s, _, _) = both(
            r#"
            up(1, 10). up(2, 10). up(10, 100). up(20, 100).
            flat(100, 100). flat(10, 20).
            dn(100, 10). dn(100, 20). dn(10, 1). dn(20, 3).
            sg(X, Y) <- flat(X, Y).
            sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
            "#,
        );
        let p = Pred::new("sg", 2);
        assert_eq!(n[&p], s[&p]);
    }

    #[test]
    fn agrees_on_mutual_recursion() {
        let (n, s, _, _) = both(
            r#"
            zero(0).
            succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4). succ(4, 5).
            even(X) <- zero(X).
            even(X) <- succ(Y, X), odd(Y).
            odd(X) <- succ(Y, X), even(Y).
            "#,
        );
        assert_eq!(n[&Pred::new("even", 1)], s[&Pred::new("even", 1)]);
        assert_eq!(n[&Pred::new("odd", 1)], s[&Pred::new("odd", 1)]);
    }

    #[test]
    fn agrees_on_nonlinear_tc() {
        let (n, s, _, _) = both(
            r#"
            e(1, 2). e(2, 3). e(3, 4). e(4, 1).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), tc(Z, Y).
            "#,
        );
        let p = Pred::new("tc", 2);
        assert_eq!(n[&p], s[&p]);
        assert_eq!(s[&p].len(), 16); // full cycle: all pairs
    }

    #[test]
    fn seminaive_does_less_work_on_chains() {
        let mut text = String::new();
        for i in 0..60 {
            text.push_str(&format!("e({}, {}).\n", i, i + 1));
        }
        text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).\n");
        let (_, _, nm, sm) = both(&text);
        assert!(
            sm.tuples_produced < nm.tuples_produced / 2,
            "expected big win: semi {} vs naive {}",
            sm.tuples_produced,
            nm.tuples_produced
        );
    }

    #[test]
    fn unbound_head_var_is_a_runtime_error_in_both() {
        // helper([H|T],N) <- helper(T,M), ... evaluated bottom-up leaves H
        // unbound: both methods must report the unsafe execution rather
        // than emit garbage. (The optimizer catches this at compile time;
        // see ldl-optimizer::safety.)
        let text = r#"
            seed([]).
            helper(L, 0) <- seed(L).
            helper(W, N) <- W = [H | T], helper(T, M), N = M + 1.
        "#;
        // That variant is unsafe too (W,H unbound at W = [H|T]).
        let p = parse_program(text).unwrap();
        let db = Database::from_program(&p);
        assert!(eval_program_naive(&p, &db, &FixpointConfig::default()).is_err());
        assert!(eval_program_seminaive(&p, &db, &FixpointConfig::default()).is_err());
    }

    #[test]
    fn empty_delta_terminates_immediately() {
        let (_, s, _, sm) = both("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).");
        assert!(s[&Pred::new("tc", 2)].is_empty());
        assert!(sm.iterations <= 2);
    }
}
