//! Set grouping (`<X>` heads) and the `member/2` set predicate.
//!
//! §1 of the paper lists LDL's "set operators and predicates [TZ 86,
//! BN 87]" among the constructs its compilation handles. The grouping
//! construct `p(K, <V>) <- body` collects, per binding of the plain head
//! arguments, all values of the grouped term into one set term; it is
//! stratified like negation (the dependency graph marks grouping-rule
//! edges negative), so a predicate can never collect a set of itself.
//! `member(X, S)` enumerates or tests elements of a bound set.

use crate::rule_eval::{eval_rule_with, AccessPlan, FiringStats, RelSource};
use ldl_core::unify::Subst;
use ldl_core::{Atom, Result, Rule, Span, Term};
use ldl_storage::Tuple;
use std::collections::{BTreeMap, BTreeSet};

/// Does the rule's head contain a grouping marker?
pub fn has_grouping(rule: &Rule) -> bool {
    rule.head.args.iter().any(|a| a.as_group().is_some())
}

/// Evaluates a grouping rule: the body runs like any conjunct (same
/// executor, same order), and the solutions are grouped by the plain
/// head arguments, every grouped position collecting its values into a
/// set term. Keys with no solutions produce no tuple (no empty sets —
/// LDL's grouping is over a non-empty extension).
pub fn eval_grouping_rule(
    rule: &Rule,
    order: &[usize],
    source: &dyn RelSource,
) -> Result<(Vec<Tuple>, FiringStats)> {
    eval_grouping_rule_with(rule, order, source, AccessPlan::HashOnDemand)
}

/// [`eval_grouping_rule`] with an explicit access plan for the body's
/// probe sites.
pub fn eval_grouping_rule_with(
    rule: &Rule,
    order: &[usize],
    source: &dyn RelSource,
    plan: AccessPlan<'_>,
) -> Result<(Vec<Tuple>, FiringStats)> {
    debug_assert!(has_grouping(rule));
    // Inner rule: grouping markers unwrapped, head otherwise unchanged.
    let inner_args: Vec<Term> = rule
        .head
        .args
        .iter()
        .map(|a| a.as_group().cloned().unwrap_or_else(|| a.clone()))
        .collect();
    let inner_head = Atom {
        pred: rule.head.pred,
        args: inner_args,
        negated: false,
        span: Span::NONE,
    };
    let inner = Rule::new(inner_head, rule.body.clone());

    let group_positions: Vec<usize> = rule
        .head
        .args
        .iter()
        .enumerate()
        .filter(|(_, a)| a.as_group().is_some())
        .map(|(i, _)| i)
        .collect();
    let key_positions: Vec<usize> = (0..rule.head.args.len())
        .filter(|i| !group_positions.contains(i))
        .collect();

    let mut rows: Vec<Tuple> = Vec::new();
    let stats = eval_rule_with(&inner, order, &Subst::new(), source, plan, &mut |t| {
        rows.push(t)
    })?;

    // Group. Keys are kept sorted so the output tuple order is a
    // function of the solution set alone — not of a hash seed — keeping
    // grouping rounds deterministic like every other firing.
    let mut groups: BTreeMap<Vec<Term>, Vec<BTreeSet<Term>>> = BTreeMap::new();
    for row in rows {
        let key: Vec<Term> = key_positions.iter().map(|&i| row.get(i).clone()).collect();
        let entry = groups
            .entry(key)
            .or_insert_with(|| vec![BTreeSet::new(); group_positions.len()]);
        for (gi, &pos) in group_positions.iter().enumerate() {
            entry[gi].insert(row.get(pos).clone());
        }
    }
    let mut out = Vec::with_capacity(groups.len());
    debug_assert!(
        groups.keys().zip(groups.keys().skip(1)).all(|(a, b)| a < b),
        "group keys must emit in strictly ascending order"
    );
    for (key, sets) in groups {
        let mut args = vec![Term::int(0); rule.head.args.len()];
        for (ki, &pos) in key_positions.iter().enumerate() {
            args[pos] = key[ki].clone();
        }
        for (gi, &pos) in group_positions.iter().enumerate() {
            args[pos] = Term::set(sets[gi].iter().cloned().collect());
        }
        out.push(Tuple::new(args));
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule_eval::OverlaySource;
    use ldl_core::parser::parse_program;
    use ldl_core::Pred;
    use ldl_storage::Database;

    fn run_grouping(text: &str, rule_idx: usize) -> Vec<Tuple> {
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let rule = &program.rules[rule_idx];
        let order: Vec<usize> = (0..rule.body.len()).collect();
        let source = OverlaySource {
            base: |p: Pred| db.relation(p),
            overlay: None,
            restrict: None,
        };
        let (mut out, _) = eval_grouping_rule(rule, &order, &source).unwrap();
        out.sort_by_key(|t| t.to_string());
        out
    }

    #[test]
    fn groups_values_per_key() {
        let out = run_grouping(
            r#"
            contains(bike, wheel). contains(bike, frame).
            contains(car, wheel). contains(car, engine).
            parts(A, <P>) <- contains(A, P).
            "#,
            0,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].to_string(), "(bike, {frame, wheel})");
        assert_eq!(out[1].to_string(), "(car, {engine, wheel})");
    }

    #[test]
    fn grouping_deduplicates() {
        let out = run_grouping(
            r#"
            e(a, 1). e(a, 1). e(a, 2).
            vals(K, <V>) <- e(K, V).
            "#,
            0,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(1).as_set().unwrap().len(), 2);
    }

    #[test]
    fn all_grouped_no_key() {
        let out = run_grouping(
            r#"
            n(3). n(1). n(2).
            allnums(<X>) <- n(X).
            "#,
            0,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_string(), "({1, 2, 3})");
    }

    #[test]
    fn no_solutions_no_tuples() {
        let out = run_grouping("vals(K, <V>) <- missing(K, V).", 0);
        assert!(out.is_empty(), "no empty sets");
    }

    #[test]
    fn multiple_group_positions() {
        let out = run_grouping(
            r#"
            t(k, 1, a). t(k, 2, b). t(k, 1, b).
            agg(K, <N>, <S>) <- t(K, N, S).
            "#,
            0,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_string(), "(k, {1, 2}, {a, b})");
    }
}
