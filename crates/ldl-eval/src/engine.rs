//! The query engine: program + database + query + method → answers.
//!
//! This is the execution back end the optimizer targets. The optimizer
//! picks a method and a SIP (body permutations) per recursive clique;
//! the engine applies the corresponding rewriting and runs the fixpoint.
//!
//! Every method executes its rounds on the parallel round executor
//! (`crate::parallel`) — magic and counting evaluate their rewritten
//! programs through the semi-naive fixpoint, so
//! [`FixpointConfig::threads`] applies to all four methods, with
//! answers and [`Metrics`] identical at any thread count.

use crate::counting::{
    active_domain_iteration_bound, counting_rewrite, extract_answers, map_divergence_error,
};
use crate::magic::magic_rewrite;
use crate::metrics::Metrics;
use crate::naive::{eval_program_naive, AnalysisPolicy, FixpointConfig};
use crate::seminaive::eval_program_seminaive;
use ldl_core::adorn::{adorn_program, AdornedProgram, GreedySip, SipStrategy};
use ldl_core::unify::Subst;
use ldl_core::{Atom, Program, Query, Result};
use ldl_storage::{Database, Relation};

/// The recursive methods of §7.3 (plus the naive baseline).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// Full naive fixpoint of the original program.
    Naive,
    /// Semi-naive (differential) fixpoint of the original program.
    SemiNaive,
    /// Magic-set rewriting, then semi-naive.
    Magic,
    /// Generalized counting rewriting, then semi-naive (linear cliques,
    /// acyclic data).
    Counting,
}

impl Method {
    /// Every method, for enumeration by the optimizer.
    pub const ALL: [Method; 4] = [
        Method::Naive,
        Method::SemiNaive,
        Method::Magic,
        Method::Counting,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Naive => "naive",
            Method::SemiNaive => "semi-naive",
            Method::Magic => "magic",
            Method::Counting => "counting",
        }
    }
}

/// Answers plus the work performed to produce them.
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    /// Tuples of the query predicate satisfying the goal.
    pub tuples: Relation,
    /// Evaluation work counters.
    pub metrics: Metrics,
}

/// Keeps only the rows of `rel` that unify with the goal's arguments
/// (handles repeated variables and compound patterns in the goal).
pub fn filter_answers(rel: &Relation, goal: &Atom) -> Relation {
    let mut out = Relation::new(rel.arity());
    for row in rel.iter() {
        let mut s = Subst::new();
        if goal
            .args
            .iter()
            .zip(&row.0)
            .all(|(pat, val)| s.unify(pat, val))
        {
            out.insert(row.clone());
        }
    }
    out
}

/// Evaluates `query` against `program`/`db` with `method`, adorning with
/// the default greedy binding-aware SIP where a rewriting is involved.
pub fn evaluate_query(
    program: &Program,
    db: &Database,
    query: &Query,
    method: Method,
    cfg: &FixpointConfig,
) -> Result<QueryAnswer> {
    evaluate_query_sip(program, db, query, method, cfg, &GreedySip)
}

/// Like [`evaluate_query`], with an explicit SIP strategy (the optimizer
/// passes the c-permutation it selected).
pub fn evaluate_query_sip(
    program: &Program,
    db: &Database,
    query: &Query,
    method: Method,
    cfg: &FixpointConfig,
    sip: &dyn SipStrategy,
) -> Result<QueryAnswer> {
    analysis_gate(program, query, cfg.analysis)?;
    // The rewrite pass is sound under any database (constant
    // propagation, ground folding, duplicate/subsumed-rule removal —
    // see `ldl_analysis::transform`), so applying it after the gate
    // changes no answers, only the work done to produce them.
    let rewritten;
    let program = if cfg.rewrite {
        rewritten = ldl_analysis::transform::rewrite(program).0;
        &rewritten
    } else {
        program
    };
    match method {
        Method::Naive | Method::SemiNaive => {
            // Bottom-up evaluation runs rule bodies in their stored
            // order; apply the SIP's all-free orders so the optimizer's
            // safe orderings (builtins after their bindings) take effect.
            let permuted = permute_program(program, sip);
            let (derived, metrics) = if method == Method::Naive {
                eval_program_naive(&permuted, db, cfg)?
            } else {
                eval_program_seminaive(&permuted, db, cfg)?
            };
            let rel = derived
                .get(&query.pred())
                .cloned()
                .or_else(|| db.relation(query.pred()).cloned())
                .unwrap_or_else(|| Relation::new(query.pred().arity));
            Ok(QueryAnswer {
                tuples: filter_answers(&rel, &query.goal),
                metrics,
            })
        }
        Method::Magic | Method::Counting => {
            // A query on a base predicate needs no rewriting at all:
            // filter the stored relation directly.
            if !program.derived_preds().contains(&query.pred()) {
                let rel = db
                    .relation(query.pred())
                    .cloned()
                    .unwrap_or_else(|| Relation::new(query.pred().arity));
                return Ok(QueryAnswer {
                    tuples: filter_answers(&rel, &query.goal),
                    metrics: Metrics::default(),
                });
            }
            let adorned = adorn_program(program, query.pred(), query.adornment(), sip);
            evaluate_adorned(&adorned, program, db, query, method, cfg)
        }
    }
}

/// The pre-planning static-analysis gate: runs `ldl-analysis` over the
/// program + query form (lints off — only executability matters here).
/// Under [`AnalysisPolicy::Deny`] error findings become
/// [`ldl_core::LdlError::Unsafe`] carrying the witnesses; under
/// [`AnalysisPolicy::Warn`] everything goes to stderr and evaluation
/// proceeds.
fn analysis_gate(program: &Program, query: &Query, policy: AnalysisPolicy) -> Result<()> {
    if policy == AnalysisPolicy::Off {
        return Ok(());
    }
    // Lints off — only executability matters here. The semantic pass
    // (LDL2xx, warnings only) runs under `Warn`, where its findings are
    // actually surfaced; under `Deny` warnings would be discarded, so
    // the interpreter's work is skipped.
    let opts = ldl_analysis::AnalysisOptions {
        lints: false,
        semantic: policy == AnalysisPolicy::Warn,
        ..Default::default()
    };
    let report = ldl_analysis::analyze_query(program, query, &opts);
    match policy {
        AnalysisPolicy::Off => Ok(()),
        AnalysisPolicy::Warn => {
            if !report.diagnostics.is_empty() {
                eprintln!("{}", report.render_text(None, "<query>"));
            }
            Ok(())
        }
        AnalysisPolicy::Deny => {
            if report.has_errors() {
                let msg = report
                    .errors()
                    .map(|d| format!("[{}] {}", d.code, d.message))
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(ldl_core::LdlError::Unsafe(msg));
            }
            Ok(())
        }
    }
}

/// Rewrites every rule body into the order the SIP chooses for an
/// all-free head — the binding situation bottom-up evaluation presents.
/// Semantics are unchanged (conjunction is commutative); only the
/// executability of builtins and negation depends on the order.
pub fn permute_program(program: &Program, sip: &dyn SipStrategy) -> Program {
    let mut out = Program {
        rules: Vec::with_capacity(program.rules.len()),
        facts: program.facts.clone(),
    };
    for (ri, rule) in program.rules.iter().enumerate() {
        let ad = ldl_core::Adornment::all_free(rule.head.pred.arity);
        let perm = sip.permutation(ri, rule, ad);
        debug_assert_eq!(perm.len(), rule.body.len());
        let body = perm.iter().map(|&i| rule.body[i].clone()).collect();
        out.rules.push(ldl_core::Rule::new(rule.head.clone(), body));
    }
    out
}

/// Evaluates a pre-adorned program (the optimizer adorns under each
/// candidate c-permutation and calls this with the winner).
pub fn evaluate_adorned(
    adorned: &AdornedProgram,
    program: &Program,
    db: &Database,
    query: &Query,
    method: Method,
    cfg: &FixpointConfig,
) -> Result<QueryAnswer> {
    match method {
        Method::Magic => {
            let magic = magic_rewrite(adorned, program, query)?;
            let mut mdb = db.clone();
            mdb.relation_mut(magic.seed_pred).insert(magic.seed.clone());
            let (derived, metrics) = eval_program_seminaive(&magic.program, &mdb, cfg)?;
            let rel = derived
                .get(&magic.answer_pred)
                .cloned()
                .unwrap_or_else(|| Relation::new(query.pred().arity));
            Ok(QueryAnswer {
                tuples: filter_answers(&rel, &query.goal),
                metrics,
            })
        }
        Method::Counting => {
            let counting = counting_rewrite(adorned, program, query)?;
            let mut cdb = db.clone();
            cdb.relation_mut(counting.seed_pred)
                .insert(counting.seed.clone());
            // Cap the fixpoint at the active-domain bound: on acyclic
            // data the counter can never climb past it, so exceeding it
            // is cyclic-data divergence — reported as such instead of
            // burning iterations to the generic limit.
            let bound = active_domain_iteration_bound(program, db);
            let mut ccfg = cfg.clone();
            ccfg.max_iterations = ccfg.max_iterations.min(bound);
            let (derived, metrics) = eval_program_seminaive(&counting.program, &cdb, &ccfg)
                .map_err(|e| map_divergence_error(e, query, bound))?;
            let rel = derived
                .get(&counting.answer_pred)
                .cloned()
                .unwrap_or_else(|| Relation::new(counting.answer_pred.arity));
            let ans = extract_answers(&rel, counting.query_arity);
            Ok(QueryAnswer {
                tuples: filter_answers(&ans, &query.goal),
                metrics,
            })
        }
        Method::Naive | Method::SemiNaive => evaluate_query(program, db, query, method, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::{parse_program, parse_query};
    use ldl_storage::Tuple;

    const SG: &str = r#"
        up(1, 10). up(2, 10). up(3, 20). up(10, 100). up(20, 100).
        flat(100, 100). flat(10, 20).
        dn(100, 10). dn(100, 20). dn(10, 1). dn(10, 2). dn(20, 3).
        sg(X, Y) <- flat(X, Y).
        sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
    "#;

    fn answers(text: &str, q: &str, m: Method) -> Relation {
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query(q).unwrap();
        evaluate_query(&program, &db, &query, m, &FixpointConfig::default())
            .unwrap()
            .tuples
    }

    #[test]
    fn all_methods_agree_on_sg_bound_query() {
        let reference = answers(SG, "sg(1, Y)?", Method::Naive);
        assert!(!reference.is_empty());
        for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
            let got = answers(SG, "sg(1, Y)?", m);
            assert_eq!(got, reference, "method {} disagrees", m.name());
        }
    }

    #[test]
    fn all_methods_agree_on_tc() {
        let tc = r#"
            e(1, 2). e(2, 3). e(3, 4). e(2, 5). e(7, 8).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- e(X, Z), tc(Z, Y).
        "#;
        let reference = answers(tc, "tc(1, Y)?", Method::Naive);
        assert_eq!(reference.len(), 4);
        for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
            assert_eq!(answers(tc, "tc(1, Y)?", m), reference, "{}", m.name());
        }
    }

    #[test]
    fn counting_on_cyclic_data_reports_dedicated_error() {
        // A 3-cycle: the counting counter spins, the active-domain cap
        // trips, and the error names the limitation and the way out.
        let cyc = r#"
            e(1, 2). e(2, 3). e(3, 1).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- e(X, Z), tc(Z, Y).
        "#;
        let program = parse_program(cyc).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query("tc(1, Y)?").unwrap();
        let err = evaluate_query(
            &program,
            &db,
            &query,
            Method::Counting,
            &FixpointConfig::default(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("counting method diverged"), "{msg}");
        assert!(msg.contains("cyclic"), "{msg}");
        assert!(msg.contains("magic"), "{msg}");
        // The suggested path works on the same query.
        let via_magic = answers(cyc, "tc(1, Y)?", Method::Magic);
        assert_eq!(via_magic, answers(cyc, "tc(1, Y)?", Method::SemiNaive));
        assert_eq!(via_magic.len(), 3);
    }

    #[test]
    fn ground_query_returns_single_tuple_or_empty() {
        let yes = answers(SG, "sg(1, 2)?", Method::Magic);
        assert_eq!(yes.len(), 1);
        let no = answers(SG, "sg(1, 100)?", Method::Magic);
        assert!(no.is_empty());
    }

    #[test]
    fn repeated_variable_goal_filters() {
        // sg(X, X): same-generation with itself.
        let naive = answers(SG, "sg(X, X)?", Method::Naive);
        for t in naive.iter() {
            assert_eq!(t.get(0), t.get(1));
        }
    }

    #[test]
    fn query_on_base_predicate_works() {
        let got = answers(SG, "up(1, Z)?", Method::SemiNaive);
        assert_eq!(got.len(), 1);
        assert!(got.contains(&Tuple::ints(&[1, 10])));
    }

    #[test]
    fn base_predicate_query_under_every_method() {
        for m in Method::ALL {
            let got = answers(SG, "up(1, Z)?", m);
            assert_eq!(got.len(), 1, "{}", m.name());
            assert!(got.contains(&Tuple::ints(&[1, 10])));
        }
    }

    #[test]
    fn magic_metrics_beat_seminaive_on_selective_query() {
        let mut text = String::new();
        // Two disconnected chains; query touches only the first.
        for i in 0..50 {
            text.push_str(&format!("e({}, {}).\n", i, i + 1));
            text.push_str(&format!("e({}, {}).\n", 1000 + i, 1000 + i + 1));
        }
        text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
        let program = parse_program(&text).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query("tc(49, Y)?").unwrap();
        let cfg = FixpointConfig::default();
        let semi = evaluate_query(&program, &db, &query, Method::SemiNaive, &cfg).unwrap();
        let magic = evaluate_query(&program, &db, &query, Method::Magic, &cfg).unwrap();
        assert_eq!(semi.tuples, magic.tuples);
        assert!(
            magic.metrics.tuples_derived < semi.metrics.tuples_derived / 10,
            "magic {} vs semi-naive {}",
            magic.metrics.tuples_derived,
            semi.metrics.tuples_derived
        );
    }
}
