//! Variable bindability saturation.
//!
//! The safety analyzer (ldl-core's `safety` module) answers "is there a
//! safe order?"; diagnostics need more: *which* variable is unbound at
//! *which* literal when there is none. This module runs the same greedy
//! saturation as `safety::find_safe_order` but to exhaustion, returning
//! the maximal bindable variable set and the residue of literals that can
//! never execute. Greedy completeness (executing an executable literal
//! only grows the bound set) makes the residue order-independent: a
//! literal in the residue is unexecutable under **every** body order.

use ldl_core::binding::Adornment;
use ldl_core::{Literal, Pred, Rule, Symbol};
use std::collections::HashSet;

/// Result of saturating one rule body under a head adornment.
pub struct Bindability {
    /// Every variable bindable by some body order (head-bound vars
    /// included).
    pub bound: HashSet<Symbol>,
    /// Body literal indexes (into `rule.body`) that no order can make
    /// effectively computable, in source order.
    pub stuck: Vec<usize>,
}

/// Is `lit` executable given the currently bound variables? Mirrors the
/// conditions of `safety::find_safe_order`.
fn executable(lit: &Literal, bound: &HashSet<Symbol>) -> bool {
    match lit {
        Literal::Builtin(b) => b.is_ec(bound),
        Literal::Atom(a) if a.negated => a.vars().iter().all(|v| bound.contains(v)),
        Literal::Atom(a) if a.pred == Pred::new("member", 2) => {
            a.args[1].vars().iter().all(|v| bound.contains(v))
        }
        Literal::Atom(_) => true,
    }
}

/// Saturates the bound-variable set of `rule` under `head_adornment`.
pub fn saturate(rule: &Rule, head_adornment: Adornment) -> Bindability {
    let mut bound: HashSet<Symbol> = HashSet::new();
    for (i, arg) in rule.head.args.iter().enumerate() {
        if head_adornment.is_bound(i) {
            for v in arg.vars() {
                bound.insert(v);
            }
        }
    }
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    while let Some(pos) = remaining
        .iter()
        .position(|&i| executable(&rule.body[i], &bound))
    {
        let i = remaining.remove(pos);
        match &rule.body[i] {
            Literal::Builtin(b) => {
                for v in b.binds(&bound) {
                    bound.insert(v);
                }
            }
            Literal::Atom(a) if !a.negated => {
                for v in a.vars() {
                    bound.insert(v);
                }
            }
            _ => {}
        }
    }
    Bindability {
        bound,
        stuck: remaining,
    }
}

/// The variables of `lit` that are not in `bound`, in occurrence order.
pub fn unbound_vars(lit: &Literal, bound: &HashSet<Symbol>) -> Vec<Symbol> {
    lit.vars()
        .into_iter()
        .filter(|v| !bound.contains(v))
        .collect()
}

/// Formats a variable list for a message: `X` / `X and Y` / `X, Y and Z`.
pub fn var_list(vars: &[Symbol]) -> String {
    let names: Vec<&str> = vars.iter().map(|v| v.as_str()).collect();
    match names.len() {
        0 => String::new(),
        1 => names[0].to_string(),
        _ => format!(
            "{} and {}",
            names[..names.len() - 1].join(", "),
            names[names.len() - 1]
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    #[test]
    fn residue_is_the_unexecutable_literals() {
        let p = parse_program("p(X) <- n(X), X > Y.").unwrap();
        let b = saturate(&p.rules[0], Adornment::all_bound(1));
        assert_eq!(b.stuck.len(), 1);
        let unbound = unbound_vars(&p.rules[0].body[b.stuck[0]], &b.bound);
        assert_eq!(var_list(&unbound), "Y");
    }

    #[test]
    fn saturation_chains_through_equalities() {
        let p = parse_program("p(A, D) <- B = A + 1, C = B + 1, D = C + 1, q(A).").unwrap();
        let b = saturate(&p.rules[0], Adornment::all_free(2));
        assert!(b.stuck.is_empty());
        assert!(p.rules[0].head.vars().iter().all(|v| b.bound.contains(v)));
    }
}
