//! # ldl-analysis — whole-program static analysis for LDL
//!
//! Runs over a parsed [`Program`] *before* optimization and evaluation,
//! producing span-carrying [`Diagnostic`]s with stable codes. The
//! analyses reuse the compiler's own machinery (the EC/finite-answer
//! safety analysis of `ldl_core::safety`, the dependency graph, the
//! adornment algorithm), so a clean report genuinely predicts that the
//! optimizer will not reject the program later.
//!
//! ## Diagnostic codes
//!
//! Errors (`LDL0xx`) mean the program or query form cannot execute:
//!
//! | code   | meaning |
//! |--------|---------|
//! | LDL000 | parse error (emitted by front ends such as `ldl-shell --check`) |
//! | LDL001 | a builtin (or `member/2`) has a variable no body order can bind |
//! | LDL002 | a negated literal has a variable no body order can bind |
//! | LDL003 | the query's binding pattern cannot satisfy EC safety under any permutation |
//! | LDL004 | negation inside a recursive clique (not stratified), with cycle witness |
//!
//! Warnings (`LDL1xx`) flag suspicious but executable constructs:
//!
//! | code   | meaning |
//! |--------|---------|
//! | LDL101 | one predicate name used with inconsistent arities |
//! | LDL102 | predicate used but never defined (empty relation) |
//! | LDL103 | predicate defined but unreachable from any query |
//! | LDL104 | singleton variable (single occurrence in its rule) |
//! | LDL105 | head variable appearing only in negated body literals |
//! | LDL106 | duplicate rule |
//! | LDL107 | duplicate literal within one body |
//! | LDL108 | contradictory body (e.g. `X = 1, X = 2`; always-false comparison) |
//! | LDL109 | disconnected join graph — cartesian product |
//! | LDL110 | rule safe only under query forms that bind certain arguments |
//! | LDL111 | no termination proof for a recursive clique |
//!
//! Semantic warnings (`LDL2xx`) come from the abstract interpreter
//! ([`absint`]) — type lattices, k-limited constant sets, and
//! cardinality intervals per predicate argument:
//!
//! | code   | meaning |
//! |--------|---------|
//! | LDL201 | derived predicate is always empty (with per-rule witness chain) |
//! | LDL202 | argument typed Int in some derivations and Sym in others, or a use site meets disjoint types |
//! | LDL203 | body literal always false by constant/interval evaluation |
//! | LDL204 | recursive clique grows an argument arithmetically without bound |
//!
//! ## Entry points
//!
//! * [`analyze_program`] — program-level passes only.
//! * [`analyze_source`] — program passes plus per-query feasibility and
//!   query-reachability for a parsed [`Source`] (what `ldl check` runs).
//! * [`analyze_query`] — program passes plus feasibility of one query
//!   form (what the evaluation engine runs before planning).
//!
//! ```
//! use ldl_analysis::{analyze_source, AnalysisOptions};
//! use ldl_core::parser::parse_source;
//!
//! let src = parse_source("big(X) <- n(X), X > Y.\nn(1).\nbig(B)?").unwrap();
//! let report = analyze_source(&src, &AnalysisOptions::default());
//! assert!(report.has_errors());
//! assert_eq!(report.errors().next().unwrap().code, "LDL001");
//! ```

pub mod absint;
mod bindability;
mod defuse;
pub mod diag;
mod lints;
mod query;
mod safety_pass;
mod strat;
pub mod transform;

pub use diag::{Diagnostic, Report, Severity};

use ldl_core::depgraph::DependencyGraph;
use ldl_core::parser::Source;
use ldl_core::{Program, Query};
use ldl_storage::Database;

/// Code for parse failures, reserved here so every LDL diagnostic code
/// lives in one crate; the parser itself reports `LdlError::Parse`.
pub const PARSE_ERROR_CODE: &str = "LDL000";

/// Analyzer configuration.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Admit base-driven accumulator recursion as terminating (the
    /// acyclic-database assumption that also licenses the counting
    /// method). On by default: LDL111 is a warning either way, and the
    /// permissive setting matches what a tuned evaluation can handle.
    pub assume_acyclic: bool,
    /// Run the style lints (LDL104–LDL109). On by default; the
    /// evaluation engine turns them off — only executability matters
    /// there.
    pub lints: bool,
    /// Run the semantic abstract-interpretation pass (LDL201–LDL204).
    /// On by default.
    pub semantic: bool,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            assume_acyclic: true,
            lints: true,
            semantic: true,
        }
    }
}

fn run_all(
    program: &Program,
    queries: &[Query],
    db: Option<&Database>,
    opts: &AnalysisOptions,
) -> Report {
    let graph = DependencyGraph::build(program);
    let mut report = safety_pass::check(program, &graph, opts.assume_acyclic);
    report.merge(strat::check(program, &graph));
    report.merge(defuse::check(program, &graph, queries));
    if opts.lints {
        report.merge(lints::check(program));
    }
    if opts.semantic {
        report.merge(absint::check(program, db));
    }
    for q in queries {
        report.merge(query::check(program, &graph, q, opts.assume_acyclic));
    }
    report.finish()
}

/// Program-level analysis: safety, stratification, definition/usage,
/// lints, abstract interpretation. No query context (LDL003/LDL103 stay
/// silent) and no database (cardinality seeds come from program facts).
pub fn analyze_program(program: &Program, opts: &AnalysisOptions) -> Report {
    run_all(program, &[], None, opts)
}

/// Program-level analysis with the stored EDB as the extensional world:
/// the abstract interpreter seeds cardinality intervals from actual
/// relation sizes, so LDL201/LDL203 reflect the data actually loaded.
/// This is what `ldl-serve` runs on rule-bearing `load` requests.
pub fn analyze_program_db(program: &Program, db: &Database, opts: &AnalysisOptions) -> Report {
    run_all(program, &[], Some(db), opts)
}

/// Full analysis of a parsed source: program passes plus per-query
/// adornment feasibility and reachability-from-query.
pub fn analyze_source(source: &Source, opts: &AnalysisOptions) -> Report {
    run_all(&source.program, &source.queries, None, opts)
}

/// Program passes plus feasibility of one query form. This is the
/// engine's pre-planning hook. It deliberately analyzes the *whole*
/// program, not just the rules reachable from the query: the default
/// bottom-up methods evaluate every rule, so a defect anywhere would
/// surface as a runtime evaluation error — the gate reports it up front
/// with a witness instead.
pub fn analyze_query(program: &Program, query: &Query, opts: &AnalysisOptions) -> Report {
    run_all(program, std::slice::from_ref(query), None, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_source;

    #[test]
    fn clean_program_with_query_is_clean() {
        let src = parse_source(
            "sg(X, Y) <- flat(X, Y).\nsg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).\n\
             up(1, 2). dn(2, 3). flat(2, 2).\nsg(1, A)?",
        )
        .unwrap();
        let r = analyze_source(&src, &AnalysisOptions::default());
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }

    #[test]
    fn engine_options_disable_lints_not_errors() {
        let src = parse_source("p(X) <- q(X, Lint), X = 1, X = 2.\nq(1, 1).").unwrap();
        let full = analyze_source(&src, &AnalysisOptions::default());
        assert!(full.diagnostics.iter().any(|d| d.code == "LDL104"));
        assert!(full.diagnostics.iter().any(|d| d.code == "LDL108"));
        // The semantic pass piles on: the contradictory body makes p
        // always empty.
        assert!(full.diagnostics.iter().any(|d| d.code == "LDL201"));
        let quiet = analyze_source(
            &src,
            &AnalysisOptions {
                lints: false,
                semantic: false,
                ..Default::default()
            },
        );
        assert!(quiet.diagnostics.is_empty(), "{quiet:?}");
    }

    #[test]
    fn every_pass_reports_through_one_report() {
        // One program tripping several passes at once.
        let src = parse_source(
            "big(X) <- n(X), X > Y.\n\
             win(X) <- move(X, Z), ~win(Z).\n\
             n(1). move(1, 2).\n",
        )
        .unwrap();
        let r = analyze_source(&src, &AnalysisOptions::default());
        let codes: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"LDL001"), "{codes:?}");
        assert!(codes.contains(&"LDL004"), "{codes:?}");
        assert!(codes.contains(&"LDL104"), "{codes:?}");
        assert!(r.has_errors());
    }
}
