//! Stratification check (LDL004) with an explicit negative-cycle
//! witness.
//!
//! `depgraph::check_stratified` reports only the two endpoint predicates
//! of the offending edge; here the full dependency cycle is reconstructed
//! ([`DependencyGraph::negative_cycle_witness`]) and the diagnostic
//! points at the negated body literal that closes it.

use crate::diag::{Diagnostic, Report};
use ldl_core::depgraph::DependencyGraph;
use ldl_core::{Program, Span};

/// Emits LDL004 when the program is not stratified.
pub fn check(program: &Program, graph: &DependencyGraph) -> Report {
    let mut report = Report::new();
    let Some(cycle) = graph.negative_cycle_witness() else {
        return report;
    };
    // The witness starts with the negative edge cycle[0] -~-> cycle[1];
    // point the diagnostic at a negated literal realizing it.
    let mut span = Span::NONE;
    'outer: for rule in &program.rules {
        if rule.head.pred != cycle[0] {
            continue;
        }
        for lit in &rule.body {
            if let ldl_core::Literal::Atom(a) = lit {
                if a.negated && a.pred == cycle[1] {
                    span = lit.span();
                    break 'outer;
                }
            }
        }
    }
    let path = cycle
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i == 0 {
                format!("{p} -[~]->")
            } else if i + 1 < cycle.len() {
                format!(" {p} ->")
            } else {
                format!(" {p}")
            }
        })
        .collect::<String>();
    report.push(
        Diagnostic::error(
            "LDL004",
            span,
            format!(
                "program is not stratified: {} is defined, through this negation, in terms \
                 of itself",
                cycle[0]
            ),
        )
        .with_note(format!("negative dependency cycle: {path}"))
        .with_note(
            "stratified negation requires every negated predicate to be fully computable \
             before its negation is used; break the cycle or remove the negation",
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    fn run(text: &str) -> Report {
        let p = parse_program(text).unwrap();
        let g = DependencyGraph::build(&p);
        check(&p, &g).finish()
    }

    #[test]
    fn self_negation_is_ldl004_with_witness() {
        let r = run("win(X) <- move(X, Y), ~win(Y).");
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "LDL004");
        assert_eq!(d.severity, crate::diag::Severity::Error);
        assert!(d.notes[0].contains("win/1 -[~]-> win/1"), "{:?}", d.notes);
        // Span points at `~win(Y)`.
        assert_eq!(
            (d.span.line, d.span.col, d.span.end_line, d.span.end_col),
            (1, 23, 1, 30)
        );
    }

    #[test]
    fn mutual_negative_cycle_names_all_preds() {
        let r = run("p(X) <- q(X).\nq(X) <- a(X), ~p(X).");
        assert_eq!(r.diagnostics.len(), 1);
        let note = &r.diagnostics[0].notes[0];
        assert!(note.contains('p') && note.contains('q'), "{note}");
    }

    #[test]
    fn stratified_negation_is_clean() {
        let r = run(
            "reach(X) <- source(X).\nreach(X) <- reach(Y), edge(Y, X).\n\
             unreachable(X) <- node(X), ~reach(X).",
        );
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }
}
