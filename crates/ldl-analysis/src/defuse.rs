//! Definition/usage checks: inconsistent arities (LDL101), used but
//! never defined (LDL102), defined but unreachable from any query
//! (LDL103).

use crate::diag::{Diagnostic, Report};
use ldl_core::depgraph::DependencyGraph;
use ldl_core::{Pred, Program, Query, Span};
use std::collections::{BTreeMap, BTreeSet};

/// One predicate occurrence in source order.
struct Occurrence {
    pred: Pred,
    span: Span,
    defines: bool, // rule head or fact (vs. body use)
}

fn occurrences(program: &Program) -> Vec<Occurrence> {
    let mut out = Vec::new();
    for rule in &program.rules {
        out.push(Occurrence {
            pred: rule.head.pred,
            span: rule.head.span,
            defines: true,
        });
        for atom in rule.body.iter().filter_map(|l| l.as_atom()) {
            out.push(Occurrence {
                pred: atom.pred,
                span: atom.span,
                defines: false,
            });
        }
    }
    for fact in &program.facts {
        out.push(Occurrence {
            pred: fact.pred,
            span: fact.span,
            defines: true,
        });
    }
    out
}

/// Runs the definition/usage pass. `queries` feed the reachability
/// check; with no queries, LDL103 stays silent (nothing to reach from).
pub fn check(program: &Program, graph: &DependencyGraph, queries: &[Query]) -> Report {
    let mut report = Report::new();
    let occs = occurrences(program);
    let member = Pred::new("member", 2);

    // LDL101 — one name, several arities. Flag the first occurrence of
    // each arity after the first seen.
    let mut arities: BTreeMap<&str, BTreeMap<usize, Span>> = BTreeMap::new();
    for o in &occs {
        arities
            .entry(o.pred.name.as_str())
            .or_default()
            .entry(o.pred.arity)
            .or_insert(o.span);
    }
    for (name, by_arity) in &arities {
        if by_arity.len() < 2 {
            continue;
        }
        let list = by_arity
            .keys()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" and ");
        // Report at every arity's first site except the most-used one,
        // so the caret lands on the likely typo.
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for o in occs.iter().filter(|o| o.pred.name.as_str() == *name) {
            *counts.entry(o.pred.arity).or_default() += 1;
        }
        let majority = *counts.iter().max_by_key(|(_, &c)| c).expect("nonempty").0;
        for (&arity, &span) in by_arity {
            if arity == majority {
                continue;
            }
            report.push(
                Diagnostic::warning(
                    "LDL101",
                    span,
                    format!(
                        "predicate {name} is used with inconsistent arities ({list}); \
                         {name}/{arity} and {name}/{majority} are distinct predicates"
                    ),
                )
                .with_note("predicates are identified by name AND arity; this is usually a typo"),
            );
        }
    }

    // LDL102 — used in a body, defined nowhere.
    let defined: BTreeSet<Pred> = occs.iter().filter(|o| o.defines).map(|o| o.pred).collect();
    let mut reported: BTreeSet<Pred> = BTreeSet::new();
    for o in &occs {
        if o.defines || o.pred == member || defined.contains(&o.pred) {
            continue;
        }
        if reported.insert(o.pred) {
            report.push(
                Diagnostic::warning(
                    "LDL102",
                    o.span,
                    format!(
                        "predicate {} is used but never defined; it is treated as an \
                         empty relation",
                        o.pred
                    ),
                )
                .with_note("every rule body referencing it produces no tuples"),
            );
        }
    }

    // LDL103 — derived predicate unreachable from every query goal.
    if !queries.is_empty() {
        let qpreds: BTreeSet<Pred> = queries.iter().map(Query::pred).collect();
        for pred in program.derived_preds() {
            let reachable =
                qpreds.contains(&pred) || qpreds.iter().any(|&q| graph.implies(pred, q));
            if reachable {
                continue;
            }
            let span = program
                .rules_for(pred)
                .first()
                .map(|(_, r)| r.head.span)
                .unwrap_or_default();
            let goals = qpreds
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            report.push(
                Diagnostic::warning(
                    "LDL103",
                    span,
                    format!("predicate {pred} is defined but unreachable from any query"),
                )
                .with_note(format!("queried: {goals}")),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_source;

    fn run(text: &str) -> Report {
        let src = parse_source(text).unwrap();
        let g = DependencyGraph::build(&src.program);
        check(&src.program, &g, &src.queries).finish()
    }

    #[test]
    fn arity_clash_is_ldl101_at_minority_site() {
        let r = run("e(1, 2).\ne(2, 3).\npath(X, Y) <- e(X, Y).\npath(X, Y) <- e(X).");
        let d101: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == "LDL101")
            .collect();
        assert_eq!(d101.len(), 1, "{r:?}");
        assert!(d101[0]
            .message
            .contains("e is used with inconsistent arities"));
        assert_eq!((d101[0].span.line, d101[0].span.col), (4, 15));
    }

    #[test]
    fn undefined_pred_is_ldl102() {
        let r = run("p(X) <- q(X), missing(X).\nq(1).");
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "LDL102");
        assert_eq!(d.severity, crate::diag::Severity::Warning);
        assert!(d.message.contains("missing"), "{}", d.message);
        assert_eq!(
            (d.span.line, d.span.col, d.span.end_line, d.span.end_col),
            (1, 15, 1, 25)
        );
    }

    #[test]
    fn member_is_not_undefined() {
        let r = run("p(X) <- s(X, L), member(X, L).\ns(1, [1]).");
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }

    #[test]
    fn unreachable_pred_is_ldl103_only_with_queries() {
        let text = "a(X) <- b(X).\nb(1).\norphan(X) <- b(X).\n";
        let with_query = run(&format!("{text}a(X)?\n"));
        let d: Vec<_> = with_query
            .diagnostics
            .iter()
            .filter(|d| d.code == "LDL103")
            .collect();
        assert_eq!(d.len(), 1, "{with_query:?}");
        assert!(d[0].message.contains("orphan"));
        assert_eq!((d[0].span.line, d[0].span.col), (3, 1));

        let without = run(text);
        assert!(
            without.diagnostics.iter().all(|d| d.code != "LDL103"),
            "{without:?}"
        );
    }
}
