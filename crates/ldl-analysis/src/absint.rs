//! Bottom-up abstract interpretation over the stratified program
//! (LDL201–LDL204, and the estimates behind `ldl-optimizer`'s
//! `EstimateCatalog`).
//!
//! For every predicate argument the interpreter computes three abstract
//! values, joined over all rules and facts that can derive the
//! predicate, in dependency order (base relations first, then each
//! clique of the dependency graph bottom-up):
//!
//! * a **type lattice** value — ⊥ / `Int` / `Sym` / compound / mixed-⊤
//!   ([`AbsType`]);
//! * a **bounded constant set** — the exact value set while it stays
//!   under [`CONST_LIMIT`] elements, widening to ⊤ beyond
//!   ([`ConstSet`]);
//! * a **cardinality interval** per predicate — `[lo, hi]` with
//!   `hi = ∞` allowed, seeded from actual EDB relation sizes when a
//!   [`Database`] is supplied and propagated through joins,
//!   projections, negation, and grouping.
//!
//! Recursive cliques are widened instead of iterated to a (possibly
//! infinite) concrete fixpoint: constant sets are k-limited, and
//! cardinalities come from a *value-flow bound* — each clique argument
//! position can only hold values flowing in from outside the clique
//! (finite, already summarized), explicit constants, or arithmetic
//! generators; a generator fed from inside the clique makes the bound
//! `∞` (and, with no bounding filter, LDL204). The per-argument flow
//! bounds multiply into a sound cardinality upper bound for each clique
//! predicate — the same bound a `Datalog` active-domain argument gives,
//! but per argument rather than per program.
//!
//! The diagnostics ([`check`]) carry witness chains like the safety
//! pass's: every LDL2xx note names the rule, the literal, and the
//! abstract values that force the conclusion.

use crate::diag::{Diagnostic, Report, Severity};
use ldl_core::depgraph::DependencyGraph;
use ldl_core::{Atom, CmpOp, Literal, Pred, Program, Rule, Span, Symbol, Term, Value};
use ldl_storage::Database;
use std::collections::{BTreeMap, BTreeSet};

/// Constant sets wider than this widen to ⊤.
pub const CONST_LIMIT: usize = 8;

/// Bound on type/constant Kleene rounds per recursive clique before the
/// remaining constant sets are widened to ⊤ (the type lattice alone
/// converges in ≤ 3 rounds per argument; the k-limit bounds the
/// constant rounds, so this guard is belt-and-braces).
const MAX_ROUNDS: usize = 32;

/// Abstract type of one predicate argument (a flat lattice with ⊥ and
/// mixed-⊤; `Comp` covers every complex term).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsType {
    /// No value reaches this position.
    Bot,
    /// Every value is an integer.
    Int,
    /// Every value is a symbolic constant.
    Sym,
    /// Every value is a complex term (list, functor, collected set).
    Comp,
    /// Mixed.
    Top,
}

impl AbsType {
    /// Least upper bound.
    pub fn join(self, other: AbsType) -> AbsType {
        match (self, other) {
            (AbsType::Bot, t) | (t, AbsType::Bot) => t,
            (a, b) if a == b => a,
            _ => AbsType::Top,
        }
    }

    /// Greatest lower bound; `None` when the meet is empty (disjoint
    /// concrete types — the literal can never hold).
    pub fn meet(self, other: AbsType) -> Option<AbsType> {
        match (self, other) {
            (AbsType::Top, t) | (t, AbsType::Top) => Some(t),
            (AbsType::Bot, _) | (_, AbsType::Bot) => Some(AbsType::Bot),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    fn of_value(v: &Value) -> AbsType {
        match v {
            Value::Int(_) => AbsType::Int,
            Value::Sym(_) => AbsType::Sym,
        }
    }
}

impl std::fmt::Display for AbsType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsType::Bot => write!(f, "⊥"),
            AbsType::Int => write!(f, "Int"),
            AbsType::Sym => write!(f, "Sym"),
            AbsType::Comp => write!(f, "complex"),
            AbsType::Top => write!(f, "mixed"),
        }
    }
}

/// k-limited scalar constant set. `Fin` is exact (an empty `Fin` means
/// no scalar value can reach the position); `Top` is unknown/widened —
/// also used whenever complex terms flow in, which the set cannot
/// represent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConstSet {
    /// Exactly these scalar values.
    Fin(BTreeSet<Value>),
    /// Unknown / widened.
    Top,
}

impl ConstSet {
    /// The empty set (⊥).
    pub fn empty() -> ConstSet {
        ConstSet::Fin(BTreeSet::new())
    }

    fn singleton(v: Value) -> ConstSet {
        ConstSet::Fin(std::iter::once(v).collect())
    }

    /// Union, widening to ⊤ past [`CONST_LIMIT`].
    pub fn join(&self, other: &ConstSet) -> ConstSet {
        match (self, other) {
            (ConstSet::Fin(a), ConstSet::Fin(b)) => {
                let mut s = a.clone();
                s.extend(b.iter().copied());
                if s.len() > CONST_LIMIT {
                    ConstSet::Top
                } else {
                    ConstSet::Fin(s)
                }
            }
            _ => ConstSet::Top,
        }
    }

    /// Intersection (no widening — meets only shrink).
    pub fn meet(&self, other: &ConstSet) -> ConstSet {
        match (self, other) {
            (ConstSet::Top, s) | (s, ConstSet::Top) => s.clone(),
            (ConstSet::Fin(a), ConstSet::Fin(b)) => {
                ConstSet::Fin(a.intersection(b).copied().collect())
            }
        }
    }

    /// True when the set is provably empty.
    pub fn is_empty_fin(&self) -> bool {
        matches!(self, ConstSet::Fin(s) if s.is_empty())
    }

    fn render(&self) -> String {
        match self {
            ConstSet::Top => "⊤".to_string(),
            ConstSet::Fin(s) => {
                let vals: Vec<String> = s.iter().map(|v| format!("{v}")).collect();
                format!("{{{}}}", vals.join(", "))
            }
        }
    }
}

/// Abstract value of one predicate argument.
#[derive(Clone, PartialEq, Debug)]
pub struct ArgAbs {
    /// Type lattice value.
    pub ty: AbsType,
    /// k-limited constant set.
    pub consts: ConstSet,
    /// Upper bound on the number of distinct values at this position
    /// (`f64::INFINITY` when unbounded).
    pub distinct: f64,
}

impl ArgAbs {
    fn bot() -> ArgAbs {
        ArgAbs {
            ty: AbsType::Bot,
            consts: ConstSet::empty(),
            distinct: 0.0,
        }
    }

    fn join(&self, other: &ArgAbs) -> ArgAbs {
        let consts = self.consts.join(&other.consts);
        let mut distinct = self.distinct + other.distinct;
        if let ConstSet::Fin(s) = &consts {
            distinct = distinct.min(s.len() as f64);
        }
        ArgAbs {
            ty: self.ty.join(other.ty),
            consts,
            distinct,
        }
    }
}

/// Abstract summary of one predicate.
#[derive(Clone, PartialEq, Debug)]
pub struct PredAbs {
    /// Cardinality interval lower bound (distinct facts are always
    /// derived, so this is sound under any consistent database).
    pub card_lo: f64,
    /// Cardinality interval upper bound (`f64::INFINITY` allowed).
    pub card_hi: f64,
    /// Per-argument abstractions.
    pub args: Vec<ArgAbs>,
}

impl PredAbs {
    fn empty(arity: usize) -> PredAbs {
        PredAbs {
            card_lo: 0.0,
            card_hi: 0.0,
            args: vec![ArgAbs::bot(); arity],
        }
    }
}

/// Why a rule derives nothing — the seed of an LDL201/202/203 witness.
#[derive(Clone, Debug)]
enum DeadReason {
    /// A positive body atom refers to a provably empty predicate.
    EmptyAtom { atom: String, pred: Pred },
    /// A literal is always false by constant/interval evaluation, and
    /// the constants involved flowed out of predicate arguments (so the
    /// purely syntactic LDL108 cannot see it).
    FalseConst {
        lit: String,
        span: Span,
        notes: Vec<String>,
    },
    /// A literal is always false for reasons LDL108 already reports
    /// (contradictory equalities over explicit constants).
    FalseSyntactic { lit: String, span: Span },
    /// A literal meets two disjoint concrete types (Int vs Sym).
    TypeClash {
        lit: String,
        span: Span,
        notes: Vec<String>,
    },
}

impl DeadReason {
    fn describe(&self) -> String {
        match self {
            DeadReason::EmptyAtom { atom, pred } => {
                format!("body atom `{atom}` refers to always-empty {pred}")
            }
            DeadReason::FalseConst { lit, span, .. } => {
                format!("literal `{lit}` at {span} is always false")
            }
            DeadReason::FalseSyntactic { lit, span } => {
                format!("literal `{lit}` at {span} is always false")
            }
            DeadReason::TypeClash { lit, span, .. } => {
                format!("literal `{lit}` at {span} compares disjoint types")
            }
        }
    }
}

/// Per-rule result of the final abstract pass.
#[derive(Clone, Debug)]
struct RuleInfo {
    dead: Option<DeadReason>,
}

/// One argument-type contribution, for the LDL202 witness chain.
#[derive(Clone, Debug)]
struct TypeSource {
    ty: AbsType,
    span: Span,
    what: String,
}

/// The interpreter's result: per-predicate abstractions plus the
/// bookkeeping the diagnostics need.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Summaries for every predicate mentioned by the program (base and
    /// derived).
    pub preds: BTreeMap<Pred, PredAbs>,
    /// Predicates inside recursive cliques.
    pub recursive: BTreeSet<Pred>,
    rules: Vec<RuleInfo>,
    /// Scalar head-argument type contributions, per (pred, position).
    type_sources: BTreeMap<(Pred, usize), Vec<TypeSource>>,
    /// Unbounded arithmetic recursion witnesses: (rule index, builtin
    /// span, notes).
    unbounded: Vec<(usize, Span, Vec<String>)>,
}

impl Analysis {
    /// The summary for `pred`, if the program mentions it.
    pub fn pred(&self, pred: Pred) -> Option<&PredAbs> {
        self.preds.get(&pred)
    }
}

/// True for the virtual `member/2` set predicate — not a stored
/// relation, so it never counts as an empty base predicate.
fn is_member(pred: Pred) -> bool {
    pred.name.as_str() == "member" && pred.arity == 2
}

fn scalar_of(term: &Term) -> Option<Value> {
    match term {
        Term::Const(v) => Some(*v),
        _ => None,
    }
}

/// True when `t` contains an arithmetic compound anywhere.
fn has_arith(t: &Term) -> bool {
    match t {
        Term::Compound(f, args) => {
            (args.len() == 2 && matches!(f.as_str(), "+" | "-" | "*" | "/" | "mod"))
                || args.iter().any(has_arith)
        }
        _ => false,
    }
}

/// Abstract state of one rule variable during a body walk.
#[derive(Clone, Debug)]
struct VarAbs {
    ty: AbsType,
    /// Constant set including narrowing from predicate arguments.
    consts: ConstSet,
    /// Constant set from builtins only (predicate atoms treated as ⊤):
    /// when this alone is empty the contradiction is syntactic and
    /// LDL108's territory, not LDL203's.
    bltn_consts: ConstSet,
    distinct: f64,
    /// Where the current `consts` narrowing came from (capped).
    provenance: Vec<String>,
    /// Some narrowing step involved an order comparison.
    cmp_involved: bool,
}

impl VarAbs {
    fn top() -> VarAbs {
        VarAbs {
            ty: AbsType::Top,
            consts: ConstSet::Top,
            bltn_consts: ConstSet::Top,
            distinct: f64::INFINITY,
            provenance: Vec::new(),
            cmp_involved: false,
        }
    }

    fn note(&mut self, s: String) {
        if self.provenance.len() < 3 {
            self.provenance.push(s);
        }
    }
}

/// Result of abstractly evaluating one rule body + head.
struct RuleEval {
    dead: Option<DeadReason>,
    card_hi: f64,
    /// Head argument abstractions (empty when dead).
    head: Vec<ArgAbs>,
    /// True for head arguments that are grouping terms (`<X>`).
    grouped: Vec<bool>,
}

struct Interp {
    env: BTreeMap<Pred, PredAbs>,
    /// Predicates whose summaries are not yet final (current clique);
    /// empty-atom deadness must not be concluded from them mid-round.
    provisional: BTreeSet<Pred>,
}

impl Interp {
    fn pred_abs(&self, pred: Pred) -> PredAbs {
        self.env
            .get(&pred)
            .cloned()
            .unwrap_or_else(|| PredAbs::empty(pred.arity))
    }

    /// Narrows `var` by the abstract value of a predicate argument (a
    /// use site). Returns a dead reason when the meet is empty.
    fn narrow_by_arg(
        &self,
        vars: &mut BTreeMap<Symbol, VarAbs>,
        v: Symbol,
        arg: &ArgAbs,
        lit: &Literal,
    ) -> Option<DeadReason> {
        let entry = vars.entry(v).or_insert_with(VarAbs::top);
        match entry.ty.meet(arg.ty) {
            Some(ty) => entry.ty = ty,
            None => {
                return Some(DeadReason::TypeClash {
                    lit: lit.to_string(),
                    span: lit.span(),
                    notes: vec![
                        format!("{v} is {} here but {} where it was bound", arg.ty, entry.ty),
                        format!("{v} bound earlier: {}", entry.provenance.join("; ")),
                    ],
                });
            }
        }
        let met = entry.consts.meet(&arg.consts);
        if met.is_empty_fin() && !entry.consts.is_empty_fin() {
            return Some(DeadReason::FalseConst {
                lit: lit.to_string(),
                span: lit.span(),
                notes: vec![
                    format!(
                        "{v} ∈ {} here, but {v} ∈ {} from earlier literals",
                        arg.consts.render(),
                        entry.consts.render()
                    ),
                    format!("{v} bound earlier: {}", entry.provenance.join("; ")),
                ],
            });
        }
        entry.consts = met;
        entry.distinct = entry.distinct.min(arg.distinct);
        entry.note(format!("from `{lit}` at {}", lit.span()));
        None
    }

    /// Evaluates all scalar values an arithmetic (or plain) term can
    /// take, given the current variable constant sets. `None` = ⊤.
    fn eval_term_consts(
        &self,
        t: &Term,
        vars: &BTreeMap<Symbol, VarAbs>,
    ) -> Option<BTreeSet<Value>> {
        match t {
            Term::Const(v) => Some(std::iter::once(*v).collect()),
            Term::Var(v) => match vars.get(v).map(|a| &a.consts) {
                Some(ConstSet::Fin(s)) => Some(s.clone()),
                _ => None,
            },
            Term::Compound(f, args)
                if args.len() == 2 && matches!(f.as_str(), "+" | "-" | "*" | "/" | "mod") =>
            {
                let l = self.eval_term_consts(&args[0], vars)?;
                let r = self.eval_term_consts(&args[1], vars)?;
                if l.len() * r.len() > CONST_LIMIT * CONST_LIMIT {
                    return None;
                }
                let mut out = BTreeSet::new();
                for a in &l {
                    for b in &r {
                        let (Value::Int(a), Value::Int(b)) = (a, b) else {
                            return None;
                        };
                        let v = match f.as_str() {
                            "+" => a.checked_add(*b),
                            "-" => a.checked_sub(*b),
                            "*" => a.checked_mul(*b),
                            "/" => (*b != 0).then(|| a / b),
                            _ => (*b != 0).then(|| a.rem_euclid(*b)),
                        };
                        out.insert(Value::Int(v?));
                    }
                }
                Some(out)
            }
            Term::Compound(..) => None,
        }
    }

    /// One abstract pass over `rule`: walks the body left to right,
    /// narrowing variable abstractions, detecting provably false
    /// literals, and producing the head contribution.
    fn eval_rule(&self, rule: &Rule) -> RuleEval {
        let mut vars: BTreeMap<Symbol, VarAbs> = BTreeMap::new();
        let mut card_hi = 1.0_f64;
        let mut dead: Option<DeadReason> = None;

        'body: for lit in &rule.body {
            match lit {
                Literal::Atom(a) if !a.negated => {
                    if is_member(a.pred) {
                        // Virtual set predicate: `member(X, [v1, ...])`
                        // with a ground scalar list narrows X.
                        if let (Term::Var(v), Some((items, None))) =
                            (&a.args[0], a.args[1].as_list())
                        {
                            let scalars: Option<BTreeSet<Value>> =
                                items.iter().map(|t| scalar_of(t)).collect();
                            if let Some(s) = scalars {
                                let set = ConstSet::Fin(s.clone());
                                let arg = ArgAbs {
                                    ty: AbsType::Top,
                                    consts: set,
                                    distinct: s.len() as f64,
                                };
                                if let Some(r) = self.narrow_by_arg(&mut vars, *v, &arg, lit) {
                                    dead = Some(r);
                                    break 'body;
                                }
                            }
                        }
                        continue;
                    }
                    let pa = self.pred_abs(a.pred);
                    if pa.card_hi == 0.0 && !self.provisional.contains(&a.pred) {
                        dead = Some(DeadReason::EmptyAtom {
                            atom: a.to_string(),
                            pred: a.pred,
                        });
                        break 'body;
                    }
                    card_hi *= pa.card_hi;
                    for (i, t) in a.args.iter().enumerate() {
                        let arg = &pa.args[i];
                        match t {
                            Term::Var(v) => {
                                if let Some(r) = self.narrow_by_arg(&mut vars, *v, arg, lit) {
                                    dead = Some(r);
                                    break 'body;
                                }
                            }
                            Term::Const(c) => {
                                if self.provisional.contains(&a.pred) {
                                    continue;
                                }
                                if arg.ty.meet(AbsType::of_value(c)).is_none() {
                                    dead = Some(DeadReason::TypeClash {
                                        lit: lit.to_string(),
                                        span: lit.span(),
                                        notes: vec![format!(
                                            "argument {} of {} only holds {} values, \
                                             but `{c}` is {}",
                                            i + 1,
                                            a.pred,
                                            arg.ty,
                                            AbsType::of_value(c)
                                        )],
                                    });
                                    break 'body;
                                }
                                if let ConstSet::Fin(s) = &arg.consts {
                                    if !s.contains(c) {
                                        dead = Some(DeadReason::FalseConst {
                                            lit: lit.to_string(),
                                            span: lit.span(),
                                            notes: vec![format!(
                                                "argument {} of {} only takes values in {}, \
                                                 which excludes `{c}`",
                                                i + 1,
                                                a.pred,
                                                arg.consts.render()
                                            )],
                                        });
                                        break 'body;
                                    }
                                }
                            }
                            Term::Compound(..) => {
                                // A complex pattern cannot match a
                                // position that provably holds scalars
                                // only.
                                if !self.provisional.contains(&a.pred)
                                    && matches!(&arg.consts, ConstSet::Fin(s) if !s.is_empty())
                                    && !has_arith(t)
                                {
                                    dead = Some(DeadReason::FalseConst {
                                        lit: lit.to_string(),
                                        span: lit.span(),
                                        notes: vec![format!(
                                            "argument {} of {} only takes scalar values in {}, \
                                             which no complex term matches",
                                            i + 1,
                                            a.pred,
                                            arg.consts.render()
                                        )],
                                    });
                                    break 'body;
                                }
                                for v in t.vars() {
                                    vars.entry(v).or_insert_with(VarAbs::top);
                                }
                            }
                        }
                    }
                }
                Literal::Atom(_) => {
                    // Negation filters; it binds nothing and can only
                    // shrink the result.
                }
                Literal::Builtin(b) => {
                    if let Some(r) = self.eval_builtin(b, lit, &mut vars) {
                        dead = Some(r);
                        break 'body;
                    }
                }
            }
        }

        if dead.is_some() {
            return RuleEval {
                dead,
                card_hi: 0.0,
                head: Vec::new(),
                grouped: Vec::new(),
            };
        }

        // Head contribution.
        let mut head = Vec::with_capacity(rule.head.args.len());
        let mut grouped = Vec::with_capacity(rule.head.args.len());
        let mut dedup_cap = 1.0_f64;
        for t in &rule.head.args {
            let is_group = t.as_group().is_some();
            grouped.push(is_group);
            let arg = if is_group {
                ArgAbs {
                    ty: AbsType::Comp,
                    consts: ConstSet::Top,
                    distinct: f64::INFINITY,
                }
            } else {
                match t {
                    Term::Const(c) => ArgAbs {
                        ty: AbsType::of_value(c),
                        consts: ConstSet::singleton(*c),
                        distinct: 1.0,
                    },
                    Term::Var(v) => {
                        let va = vars.get(v).cloned().unwrap_or_else(VarAbs::top);
                        ArgAbs {
                            ty: va.ty,
                            consts: va.consts,
                            distinct: va.distinct,
                        }
                    }
                    Term::Compound(..) => {
                        let mut d = 1.0_f64;
                        for v in t.vars() {
                            d *= vars.get(&v).map(|a| a.distinct).unwrap_or(f64::INFINITY);
                        }
                        ArgAbs {
                            ty: AbsType::Comp,
                            consts: ConstSet::Top,
                            distinct: d,
                        }
                    }
                }
            };
            if !is_group {
                dedup_cap *= arg.distinct;
            }
            head.push(arg);
        }
        // A rule derives at most one tuple per distinct head-value
        // combination (grouping heads emit one row per key combination,
        // so grouped arguments are excluded from the product).
        card_hi = card_hi.min(dedup_cap);
        RuleEval {
            dead: None,
            card_hi,
            head,
            grouped,
        }
    }

    /// Abstract evaluation of one builtin; returns a dead reason when
    /// the literal is provably false.
    fn eval_builtin(
        &self,
        b: &ldl_core::BuiltinPred,
        lit: &Literal,
        vars: &mut BTreeMap<Symbol, VarAbs>,
    ) -> Option<DeadReason> {
        let span = lit.span();
        // `syntactic`: the contradiction already follows with every
        // predicate-atom and comparison contribution replaced by ⊤ — it
        // is LDL108's (pure equality chain), and stays silent here.
        let false_for = |vars: &BTreeMap<Symbol, VarAbs>, involved: &[Symbol], syntactic: bool| {
            if syntactic {
                DeadReason::FalseSyntactic {
                    lit: lit.to_string(),
                    span,
                }
            } else {
                let notes = involved
                    .iter()
                    .filter_map(|v| {
                        vars.get(v).map(|a| {
                            format!("{v} ∈ {} ({})", a.consts.render(), a.provenance.join("; "))
                        })
                    })
                    .collect();
                DeadReason::FalseConst {
                    lit: lit.to_string(),
                    span,
                    notes,
                }
            }
        };
        match b.op {
            CmpOp::Eq => {
                match (&b.lhs, &b.rhs) {
                    (Term::Var(v), t) | (t, Term::Var(v)) if !t.is_var() => {
                        let vals = self.eval_term_consts(t, vars);
                        let is_arith = has_arith(t);
                        let entry = vars.entry(*v).or_insert_with(VarAbs::top);
                        let tty = match (&vals, t) {
                            (_, Term::Const(c)) => AbsType::of_value(c),
                            _ if is_arith => AbsType::Int,
                            (_, Term::Compound(..)) => AbsType::Comp,
                            _ => AbsType::Top,
                        };
                        match entry.ty.meet(tty) {
                            Some(ty) => entry.ty = ty,
                            None => {
                                let prov = entry.provenance.join("; ");
                                let ety = entry.ty;
                                return Some(DeadReason::TypeClash {
                                    lit: lit.to_string(),
                                    span,
                                    notes: vec![
                                        format!("`{t}` is {tty} but {v} is {ety}"),
                                        format!("{v} bound earlier: {prov}"),
                                    ],
                                });
                            }
                        }
                        if let Some(vs) = vals {
                            let set = ConstSet::Fin(vs);
                            let met = entry.consts.meet(&set);
                            if met.is_empty_fin() && !entry.consts.is_empty_fin() {
                                let syn = entry.bltn_consts.meet(&set).is_empty_fin();
                                let involved = [*v];
                                return Some(false_for(vars, &involved, syn));
                            }
                            entry.consts = met;
                            entry.bltn_consts = entry.bltn_consts.meet(&set);
                            if let ConstSet::Fin(s) = &entry.consts {
                                entry.distinct = entry.distinct.min(s.len() as f64);
                            }
                            entry.note(format!("from `{b}` at {span}"));
                        } else if is_arith {
                            // Forward arithmetic with unbounded inputs:
                            // the result stays an unknown Int.
                            entry.consts = ConstSet::Top;
                        } else {
                            for w in t.vars() {
                                vars.entry(w).or_insert_with(VarAbs::top);
                            }
                        }
                    }
                    (Term::Var(a), Term::Var(c)) => {
                        let aa = vars.get(a).cloned().unwrap_or_else(VarAbs::top);
                        let cc = vars.get(c).cloned().unwrap_or_else(VarAbs::top);
                        let ty = match aa.ty.meet(cc.ty) {
                            Some(ty) => ty,
                            None => {
                                return Some(DeadReason::TypeClash {
                                    lit: lit.to_string(),
                                    span,
                                    notes: vec![
                                        format!("{a} is {} but {c} is {}", aa.ty, cc.ty),
                                        format!("{a}: {}", aa.provenance.join("; ")),
                                        format!("{c}: {}", cc.provenance.join("; ")),
                                    ],
                                });
                            }
                        };
                        let met = aa.consts.meet(&cc.consts);
                        if met.is_empty_fin()
                            && !aa.consts.is_empty_fin()
                            && !cc.consts.is_empty_fin()
                        {
                            let syn = aa.bltn_consts.meet(&cc.bltn_consts).is_empty_fin();
                            let involved = [*a, *c];
                            return Some(false_for(vars, &involved, syn));
                        }
                        let bltn = aa.bltn_consts.meet(&cc.bltn_consts);
                        let distinct = aa.distinct.min(cc.distinct);
                        let cmp = aa.cmp_involved || cc.cmp_involved;
                        for (v, other) in [(*a, &cc), (*c, &aa)] {
                            let entry = vars.entry(v).or_insert_with(VarAbs::top);
                            entry.ty = ty;
                            entry.consts = met.clone();
                            entry.bltn_consts = bltn.clone();
                            entry.distinct = distinct;
                            entry.cmp_involved = cmp;
                            if !other.provenance.is_empty() {
                                entry.note(format!("unified with the other side at {span}"));
                            }
                        }
                    }
                    (l, r) => {
                        // Ground = ground (or complex patterns): only
                        // the arith-free structural case is decidable.
                        if l.is_ground()
                            && r.is_ground()
                            && !has_arith(l)
                            && !has_arith(r)
                            && l != r
                        {
                            return Some(DeadReason::FalseSyntactic {
                                lit: lit.to_string(),
                                span,
                            });
                        }
                    }
                }
            }
            CmpOp::Ne => {
                if b.lhs == b.rhs {
                    return Some(DeadReason::FalseSyntactic {
                        lit: lit.to_string(),
                        span,
                    });
                }
                if let (Term::Var(v), t) | (t, Term::Var(v)) = (&b.lhs, &b.rhs) {
                    if let Some(c) = scalar_of(t) {
                        if let Some(entry) = vars.get_mut(v) {
                            if let ConstSet::Fin(s) = &mut entry.consts {
                                if s.len() == 1 && s.contains(&c) {
                                    let syn = matches!(
                                        &entry.bltn_consts,
                                        ConstSet::Fin(b) if b.len() == 1 && b.contains(&c)
                                    );
                                    let involved = [*v];
                                    return Some(false_for(vars, &involved, syn));
                                }
                                s.remove(&c);
                            }
                            if let ConstSet::Fin(s) = &mut entry.bltn_consts {
                                s.remove(&c);
                            }
                        }
                    }
                }
            }
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let sat = |op: CmpOp, a: &Value, b: &Value| -> bool {
                    match (a, b) {
                        (Value::Int(x), Value::Int(y)) => match op {
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                            _ => true,
                        },
                        // Order over symbols is runtime-defined
                        // (lenient select drops, strict errors): never
                        // conclude anything.
                        _ => true,
                    }
                };
                let lvals = self.eval_term_consts(&b.lhs, vars);
                let rvals = self.eval_term_consts(&b.rhs, vars);
                if let (Some(ls), Some(rs)) = (&lvals, &rvals) {
                    if !ls.is_empty() && !rs.is_empty() {
                        let lkeep: BTreeSet<Value> = ls
                            .iter()
                            .filter(|a| rs.iter().any(|b2| sat(b.op, a, b2)))
                            .copied()
                            .collect();
                        let rkeep: BTreeSet<Value> = rs
                            .iter()
                            .filter(|b2| ls.iter().any(|a| sat(b.op, a, b2)))
                            .copied()
                            .collect();
                        if lkeep.is_empty() || rkeep.is_empty() {
                            let mut involved = Vec::new();
                            involved.extend(b.lhs.vars());
                            involved.extend(b.rhs.vars());
                            return Some(false_for(vars, &involved, false));
                        }
                        for (side, keep) in [(&b.lhs, lkeep), (&b.rhs, rkeep)] {
                            if let Term::Var(v) = side {
                                if let Some(entry) = vars.get_mut(v) {
                                    entry.consts = ConstSet::Fin(keep.clone());
                                    entry.distinct = entry.distinct.min(keep.len() as f64);
                                    entry.cmp_involved = true;
                                    entry.note(format!("narrowed by `{b}` at {span}"));
                                }
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

/// The value-flow cardinality bound for one recursive clique: for each
/// (pred, position) node, resolve the set of outside sources whose
/// values can flow there; an arithmetic generator fed from inside the
/// clique makes the node unbounded (and is the LDL204 witness when no
/// comparison or non-clique atom bounds the generated variable).
struct FlowBound {
    /// Per-node distinct-value upper bound.
    distinct: BTreeMap<(Pred, usize), f64>,
    /// (rule index, builtin span, notes) for unbounded generators with
    /// no bounding filter.
    unbounded_witnesses: Vec<(usize, Span, Vec<String>)>,
}

fn clique_flow_bound(
    program: &Program,
    clique: &BTreeSet<Pred>,
    env: &BTreeMap<Pred, PredAbs>,
) -> FlowBound {
    #[derive(Clone, Default, PartialEq)]
    struct Sources {
        outside: BTreeSet<(Pred, usize)>,
        consts: BTreeSet<Value>,
        /// Finite pseudo-sources (arith over outside-only inputs).
        extra: f64,
        inside: BTreeSet<(Pred, usize)>,
        unbounded: bool,
    }

    let mut nodes: BTreeMap<(Pred, usize), Sources> = BTreeMap::new();
    for p in clique {
        for i in 0..p.arity {
            nodes.insert((*p, i), Sources::default());
        }
    }
    let mut witnesses: Vec<(usize, Span, Vec<String>)> = Vec::new();

    for (ri, rule) in program.rules.iter().enumerate() {
        if !clique.contains(&rule.head.pred) {
            continue;
        }
        // Where can each variable of this rule get its values? Prefer
        // an outside source (already finite); otherwise an inside
        // (clique) position; otherwise an arithmetic binding.
        let mut outside_src: BTreeMap<Symbol, (Pred, usize)> = BTreeMap::new();
        let mut inside_src: BTreeMap<Symbol, (Pred, usize)> = BTreeMap::new();
        for lit in &rule.body {
            let Literal::Atom(a) = lit else { continue };
            if a.negated || is_member(a.pred) {
                continue;
            }
            for (i, t) in a.args.iter().enumerate() {
                for v in t.vars() {
                    if clique.contains(&a.pred) {
                        inside_src.entry(v).or_insert((a.pred, i));
                    } else {
                        outside_src.entry(v).or_insert((a.pred, i));
                    }
                }
            }
        }
        // Arithmetic bindings `V = expr` whose expression mentions a
        // clique-sourced variable are generators.
        let mut arith_bound: BTreeMap<Symbol, (&ldl_core::BuiltinPred, bool)> = BTreeMap::new();
        for lit in &rule.body {
            let Literal::Builtin(b) = lit else { continue };
            if b.op != CmpOp::Eq {
                continue;
            }
            if let (Term::Var(v), t) | (t, Term::Var(v)) = (&b.lhs, &b.rhs) {
                if has_arith(t) {
                    let from_inside = t
                        .vars()
                        .iter()
                        .any(|w| inside_src.contains_key(w) && !outside_src.contains_key(w));
                    arith_bound.entry(*v).or_insert((b, from_inside));
                }
            }
        }
        // Does any comparison (or positive non-clique atom) bound `v`?
        let bounded_elsewhere = |v: Symbol| -> bool {
            outside_src.contains_key(&v)
                || rule.body.iter().any(|lit| match lit {
                    Literal::Builtin(b) if b.op != CmpOp::Eq && b.op != CmpOp::Ne => {
                        b.vars().contains(&v)
                    }
                    _ => false,
                })
        };

        for (i, t) in rule.head.args.iter().enumerate() {
            let node = (rule.head.pred, i);
            let entry = nodes.get_mut(&node).expect("clique node");
            if t.as_group().is_some() {
                entry.unbounded = true;
                continue;
            }
            match t {
                Term::Const(c) => {
                    entry.consts.insert(*c);
                }
                _ => {
                    for v in t.vars() {
                        if let Some(src) = outside_src.get(&v) {
                            entry.outside.insert(*src);
                        } else if let Some((b, from_inside)) = arith_bound.get(&v) {
                            if *from_inside {
                                entry.unbounded = true;
                                if !bounded_elsewhere(v) {
                                    witnesses.push((
                                        ri,
                                        b.span,
                                        vec![
                                            format!("in rule: {rule}"),
                                            format!(
                                                "`{b}` computes new values of {v} from \
                                                 recursive argument values on every iteration"
                                            ),
                                            format!(
                                                "{v} flows into argument {} of {}, which feeds \
                                                 the recursion; no comparison or non-recursive \
                                                 literal bounds it",
                                                i + 1,
                                                rule.head.pred
                                            ),
                                        ],
                                    ));
                                }
                            } else {
                                // Finite: product of outside operand
                                // distincts.
                                let mut d = 1.0_f64;
                                for w in b.vars() {
                                    if w == v {
                                        continue;
                                    }
                                    d *= outside_src
                                        .get(&w)
                                        .and_then(|(p, j)| {
                                            env.get(p).map(|pa| pa.args[*j].distinct)
                                        })
                                        .unwrap_or(f64::INFINITY);
                                }
                                if d.is_finite() {
                                    entry.extra += d;
                                } else {
                                    entry.unbounded = true;
                                }
                            }
                        } else if let Some(src) = inside_src.get(&v) {
                            entry.inside.insert(*src);
                        } else {
                            // No positive source at all (head-only or
                            // negation-bound): unknown.
                            entry.unbounded = true;
                        }
                    }
                }
            }
        }
    }

    // Transitive closure over inside references.
    for _ in 0..nodes.len().max(1) {
        let snapshot = nodes.clone();
        let mut changed = false;
        for srcs in nodes.values_mut() {
            let inside: Vec<(Pred, usize)> = srcs.inside.iter().copied().collect();
            for node in inside {
                let Some(other) = snapshot.get(&node) else {
                    continue;
                };
                let before = srcs.clone();
                srcs.outside.extend(other.outside.iter().copied());
                srcs.consts.extend(other.consts.iter().copied());
                srcs.unbounded |= other.unbounded;
                srcs.extra = srcs.extra.max(other.extra);
                if *srcs != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let distinct = nodes
        .iter()
        .map(|(node, srcs)| {
            let d = if srcs.unbounded {
                f64::INFINITY
            } else {
                let outside: f64 = srcs
                    .outside
                    .iter()
                    .map(|(p, i)| {
                        env.get(p)
                            .map(|pa| pa.args[*i].distinct)
                            .unwrap_or(f64::INFINITY)
                    })
                    .sum();
                outside + srcs.consts.len() as f64 + srcs.extra
            };
            (*node, d)
        })
        .collect();
    FlowBound {
        distinct,
        unbounded_witnesses: witnesses,
    }
}

/// Runs the abstract interpreter over `program`, seeding base
/// predicates from `db` when supplied (the database is then treated as
/// the complete extensional world, exactly like the rest of the
/// analyzer treats the source text). Without a database, facts in the
/// program text play that role.
pub fn interpret(program: &Program, db: Option<&Database>) -> Analysis {
    let graph = DependencyGraph::build(program);
    let mut env: BTreeMap<Pred, PredAbs> = BTreeMap::new();
    let mut type_sources: BTreeMap<(Pred, usize), Vec<TypeSource>> = BTreeMap::new();

    // Seed every mentioned predicate from its extensional contents.
    let facts = program.facts_by_pred();
    let derived = program.derived_preds();
    for pred in program.all_preds() {
        if is_member(pred) {
            continue;
        }
        let mut pa = PredAbs::empty(pred.arity);
        let mut seen: std::collections::HashSet<&Atom> = std::collections::HashSet::new();
        let db_rel = db.and_then(|d| d.relation(pred));
        if let Some(rel) = db_rel {
            pa.card_lo = rel.len() as f64;
            pa.card_hi = rel.len() as f64;
            for row in rel.iter() {
                for (i, t) in row.0.iter().enumerate() {
                    join_ground_term(&mut pa.args[i], t);
                }
            }
            for (i, arg) in pa.args.iter_mut().enumerate() {
                if let ConstSet::Fin(s) = &arg.consts {
                    arg.distinct = s.len() as f64;
                } else {
                    arg.distinct = ldl_storage::Stats::measure(rel).distinct[i];
                }
            }
        }
        if let Some(atoms) = facts.get(&pred) {
            for a in atoms {
                if db_rel.is_none() && seen.insert(a) {
                    pa.card_lo += 1.0;
                    pa.card_hi += 1.0;
                }
                for (i, t) in a.args.iter().enumerate() {
                    if db_rel.is_none() {
                        join_ground_term(&mut pa.args[i], t);
                    }
                    if let Some(v) = scalar_of(t) {
                        type_sources.entry((pred, i)).or_default().push(TypeSource {
                            ty: AbsType::of_value(&v),
                            span: a.span,
                            what: format!("fact `{a}`"),
                        });
                    }
                }
            }
            if db_rel.is_none() {
                for arg in pa.args.iter_mut() {
                    if let ConstSet::Fin(s) = &arg.consts {
                        arg.distinct = s.len() as f64;
                    } else {
                        arg.distinct = pa.card_hi;
                    }
                }
            }
        }
        // Derived predicates get their rule contributions below; base
        // predicates are final here. A base predicate with no facts and
        // no stored relation is empty — the same "the source is the
        // world" stance LDL102 takes.
        env.insert(pred, pa);
    }

    // Group the derived predicates into cliques, bottom-up.
    let mut groups: Vec<BTreeSet<Pred>> = Vec::new();
    let mut seen_cliques: BTreeSet<usize> = BTreeSet::new();
    for p in graph.bottom_up_order() {
        if !derived.contains(p) {
            continue;
        }
        match graph.clique_id_of(*p) {
            Some(id)
                if graph
                    .clique_of(*p)
                    .map(|c| c.preds.len() > 1)
                    .unwrap_or(false)
                    || graph.is_recursive(*p) =>
            {
                if seen_cliques.insert(id) {
                    let c = graph.clique_of(*p).expect("clique");
                    groups.push(c.preds.iter().copied().collect());
                }
            }
            _ => {
                groups.push(std::iter::once(*p).collect());
            }
        }
    }

    let mut recursive: BTreeSet<Pred> = BTreeSet::new();
    let mut rule_infos: Vec<RuleInfo> = vec![RuleInfo { dead: None }; program.rules.len()];
    let mut unbounded: Vec<(usize, Span, Vec<String>)> = Vec::new();

    for group in &groups {
        let is_rec = group.iter().any(|p| graph.is_recursive(*p)) || group.len() > 1;
        if is_rec {
            recursive.extend(group.iter().copied());
        }

        // Cardinality/distinct bounds first: non-recursive predicates
        // get them from a single rule pass at the end; recursive ones
        // from the value-flow bound (the widening operator).
        let flow = is_rec.then(|| clique_flow_bound(program, group, &env));
        if let Some(flow) = &flow {
            unbounded.extend(flow.unbounded_witnesses.iter().cloned());
        }

        // Kleene rounds for types + constant sets (k-limited, so this
        // converges; MAX_ROUNDS widens any residue to ⊤).
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let interp = Interp {
                env: env.clone(),
                // Group members stay provisional for every round: their
                // cardinalities are assigned only after the fixpoint, so
                // emptiness/membership checks against them are
                // meaningless here. The final pass below re-judges each
                // rule on the settled environment.
                provisional: group.clone(),
            };
            let mut changed = false;
            for p in group {
                let seed = seed_of(&env, *p, program, db);
                let mut next = seed;
                for (_, rule) in program.rules_for(*p) {
                    let re = interp.eval_rule(rule);
                    if re.dead.is_some() {
                        continue;
                    }
                    for (i, arg) in re.head.iter().enumerate() {
                        next.args[i] = next.args[i].join(arg);
                    }
                    next.card_hi += re.card_hi;
                }
                let cur = env.get_mut(p).expect("derived pred seeded");
                for (i, arg) in next.args.iter().enumerate() {
                    let joined = cur.args[i].join(arg);
                    if joined != cur.args[i] {
                        cur.args[i] = joined;
                        changed = true;
                    }
                }
                if !is_rec && next.card_hi != cur.card_hi {
                    cur.card_hi = next.card_hi;
                    changed = true;
                }
            }
            if !changed || rounds >= MAX_ROUNDS {
                if rounds >= MAX_ROUNDS {
                    for p in group {
                        let cur = env.get_mut(p).expect("pred");
                        for arg in cur.args.iter_mut() {
                            arg.consts = ConstSet::Top;
                        }
                    }
                }
                break;
            }
        }

        // Recursive cardinalities: flow bound, tightened by the final
        // constant sets.
        if let Some(flow) = &flow {
            for p in group {
                let cur = env.get_mut(p).expect("pred");
                let mut hi = 1.0_f64;
                for (i, arg) in cur.args.iter_mut().enumerate() {
                    let mut d = flow
                        .distinct
                        .get(&(*p, i))
                        .copied()
                        .unwrap_or(f64::INFINITY);
                    if let ConstSet::Fin(s) = &arg.consts {
                        d = d.min(s.len() as f64);
                    }
                    arg.distinct = d;
                    hi *= d;
                }
                cur.card_hi = hi.max(cur.card_lo);
            }
        }

        // Final pass: pin per-rule deadness/cardinality on the settled
        // environment, and collect head type sources for LDL202.
        let interp = Interp {
            env: env.clone(),
            provisional: BTreeSet::new(),
        };
        for p in group {
            for (ri, rule) in program.rules_for(*p) {
                let re = interp.eval_rule(rule);
                for (i, arg) in re.head.iter().enumerate() {
                    if matches!(arg.ty, AbsType::Int | AbsType::Sym)
                        && !re.grouped.get(i).copied().unwrap_or(false)
                    {
                        type_sources.entry((*p, i)).or_default().push(TypeSource {
                            ty: arg.ty,
                            span: rule.head.span,
                            what: format!("rule `{rule}`"),
                        });
                    }
                }
                rule_infos[ri] = RuleInfo { dead: re.dead };
            }
        }

        // Emptiness: a derived predicate with no facts whose every rule
        // is dead derives nothing. Within a recursive clique a rule
        // whose only support is the clique itself also derives nothing;
        // compute the "possibly nonempty" least fixpoint.
        let mut nonempty: BTreeSet<Pred> = group
            .iter()
            .filter(|p| env.get(p).map(|pa| pa.card_lo > 0.0).unwrap_or(false))
            .copied()
            .collect();
        loop {
            let mut changed = false;
            for p in group {
                if nonempty.contains(p) {
                    continue;
                }
                let supported = program.rules_for(*p).into_iter().any(|(ri, rule)| {
                    rule_infos[ri].dead.is_none()
                        && rule.body.iter().all(|lit| match lit {
                            Literal::Atom(a) if !a.negated && !is_member(a.pred) => {
                                if group.contains(&a.pred) {
                                    nonempty.contains(&a.pred)
                                } else {
                                    env.get(&a.pred).map(|pa| pa.card_hi > 0.0).unwrap_or(true)
                                }
                            }
                            _ => true,
                        })
                });
                if supported {
                    nonempty.insert(*p);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for p in group {
            if !nonempty.contains(p) {
                let cur = env.get_mut(p).expect("pred");
                cur.card_hi = 0.0;
                for arg in cur.args.iter_mut() {
                    *arg = ArgAbs::bot();
                }
            }
        }
    }

    Analysis {
        preds: env,
        recursive,
        rules: rule_infos,
        type_sources,
        unbounded,
    }
}

/// The extensional seed of `pred` (facts / stored relation only).
fn seed_of(
    env: &BTreeMap<Pred, PredAbs>,
    pred: Pred,
    _program: &Program,
    _db: Option<&Database>,
) -> PredAbs {
    // `interpret` seeded `env[pred]` with the extensional contribution
    // before any rule ran; rebuild a fresh copy with the same card_lo
    // (facts) but no rule contributions. Since rule contributions only
    // ever join *into* env, the original seed is card_lo with ⊥ args
    // joined with facts — we reconstruct conservatively by keeping
    // card_lo and resetting card_hi to it.
    let cur = env
        .get(&pred)
        .cloned()
        .unwrap_or_else(|| PredAbs::empty(pred.arity));
    PredAbs {
        card_lo: cur.card_lo,
        card_hi: cur.card_lo,
        args: vec![ArgAbs::bot(); pred.arity],
    }
}

fn join_ground_term(arg: &mut ArgAbs, t: &Term) {
    match t {
        Term::Const(v) => {
            arg.ty = arg.ty.join(AbsType::of_value(v));
            arg.consts = arg.consts.join(&ConstSet::singleton(*v));
        }
        Term::Compound(..) => {
            arg.ty = arg.ty.join(AbsType::Comp);
            arg.consts = ConstSet::Top;
        }
        Term::Var(_) => {
            arg.ty = AbsType::Top;
            arg.consts = ConstSet::Top;
        }
    }
}

/// Runs [`interpret`] and renders the LDL2xx diagnostics.
pub fn check(program: &Program, db: Option<&Database>) -> Report {
    let analysis = interpret(program, db);
    let mut report = Report::new();
    let derived = program.derived_preds();

    // LDL201 — always-empty derived predicate, with a witness chain
    // explaining why each rule derives nothing.
    for pred in &derived {
        let Some(pa) = analysis.preds.get(pred) else {
            continue;
        };
        if pa.card_hi != 0.0 {
            continue;
        }
        let rules = program.rules_for(*pred);
        let span = rules
            .first()
            .map(|(_, r)| r.head.span)
            .unwrap_or(Span::NONE);
        let mut d = Diagnostic {
            code: "LDL201",
            severity: Severity::Warning,
            message: format!("derived predicate {pred} is always empty"),
            span,
            notes: Vec::new(),
        };
        for (ri, rule) in rules.iter().take(4) {
            let reason = match &analysis.rules[*ri].dead {
                Some(r) => r.describe(),
                None => "every body literal depends on the empty recursion itself".to_string(),
            };
            d.notes.push(format!("rule at {}: {reason}", rule.span));
            if let Some(DeadReason::EmptyAtom { pred: inner, .. }) = &analysis.rules[*ri].dead {
                if !derived.contains(inner) {
                    d.notes
                        .push(format!("{inner} has no facts and no rules (see LDL102)"));
                }
            }
        }
        report.push(d);
    }

    // LDL202 — one argument position derived with two disjoint scalar
    // types across rules/facts.
    for ((pred, i), sources) in &analysis.type_sources {
        let has_int = sources.iter().any(|s| s.ty == AbsType::Int);
        let has_sym = sources.iter().any(|s| s.ty == AbsType::Sym);
        if !(has_int && has_sym) {
            continue;
        }
        let last = sources.last().expect("nonempty");
        let mut d = Diagnostic {
            code: "LDL202",
            severity: Severity::Warning,
            message: format!(
                "argument {} of {pred} is Int in some derivations and Sym in others",
                i + 1
            ),
            span: last.span,
            notes: Vec::new(),
        };
        for s in sources.iter().take(4) {
            d.notes
                .push(format!("{} at {} makes it {}", s.what, s.span, s.ty));
        }
        d.notes
            .push("comparisons and joins on this argument will silently miss rows".to_string());
        report.push(d);
    }

    // LDL203 / LDL202-at-use — always-false body literals found by
    // constant/interval evaluation (the purely syntactic cases are
    // LDL108's and stay silent here), and use-site type clashes.
    for (ri, info) in analysis.rules.iter().enumerate() {
        let rule = &program.rules[ri];
        match &info.dead {
            Some(DeadReason::FalseConst { lit, span, notes }) => {
                let mut d = Diagnostic {
                    code: "LDL203",
                    severity: Severity::Warning,
                    message: format!(
                        "literal `{lit}` can never hold: constant evaluation proves it false"
                    ),
                    span: *span,
                    notes: vec![format!("in rule: {rule}")],
                };
                d.notes.extend(notes.iter().cloned());
                report.push(d);
            }
            Some(DeadReason::TypeClash { lit, span, notes }) => {
                let mut d = Diagnostic {
                    code: "LDL202",
                    severity: Severity::Warning,
                    message: format!("literal `{lit}` compares values of disjoint types"),
                    span: *span,
                    notes: vec![format!("in rule: {rule}")],
                };
                d.notes.extend(notes.iter().cloned());
                report.push(d);
            }
            _ => {}
        }
    }

    // LDL204 — provably-unbounded arithmetic recursion: an arithmetic
    // generator inside a recursive cycle, nothing bounding it, and the
    // clique not provably empty.
    for (ri, span, notes) in &analysis.unbounded {
        let head = program.rules[*ri].head.pred;
        let empty = analysis
            .preds
            .get(&head)
            .map(|pa| pa.card_hi == 0.0)
            .unwrap_or(false);
        if empty {
            continue;
        }
        let mut d = Diagnostic {
            code: "LDL204",
            severity: Severity::Warning,
            message: format!(
                "recursive clique of {head} grows an argument arithmetically without bound: \
                 the fixpoint cannot terminate"
            ),
            span: *span,
            notes: Vec::new(),
        };
        d.notes.extend(notes.iter().cloned());
        report.push(d);
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    fn run(text: &str) -> Report {
        check(&parse_program(text).unwrap(), None).finish()
    }

    fn analyze(text: &str) -> Analysis {
        interpret(&parse_program(text).unwrap(), None)
    }

    #[test]
    fn base_seeding_and_projection() {
        let a = analyze("p(X) <- e(X, Y), q(Y).\ne(1, 2). e(3, 4). q(2).");
        let e = a.pred(Pred::new("e", 2)).unwrap();
        assert_eq!(e.card_lo, 2.0);
        assert_eq!(e.card_hi, 2.0);
        assert_eq!(e.args[0].ty, AbsType::Int);
        assert_eq!(
            e.args[0].consts,
            ConstSet::Fin([Value::Int(1), Value::Int(3)].into())
        );
        let p = a.pred(Pred::new("p", 1)).unwrap();
        assert!(p.card_hi >= 1.0 && p.card_hi.is_finite(), "{p:?}");
        assert_eq!(p.args[0].ty, AbsType::Int);
    }

    #[test]
    fn recursive_clique_gets_finite_flow_bound() {
        let a = analyze(
            "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n\
             e(1, 2). e(2, 3). e(3, 4).",
        );
        let tc = a.pred(Pred::new("tc", 2)).unwrap();
        assert!(a.recursive.contains(&Pred::new("tc", 2)));
        // Each argument can only hold values flowing from e's columns:
        // distinct ≤ 3 each, cardinality ≤ 9.
        assert!(tc.args[0].distinct <= 3.0, "{tc:?}");
        assert!(tc.card_hi <= 9.0, "{tc:?}");
        assert!(
            tc.card_hi >= 6.0,
            "true tc size is 6; hi must bracket it: {tc:?}"
        );
    }

    #[test]
    fn arithmetic_recursion_is_unbounded_and_ldl204() {
        let r = run("up(X) <- base(X).\nup(Y) <- up(X), Y = X + 1.\nbase(1).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "LDL204")
            .expect("LDL204");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!((d.span.line, d.span.col), (2, 17));
        assert!(
            d.notes
                .iter()
                .any(|n| n.contains("computes new values of Y")),
            "{:?}",
            d.notes
        );
        // A bounding comparison suppresses the diagnostic (the bound is
        // still ∞, but termination is plausible).
        let ok = run("up(X) <- base(X).\nup(Y) <- up(X), Y = X + 1, Y < 100.\nbase(1).");
        assert!(!ok.diagnostics.iter().any(|d| d.code == "LDL204"), "{ok:?}");
    }

    #[test]
    fn always_empty_predicate_is_ldl201_with_witness_chain() {
        let r = run("p(X) <- q(X).\nr(X) <- p(X), s(X).\ns(1).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "LDL201" && d.message.contains("p/1"))
            .expect("LDL201 for p");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!((d.span.line, d.span.col), (1, 1));
        assert!(d.notes.iter().any(|n| n.contains("q/1")), "{:?}", d.notes);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == "LDL201" && d.message.contains("r/1")),
            "{r:?}"
        );
    }

    #[test]
    fn always_false_literal_via_constants_is_ldl203() {
        let r = run("p(X) <- q(X), X = 3.\nq(1). q(2).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "LDL203")
            .expect("LDL203");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!((d.span.line, d.span.col), (1, 15));
        assert!(
            d.notes.iter().any(|n| n.contains("{1, 2}")),
            "{:?}",
            d.notes
        );
        // The purely syntactic contradiction stays LDL108's: no LDL203.
        let syn = run("p(X) <- q(X), X = 1, X = 2.\nq(1).");
        assert!(
            !syn.diagnostics.iter().any(|d| d.code == "LDL203"),
            "{syn:?}"
        );
        // Interval evaluation through comparisons.
        let cmp = run("p(X) <- q(X), X > 5.\nq(1). q(2).");
        assert!(
            cmp.diagnostics.iter().any(|d| d.code == "LDL203"),
            "{cmp:?}"
        );
    }

    #[test]
    fn type_clash_across_rules_is_ldl202() {
        let r = run("p(X) <- a(X).\np(X) <- b(X).\na(1). b(tom).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "LDL202")
            .expect("LDL202");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("argument 1 of p/1"), "{}", d.message);
        assert!(d.notes.len() >= 2, "{:?}", d.notes);
        // Use-site clash: an Int-only argument compared to a Sym.
        let use_site = run("p(X) <- a(X), X = tom.\na(1). a(2).");
        assert!(
            use_site.diagnostics.iter().any(|d| d.code == "LDL202"),
            "{use_site:?}"
        );
    }

    #[test]
    fn member_narrows_and_is_not_a_relation() {
        let r = run("p(X) <- q(X), member(X, [5, 6]).\nq(1). q(2).");
        assert!(r.diagnostics.iter().any(|d| d.code == "LDL203"), "{r:?}");
        let ok = run("p(X) <- q(X), member(X, [1, 6]).\nq(1). q(2).");
        assert!(!ok.diagnostics.iter().any(|d| d.code == "LDL201"), "{ok:?}");
    }

    #[test]
    fn db_seeding_matches_relation_sizes() {
        use ldl_storage::{Database, Relation, Tuple};
        let program = parse_program("p(X) <- e(X, Y), Y > 1.").unwrap();
        let mut db = Database::new();
        let mut rel = Relation::new(2);
        for i in 0..10 {
            rel.insert(Tuple(vec![Term::int(i), Term::int(i + 1)]));
        }
        db.set_relation(Pred::new("e", 2), rel);
        let a = interpret(&program, Some(&db));
        let e = a.pred(Pred::new("e", 2)).unwrap();
        assert_eq!(e.card_lo, 10.0);
        assert_eq!(e.card_hi, 10.0);
        // 10 > CONST_LIMIT values: widened to ⊤ but distinct is exact.
        assert_eq!(e.args[0].consts, ConstSet::Top);
        assert_eq!(e.args[0].distinct, 10.0);
        let p = a.pred(Pred::new("p", 1)).unwrap();
        assert!(p.card_hi <= 10.0 && p.card_hi > 0.0, "{p:?}");
    }

    #[test]
    fn grouping_head_caps_by_key_distincts() {
        let a = analyze("s(X, <Y>) <- e(X, Y).\ne(1, 2). e(1, 3). e(2, 4).");
        let s = a.pred(Pred::new("s", 2)).unwrap();
        // One row per distinct key: at most 2 (keys 1 and 2).
        assert!(s.card_hi <= 2.0, "{s:?}");
    }
}
