//! Diagnostics: stable codes, severities, spans, and rendering.
//!
//! Every finding of the analyzer is a [`Diagnostic`] with a stable
//! `LDL`-prefixed code (`LDL0xx` = error, `LDL1xx`/`LDL2xx` = warning), a
//! human-readable message, the [`Span`] of the offending construct, and
//! optional notes. A [`Report`] collects the diagnostics of one analysis
//! run and renders them either as human-readable text with a source
//! excerpt or as line-delimited JSON (one object per line, hand-rolled —
//! the build is hermetic, no serde).

use ldl_core::Span;
use std::fmt;

/// Diagnostic severity. Errors make `Report::has_errors` true (and a
/// batch `ldl-shell --check` exit non-zero); warnings do not.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program (or query form) cannot execute correctly.
    Error,
    /// Suspicious but executable.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"LDL001"`. `LDL0xx` are errors, `LDL1xx`
    /// warnings; the mapping never changes once released.
    pub code: &'static str,
    /// Severity (fixed per code).
    pub severity: Severity,
    /// Primary message; names the offending variable/literal/predicate.
    pub message: String,
    /// Source location of the offending construct ([`Span::NONE`] for
    /// programmatically built programs).
    pub span: Span,
    /// Secondary notes: witnesses, cross-references, suggestions.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        debug_assert!(
            code.starts_with("LDL0"),
            "error codes are LDL0xx, got {code}"
        );
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        debug_assert!(
            code.starts_with("LDL1") || code.starts_with("LDL2"),
            "warning codes are LDL1xx/LDL2xx, got {code}"
        );
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Appends a note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// The diagnostic as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"code\":");
        json_string(&mut s, self.code);
        s.push_str(",\"severity\":");
        json_string(&mut s, &self.severity.to_string());
        s.push_str(",\"message\":");
        json_string(&mut s, &self.message);
        s.push_str(&format!(
            ",\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{}",
            self.span.line, self.span.col, self.span.end_line, self.span.end_col
        ));
        s.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_string(&mut s, n);
        }
        s.push_str("]}");
        s
    }
}

/// Escapes `v` as a JSON string (quotes included) onto `out`.
fn json_string(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The outcome of one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Diagnostics in source order (line, column, code).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a diagnostic (re-sorted on render/merge).
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Sorts diagnostics by source position, then code, then message, and
    /// drops exact duplicates — stable output for golden files.
    pub fn finish(mut self) -> Report {
        self.diagnostics.sort_by(|a, b| {
            (a.span.line, a.span.col, a.code, &a.message).cmp(&(
                b.span.line,
                b.span.col,
                b.code,
                &b.message,
            ))
        });
        self.diagnostics.dedup();
        self
    }

    /// True when any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Only the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Renders every diagnostic as line-delimited JSON (one object per
    /// line, no trailing newline).
    pub fn render_json(&self) -> String {
        self.diagnostics
            .iter()
            .map(Diagnostic::to_json)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Renders human-readable text. When `source` is given, each spanned
    /// diagnostic includes the offending source line with a caret
    /// underline; `origin` names the file (or `"<repl>"`).
    pub fn render_text(&self, source: Option<&str>, origin: &str) -> String {
        let lines: Vec<&str> = source.map(|s| s.lines().collect()).unwrap_or_default();
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            if !d.span.is_none() {
                out.push_str(&format!("  --> {origin}:{}\n", d.span));
                if let Some(text) = lines.get(d.span.line as usize - 1) {
                    let gutter = d.span.line.to_string();
                    out.push_str(&format!("{:>w$} | {text}\n", gutter, w = gutter.len()));
                    let width = if d.span.end_line == d.span.line && d.span.end_col > d.span.col {
                        (d.span.end_col - d.span.col) as usize
                    } else {
                        1
                    };
                    out.push_str(&format!(
                        "{:>w$} | {}{}\n",
                        "",
                        " ".repeat(d.span.col.saturating_sub(1) as usize),
                        "^".repeat(width.max(1)),
                        w = gutter.len()
                    ));
                }
            }
            for n in &d.notes {
                out.push_str(&format!("  = note: {n}\n"));
            }
        }
        let errors = self.errors().count();
        let warnings = self.diagnostics.len() - errors;
        out.push_str(&format!("{} error(s), {} warning(s)\n", errors, warnings));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::error("LDL001", Span::NONE, "say \"hi\"\nback\\slash");
        let j = d.to_json();
        assert!(j.contains(r#""message":"say \"hi\"\nback\\slash""#), "{j}");
        assert!(j.contains(r#""code":"LDL001""#));
        assert!(j.contains(r#""severity":"error""#));
    }

    #[test]
    fn report_sorts_and_dedups() {
        let mut r = Report::new();
        r.push(Diagnostic::warning("LDL104", Span::point(5, 1), "later"));
        r.push(Diagnostic::error("LDL001", Span::point(2, 3), "earlier"));
        r.push(Diagnostic::error("LDL001", Span::point(2, 3), "earlier"));
        let r = r.finish();
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.diagnostics[0].code, "LDL001");
        assert!(r.has_errors());
    }

    #[test]
    fn text_render_has_excerpt_and_caret() {
        let src = "a(1).\nbig(X) <- n(X), X > Y.\n";
        let mut r = Report::new();
        r.push(Diagnostic::error(
            "LDL001",
            Span::range(2, 17, 2, 22),
            "Y is unbound",
        ));
        let t = r.finish().render_text(Some(src), "test.ldl");
        assert!(t.contains("error[LDL001]: Y is unbound"), "{t}");
        assert!(t.contains("--> test.ldl:2:17"), "{t}");
        assert!(t.contains("big(X) <- n(X), X > Y."), "{t}");
        assert!(t.contains("^^^^^"), "{t}");
        assert!(t.contains("1 error(s), 0 warning(s)"), "{t}");
    }
}
