//! Per-query analysis: adornment feasibility (LDL003).
//!
//! A query form fixes the adornment of the queried predicate. If one of
//! its rules cannot satisfy effective computability under that adornment
//! — no body permutation works — the query is unsafe and the optimizer
//! would only discover it deep inside OPT as an infinite-cost plan.
//! Diagnosing it here yields a witness naming the variable and the
//! literal instead of a bare "no safe execution exists".
//!
//! Deeper predicates are *screened*, not rejected: the adornments that
//! reach them depend on the body orders the optimizer picks, so a
//! SIP-derived infeasibility is reported as an LDL110 warning (the
//! optimizer may still find a safe order through a different SIP).

use crate::bindability::{saturate, unbound_vars, var_list};
use crate::diag::{Diagnostic, Report};
use ldl_core::adorn::{adorn_program, GreedySip};
use ldl_core::depgraph::DependencyGraph;
use ldl_core::safety;
use ldl_core::{Program, Query};

/// Analyzes one query form against `program`.
pub fn check(
    program: &Program,
    graph: &DependencyGraph,
    query: &Query,
    assume_acyclic: bool,
) -> Report {
    let mut report = Report::new();
    let pred = query.pred();
    let ad = query.adornment();
    let qspan = query.goal.span;

    if !program.all_preds().contains(&pred) {
        report.push(
            Diagnostic::warning(
                "LDL102",
                qspan,
                format!("queried predicate {pred} is never defined; the query has no answers"),
            )
            .with_note("check the predicate name and arity"),
        );
        return report;
    }

    // The queried predicate's own rules run under exactly `ad`: an
    // infeasible rule is a definite error.
    for (_, rule) in program.rules_for(pred) {
        if safety::find_safe_order(rule, ad).is_some() {
            continue;
        }
        let b = saturate(rule, ad);
        let mut witnesses = Vec::new();
        for &li in &b.stuck {
            let lit = &rule.body[li];
            let vars = var_list(&unbound_vars(lit, &b.bound));
            witnesses.push(format!(
                "variable(s) {vars} are unbound when `{lit}` is reached, under any body order"
            ));
        }
        let free_head: Vec<_> = rule
            .head
            .vars()
            .into_iter()
            .filter(|v| !b.bound.contains(v))
            .collect();
        if !free_head.is_empty() {
            witnesses.push(format!(
                "head variable(s) {} stay unbound through the whole body: the answer \
                 set would be infinite",
                var_list(&free_head)
            ));
        }
        let mut d = Diagnostic::error(
            "LDL003",
            if qspan.is_none() { rule.span } else { qspan },
            format!("query form {pred}.{ad} is unsafe: {}", witnesses.join("; ")),
        )
        .with_note(format!("in rule: {rule}"));
        if !ad.is_all_bound() {
            d = d.with_note("a query form binding more arguments may be safe");
        }
        report.push(d);
    }
    if report.has_errors() {
        return report;
    }

    // Screen the rest of the adorned program (SIP-derived adornments).
    let adorned = adorn_program(program, pred, ad, &GreedySip);
    for ar in &adorned.rules {
        if ar.head.pred == pred && ar.head.adornment == ad {
            continue; // already checked exactly above
        }
        let rule = &program.rules[ar.rule_index];
        if safety::find_safe_order(rule, ar.head.adornment).is_some() {
            continue;
        }
        report.push(
            Diagnostic::warning(
                "LDL110",
                rule.span,
                format!(
                    "under query {query}, rule for {} is reached with binding pattern \
                     {} for which the default SIP finds no safe order",
                    ar.head.pred, ar.head
                ),
            )
            .with_note(format!("in rule: {rule}"))
            .with_note("the optimizer may still find a safe order through a different SIP"),
        );
    }

    // Termination screening for every clique entered by this query form.
    for clique in graph.cliques() {
        let entries = adorned
            .adorned_preds
            .iter()
            .filter(|ap| clique.preds.contains(&ap.pred))
            .collect::<Vec<_>>();
        for ap in entries {
            if let Err(reason) =
                safety::clique_terminates(program, clique, ap.adornment, true, assume_acyclic)
            {
                let span = clique
                    .recursive_rules
                    .first()
                    .map(|&ri| program.rules[ri].span)
                    .unwrap_or_default();
                report.push(
                    Diagnostic::warning(
                        "LDL111",
                        span,
                        format!(
                            "under query {query}, no termination proof for recursive \
                             clique entered as {ap}: {reason}"
                        ),
                    )
                    .with_note("evaluation bounds the fixpoint with a max-iterations guard"),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::{parse_program, parse_query};

    fn run(program: &str, query: &str) -> Report {
        let p = parse_program(program).unwrap();
        let g = DependencyGraph::build(&p);
        check(&p, &g, &parse_query(query).unwrap(), true).finish()
    }

    #[test]
    fn free_query_on_binding_dependent_rule_is_ldl003() {
        let r = run("p(X, Y) <- q(X).\nq(1).", "p(A, B)?");
        assert!(r.has_errors(), "{r:?}");
        let d = r.errors().next().unwrap();
        assert_eq!(d.code, "LDL003");
        assert!(d.message.contains("unsafe"), "{}", d.message);
        assert!(d.message.contains('Y'), "{}", d.message);
    }

    #[test]
    fn bound_query_on_same_rule_is_clean() {
        let r = run("p(X, Y) <- q(X).\nq(1).", "p(A, 5)?");
        assert!(!r.has_errors(), "{r:?}");
    }

    #[test]
    fn paper_8_3_query_forms() {
        let prog = "p(X, Y, Z) <- X = 3, Z = X + Y.";
        let free = run(prog, "p(A, B, C)?");
        assert!(free.has_errors(), "{free:?}");
        assert!(free.errors().next().unwrap().message.contains("+(X, Y)"));
        let bound_y = run(prog, "p(A, 2, C)?");
        assert!(!bound_y.has_errors(), "{bound_y:?}");
    }

    #[test]
    fn invertible_arith_query_form_is_clean() {
        // The evaluator solves the single unknown in X = 5 + W, so the
        // analyzer must accept the all-free form too.
        let r = run("p(X, W) <- X = 3, X = 5 + W.", "p(A, B)?");
        assert!(!r.has_errors(), "{r:?}");
    }

    #[test]
    fn non_invertible_arith_free_form_is_ldl003() {
        // Division never inverts: the free form is rejected exactly
        // where the evaluator would error, the W-bound form accepted.
        let prog = "p(X, W) <- X = 8, X = W / 2.";
        let free = run(prog, "p(A, B)?");
        assert!(free.has_errors(), "{free:?}");
        assert_eq!(free.errors().next().unwrap().code, "LDL003");
        let bound = run(prog, "p(A, 16)?");
        assert!(!bound.has_errors(), "{bound:?}");
    }

    #[test]
    fn undefined_query_pred_is_ldl102() {
        let r = run("q(1).", "nosuch(X)?");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "LDL102");
    }

    #[test]
    fn list_recursion_is_error_free_only_when_bound() {
        let prog = "len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.";
        // All-free form: H is never bound — an infinite answer set.
        let r = run(prog, "len(L, N)?");
        assert!(r.has_errors(), "{r:?}");
        assert_eq!(r.errors().next().unwrap().code, "LDL003");
        // Bound list: safe and provably terminating — fully clean.
        let ok = run(prog, "len([1, 2], N)?");
        assert!(ok.diagnostics.is_empty(), "{ok:?}");
    }

    #[test]
    fn nonterminating_arith_clique_warns_ldl111() {
        let prog = "cnt(X) <- zero(X).\ncnt(Y) <- cnt(X), Y = X + 1.\nzero(0).";
        let r = run(prog, "cnt(C)?");
        assert!(r.diagnostics.iter().any(|d| d.code == "LDL111"), "{r:?}");
        assert!(!r.has_errors(), "{r:?}");
    }
}
