//! Style and plausibility lints (LDL104–LDL109). All warnings: each
//! flags a construct that executes but almost never means what was
//! written.

use crate::diag::{Diagnostic, Report};
use ldl_core::{CmpOp, Literal, Program, Rule, Symbol, Term};
use std::collections::BTreeMap;

/// Runs every lint over `program`.
pub fn check(program: &Program) -> Report {
    let mut report = Report::new();
    for rule in &program.rules {
        singleton_vars(rule, &mut report);
        negation_only_vars(rule, &mut report);
        duplicate_literals(rule, &mut report);
        contradictory_body(rule, &mut report);
        cartesian_product(rule, &mut report);
    }
    duplicate_rules(program, &mut report);
    report
}

/// LDL104 — a variable occurring exactly once in a rule joins nothing
/// and constrains nothing; usually a typo. `_`-prefixed names opt out.
fn singleton_vars(rule: &Rule, report: &mut Report) {
    let mut count: BTreeMap<Symbol, usize> = BTreeMap::new();
    let mut occurrences = rule.head.vars();
    for lit in &rule.body {
        occurrences.extend(lit.vars());
    }
    for v in &occurrences {
        *count.entry(*v).or_default() += 1;
    }
    for (v, n) in count {
        if n != 1 || v.as_str().starts_with('_') {
            continue;
        }
        // Point at the literal (or head) containing the only occurrence.
        let span = rule
            .body
            .iter()
            .find(|l| l.vars().contains(&v))
            .map(|l| l.span())
            .unwrap_or(rule.head.span);
        report.push(
            Diagnostic::warning(
                "LDL104",
                span,
                format!("variable {v} occurs only once in this rule"),
            )
            .with_note(format!("in rule: {rule}"))
            .with_note(format!(
                "rename it {}{v} if the single occurrence is intended",
                '_'
            )),
        );
    }
}

/// LDL105 — a variable shared between the head and *only* negated body
/// literals: the negation checks it, nothing generates it, so the rule
/// depends entirely on the query form supplying a value.
fn negation_only_vars(rule: &Rule, report: &mut Report) {
    let head_vars = rule.head.vars();
    for v in &head_vars {
        let mut in_negated = None;
        let mut in_positive = false;
        for lit in &rule.body {
            let has = lit.vars().contains(v);
            if !has {
                continue;
            }
            match lit {
                Literal::Atom(a) if a.negated => in_negated = Some(lit.span()),
                _ => in_positive = true,
            }
        }
        if let (Some(span), false) = (in_negated, in_positive) {
            report.push(
                Diagnostic::warning(
                    "LDL105",
                    span,
                    format!(
                        "variable {v} appears only in negated literals (and the head); \
                         no body literal can bind it"
                    ),
                )
                .with_note(format!("in rule: {rule}")),
            );
        }
    }
}

/// LDL106 — the same rule written twice. Rules are compared after
/// canonical variable renaming, so alpha-equivalent duplicates
/// (`p(X) <- q(X)` vs `p(Y) <- q(Y)`) are flagged too; spans are
/// ignored by rule equality, so formatting differences do not mask the
/// duplicate either.
fn duplicate_rules(program: &Program, report: &mut Report) {
    let canon: Vec<Rule> = program
        .rules
        .iter()
        .map(crate::transform::alpha_canonical)
        .collect();
    for (i, rule) in program.rules.iter().enumerate() {
        if let Some(j) = (0..i).find(|&j| canon[j] == canon[i]) {
            let first = &program.rules[j];
            let mut d = Diagnostic::warning(
                "LDL106",
                rule.span,
                format!("duplicate rule: `{rule}` is already defined"),
            )
            .with_note(format!("first definition at {}", first.span));
            if first != rule {
                d = d.with_note(format!("`{first}` differs only in variable names"));
            }
            report.push(d);
        }
    }
}

/// LDL107 — the same literal twice in one body: a no-op join.
fn duplicate_literals(rule: &Rule, report: &mut Report) {
    for (i, lit) in rule.body.iter().enumerate() {
        if rule.body[..i].contains(lit) {
            report.push(
                Diagnostic::warning(
                    "LDL107",
                    lit.span(),
                    format!("duplicate literal `{lit}` in rule body"),
                )
                .with_note(format!("in rule: {rule}")),
            );
        }
    }
}

/// LDL108 — equalities that can never hold together: `X = 1, X = 2`,
/// a ground `1 = 2`, a reflexive `T ~= T`, and — through equality
/// propagation over `Var = Var` links — chains like
/// `X = 1, Y = X, Y = 2`. Variables connected by equalities form
/// union-find classes carrying the first ground binding seen; a second,
/// different binding anywhere in the class is the contradiction.
fn contradictory_body(rule: &Rule, report: &mut Report) {
    let mut parent: BTreeMap<Symbol, Symbol> = BTreeMap::new();
    fn find(parent: &mut BTreeMap<Symbol, Symbol>, v: Symbol) -> Symbol {
        let p = *parent.entry(v).or_insert(v);
        if p == v {
            return v;
        }
        let root = find(parent, p);
        parent.insert(v, root);
        root
    }
    // Class root → (variable the binding was written on, value, span).
    let mut bindings: BTreeMap<Symbol, (Symbol, Term, ldl_core::Span)> = BTreeMap::new();
    for lit in &rule.body {
        let Literal::Builtin(b) = lit else { continue };
        match b.op {
            CmpOp::Eq => {
                if b.lhs.is_ground() && b.rhs.is_ground() && b.lhs != b.rhs {
                    report.push(
                        Diagnostic::warning(
                            "LDL108",
                            lit.span(),
                            format!("`{b}` compares distinct ground terms: always false"),
                        )
                        .with_note(format!("in rule: {rule}")),
                    );
                    continue;
                }
                if let (Term::Var(x), Term::Var(y)) = (&b.lhs, &b.rhs) {
                    let (rx, ry) = (find(&mut parent, *x), find(&mut parent, *y));
                    if rx == ry {
                        continue;
                    }
                    match (bindings.get(&rx).cloned(), bindings.get(&ry).cloned()) {
                        (Some((xvar, xval, _)), Some((yvar, yval, prev_span))) if xval != yval => {
                            report.push(
                                Diagnostic::warning(
                                    "LDL108",
                                    lit.span(),
                                    format!(
                                        "body can never succeed: `{b}` equates {xvar} = {xval} \
                                         with {yvar} = {yval}"
                                    ),
                                )
                                .with_note(format!("first binding at {prev_span}"))
                                .with_note(format!("in rule: {rule}")),
                            );
                        }
                        (prev_x, prev_y) => {
                            parent.insert(rx, ry);
                            if let Some(binding) = prev_x.or(prev_y) {
                                bindings.insert(ry, binding);
                            }
                        }
                    }
                    continue;
                }
                let (var, val) = match (&b.lhs, &b.rhs) {
                    (Term::Var(v), t) if t.is_ground() => (*v, t),
                    (t, Term::Var(v)) if t.is_ground() => (*v, t),
                    _ => continue,
                };
                let root = find(&mut parent, var);
                match bindings.get(&root).cloned() {
                    Some((prev_var, prev, prev_span)) if prev != *val => {
                        let mut d = Diagnostic::warning(
                            "LDL108",
                            lit.span(),
                            if prev_var == var {
                                format!(
                                    "body can never succeed: {var} = {prev} and {var} = {val} \
                                     are contradictory"
                                )
                            } else {
                                format!(
                                    "body can never succeed: {var} = {val} contradicts \
                                     {prev_var} = {prev} ({var} and {prev_var} are equated)"
                                )
                            },
                        )
                        .with_note(format!("first binding at {prev_span}"));
                        d = d.with_note(format!("in rule: {rule}"));
                        report.push(d);
                    }
                    Some(_) => {}
                    None => {
                        bindings.insert(root, (var, val.clone(), lit.span()));
                    }
                }
            }
            CmpOp::Ne if b.lhs == b.rhs => {
                report.push(
                    Diagnostic::warning(
                        "LDL108",
                        lit.span(),
                        format!("`{b}` compares a term with itself: always false"),
                    )
                    .with_note(format!("in rule: {rule}")),
                );
            }
            CmpOp::Ne => {
                // `X = 1, X ~= 1` (possibly through an equality chain).
                let (var, val) = match (&b.lhs, &b.rhs) {
                    (Term::Var(v), t) if t.is_ground() => (*v, t),
                    (t, Term::Var(v)) if t.is_ground() => (*v, t),
                    _ => continue,
                };
                let root = find(&mut parent, var);
                if let Some((prev_var, prev, prev_span)) = bindings.get(&root).cloned() {
                    if prev == *val {
                        report.push(
                            Diagnostic::warning(
                                "LDL108",
                                lit.span(),
                                format!("body can never succeed: `{b}` but {prev_var} = {prev}"),
                            )
                            .with_note(format!("first binding at {prev_span}"))
                            .with_note(format!("in rule: {rule}")),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// LDL109 — the positive relation atoms of the body split into groups
/// sharing no variable (directly or through builtins/negations): their
/// join is a cartesian product.
fn cartesian_product(rule: &Rule, report: &mut Report) {
    let n = rule.body.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut by_var: BTreeMap<Symbol, usize> = BTreeMap::new();
    for (i, lit) in rule.body.iter().enumerate() {
        for v in lit.vars() {
            match by_var.get(&v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
                None => {
                    by_var.insert(v, i);
                }
            }
        }
    }
    // Components counted over positive, non-ground relation atoms only:
    // ground atoms and pure builtins are guards/filters, not join inputs.
    let mut groups: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, lit) in rule.body.iter().enumerate() {
        let Literal::Atom(a) = lit else { continue };
        if a.negated || a.vars().is_empty() {
            continue;
        }
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(a.pred.to_string());
    }
    if groups.len() >= 2 {
        let parts = groups
            .values()
            .map(|g| format!("{{{}}}", g.join(", ")))
            .collect::<Vec<_>>();
        report.push(
            Diagnostic::warning(
                "LDL109",
                rule.span,
                format!(
                    "body joins {} without any shared variable: cartesian product",
                    parts.join(" and ")
                ),
            )
            .with_note(
                "the result size is the product of the operand sizes; add a join variable \
                 or split the rule if the cross product is intended",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    fn run(text: &str) -> Report {
        check(&parse_program(text).unwrap()).finish()
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn singleton_var_is_ldl104_and_underscore_opts_out() {
        let r = run("p(X) <- q(X, Stray).");
        assert_eq!(codes(&r), vec!["LDL104"]);
        assert!(r.diagnostics[0].message.contains("Stray"));
        assert_eq!(
            (r.diagnostics[0].span.line, r.diagnostics[0].span.col),
            (1, 9)
        );
        let quiet = run("p(X) <- q(X, _Stray).");
        assert!(quiet.diagnostics.is_empty(), "{quiet:?}");
    }

    #[test]
    fn negation_only_head_var_is_ldl105() {
        let r = run("p(X, Y) <- q(X), ~r(Y).");
        assert!(codes(&r).contains(&"LDL105"), "{r:?}");
    }

    #[test]
    fn duplicate_rule_is_ldl106_with_cross_reference() {
        let r = run("p(X) <- q(X).\np(X) <- q(X).");
        assert_eq!(codes(&r), vec!["LDL106"]);
        let d = &r.diagnostics[0];
        assert_eq!((d.span.line, d.span.col), (2, 1));
        assert!(d.notes[0].contains("1:1"), "{:?}", d.notes);
    }

    #[test]
    fn alpha_equivalent_duplicate_rule_is_ldl106() {
        // Same rule modulo variable names: flagged since the
        // canonical-renaming fix; previously only textual duplicates
        // were caught.
        let r = run("p(X) <- q(X).\np(Y) <- q(Y).");
        assert_eq!(codes(&r), vec!["LDL106"]);
        let d = &r.diagnostics[0];
        assert_eq!((d.span.line, d.span.col), (2, 1));
        assert!(d.notes[0].contains("1:1"), "{:?}", d.notes);
        assert!(
            d.notes
                .iter()
                .any(|n| n.contains("differs only in variable names")),
            "{:?}",
            d.notes
        );
        // Different rules that merely share structure stay clean.
        let ok = run("p(X) <- q(X).\np(Y) <- r(Y).");
        assert!(ok.diagnostics.is_empty(), "{ok:?}");
    }

    #[test]
    fn duplicate_literal_is_ldl107() {
        let r = run("p(X) <- q(X), q(X).");
        assert_eq!(codes(&r), vec!["LDL107"]);
        assert_eq!(
            (r.diagnostics[0].span.line, r.diagnostics[0].span.col),
            (1, 15)
        );
    }

    #[test]
    fn contradictory_equalities_are_ldl108() {
        let r = run("p(X) <- q(X), X = 1, X = 2.");
        assert_eq!(codes(&r), vec!["LDL108"]);
        assert!(r.diagnostics[0].message.contains("contradictory"));
        assert_eq!(
            (r.diagnostics[0].span.line, r.diagnostics[0].span.col),
            (1, 22)
        );
        let gf = run("p(X) <- q(X), 1 = 2.");
        assert_eq!(codes(&gf), vec!["LDL108"]);
        assert!(gf.diagnostics[0].message.contains("always false"));
    }

    #[test]
    fn equality_propagated_contradiction_is_ldl108() {
        // One level of propagation: X = 1, Y = X, Y = 2.
        let r = run("p(X) <- q(X), X = 1, Y = X, Y = 2.");
        assert_eq!(codes(&r), vec!["LDL108"]);
        let d = &r.diagnostics[0];
        assert_eq!((d.span.line, d.span.col), (1, 29));
        assert!(d.message.contains("X = 1"), "{}", d.message);
        assert!(
            d.notes[0].contains("first binding at 1:15"),
            "{:?}",
            d.notes
        );
        // The var = var literal itself can close the contradiction.
        let link = run("p(X) <- q(X, Y), X = 1, Y = 2, X = Y.");
        assert!(codes(&link).contains(&"LDL108"), "{link:?}");
        // Disequality against the propagated binding.
        let ne = run("p(X) <- q(X, Y), X = 1, Y = X, Y != 1.");
        assert!(codes(&ne).contains(&"LDL108"), "{ne:?}");
        // Consistent chains stay clean.
        let ok = run("p(X, Y) <- q(X, Y), X = 1, Y = X.");
        assert!(!codes(&ok).contains(&"LDL108"), "{ok:?}");
    }

    #[test]
    fn disconnected_join_is_ldl109() {
        let r = run("pair(X, Y) <- a(X), b(Y).");
        assert_eq!(codes(&r), vec!["LDL109"]);
        assert!(r.diagnostics[0].message.contains("cartesian product"));
        // A builtin bridging the two sides connects the join graph.
        let ok = run("pair(X, Y) <- a(X), b(Y), X < Y.");
        assert!(ok.diagnostics.is_empty(), "{ok:?}");
    }
}
