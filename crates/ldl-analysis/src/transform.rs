//! Sound source-to-source rewrites justified by the abstract domains.
//!
//! [`rewrite`] simplifies a program without changing its answers under
//! *any* extensional database — every transformation here is valid
//! independent of the stored relations (data-dependent facts like
//! "predicate q is empty in this database" deliberately do **not**
//! license rewrites, because the engine evaluates one program against
//! many database states):
//!
//! * **constant propagation** — `X = 3` (or any ground, arithmetic-free
//!   binding) substitutes into the rest of the rule and disappears;
//!   equality is symmetric, so replacing every occurrence of `X` by `3`
//!   preserves the rule's ground instances exactly;
//! * **ground builtin folding** — an arithmetic-free ground comparison
//!   is decided structurally (`Int`-only for order comparisons: symbol
//!   order is runtime-defined under strict select); a true literal is
//!   dropped, a false one kills the rule, which is exactly the
//!   contradiction LDL108/LDL203 report;
//! * **duplicate-literal elimination** — conjunction is idempotent
//!   (LDL107's observation, applied);
//! * **alpha-canonical duplicate and subsumed rule removal** — rules
//!   are renamed to canonical variable names (`$c0`, `$c1`, …, in first
//!   occurrence order); an exact canonical duplicate is dropped
//!   (LDL106's observation), and a rule whose canonical head equals an
//!   earlier rule's while its body is a superset of the earlier body is
//!   subsumed by it (the identity substitution on canonical names is
//!   the homomorphism). Grouping heads are exempt from subsumption —
//!   `<X>` collects one set per key from *its own* body, so a more
//!   constrained body yields different rows, not a subset.
//!
//! The pass is gated behind `FixpointConfig::rewrite` in the engine and
//! proven answer-preserving by the differential property test in
//! `tests/differential.rs`.

use ldl_core::{CmpOp, Literal, Program, Rule, Term, Value};
use std::collections::BTreeMap;

/// What [`rewrite`] did, for logs and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// `Var = ground` bindings substituted into their rules.
    pub consts_propagated: usize,
    /// Ground builtins decided true and dropped.
    pub literals_folded: usize,
    /// Duplicate body literals removed.
    pub literals_deduped: usize,
    /// Rules removed because a literal folded to false.
    pub rules_dropped_false: usize,
    /// Alpha-equivalent duplicate rules removed.
    pub rules_dropped_duplicate: usize,
    /// Rules subsumed by a more general earlier rule.
    pub rules_dropped_subsumed: usize,
}

impl RewriteStats {
    /// Total number of changes.
    pub fn total(&self) -> usize {
        self.consts_propagated
            + self.literals_folded
            + self.literals_deduped
            + self.rules_dropped_false
            + self.rules_dropped_duplicate
            + self.rules_dropped_subsumed
    }
}

/// True when `t` contains an arithmetic compound anywhere (those are
/// evaluated at runtime, so they must not be compared structurally or
/// substituted into atom positions).
fn has_arith(t: &Term) -> bool {
    match t {
        Term::Compound(f, args) => {
            (args.len() == 2 && matches!(f.as_str(), "+" | "-" | "*" | "/" | "mod"))
                || args.iter().any(has_arith)
        }
        _ => false,
    }
}

/// Decides an arithmetic-free ground builtin. `None` = undecidable here
/// (symbol order, complex-term order).
fn decide_ground(op: CmpOp, l: &Term, r: &Term) -> Option<bool> {
    match op {
        CmpOp::Eq => Some(l == r),
        CmpOp::Ne => Some(l != r),
        _ => match (l, r) {
            (Term::Const(Value::Int(a)), Term::Const(Value::Int(b))) => Some(match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                _ => unreachable!(),
            }),
            _ => None,
        },
    }
}

/// One simplification round over a single rule. Returns `None` when the
/// rule can never fire (a literal folded to false).
fn simplify_rule(rule: &Rule, stats: &mut RewriteStats) -> Option<Rule> {
    let mut rule = rule.clone();
    let grouped_head = rule.head.args.iter().any(|t| t.as_group().is_some());

    loop {
        // 1. Find one `Var = ground` (arithmetic-free) binding to
        //    propagate. Grouping heads are left alone: `<Y>` positions
        //    collect variables, and rewriting them buys nothing.
        let binding = if grouped_head {
            None
        } else {
            rule.body.iter().find_map(|lit| match lit {
                Literal::Builtin(b) if b.op == CmpOp::Eq => match (&b.lhs, &b.rhs) {
                    (Term::Var(v), t) | (t, Term::Var(v))
                        if t.is_ground() && !has_arith(t) && !t.is_var() =>
                    {
                        Some((*v, t.clone()))
                    }
                    _ => None,
                },
                _ => None,
            })
        };
        if let Some((v, t)) = &binding {
            rule = rule.map_vars(&mut |w| {
                if w == *v {
                    t.clone()
                } else {
                    Term::Var(w)
                }
            });
            stats.consts_propagated += 1;
            // The binding itself is now `t = t`; the folding step below
            // removes it.
        }

        // 2. Fold ground, arithmetic-free builtins.
        let mut any_fold = false;
        let mut kept: Vec<Literal> = Vec::with_capacity(rule.body.len());
        for lit in &rule.body {
            match lit {
                Literal::Builtin(b)
                    if b.lhs.is_ground()
                        && b.rhs.is_ground()
                        && !has_arith(&b.lhs)
                        && !has_arith(&b.rhs) =>
                {
                    match decide_ground(b.op, &b.lhs, &b.rhs) {
                        Some(true) => {
                            any_fold = true;
                            stats.literals_folded += 1;
                        }
                        Some(false) => {
                            stats.rules_dropped_false += 1;
                            return None;
                        }
                        None => kept.push(lit.clone()),
                    }
                }
                _ => kept.push(lit.clone()),
            }
        }
        if any_fold {
            if kept.is_empty() {
                // Never emit an empty body: keep one trivially-true
                // guard so the rule stays a rule (it fires exactly
                // once, as the original did).
                stats.literals_folded -= 1;
                kept.push(Literal::Builtin(ldl_core::BuiltinPred {
                    op: CmpOp::Eq,
                    lhs: Term::int(0),
                    rhs: Term::int(0),
                    span: rule.span,
                }));
            }
            rule.body = kept;
        }

        // 3. Duplicate literals (conjunction is idempotent).
        let mut deduped: Vec<Literal> = Vec::with_capacity(rule.body.len());
        for lit in &rule.body {
            if deduped.contains(lit) {
                stats.literals_deduped += 1;
            } else {
                deduped.push(lit.clone());
            }
        }
        if deduped.len() != rule.body.len() {
            rule.body = deduped;
        }

        if binding.is_none() {
            return Some(rule);
        }
    }
}

/// Renames a rule's variables to `$c0`, `$c1`, … in first-occurrence
/// order (head, then body left to right), giving a canonical form under
/// which alpha-equivalent rules compare equal.
pub fn alpha_canonical(rule: &Rule) -> Rule {
    let mut order: Vec<ldl_core::Symbol> = Vec::new();
    for v in rule.head.vars() {
        if !order.contains(&v) {
            order.push(v);
        }
    }
    for lit in &rule.body {
        for v in lit.vars() {
            if !order.contains(&v) {
                order.push(v);
            }
        }
    }
    let renames: BTreeMap<ldl_core::Symbol, Term> = order
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, Term::var(&format!("$c{i}"))))
        .collect();
    rule.map_vars(&mut |v| renames.get(&v).cloned().unwrap_or(Term::Var(v)))
}

/// Rewrites `program` into an answer-equivalent, usually smaller one.
/// Sound under any extensional database; see the module docs for the
/// per-transformation arguments.
pub fn rewrite(program: &Program) -> (Program, RewriteStats) {
    let mut stats = RewriteStats::default();
    let mut rules: Vec<Rule> = Vec::with_capacity(program.rules.len());
    for rule in &program.rules {
        if let Some(r) = simplify_rule(rule, &mut stats) {
            rules.push(r);
        }
    }

    // Alpha-canonical duplicate + subsumption removal.
    let canon: Vec<Rule> = rules.iter().map(alpha_canonical).collect();
    let mut keep = vec![true; rules.len()];
    for i in 0..rules.len() {
        if !keep[i] {
            continue;
        }
        for j in (i + 1)..rules.len() {
            if !keep[j] || canon[i].head.pred != canon[j].head.pred {
                continue;
            }
            if canon[i] == canon[j] {
                keep[j] = false;
                stats.rules_dropped_duplicate += 1;
                continue;
            }
            // Subsumption: same canonical head, body(i) ⊆ body(j) with
            // body(i) strictly smaller ⇒ j derives a subset of i's
            // tuples. Grouping heads are exempt (set collection is not
            // monotone in the body).
            if canon[i].head == canon[j].head
                && !canon[i].head.args.iter().any(|t| t.as_group().is_some())
                && canon[i].body.len() < canon[j].body.len()
                && canon[i].body.iter().all(|l| canon[j].body.contains(l))
            {
                keep[j] = false;
                stats.rules_dropped_subsumed += 1;
            }
        }
    }
    let rules: Vec<Rule> = rules
        .into_iter()
        .zip(keep)
        .filter_map(|(r, k)| k.then_some(r))
        .collect();

    (
        Program {
            rules,
            facts: program.facts.clone(),
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    fn rw(text: &str) -> (Program, RewriteStats) {
        rewrite(&parse_program(text).unwrap())
    }

    #[test]
    fn constant_propagation_substitutes_and_drops() {
        let (p, s) = rw("p(X, Y) <- q(X), Y = 3.\nq(1).");
        assert_eq!(s.consts_propagated, 1);
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].to_string(), "p(X, 3) <- q(X).");
    }

    #[test]
    fn chained_propagation_reaches_contradiction() {
        // X = 1, Y = X, Y = 2 — the satellite-2 shape, killed here by
        // substitution + folding rather than reported.
        let (p, s) = rw("p(X) <- q(X), X = 1, Y = X, Y = 2.\nq(1).");
        assert_eq!(p.rules.len(), 0, "{p:?}");
        assert_eq!(s.rules_dropped_false, 1);
    }

    #[test]
    fn ground_folding_keeps_symbol_order_undecided() {
        let (p, s) = rw("p(X) <- q(X), 1 < 2.\nr(X) <- q(X), a < b.\nq(1).");
        assert_eq!(s.literals_folded, 1);
        assert_eq!(p.rules[0].to_string(), "p(X) <- q(X).");
        // Symbol order is runtime-defined: left alone.
        assert_eq!(p.rules[1].to_string(), "r(X) <- q(X), a < b.");
    }

    #[test]
    fn body_never_becomes_empty() {
        let (p, _) = rw("p(1) <- 2 > 1.");
        assert_eq!(p.rules.len(), 1);
        assert!(!p.rules[0].body.is_empty());
    }

    #[test]
    fn duplicate_literals_dedup() {
        let (p, s) = rw("p(X) <- q(X), q(X).\nq(1).");
        assert_eq!(s.literals_deduped, 1);
        assert_eq!(p.rules[0].body.len(), 1);
    }

    #[test]
    fn alpha_equivalent_duplicates_drop() {
        let (p, s) = rw("p(X) <- q(X).\np(Y) <- q(Y).\nq(1).");
        assert_eq!(p.rules.len(), 1);
        assert_eq!(s.rules_dropped_duplicate, 1);
    }

    #[test]
    fn subsumed_rule_drops() {
        let (p, s) = rw("p(X) <- q(X).\np(X) <- q(X), r(X).\nq(1). r(1).");
        assert_eq!(p.rules.len(), 1);
        assert_eq!(s.rules_dropped_subsumed, 1);
        assert_eq!(p.rules[0].to_string(), "p(X) <- q(X).");
    }

    #[test]
    fn grouping_heads_are_left_alone() {
        let (p, s) = rw("s(X, <Y>) <- e(X, Y).\ns(X, <Y>) <- e(X, Y), f(Y).\n\
             t(X, <Y>) <- e(X, Y), Z = 1, Z = 2.\ne(1, 2). f(2).");
        // No subsumption between the two s-rules; no propagation into
        // the t-rule body either (grouping head), so its contradiction
        // survives the rewrite (and is LDL108's to report).
        assert_eq!(p.rules.len(), 3, "{p:?}");
        assert_eq!(s.rules_dropped_subsumed, 0);
        assert_eq!(s.consts_propagated, 0);
    }

    #[test]
    fn negation_blocks_nothing_but_matches_exactly() {
        let (p, _) = rw("p(X) <- q(X), ~r(X), ~r(X).\nq(1).");
        // Duplicate negated literals dedup too.
        assert_eq!(p.rules[0].body.len(), 2);
    }
}
