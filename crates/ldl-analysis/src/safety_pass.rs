//! Safety front end: per-rule EC/finite-answer checks (LDL001, LDL002,
//! LDL110) and clique-termination screening (LDL111).
//!
//! The severity split follows executability, not style:
//!
//! * A rule that cannot execute under **any** binding pattern — some
//!   builtin or negated literal has a variable that no body order can
//!   bind even when every head argument is bound — is an *error*
//!   (LDL001/LDL002). The paper's §8.3 example `p(X,Y,Z) <- X = 3,
//!   Z = X + Y` is the canonical case.
//! * A rule that is safe under some binding patterns but not the
//!   all-free one is a *warning* (LDL110): in LDL such rules are legal
//!   and the per-query analysis (LDL003) rejects the forms that break.
//! * A recursive clique without a provable well-founded order is a
//!   *warning* (LDL111): the sufficient conditions are incomplete
//!   (safe-but-unprovable programs exist, §8.3) and evaluation still
//!   guards with a max-iterations bound.

use crate::bindability::{saturate, unbound_vars, var_list};
use crate::diag::{Diagnostic, Report};
use ldl_core::binding::Adornment;
use ldl_core::depgraph::DependencyGraph;
use ldl_core::safety;
use ldl_core::{Literal, Program, Rule};

/// Runs the safety pass over every rule and clique of `program`.
pub fn check(program: &Program, graph: &DependencyGraph, assume_acyclic: bool) -> Report {
    let mut report = Report::new();
    for rule in &program.rules {
        check_rule(rule, &mut report);
    }
    for clique in graph.cliques() {
        check_clique(program, clique, assume_acyclic, &mut report);
    }
    report
}

fn check_rule(rule: &Rule, report: &mut Report) {
    // Errors: unexecutable even with every head argument bound.
    let arity = rule.head.args.len();
    let all_bound = saturate(rule, Adornment::all_bound(arity));
    for &li in &all_bound.stuck {
        let lit = &rule.body[li];
        let unbound = unbound_vars(lit, &all_bound.bound);
        let vars = var_list(&unbound);
        let plural = if unbound.len() == 1 {
            "variable"
        } else {
            "variables"
        };
        match lit {
            Literal::Builtin(_) => {
                report.push(
                    Diagnostic::error(
                        "LDL001",
                        lit.span(),
                        format!(
                            "{plural} {vars} {} unbound when `{lit}` is reached, under any body order",
                            is_are(unbound.len())
                        ),
                    )
                    .with_note(format!("in rule: {rule}"))
                    .with_note(
                        "evaluable predicates need their inputs bound by earlier literals; \
                         no reordering of this body binds them",
                    ),
                );
            }
            Literal::Atom(a) if a.negated => {
                report.push(
                    Diagnostic::error(
                        "LDL002",
                        lit.span(),
                        format!(
                            "{plural} {vars} {} unbound when `{lit}` is reached, under any body order",
                            is_are(unbound.len())
                        ),
                    )
                    .with_note(format!("in rule: {rule}"))
                    .with_note(
                        "a negated literal only checks tuples, it never generates bindings",
                    ),
                );
            }
            Literal::Atom(_) => {
                // member/2 with an unbound set argument.
                report.push(
                    Diagnostic::error(
                        "LDL001",
                        lit.span(),
                        format!("the set argument of `{lit}` is never bound, under any body order"),
                    )
                    .with_note(format!("in rule: {rule}")),
                );
            }
        }
    }
    if !all_bound.stuck.is_empty() {
        return; // the all-free check would only repeat the same findings
    }

    // Warning: executable, but only when the query form binds something.
    let all_free = saturate(rule, Adornment::all_free(arity));
    let mut reasons = Vec::new();
    for &li in &all_free.stuck {
        let lit = &rule.body[li];
        let vars = var_list(&unbound_vars(lit, &all_free.bound));
        reasons.push(format!("{vars} unbound at `{lit}`"));
    }
    let free_head: Vec<_> = rule
        .head
        .vars()
        .into_iter()
        .filter(|v| !all_free.bound.contains(v))
        .collect();
    if !free_head.is_empty() {
        reasons.push(format!(
            "head {} {} never bound by the body",
            if free_head.len() == 1 {
                "variable"
            } else {
                "variables"
            },
            var_list(&free_head)
        ));
    }
    if !reasons.is_empty() {
        report.push(
            Diagnostic::warning(
                "LDL110",
                rule.span,
                format!(
                    "rule is only safe when the query form supplies bindings: under the \
                     all-free form, {}",
                    reasons.join("; ")
                ),
            )
            .with_note(format!("in rule: {rule}"))
            .with_note(
                "queries that bind the offending arguments are accepted; the all-free \
                 query form will be rejected (LDL003)",
            ),
        );
    }
}

fn is_are(n: usize) -> &'static str {
    if n == 1 {
        "is"
    } else {
        "are"
    }
}

fn check_clique(
    program: &Program,
    clique: &ldl_core::depgraph::Clique,
    assume_acyclic: bool,
    report: &mut Report,
) {
    let arity = clique.preds.iter().next().map(|p| p.arity).unwrap_or(0);
    // Most permissive screening: bindings propagate (magic/counting) and
    // every argument is bound. A failure here means no query form and no
    // method admits a termination proof.
    let verdict = safety::clique_terminates(
        program,
        clique,
        Adornment::all_bound(arity),
        true,
        assume_acyclic,
    );
    if let Err(reason) = verdict {
        let preds = clique
            .preds
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let span = clique
            .recursive_rules
            .first()
            .map(|&ri| program.rules[ri].span)
            .unwrap_or_default();
        report.push(
            Diagnostic::warning(
                "LDL111",
                span,
                format!("termination of recursive clique {{{preds}}} is unprovable: {reason}"),
            )
            .with_note(
                "evaluation still bounds the fixpoint with a max-iterations guard; to prove \
                 termination make the recursion Datalog-finite, base-driven, or structurally \
                 decreasing on a query-bound argument",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    fn run(text: &str) -> Report {
        let p = parse_program(text).unwrap();
        let g = DependencyGraph::build(&p);
        check(&p, &g, true).finish()
    }

    #[test]
    fn invertible_arith_equality_is_clean() {
        // X = 5 + W: with X bound, the single unknown W inverts — the
        // rule executes under every head form, no diagnostic.
        let r = run("p(X, W) <- X = 3, X = 5 + W.");
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }

    #[test]
    fn non_invertible_arith_equality_warns_ldl110() {
        // X = W / 2 never inverts (division discards information): W is
        // bindable only by the query, so the all-free form is rejected
        // but bound forms stay legal — a warning, not an error.
        let r = run("p(X, W) <- X = 8, X = W / 2.");
        assert!(!r.has_errors(), "{r:?}");
        assert!(r.diagnostics.iter().any(|d| d.code == "LDL110"), "{r:?}");
    }

    #[test]
    fn never_bindable_builtin_var_is_ldl001() {
        // `Y` occurs only inside `X > Y`: unbindable under any order and
        // any head adornment (comparisons never generate bindings).
        let r = run("big(X) <- n(X), X > Y.");
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "LDL001");
        assert_eq!(d.severity, crate::diag::Severity::Error);
        assert!(
            d.message.contains('Y') && d.message.contains("X > Y"),
            "{}",
            d.message
        );
        assert_eq!(
            (d.span.line, d.span.col, d.span.end_line, d.span.end_col),
            (1, 17, 1, 22)
        );
    }

    #[test]
    fn paper_8_3_example_is_binding_dependent() {
        // §8.3: `p(X, Y, Z) <- X = 3, Z = X + Y` — unsafe for the
        // all-free query form, safe when the query binds Y. Program
        // level that is a warning; the query analysis upgrades it.
        let r = run("p(X, Y, Z) <- X = 3, Z = X + Y.");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "LDL110");
    }

    #[test]
    fn negation_only_var_is_ldl002() {
        let r = run("p(X) <- q(X), ~r(X, W).");
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "LDL002");
        assert_eq!(d.severity, crate::diag::Severity::Error);
        assert!(d.message.contains('W'), "{}", d.message);
        assert_eq!(
            (d.span.line, d.span.col, d.span.end_line, d.span.end_col),
            (1, 15, 1, 23)
        );
    }

    #[test]
    fn binding_dependent_rule_is_ldl110_warning() {
        let r = run("p(X, Y) <- q(X).");
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "LDL110");
        assert_eq!(d.severity, crate::diag::Severity::Warning);
        assert!(d.message.contains('Y'), "{}", d.message);
    }

    #[test]
    fn arithmetic_recursion_is_ldl111_warning() {
        let r = run("cnt(X) <- zero(X).\ncnt(Y) <- cnt(X), Y = X + 1.");
        assert!(r.diagnostics.iter().any(|d| d.code == "LDL111"), "{r:?}");
        assert!(!r.has_errors());
    }

    #[test]
    fn clean_programs_are_clean() {
        let r = run("sg(X, Y) <- flat(X, Y).\nsg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).");
        assert!(r.diagnostics.is_empty(), "{r:?}");
    }
}
