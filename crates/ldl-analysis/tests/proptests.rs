//! Analyzer-soundness property test: any generated program the analyzer
//! passes clean evaluates under the strict-select engine without
//! `LdlError::Eval` from unbound builtins or negation — at 1 and 4
//! worker threads (the `LDL_EVAL_THREADS` settings, forced via
//! `FixpointConfig::with_threads`).
//!
//! The generator mixes known-clean rule templates with known-defective
//! ones (unbound comparison/arithmetic/negation/member variables), so
//! the same run also checks the converse direction on the defective
//! templates: the analyzer must flag every program containing one.
//!
//! Runs on `ldl_support::prop`; replay failures with the
//! `LDL_PROP_SEED` value printed in the panic message.

use ldl_analysis::{analyze_query, analyze_source, AnalysisOptions};
use ldl_core::parser::{parse_query, parse_source};
use ldl_core::LdlError;
use ldl_eval::naive::AnalysisPolicy;
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_storage::Database;
use ldl_support::prop::{check, pairs, triples, usizes, vecs, Config};

/// Rule templates over base relations `n/1` and `e/2`. `query` is an
/// all-free query form on the template's head; `defective` marks rules
/// the analyzer must reject (a variable no body order can bind).
struct Template {
    rule: &'static str,
    query: &'static str,
    defective: bool,
}

const TEMPLATES: &[Template] = &[
    Template {
        rule: "t0(X) <- n(X), X > 2.",
        query: "t0(A)?",
        defective: false,
    },
    Template {
        rule: "t1(X, Y) <- e(X, Y), ~n(X).",
        query: "t1(A, B)?",
        defective: false,
    },
    Template {
        rule: "t2(Y) <- n(X), Y = X * 2.",
        query: "t2(A)?",
        defective: false,
    },
    Template {
        rule: "t3(X) <- n(X), member(X, [1, 2, 3]).",
        query: "t3(A)?",
        defective: false,
    },
    Template {
        rule: "t4(X, Y) <- e(X, Y), e(Y, Z), Z >= X.",
        query: "t4(A, B)?",
        defective: false,
    },
    Template {
        rule: "t5(X) <- n(X), X > Y.",
        query: "t5(A)?",
        defective: true,
    },
    Template {
        rule: "t6(X, Y) <- e(X, Y), ~n(Z).",
        query: "t6(A, B)?",
        defective: true,
    },
    Template {
        rule: "t7(Y) <- n(X), Y = X + 1, X != W.",
        query: "t7(A)?",
        defective: true,
    },
    Template {
        rule: "t8(X) <- n(X), member(X, S).",
        query: "t8(A)?",
        defective: true,
    },
];

#[test]
fn analyzer_clean_programs_evaluate_without_eval_errors() {
    let gen = triples(
        vecs(usizes(0..TEMPLATES.len()), 1..5),
        vecs(usizes(0..7), 1..6),
        vecs(pairs(usizes(0..7), usizes(0..7)), 1..8),
    );
    check(
        "analyzer_clean_programs_evaluate_without_eval_errors",
        &Config::with_cases(48),
        &gen,
        |(picks, ns, edges)| {
            let mut chosen: Vec<usize> = picks.clone();
            chosen.sort_unstable();
            chosen.dedup();
            let mut text = String::new();
            for n in ns {
                text.push_str(&format!("n({n}).\n"));
            }
            for (a, b) in edges {
                text.push_str(&format!("e({a}, {b}).\n"));
            }
            for &i in &chosen {
                text.push_str(TEMPLATES[i].rule);
                text.push('\n');
            }
            let src = parse_source(&text).unwrap();
            let defective = chosen.iter().any(|&i| TEMPLATES[i].defective);
            let opts = AnalysisOptions {
                lints: false,
                ..Default::default()
            };

            // Completeness on the known-bad templates: the analyzer
            // must flag every program containing one.
            let program_report = analyze_source(&src, &opts);
            if defective {
                assert!(
                    program_report.has_errors(),
                    "analyzer passed a defective program:\n{text}"
                );
                return;
            }

            // Soundness: every analyzer-clean query form evaluates under
            // the strict-select engine without `LdlError::Eval`.
            let db = Database::from_program(&src.program);
            for &i in &chosen {
                let q = parse_query(TEMPLATES[i].query).unwrap();
                let report = analyze_query(&src.program, &q, &opts);
                assert!(
                    !report.has_errors(),
                    "clean template flagged:\n{text}\n{report:?}"
                );
                for threads in [1, 4] {
                    let cfg = FixpointConfig::default()
                        .with_threads(threads)
                        .with_strict_select(true)
                        .with_analysis(AnalysisPolicy::Off);
                    let res = evaluate_query(&src.program, &db, &q, Method::SemiNaive, &cfg);
                    assert!(
                        !matches!(res, Err(LdlError::Eval(_))),
                        "analyzer-clean program hit an evaluation error at {threads} \
                         thread(s): {res:?}\nprogram:\n{text}"
                    );
                }
            }
        },
    );
}

/// The engine's own deny gate agrees with the standalone analyzer: a
/// defective program is refused with `LdlError::Unsafe` carrying the
/// diagnostic code and witness *before* planning — even when the query
/// itself targets a clean predicate, because the bottom-up methods
/// evaluate every rule and would hit the defect as a runtime error.
#[test]
fn engine_deny_gate_matches_analyzer_verdict() {
    let clean_text = "n(1). n(2). e(1, 2).\nt0(X) <- n(X), X > 2.\n";
    let src = parse_source(clean_text).unwrap();
    let db = Database::from_program(&src.program);
    let cfg = FixpointConfig::serial();
    let q = parse_query("t0(A)?").unwrap();
    assert!(evaluate_query(&src.program, &db, &q, Method::SemiNaive, &cfg).is_ok());

    let dirty_text = "n(1). n(2). e(1, 2).\nt0(X) <- n(X), X > 2.\nt5(X) <- n(X), X > Y.\n";
    let src = parse_source(dirty_text).unwrap();
    let db = Database::from_program(&src.program);
    for query in ["t5(A)?", "t0(A)?"] {
        let q = parse_query(query).unwrap();
        match evaluate_query(&src.program, &db, &q, Method::SemiNaive, &cfg) {
            Err(LdlError::Unsafe(msg)) => {
                assert!(msg.contains("LDL001"), "{query}: {msg}");
                assert!(msg.contains('Y'), "{query}: {msg}");
            }
            other => panic!("{query}: expected Unsafe rejection, got {other:?}"),
        }
    }

    // Warn policy lets the same program through to the runtime error.
    let warn = cfg.with_analysis(AnalysisPolicy::Warn);
    let q = parse_query("t5(A)?").unwrap();
    match evaluate_query(&src.program, &db, &q, Method::SemiNaive, &warn) {
        Err(LdlError::Eval(_)) | Ok(_) => {}
        other => panic!("warn policy must not deny, got {other:?}"),
    }
}
