//! Differential soundness of the rewrite pass and sanity of the
//! inferred cardinality intervals.
//!
//! * **Rewrite soundness** — for generated programs mixing every
//!   rewrite trigger (constant chains, foldable ground builtins,
//!   duplicate/alpha-duplicate rules, duplicate literals, subsumed
//!   rules, recursion), answers with `FixpointConfig::with_rewrite(true)`
//!   are bit-identical (canonical order) to the untransformed baseline
//!   across {naive, semi-naive, magic} × {1, 4} threads ×
//!   {Selected, ForceScan} access paths.
//! * **Estimate sanity** — the abstract interpreter's cardinality
//!   interval brackets the true relation size of every derived
//!   predicate: `card_lo ≤ |p| ≤ card_hi`.
//!
//! Runs on `ldl_support::prop`; replay failures with the
//! `LDL_PROP_SEED` value printed in the panic message.

use ldl_analysis::absint;
use ldl_core::parser::{parse_program, parse_query};
use ldl_eval::naive::AnalysisPolicy;
use ldl_eval::{evaluate_query, AccessPaths, FixpointConfig, Method};
use ldl_storage::Database;
use ldl_support::prop::{check, pairs, triples, usizes, vecs, Config};

/// Rule blocks that each exercise one rewrite trigger, with all-free
/// and (where the head allows) bound query forms.
struct Block {
    rules: &'static str,
    queries: &'static [&'static str],
}

const BLOCKS: &[Block] = &[
    // Constant propagation: the X = 2 binding folds into the atom.
    Block {
        rules: "p0(X) <- n(X), X = 2.\n",
        queries: &["p0(A)?"],
    },
    // Alpha-equivalent duplicate rule: the second copy is dropped.
    Block {
        rules: "p1(X) <- e(X, _Y).\np1(A) <- e(A, _B).\n",
        queries: &["p1(A)?"],
    },
    // Propagated contradiction: the whole rule is dropped as false.
    Block {
        rules: "p2(X) <- n(X), X = 1, Y = X, Y = 2.\np2(X) <- n(X), X = 0.\n",
        queries: &["p2(A)?"],
    },
    // Ground builtin folding: `1 < 2` disappears.
    Block {
        rules: "p3(X) <- n(X), 1 < 2.\n",
        queries: &["p3(A)?"],
    },
    // Duplicate literal in one body.
    Block {
        rules: "p4(X) <- n(X), n(X).\n",
        queries: &["p4(A)?"],
    },
    // Subsumption: the longer body adds nothing over the shorter one.
    Block {
        rules: "p5(X) <- e(X, _Y).\np5(X) <- e(X, _Y), n(X).\n",
        queries: &["p5(A)?"],
    },
    // Negation stays untouched but must survive the pass.
    Block {
        rules: "p6(X) <- n(X), ~e(X, X).\n",
        queries: &["p6(A)?"],
    },
    // Recursion, with rewrite fodder in the exit rule.
    Block {
        rules: "tc(X, Y) <- e(X, Y), 0 = 0.\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n",
        queries: &["tc(A, B)?", "tc(1, B)?"],
    },
    // Arithmetic through a constant chain.
    Block {
        rules: "p8(Z) <- n(X), Y = 2, Z = X + Y.\n",
        queries: &["p8(A)?"],
    },
];

fn program_text(picks: &[usize], ns: &[usize], edges: &[(usize, usize)]) -> (String, Vec<usize>) {
    let mut chosen: Vec<usize> = picks.to_vec();
    chosen.sort_unstable();
    chosen.dedup();
    let mut text = String::new();
    for n in ns {
        text.push_str(&format!("n({n}).\n"));
    }
    for (a, b) in edges {
        text.push_str(&format!("e({a}, {b}).\n"));
    }
    for &i in &chosen {
        text.push_str(BLOCKS[i].rules);
    }
    (text, chosen)
}

#[test]
fn rewrite_preserves_answers_across_methods_threads_and_access_paths() {
    let gen = triples(
        vecs(usizes(0..BLOCKS.len()), 1..4),
        vecs(usizes(0..6), 1..5),
        vecs(pairs(usizes(0..6), usizes(0..6)), 1..7),
    );
    check(
        "rewrite_preserves_answers_across_methods_threads_and_access_paths",
        &Config::with_cases(24),
        &gen,
        |(picks, ns, edges)| {
            let (text, chosen) = program_text(picks, ns, edges);
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            for &i in &chosen {
                for qtext in BLOCKS[i].queries {
                    let q = parse_query(qtext).unwrap();
                    let base_cfg = FixpointConfig::default()
                        .with_analysis(AnalysisPolicy::Off)
                        .with_rewrite(false);
                    let mut baseline =
                        evaluate_query(&program, &db, &q, Method::SemiNaive, &base_cfg)
                            .unwrap_or_else(|e| panic!("baseline failed for {qtext}: {e}\n{text}"))
                            .tuples;
                    baseline.canonicalize();
                    for method in [Method::Naive, Method::SemiNaive, Method::Magic] {
                        for threads in [1, 4] {
                            for access in [AccessPaths::Selected, AccessPaths::ForceScan] {
                                let cfg = FixpointConfig::default()
                                    .with_analysis(AnalysisPolicy::Off)
                                    .with_threads(threads)
                                    .with_access_paths(access)
                                    .with_rewrite(true);
                                let mut got = evaluate_query(&program, &db, &q, method, &cfg)
                                    .unwrap_or_else(|e| {
                                        panic!(
                                            "{} failed for {qtext} at {threads} thread(s), \
                                                 {access:?}: {e}\n{text}",
                                            method.name()
                                        )
                                    })
                                    .tuples;
                                got.canonicalize();
                                assert_eq!(
                                    got,
                                    baseline,
                                    "rewrite changed answers: {} / {threads} thread(s) / \
                                     {access:?} / {qtext}\nprogram:\n{text}",
                                    method.name()
                                );
                            }
                        }
                    }
                }
            }
        },
    );
}

#[test]
fn inferred_cardinality_interval_brackets_true_size() {
    let gen = triples(
        vecs(usizes(0..BLOCKS.len()), 1..4),
        vecs(usizes(0..6), 1..5),
        vecs(pairs(usizes(0..6), usizes(0..6)), 1..7),
    );
    check(
        "inferred_cardinality_interval_brackets_true_size",
        &Config::with_cases(24),
        &gen,
        |(picks, ns, edges)| {
            let (text, chosen) = program_text(picks, ns, edges);
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let analysis = absint::interpret(&program, Some(&db));
            let cfg = FixpointConfig::default().with_analysis(AnalysisPolicy::Off);
            for &i in &chosen {
                for qtext in BLOCKS[i].queries {
                    let q = parse_query(qtext).unwrap();
                    // Only all-free forms measure the full relation.
                    if !q.goal.args.iter().all(|t| !t.is_ground()) {
                        continue;
                    }
                    let truth = evaluate_query(&program, &db, &q, Method::SemiNaive, &cfg)
                        .unwrap_or_else(|e| panic!("evaluation failed for {qtext}: {e}\n{text}"))
                        .tuples
                        .len() as f64;
                    let pa = analysis
                        .pred(q.pred())
                        .unwrap_or_else(|| panic!("no summary for {qtext}\n{text}"));
                    assert!(
                        pa.card_lo <= truth,
                        "card_lo {} > true size {truth} for {qtext}\nprogram:\n{text}",
                        pa.card_lo
                    );
                    assert!(
                        truth <= pa.card_hi,
                        "true size {truth} > card_hi {} for {qtext}\nprogram:\n{text}",
                        pa.card_hi
                    );
                }
            }
        },
    );
}
