//! Acceptance test for the automatic index-selection subsystem.
//!
//! Counter deltas are read through [`IndexCounters::scoped`], which
//! tracks only the work of the enclosed evaluation (workers re-enter
//! the caller's scope), so this test coexists with any other test in
//! the same process.
//!
//! Checks, on the recursive benchmark workloads (A2 same-generation,
//! E5-style transitive closure) and a nested-signature program:
//!
//! 1. the chain-cover selection emits *fewer* indexes than the ad-hoc
//!    per-signature count whenever signatures nest, and never more;
//! 2. selected mode builds one ordered index per (relation version,
//!    selected order) — strictly fewer builds than hash mode pays for
//!    the same probes when signatures share a chain;
//! 3. answers and [`Metrics`] are bit-for-bit identical across the
//!    three access-path policies, through the raw fixpoint and through
//!    the engine's magic rewriting.

use ldl_bench::workload::{same_generation, transitive_closure_chains};
use ldl_core::parser::{parse_program, parse_query};
use ldl_core::Pred;
use ldl_eval::seminaive::eval_program_seminaive;
use ldl_eval::{evaluate_query, AccessPaths, FixpointConfig, Method};
use ldl_index::IndexCatalog;
use ldl_storage::{Database, IndexCounters};

fn fixpoint_cfg(paths: AccessPaths) -> FixpointConfig {
    FixpointConfig::serial().with_access_paths(paths)
}

#[test]
fn index_selection_acceptance() {
    // --- 1. Chain-cover minimality on a nested-signature program. ---
    // p is probed on {0} (first rule) and on {0,1} (second rule): two
    // signatures, one chain, ONE selected order [0, 1].
    let mut nested = String::new();
    for i in 0..12i64 {
        nested.push_str(&format!("a({i}).\nb({i}).\n"));
        nested.push_str(&format!("p({i}, {}).\np({i}, {}).\n", i + 1, i + 2));
    }
    nested.push_str("q1(X, Z) <- a(X), p(X, Z).\nq2(X, Y) <- a(X), b(Y), p(X, Y).\n");
    let nested_prog = parse_program(&nested).unwrap();
    let catalog = IndexCatalog::build(&nested_prog);
    let p = Pred::new("p", 2);
    assert_eq!(
        catalog.orders(p),
        &[vec![0, 1]],
        "one lex order serves both signatures"
    );
    assert!(
        catalog.total_orders() < catalog.total_signatures(),
        "selection ({}) must beat per-signature indexing ({})",
        catalog.total_orders(),
        catalog.total_signatures()
    );

    // --- 2. Build counts: selected mode shares, hash mode cannot. ---
    let db = Database::from_program(&nested_prog);
    let ((hash_rel, hash_m), hash_work) = IndexCounters::scoped(|| {
        eval_program_seminaive(&nested_prog, &db, &fixpoint_cfg(AccessPaths::HashOnDemand)).unwrap()
    });
    let ((sel_rel, sel_m), sel_work) = IndexCounters::scoped(|| {
        eval_program_seminaive(&nested_prog, &db, &fixpoint_cfg(AccessPaths::Selected)).unwrap()
    });
    assert_eq!(sel_rel.len(), hash_rel.len());
    for (pred, rel) in &hash_rel {
        assert_eq!(
            sel_rel[pred].rows(),
            rel.rows(),
            "{pred}: rows diverge across modes"
        );
    }
    assert_eq!(sel_m, hash_m, "metrics diverge across access modes");
    assert_eq!(
        sel_work.ordered_builds, 1,
        "both signatures must share one ordered build, got {sel_work:?}"
    );
    assert_eq!(
        hash_work.hash_builds, 2,
        "hash mode pays one build per distinct key set, got {hash_work:?}"
    );
    assert!(sel_work.ordered_builds < hash_work.hash_builds);
    assert!(
        sel_work.ordered_probes > 0,
        "selected mode must actually probe: {sel_work:?}"
    );
    assert_eq!(
        sel_work.hash_builds, 0,
        "no hash fallback expected here: {sel_work:?}"
    );

    // --- 3. Recursive workloads: distinct builds per relation version,
    //        identical answers and metrics across all three policies. ---
    let (sg, _) = same_generation(2, 8);
    let (tc, _) = transitive_closure_chains(64, 4);
    for (program, what) in [(&sg, "sg"), (&tc, "tc")] {
        let db = Database::from_program(program);
        let ((ref_rel, ref_m), sel_work) = IndexCounters::scoped(|| {
            eval_program_seminaive(program, &db, &fixpoint_cfg(AccessPaths::Selected)).unwrap()
        });
        assert!(
            sel_work.ordered_builds > 0,
            "{what}: no ordered builds: {sel_work:?}"
        );
        assert!(
            sel_work.ordered_probes > 0,
            "{what}: no ordered probes: {sel_work:?}"
        );
        let selected_orders = IndexCatalog::build(program).total_orders() as u64;
        assert!(
            sel_work.ordered_builds >= selected_orders,
            "{what}: recursion must rebuild per relation version \
             ({} builds for {selected_orders} selected orders)",
            sel_work.ordered_builds
        );
        for paths in [AccessPaths::HashOnDemand, AccessPaths::ForceScan] {
            let (rel, m) = eval_program_seminaive(program, &db, &fixpoint_cfg(paths)).unwrap();
            assert_eq!(m, ref_m, "{what}: metrics diverge under {paths:?}");
            for (pred, r) in &ref_rel {
                assert_eq!(
                    rel[pred].rows(),
                    r.rows(),
                    "{what}/{pred}: rows diverge vs {paths:?}"
                );
            }
        }
    }

    // --- 4. Engine-level: magic-rewritten bound query, all policies. ---
    let (sg, leaf) = same_generation(2, 8);
    let db = Database::from_program(&sg);
    let query = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
    let reference = evaluate_query(
        &sg,
        &db,
        &query,
        Method::Magic,
        &fixpoint_cfg(AccessPaths::ForceScan),
    )
    .unwrap();
    assert!(!reference.tuples.is_empty());
    for paths in [AccessPaths::Selected, AccessPaths::HashOnDemand] {
        let got = evaluate_query(&sg, &db, &query, Method::Magic, &fixpoint_cfg(paths)).unwrap();
        assert_eq!(
            got.tuples.rows(),
            reference.tuples.rows(),
            "answers diverge under {paths:?}"
        );
        assert_eq!(
            got.metrics, reference.metrics,
            "metrics diverge under {paths:?}"
        );
    }
}
