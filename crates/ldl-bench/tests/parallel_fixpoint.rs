//! Cross-thread-count determinism on the paper's recursive workloads.
//!
//! The parallel round executor promises results *identical* to serial
//! execution — same tuples, same insertion order, same [`Metrics`] —
//! at any thread count. The evaluator property tests check that on
//! random edge sets; here we pin it on the benchmark workloads
//! (same-generation trees, transitive-closure chains) and on the
//! rewriting methods (magic, counting) whose rewritten programs also
//! run through the semi-naive fixpoint.

use ldl_bench::workload::{same_generation, transitive_closure_chains};
use ldl_core::parser::parse_query;
use ldl_core::Program;
use ldl_eval::naive::eval_program_naive;
use ldl_eval::seminaive::eval_program_seminaive;
use ldl_eval::{evaluate_query, FixpointConfig, Method, Metrics};
use ldl_storage::{Database, Relation};
use std::collections::HashMap;

type Eval = fn(
    &Program,
    &Database,
    &FixpointConfig,
) -> ldl_core::Result<(HashMap<ldl_core::Pred, Relation>, Metrics)>;

fn assert_thread_invariant(program: &Program, eval: Eval, what: &str) {
    let db = Database::from_program(program);
    let (serial_rel, serial_m) = eval(program, &db, &FixpointConfig::serial()).unwrap();
    for threads in [2, 4] {
        let cfg = FixpointConfig::default().with_threads(threads);
        let (rel, m) = eval(program, &db, &cfg).unwrap();
        assert_eq!(m, serial_m, "{what}: metrics diverge at {threads} threads");
        assert_eq!(rel.len(), serial_rel.len());
        for (p, serial) in &serial_rel {
            assert_eq!(
                rel[p].rows(),
                serial.rows(),
                "{what}: row order of {p} diverges at {threads} threads"
            );
        }
    }
}

#[test]
fn seminaive_is_thread_invariant_on_tc_chains() {
    let (program, _) = transitive_closure_chains(64, 4);
    assert_thread_invariant(&program, eval_program_seminaive, "semi-naive tc");
}

#[test]
fn seminaive_is_thread_invariant_on_same_generation() {
    let (program, _) = same_generation(2, 7);
    assert_thread_invariant(&program, eval_program_seminaive, "semi-naive sg");
}

#[test]
fn naive_is_thread_invariant_on_recursive_workloads() {
    let (tc, _) = transitive_closure_chains(32, 2);
    assert_thread_invariant(&tc, eval_program_naive, "naive tc");
    let (sg, _) = same_generation(2, 5);
    assert_thread_invariant(&sg, eval_program_naive, "naive sg");
}

/// The rewriting methods evaluate their rewritten programs through the
/// same semi-naive fixpoint, so `threads` flows through them too.
#[test]
fn rewriting_methods_are_thread_invariant() {
    let (sg, leaf) = same_generation(2, 6);
    let sg_q = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
    let (tc, start) = transitive_closure_chains(48, 3);
    let tc_q = parse_query(&format!("tc({start}, Y)?")).unwrap();
    for (program, query, what) in [(&sg, &sg_q, "sg"), (&tc, &tc_q, "tc")] {
        let db = Database::from_program(program);
        for method in [Method::Magic, Method::Counting] {
            let serial =
                evaluate_query(program, &db, query, method, &FixpointConfig::serial()).unwrap();
            for threads in [2, 4] {
                let cfg = FixpointConfig::default().with_threads(threads);
                let got = evaluate_query(program, &db, query, method, &cfg).unwrap();
                assert_eq!(
                    got.tuples.rows(),
                    serial.tuples.rows(),
                    "{what}/{}: answers diverge at {threads} threads",
                    method.name()
                );
                assert_eq!(
                    got.metrics,
                    serial.metrics,
                    "{what}/{}: metrics diverge at {threads} threads",
                    method.name()
                );
            }
        }
    }
}
