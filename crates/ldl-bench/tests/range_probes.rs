//! Acceptance test for end-to-end range probes.
//!
//! Counter deltas are read through [`IndexCounters::scoped`], which
//! tracks only the work of the enclosed evaluation (workers re-enter
//! the caller's scope), so this test coexists with any other test in
//! the same process.
//!
//! Checks, on the P3 selective-range workload:
//!
//! 1. `Selected` mode issues at least one ordered range probe and
//!    enumerates *strictly fewer* rows than `ForceScan` pays for the
//!    same answers;
//! 2. answers and [`ldl_eval::Metrics`] are bit-for-bit identical
//!    across the three access-path policies at 1 and 4 worker threads;
//! 3. the magic-rewritten bound query folds too, with identical
//!    answers across policies.

use ldl_bench::workload::range_scan;
use ldl_core::parser::parse_query;
use ldl_eval::seminaive::eval_program_seminaive;
use ldl_eval::{evaluate_query, AccessPaths, FixpointConfig, Method};
use ldl_storage::{Database, IndexCounters};

fn serial(paths: AccessPaths) -> FixpointConfig {
    FixpointConfig::serial().with_access_paths(paths)
}

#[test]
fn range_probes_acceptance() {
    let program = range_scan(8, 200);
    let db = Database::from_program(&program);

    // --- 1. Range probes fire, and they enumerate fewer rows. ---
    let ((sel_rel, sel_m), sel_work) = IndexCounters::scoped(|| {
        eval_program_seminaive(&program, &db, &serial(AccessPaths::Selected)).unwrap()
    });
    assert!(
        sel_work.range_probes >= 1,
        "selected mode must issue range probes: {sel_work:?}"
    );
    let ((scan_rel, scan_m), scan_work) = IndexCounters::scoped(|| {
        eval_program_seminaive(&program, &db, &serial(AccessPaths::ForceScan)).unwrap()
    });
    assert_eq!(scan_work.range_probes, 0, "scans never range-probe");
    assert!(
        sel_work.rows_enumerated < scan_work.rows_enumerated,
        "range probes must enumerate strictly fewer rows: selected {} vs scan {}",
        sel_work.rows_enumerated,
        scan_work.rows_enumerated
    );

    // --- 2. Bit-identical answers and Metrics, all policies × threads. ---
    assert_eq!(sel_m, scan_m, "metrics diverge across access modes");
    for (pred, rel) in &scan_rel {
        assert_eq!(
            sel_rel[pred].rows(),
            rel.rows(),
            "{pred}: rows diverge across modes"
        );
    }
    for paths in [
        AccessPaths::Selected,
        AccessPaths::HashOnDemand,
        AccessPaths::ForceScan,
    ] {
        for threads in [1, 4] {
            let cfg = FixpointConfig::default()
                .with_threads(threads)
                .with_access_paths(paths);
            let (rel, m) = eval_program_seminaive(&program, &db, &cfg).unwrap();
            assert_eq!(m, scan_m, "{paths:?} metrics diverge at {threads} threads");
            for (pred, r) in &scan_rel {
                assert_eq!(
                    rel[pred].rows(),
                    r.rows(),
                    "{paths:?}/{pred}: rows diverge at {threads} threads"
                );
            }
        }
    }

    // --- 3. Magic engine: the rewritten bound query still folds. ---
    let query = parse_query("hit(0, V)?").unwrap();
    let reference = evaluate_query(
        &program,
        &db,
        &query,
        Method::Magic,
        &serial(AccessPaths::ForceScan),
    )
    .unwrap();
    assert!(!reference.tuples.is_empty());
    let (_, magic_work) = IndexCounters::scoped(|| {
        for paths in [AccessPaths::Selected, AccessPaths::HashOnDemand] {
            let got = evaluate_query(&program, &db, &query, Method::Magic, &serial(paths)).unwrap();
            assert_eq!(
                got.tuples.rows(),
                reference.tuples.rows(),
                "answers diverge under {paths:?}"
            );
            assert_eq!(
                got.metrics, reference.metrics,
                "metrics diverge under {paths:?}"
            );
        }
    });
    assert!(
        magic_work.range_probes >= 1,
        "magic + Selected must range-probe the rewritten rule: {magic_work:?}"
    );
}
