//! Criterion bench for the integrated optimizer itself: how long does a
//! full NR-OPT / OPT pass take on representative rule bases? The paper's
//! whole premise is that this compile-time cost is paid once per query
//! form and amortized over executions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldl_bench::workload::{layered_rulebase, same_generation, synthetic_database};
use ldl_core::parser::parse_query;
use ldl_optimizer::{OptConfig, Optimizer, Strategy};
use ldl_storage::Database;
use std::hint::black_box;

fn bench_nropt(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer-nropt");
    for (w, d) in [(2usize, 4usize), (3, 4), (2, 7)] {
        let (program, root) = layered_rulebase(w, d);
        let db = synthetic_database(&program, 7);
        let query = parse_query(&format!("{}(X)?", root.name)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("dp-memo", format!("{w}x{d}")),
            &(&program, &db, &query),
            |b, (p, db, q)| {
                b.iter(|| {
                    let opt = Optimizer::with_defaults(p, db);
                    black_box(opt.optimize(q).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_opt_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer-clique");
    let (program, leaf) = same_generation(2, 6);
    let db = Database::from_program(&program);
    let query = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
    for s in [Strategy::Exhaustive, Strategy::DynamicProgramming, Strategy::Kbz] {
        group.bench_with_input(
            BenchmarkId::new(s.name(), "sg-bound"),
            &(&program, &db, &query),
            |b, (p, db, q)| {
                b.iter(|| {
                    let opt = Optimizer::new(
                        p,
                        db,
                        OptConfig { strategy: s, assume_acyclic: true, ..OptConfig::default() },
                    );
                    black_box(opt.optimize(q).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_nropt, bench_opt_clique);
criterion_main!(benches);
