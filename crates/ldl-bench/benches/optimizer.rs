//! Bench for the integrated optimizer itself: how long does a full
//! NR-OPT / OPT pass take on representative rule bases? The paper's
//! whole premise is that this compile-time cost is paid once per query
//! form and amortized over executions.
//!
//! Run: `cargo bench -p ldl-bench --bench optimizer`

use ldl_bench::workload::{layered_rulebase, same_generation, synthetic_database};
use ldl_core::parser::parse_query;
use ldl_optimizer::{OptConfig, Optimizer, Strategy};
use ldl_storage::Database;
use ldl_support::bench::Harness;

fn main() {
    let mut h = Harness::new("optimizer");
    h.set_iters(2, 10);
    for (w, d) in [(2usize, 4usize), (3, 4), (2, 7)] {
        let (program, root) = layered_rulebase(w, d);
        let db = synthetic_database(&program, 7);
        let query = parse_query(&format!("{}(X)?", root.name)).unwrap();
        h.bench("optimizer-nropt", &format!("dp-memo/{w}x{d}"), || {
            let opt = Optimizer::with_defaults(&program, &db);
            opt.optimize(&query).unwrap()
        });
    }
    let (program, leaf) = same_generation(2, 6);
    let db = Database::from_program(&program);
    let query = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
    for s in [
        Strategy::Exhaustive,
        Strategy::DynamicProgramming,
        Strategy::Kbz,
    ] {
        h.bench(
            "optimizer-clique",
            &format!("{}/sg-bound", s.name()),
            || {
                let opt = Optimizer::new(
                    &program,
                    &db,
                    OptConfig {
                        strategy: s,
                        assume_acyclic: true,
                        ..OptConfig::default()
                    },
                );
                opt.optimize(&query).unwrap()
            },
        );
    }
    h.finish();
}
