//! Range probes before/after on the selective-range workload.
//!
//! Runs the full semi-naive evaluation of the P3 workload — an
//! equality-prefix range rule and an empty-prefix range rule over a
//! `groups × per_group` table — under the three access-path policies
//! and records timings to `BENCH_range_probes.json`. Every label embeds
//! a digest of the complete result (relations in insertion order plus
//! metrics), so any divergence across policies is visible in the JSON
//! and asserted here: whatever the probes cost, the answers are
//! bit-for-bit identical.
//!
//! The `work` labels record range probes and enumerated rows counted by
//! `ldl_storage::relation::counters` during one evaluation — the
//! selected policy's row count is the range-probe win.
//!
//! Knobs: `LDL_RANGE_SCALE=full` for the larger workload,
//! `LDL_BENCH_ITERS`, `LDL_BENCH_JSON_DIR` as usual.

use ldl_bench::workload::range_scan;
use ldl_core::{Pred, Program};
use ldl_eval::seminaive::eval_program_seminaive;
use ldl_eval::{AccessPaths, FixpointConfig};
use ldl_storage::{Database, IndexCounters};
use ldl_support::bench::Harness;

/// FNV-1a over the evaluation result: relations (predicates sorted for
/// a canonical traversal, rows in insertion order) and metrics.
fn digest(program: &Program, db: &Database, cfg: &FixpointConfig) -> u64 {
    let (derived, metrics) = eval_program_seminaive(program, db, cfg).unwrap();
    let mut preds: Vec<Pred> = derived.keys().copied().collect();
    preds.sort_by_key(|p| (p.to_string(), p.arity));
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in preds {
        eat(&format!("{p}:"));
        for row in derived[&p].rows() {
            eat(&format!("{row};"));
        }
    }
    eat(&format!("{metrics}"));
    h
}

fn policy_name(paths: AccessPaths) -> &'static str {
    match paths {
        AccessPaths::Selected => "selected",
        AccessPaths::HashOnDemand => "hash",
        AccessPaths::ForceScan => "scan",
    }
}

fn main() {
    let full = std::env::var("LDL_RANGE_SCALE").as_deref() == Ok("full");
    let (groups, per_group) = if full { (16, 2000) } else { (8, 400) };

    let mut h = Harness::new("range_probes");
    h.set_iters(1, 5);

    let name = format!("range/{groups}x{per_group}");
    let program = range_scan(groups, per_group);
    let db = Database::from_program(&program);

    let mut digests: Vec<(&'static str, u64)> = Vec::new();
    let mut rows: Vec<(&'static str, u64)> = Vec::new();
    for paths in [
        AccessPaths::Selected,
        AccessPaths::HashOnDemand,
        AccessPaths::ForceScan,
    ] {
        let cfg = FixpointConfig::serial().with_access_paths(paths);
        let d = digest(&program, &db, &cfg);
        digests.push((policy_name(paths), d));
        // One counted evaluation: range probes + enumerated rows.
        let before = IndexCounters::snapshot();
        eval_program_seminaive(&program, &db, &cfg).unwrap();
        let w = before.delta_since();
        rows.push((policy_name(paths), w.rows_enumerated));
        h.bench(
            &name,
            &format!(
                "work paths={} rprobe={} rows={} oprobe={} hprobe={}",
                policy_name(paths),
                w.range_probes,
                w.rows_enumerated,
                w.ordered_probes,
                w.hash_probes
            ),
            IndexCounters::snapshot,
        );
        h.bench(
            &name,
            &format!("paths={} digest={d:016x}", policy_name(paths)),
            || eval_program_seminaive(&program, &db, &cfg).unwrap(),
        );
    }
    let reference = digests[0].1;
    for (which, d) in &digests {
        assert_eq!(
            *d, reference,
            "{name}: digest under {which} differs from selected"
        );
    }
    let selected_rows = rows[0].1;
    let scan_rows = rows[2].1;
    assert!(
        selected_rows < scan_rows,
        "{name}: range probes must enumerate fewer rows \
         (selected {selected_rows} vs scan {scan_rows})"
    );
    h.finish();
}
