//! Sustained update stream against a maintained engine (P4).
//!
//! Builds the chain transitive-closure workload, evaluates it once into
//! a maintained [`Engine`], then drives a state-restoring update cycle
//! — retract one mid-chain edge, re-insert it — through `apply_delta`
//! and compares the cost against from-scratch re-evaluation of the same
//! EDB. Every label embeds a digest of the derived relations (canonical
//! order on both sides), so the JSON records that maintenance and
//! re-evaluation produce bit-for-bit identical results; the `rows=`
//! figures record the `rows_enumerated` counter for one update under
//! each mode, and the bench asserts maintenance enumerates an integer
//! factor fewer rows. Timed records yield updates/sec directly: each
//! measured iteration is one retract + one insert (two updates).
//!
//! Knobs: `LDL_IVM_SCALE=full` for the larger workload,
//! `LDL_BENCH_ITERS`, `LDL_BENCH_JSON_DIR` as usual.

use ldl_bench::workload::transitive_closure_chains;
use ldl_core::{Pred, Term};
use ldl_eval::{EdbDelta, Engine, FixpointConfig};
use ldl_storage::{Database, IndexCounters, Relation, Tuple};
use ldl_support::bench::Harness;

/// FNV-1a over the derived relations (predicates sorted for a canonical
/// traversal, rows in stored order — canonical on both sides, so any
/// divergence between maintained and from-scratch state shows up).
fn digest(derived: &std::collections::HashMap<Pred, Relation>) -> u64 {
    let mut preds: Vec<Pred> = derived.keys().copied().collect();
    preds.sort_by_key(|p| (p.to_string(), p.arity));
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in preds {
        eat(&format!("{p}:"));
        for row in derived[&p].rows() {
            eat(&format!("{row};"));
        }
    }
    h
}

/// One state-restoring update cycle: retract the edge, repair, insert
/// it back, repair. Returns the delta-side derived churn for sanity.
fn cycle(engine: &mut Engine, edge: &Tuple) -> usize {
    let e = Pred::new("e", 2);
    let mut out = EdbDelta::new();
    out.retract(e, edge.clone());
    let r1 = engine.apply_delta(&out).unwrap();
    let mut back = EdbDelta::new();
    back.insert(e, edge.clone());
    let r2 = engine.apply_delta(&back).unwrap();
    r1.derived_retracted + r2.derived_inserted
}

fn main() {
    let full = std::env::var("LDL_IVM_SCALE").as_deref() == Ok("full");
    let (chain_len, components) = if full { (96, 6) } else { (48, 4) };

    let mut h = Harness::new("ivm_stream");
    h.set_iters(1, 5);

    let name = format!("tc_chain/{chain_len}x{components}");
    let (program, _) = transitive_closure_chains(chain_len, components);
    let db = Database::from_program(&program);
    let cfg = FixpointConfig::serial();

    let mut engine = Engine::evaluate(&program, &db, &cfg).unwrap();
    // A mid-chain edge of the first component: retracting it splits the
    // longest chain, touching a quadratic slice of the closure.
    let mid = (chain_len / 2) as i64;
    let edge = Tuple(vec![Term::int(mid), Term::int(mid + 1)]);

    // Counted work: one full cycle under maintenance vs one from-scratch
    // evaluation of the same EDB.
    let ((), maintain_work) = IndexCounters::scoped(|| {
        cycle(&mut engine, &edge);
    });
    let (scratch, scratch_work) =
        IndexCounters::scoped(|| Engine::evaluate(&program, &db, &cfg).unwrap());

    let d_maintain = digest(engine.derived());
    let d_scratch = digest(scratch.derived());
    assert_eq!(
        d_maintain, d_scratch,
        "{name}: maintained state diverged from from-scratch evaluation"
    );

    let maintain_rows = maintain_work.rows_enumerated.max(1);
    let scratch_rows = scratch_work.rows_enumerated;
    // One cycle is two updates; from-scratch pays full price per update.
    let factor = (2 * scratch_rows) / maintain_rows;
    assert!(
        factor >= 2,
        "{name}: maintenance must enumerate an integer factor fewer rows \
         (maintain {maintain_rows} vs 2×scratch {scratch_rows})"
    );

    // Sustained-stream throughput: updates applied per second, measured
    // over a short pre-run so it can ride in the record label.
    let t0 = std::time::Instant::now();
    let warm_cycles = 4u32;
    for _ in 0..warm_cycles {
        cycle(&mut engine, &edge);
    }
    let ups = f64::from(2 * warm_cycles) / t0.elapsed().as_secs_f64();

    h.bench(
        &name,
        &format!(
            "mode=maintain rows={maintain_rows} factor={factor} ups={ups:.0} \
             digest={d_maintain:016x}"
        ),
        || cycle(&mut engine, &edge),
    );
    h.bench(
        &name,
        &format!(
            "mode=scratch rows={} digest={d_scratch:016x}",
            2 * scratch_rows
        ),
        || {
            // The from-scratch answer to the same two updates: two full
            // re-evaluations.
            let a = Engine::evaluate(&program, &db, &cfg).unwrap();
            let b = Engine::evaluate(&program, &db, &cfg).unwrap();
            (a.derived().len(), b.derived().len())
        },
    );
    h.finish();
}
