//! E3 successor — the memoized plan enumerator on wide chain rules.
//!
//! Sweeps `n ∈ {6, 10, 14, 18}` body literals on [`wide_join_rule`]:
//! wall-clock per full optimization plus the enumerator's explored
//! prefix count against the `n!` complete orders exhaustive enumeration
//! walks. Every label embeds the chosen plan's cost digest and a
//! `pruned=yes|no` flag (explored < n!); at `n = 6` the exhaustive
//! strategy runs too, so `scripts/ci.sh` can diff the memo digest
//! against the brute-force one — the bench-level echo of the oracle
//! test — and fail if pruning ever stops at `n ≥ 10`.
//!
//! Run: `cargo bench -p ldl-bench --bench plan_enum`
//! (writes `BENCH_plan_enum.json`)

use ldl_bench::workload::wide_join_rule;
use ldl_core::parser::parse_query;
use ldl_optimizer::{OptConfig, Optimizer, Strategy};
use ldl_support::bench::Harness;

fn factorial(n: usize) -> f64 {
    (1..=n).map(|k| k as f64).product()
}

fn main() {
    let mut h = Harness::new("plan_enum");
    h.set_iters(0, 3);
    for n in [6usize, 10, 14, 18] {
        let (program, db) = wide_join_rule(n, (n as u64) << 4 | 1);
        let query = parse_query("q(A, B)?").unwrap();
        let cfg = |s: Strategy| OptConfig {
            strategy: s,
            ..OptConfig::default()
        };
        let memo = Optimizer::new(&program, &db, cfg(Strategy::Memo))
            .optimize(&query)
            .unwrap();
        let pruned = (memo.stats.explored_plans as f64) < factorial(n);
        let label = format!(
            "n={n} explored={} memo_hits={} pruned={} digest={:016x}",
            memo.stats.explored_plans,
            memo.stats.enum_memo_hits,
            if pruned { "yes" } else { "no" },
            memo.cost.to_bits()
        );
        h.bench("plan-enum-memo", &label, || {
            Optimizer::new(&program, &db, cfg(Strategy::Memo))
                .optimize(&query)
                .unwrap()
        });
        if n == 6 {
            let exh = Optimizer::new(&program, &db, cfg(Strategy::Exhaustive))
                .optimize(&query)
                .unwrap();
            let label = format!(
                "n={n} probed={} digest={:016x}",
                exh.stats.orders_probed,
                exh.cost.to_bits()
            );
            h.bench("plan-enum-exhaustive", &label, || {
                Optimizer::new(&program, &db, cfg(Strategy::Exhaustive))
                    .optimize(&query)
                    .unwrap()
            });
        }
    }
    h.finish();
}
