//! Index selection before/after on the recursive workloads.
//!
//! Runs the full semi-naive evaluation of the benchmark workloads
//! (same-generation trees, transitive-closure chains) under the three
//! access-path policies — selected ordered indexes, on-demand hashes,
//! forced scans — and records the timings to
//! `BENCH_index_selection.json`. Every label embeds a digest of the
//! complete result (relations in insertion order plus metrics), so any
//! divergence across policies is visible in the JSON and asserted here:
//! whatever the probes cost, the answers are bit-for-bit identical.
//!
//! The `indexes` labels record the selection itself — how many orders
//! the chain cover emits versus the number of distinct search
//! signatures — and the `work` labels record builds/probes counted by
//! `ldl_storage::relation::counters` during one evaluation.
//!
//! Knobs: `LDL_IDXSEL_SCALE=full` for the larger workloads,
//! `LDL_BENCH_ITERS`, `LDL_BENCH_JSON_DIR` as usual.

use ldl_bench::workload::{same_generation, transitive_closure_chains};
use ldl_core::{Pred, Program};
use ldl_eval::seminaive::eval_program_seminaive;
use ldl_eval::{AccessPaths, FixpointConfig};
use ldl_index::IndexCatalog;
use ldl_storage::{Database, IndexCounters};
use ldl_support::bench::Harness;

/// FNV-1a over the evaluation result: relations (predicates sorted for
/// a canonical traversal, rows in insertion order) and metrics.
fn digest(program: &Program, db: &Database, cfg: &FixpointConfig) -> u64 {
    let (derived, metrics) = eval_program_seminaive(program, db, cfg).unwrap();
    let mut preds: Vec<Pred> = derived.keys().copied().collect();
    preds.sort_by_key(|p| (p.to_string(), p.arity));
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in preds {
        eat(&format!("{p}:"));
        for row in derived[&p].rows() {
            eat(&format!("{row};"));
        }
    }
    eat(&format!("{metrics}"));
    h
}

fn policy_name(paths: AccessPaths) -> &'static str {
    match paths {
        AccessPaths::Selected => "selected",
        AccessPaths::HashOnDemand => "hash",
        AccessPaths::ForceScan => "scan",
    }
}

fn main() {
    let full = std::env::var("LDL_IDXSEL_SCALE").as_deref() == Ok("full");
    let (tc_len, tc_comps, sg_depth) = if full { (160, 10, 10) } else { (64, 6, 8) };

    let mut h = Harness::new("index_selection");
    h.set_iters(1, 5);

    let workloads = [
        (
            format!("tc/{tc_comps}x{tc_len}"),
            transitive_closure_chains(tc_len, tc_comps).0,
        ),
        (format!("sg/2^{sg_depth}"), same_generation(2, sg_depth).0),
    ];
    for (name, program) in &workloads {
        let db = Database::from_program(program);
        // Record the selection itself: orders vs raw signatures.
        let catalog = IndexCatalog::build(program);
        h.bench(
            name,
            &format!(
                "indexes orders={} signatures={}",
                catalog.total_orders(),
                catalog.total_signatures()
            ),
            || catalog.total_orders(),
        );

        let mut digests: Vec<(&'static str, u64)> = Vec::new();
        for paths in [
            AccessPaths::Selected,
            AccessPaths::HashOnDemand,
            AccessPaths::ForceScan,
        ] {
            let cfg = FixpointConfig::serial().with_access_paths(paths);
            let d = digest(program, &db, &cfg);
            digests.push((policy_name(paths), d));
            // One counted evaluation: builds + probes under this policy.
            let before = IndexCounters::snapshot();
            eval_program_seminaive(program, &db, &cfg).unwrap();
            let w = before.delta_since();
            h.bench(
                name,
                &format!(
                    "work paths={} obuild={} oprobe={} hbuild={} hprobe={}",
                    policy_name(paths),
                    w.ordered_builds,
                    w.ordered_probes,
                    w.hash_builds,
                    w.hash_probes
                ),
                IndexCounters::snapshot,
            );
            h.bench(
                name,
                &format!("paths={} digest={d:016x}", policy_name(paths)),
                || eval_program_seminaive(program, &db, &cfg).unwrap(),
            );
        }
        let reference = digests[0].1;
        for (which, d) in &digests {
            assert_eq!(
                *d, reference,
                "{name}: digest under {which} differs from selected"
            );
        }
    }
    h.finish();
}
