//! Benches for the fixpoint methods (§7.3) on bound recursive queries
//! — the timing companion to experiment E5.
//!
//! Run: `cargo bench -p ldl-bench --bench recursion`

use ldl_bench::workload::{same_generation, transitive_closure_chains};
use ldl_core::parser::parse_query;
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_storage::Database;
use ldl_support::bench::Harness;

fn main() {
    let mut h = Harness::new("recursion");
    h.set_iters(1, 10);
    for depth in [6usize, 8] {
        let (program, leaf) = same_generation(2, depth);
        let db = Database::from_program(&program);
        let query = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
        let cfg = FixpointConfig::with_max_iterations(200_000);
        for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
            h.bench("sg-bound", &format!("{}/{depth}", m.name()), || {
                evaluate_query(&program, &db, &query, m, &cfg).unwrap()
            });
        }
    }
    let (program, start) = transitive_closure_chains(64, 8);
    let db = Database::from_program(&program);
    let query = parse_query(&format!("tc({start}, Y)?")).unwrap();
    let cfg = FixpointConfig::with_max_iterations(200_000);
    for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
        h.bench("tc-bound", &format!("{}/8x64", m.name()), || {
            evaluate_query(&program, &db, &query, m, &cfg).unwrap()
        });
    }
    h.finish();
}
