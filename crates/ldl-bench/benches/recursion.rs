//! Criterion benches for the fixpoint methods (§7.3) on bound recursive
//! queries — the timing companion to experiment E5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldl_bench::workload::{same_generation, transitive_closure_chains};
use ldl_core::parser::parse_query;
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_storage::Database;
use std::hint::black_box;

fn bench_sg(c: &mut Criterion) {
    let mut group = c.benchmark_group("sg-bound");
    group.sample_size(10);
    for depth in [6usize, 8] {
        let (program, leaf) = same_generation(2, depth);
        let db = Database::from_program(&program);
        let query = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
        let cfg = FixpointConfig { max_iterations: 200_000 };
        for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
            group.bench_with_input(
                BenchmarkId::new(m.name(), depth),
                &(&program, &db, &query),
                |b, (p, d, q)| b.iter(|| black_box(evaluate_query(p, d, q, m, &cfg).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc-bound");
    group.sample_size(10);
    let (program, start) = transitive_closure_chains(64, 8);
    let db = Database::from_program(&program);
    let query = parse_query(&format!("tc({start}, Y)?")).unwrap();
    let cfg = FixpointConfig { max_iterations: 200_000 };
    for m in [Method::SemiNaive, Method::Magic, Method::Counting] {
        group.bench_with_input(
            BenchmarkId::new(m.name(), "8x64"),
            &(&program, &db, &query),
            |b, (p, d, q)| b.iter(|| black_box(evaluate_query(p, d, q, m, &cfg).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sg, bench_tc);
criterion_main!(benches);
