//! p99-focused latency workload for the `ldl-serve` service layer.
//!
//! Stands up an in-process primary [`Server`] on a loopback socket and
//! measures per-operation latency distributions — p50/p95/p99, not
//! just throughput — for the two paths a served application exercises:
//! the transactional commit path (state-restoring retract+insert
//! cycles: WAL append, group fsync, incremental repair, publish) and
//! the pinned-snapshot query path. Each commit scenario runs with 1
//! and 4 concurrent writers; the writers=4 figures show the
//! group-commit batcher coalescing fsyncs (`fsyncs=` vs `commits=` in
//! the labels) and overlapping round trips. Every scenario then
//! repeats **with a live read replica attached** (real `replicate`
//! runner over the wire), and replica-served query latency gets its
//! own record.
//!
//! Every record label embeds the service digest: the workload is
//! state-restoring, so a single digest across the whole JSON means the
//! streamed commits left the state bit-for-bit where it started — and
//! the replica-tagged records embed the **replica's** digest at the
//! same version, pinning exact convergence.
//!
//! Knobs: `LDL_BENCH_ITERS`, `LDL_BENCH_JSON_DIR` as usual.

use ldl_serve::replicate;
use ldl_serve::service::ServiceOptions;
use ldl_serve::{Client, FixpointConfig, Listener, Server, Service};
use ldl_support::bench::Harness;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const RULES: &str = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";
const CHAIN: i64 = 48;

/// One state-restoring commit cycle on writer `w`'s private edge: two
/// commits, no net state change. Distinct writers touch distinct edges
/// so concurrent cycles commute.
fn cycle(c: &mut Client, w: usize, samples: &mut Vec<u128>) {
    let mid = 8 + 8 * w as i64;
    for fact in [
        format!("e({mid}, {}).", mid + 1),
        format!("e({mid}, {}).", mid + 1),
    ] {
        let retract = samples.len().is_multiple_of(2);
        if retract {
            c.retract(&fact).expect("retract");
        } else {
            c.insert(&fact).expect("insert");
        }
        let t0 = Instant::now();
        c.commit().expect("commit");
        samples.push(t0.elapsed().as_nanos());
    }
}

/// Nearest-rank percentile of an unsorted sample set, in microseconds.
fn pctl_us(samples: &mut [u128], p: usize) -> f64 {
    samples.sort_unstable();
    let n = samples.len();
    let rank = ((n * p).div_ceil(100)).clamp(1, n) - 1;
    samples[rank] as f64 / 1_000.0
}

/// Runs `writers` concurrent committers, `cycles` state-restoring
/// cycles each; returns all per-commit latencies plus wall time.
fn commit_workload(addr: &str, writers: usize, cycles: usize) -> (Vec<u128>, f64) {
    let t0 = Instant::now();
    let mut joins = Vec::new();
    for w in 0..writers {
        let addr = addr.to_string();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("writer connect");
            let mut samples = Vec::with_capacity(cycles * 2);
            for _ in 0..cycles {
                cycle(&mut c, w, &mut samples);
            }
            samples
        }));
    }
    let mut all = Vec::new();
    for j in joins {
        all.extend(j.join().expect("writer thread"));
    }
    (all, t0.elapsed().as_secs_f64())
}

/// `n` queries on one session; per-query latencies.
fn query_workload(addr: &str, n: usize) -> Vec<u128> {
    let mut c = Client::connect(addr).expect("reader connect");
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        let rows = c.query("tc(1, Y)?").expect("query");
        samples.push(t0.elapsed().as_nanos());
        assert_eq!(rows.len() as i64, CHAIN - 1, "chain closure wrong");
    }
    samples
}

/// Starts a server for `service` on an ephemeral loopback port.
fn serve(service: Arc<Service>) -> (String, std::thread::JoinHandle<()>) {
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener
        .describe()
        .strip_prefix("tcp://")
        .expect("tcp addr")
        .to_string();
    let server = Server::new(service, listener).with_admin(true);
    (addr, std::thread::spawn(move || server.run().expect("run")))
}

fn scratch(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ldl-bench-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[allow(clippy::too_many_arguments)]
fn commit_scenario(
    h: &mut Harness,
    primary: &Service,
    addr: &str,
    writers: usize,
    cycles: usize,
    replica: Option<&Service>,
    setup_client: &mut Client,
    digest0: &str,
) {
    let before = primary.counters();
    let (mut samples, wall) = commit_workload(addr, writers, cycles);
    let after = primary.counters();
    let commits = after.commits - before.commits;
    let fsyncs = after.fsyncs - before.fsyncs;
    let cps = samples.len() as f64 / wall;
    let (p50, p95, p99) = (
        pctl_us(&mut samples, 50),
        pctl_us(&mut samples, 95),
        pctl_us(&mut samples, 99),
    );

    // The cycles restore the state: the digest must be back at the
    // baseline, on the primary and (once caught up) on the replica.
    setup_client.refresh().expect("refresh");
    let (version, digest) = setup_client.digest().expect("digest");
    assert_eq!(digest, digest0, "writers={writers}: state not restored");
    let tag = match replica {
        None => "off".to_string(),
        Some(r) => {
            await_replica(r, version);
            let rdigest = format!("{:016x}", r.current().digest());
            assert_eq!(rdigest, digest, "replica diverged at version {version}");
            "on".to_string()
        }
    };
    if writers >= 4 {
        assert!(
            fsyncs < commits,
            "group commit never coalesced: {fsyncs} fsyncs for {commits} commits"
        );
    }
    let label = format!(
        "writers={writers} replica={tag} p50us={p50:.0} p95us={p95:.0} p99us={p99:.0} \
         cps={cps:.0} commits={commits} fsyncs={fsyncs} digest={digest}"
    );
    let mut c = Client::connect(addr).expect("record connect");
    let mut sink = Vec::new();
    h.bench(&format!("serve_commit/writers={writers}"), &label, || {
        sink.clear();
        cycle(&mut c, 0, &mut sink)
    });
}

fn await_replica(replica: &Service, version: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while replica.version() < version {
        assert!(
            Instant::now() < deadline,
            "replica stuck at {} wanting {version} (status {:?})",
            replica.version(),
            replica.replication_status()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn query_scenario(h: &mut Harness, group: &str, addr: &str, n: usize, digest: &str) {
    let mut samples = query_workload(addr, n);
    let qps =
        samples.len() as f64 / (samples.iter().sum::<u128>() as f64 / 1e9).max(f64::MIN_POSITIVE);
    let (p50, p95, p99) = (
        pctl_us(&mut samples, 50),
        pctl_us(&mut samples, 95),
        pctl_us(&mut samples, 99),
    );
    let label =
        format!("p50us={p50:.0} p95us={p95:.0} p99us={p99:.0} qps={qps:.0} digest={digest}");
    let mut c = Client::connect(addr).expect("query connect");
    h.bench(group, &label, || c.query("tc(1, Y)?").expect("query").len());
}

fn main() {
    let primary_dir = scratch("primary");
    let replica_dir = scratch("replica");
    let primary =
        Arc::new(Service::open(&primary_dir, &FixpointConfig::serial(), 0).expect("primary open"));
    let (addr, _primary_thread) = serve(primary.clone());

    let mut setup = Client::connect(&addr).expect("connect");
    setup.load(RULES).expect("load rules");
    let facts: String = (1..CHAIN)
        .map(|i| format!("e({i}, {}).\n", i + 1))
        .collect();
    setup.insert(&facts).expect("stage chain");
    setup.commit().expect("commit chain");
    let (_, digest0) = setup.digest().expect("digest");

    let mut h = Harness::new("serve_stream");
    h.set_iters(1, 5);
    let cycles = 50;

    // Primary alone: serial baseline, then 4 concurrent writers whose
    // fsyncs the group-commit batcher coalesces.
    commit_scenario(
        &mut h, &primary, &addr, 1, cycles, None, &mut setup, &digest0,
    );
    commit_scenario(
        &mut h, &primary, &addr, 4, cycles, None, &mut setup, &digest0,
    );
    query_scenario(&mut h, "serve_query/primary", &addr, 200, &digest0);

    // Attach a live replica over the wire and repeat.
    let replica = Arc::new(
        Service::open_with(
            &replica_dir,
            &FixpointConfig::serial(),
            ServiceOptions::replica(0, addr.clone()),
        )
        .expect("replica open"),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let runner = replicate::spawn(replica.clone(), stop.clone());
    await_replica(&replica, primary.version());

    commit_scenario(
        &mut h,
        &primary,
        &addr,
        1,
        cycles,
        Some(&replica),
        &mut setup,
        &digest0,
    );
    commit_scenario(
        &mut h,
        &primary,
        &addr,
        4,
        cycles,
        Some(&replica),
        &mut setup,
        &digest0,
    );

    // Queries served by the replica itself, over its own socket. The
    // record-timing cycles above committed a few more deltas; wait for
    // the stream to drain so the replica pins the restored state.
    await_replica(&replica, primary.version());
    assert_eq!(
        format!("{:016x}", replica.current().digest()),
        digest0,
        "replica not at the restored state before query workload"
    );
    let (raddr, _replica_thread) = serve(replica.clone());
    query_scenario(&mut h, "serve_query/replica", &raddr, 200, &digest0);

    h.finish();
    stop.store(true, Ordering::Relaxed);
    runner.join().expect("runner");
    Client::connect(&raddr)
        .and_then(|mut c| c.shutdown())
        .expect("replica shutdown");
    setup.shutdown().expect("primary shutdown");
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}
