//! Commit/query throughput of the `ldl-serve` service layer.
//!
//! Stands up an in-process [`Server`] on a loopback socket, connects a
//! wire [`Client`], and measures the two paths a served application
//! exercises: the transactional commit path (stage one state-restoring
//! retract+insert cycle, WAL-fsync, repair, publish) and the pinned-
//! snapshot query path. Every record label embeds the service digest so
//! the JSON pins that streamed commits leave the state bit-for-bit
//! where it started; the `cps=`/`qps=` figures give commits and queries
//! per second from a short calibrated pre-run.
//!
//! Knobs: `LDL_BENCH_ITERS`, `LDL_BENCH_JSON_DIR` as usual.

use ldl_serve::{Client, FixpointConfig, Listener, Server, Service};
use ldl_support::bench::Harness;
use std::sync::Arc;
use std::time::Instant;

const RULES: &str = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";

/// One state-restoring commit cycle: retract a mid-chain edge, commit,
/// insert it back, commit. Two commits, no net state change.
fn cycle(c: &mut Client, mid: i64) {
    c.retract(&format!("e({mid}, {}).", mid + 1)).unwrap();
    c.commit().unwrap();
    c.insert(&format!("e({mid}, {}).", mid + 1)).unwrap();
    c.commit().unwrap();
}

fn main() {
    let chain = 48i64;
    let mid = chain / 2;

    let dir = std::env::temp_dir().join(format!("ldl-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service =
        Arc::new(Service::open(&dir, &FixpointConfig::serial(), 0).expect("service open"));
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener
        .describe()
        .strip_prefix("tcp://")
        .expect("tcp addr")
        .to_string();
    let server = Server::new(service, listener);
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut c = Client::connect(&addr).expect("connect");
    c.load(RULES).expect("load rules");
    let facts: String = (1..chain)
        .map(|i| format!("e({i}, {}).\n", i + 1))
        .collect();
    c.insert(&facts).expect("stage chain");
    c.commit().expect("commit chain");

    let mut h = Harness::new("serve_stream");
    h.set_iters(1, 5);
    let name = format!("serve_chain/{chain}");

    // Calibration pre-runs for the throughput figures in the labels.
    let t0 = Instant::now();
    let warm_cycles = 4u32;
    for _ in 0..warm_cycles {
        cycle(&mut c, mid);
    }
    let cps = f64::from(2 * warm_cycles) / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm_queries = 64u32;
    for _ in 0..warm_queries {
        c.query("tc(1, Y)?").expect("query");
    }
    let qps = f64::from(warm_queries) / t0.elapsed().as_secs_f64();

    // The digest before measuring: the state-restoring cycles must
    // bring the service back here every time.
    let (_, digest0) = c.digest().expect("digest");

    h.bench(
        &name,
        &format!("mode=commit cps={cps:.0} digest={digest0}"),
        || cycle(&mut c, mid),
    );

    let (_, digest1) = c.digest().expect("digest");
    assert_eq!(
        digest0, digest1,
        "{name}: streamed commits did not restore the starting state"
    );

    h.bench(
        &name,
        &format!("mode=query qps={qps:.0} digest={digest1}"),
        || c.query("tc(1, Y)?").expect("query").len(),
    );

    h.finish();
    c.shutdown().expect("shutdown");
    server_thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
