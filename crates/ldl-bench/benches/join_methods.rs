//! Benches for the physical join methods (the `EL` label alphabet of
//! §5) — grounds the cost model's method choices.
//!
//! Run: `cargo bench -p ldl-bench --bench join_methods`

use ldl_eval::ops::{join, JoinMethod};
use ldl_storage::{Relation, Tuple};
use ldl_support::bench::Harness;
use ldl_support::SplitMix64;

fn random_relation(n: usize, key_range: i64, seed: u64) -> Relation {
    let mut rng = SplitMix64::seed_from_u64(seed);
    Relation::from_tuples(
        2,
        (0..n).map(|_| Tuple::ints(&[rng.gen_range(0..key_range), rng.gen_range(0..key_range)])),
    )
}

fn main() {
    let mut h = Harness::new("join_methods");
    h.set_iters(2, 10);
    for n in [300usize, 1000, 3000] {
        let left = random_relation(n, n as i64, 1);
        let right = random_relation(n, n as i64, 2);
        for m in JoinMethod::ALL {
            h.bench("join-methods", &format!("{}/{n}", m.name()), || {
                join(&left, &right, &[(1, 0)], m)
            });
        }
    }
    // Small outer, big inner: index join should dominate.
    let outer = random_relation(50, 100_000, 3);
    let inner = random_relation(50_000, 100_000, 4);
    for m in JoinMethod::ALL {
        h.bench("join-selective", &format!("{}/50x50k", m.name()), || {
            join(&outer, &inner, &[(1, 0)], m)
        });
    }
    h.finish();
}
