//! Criterion benches for the physical join methods (the `EL` label
//! alphabet of §5) — grounds the cost model's method choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldl_eval::ops::{join, JoinMethod};
use ldl_storage::{Relation, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_relation(n: usize, key_range: i64, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_tuples(
        2,
        (0..n).map(|_| Tuple::ints(&[rng.gen_range(0..key_range), rng.gen_range(0..key_range)])),
    )
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("join-methods");
    group.sample_size(10);
    for n in [300usize, 1000, 3000] {
        let left = random_relation(n, n as i64, 1);
        let right = random_relation(n, n as i64, 2);
        for m in JoinMethod::ALL {
            group.bench_with_input(
                BenchmarkId::new(m.name(), n),
                &(&left, &right),
                |b, (l, r)| b.iter(|| black_box(join(l, r, &[(1, 0)], m))),
            );
        }
    }
    group.finish();
}

fn bench_selective_probe(c: &mut Criterion) {
    // Small outer, big inner: index join should dominate.
    let mut group = c.benchmark_group("join-selective");
    group.sample_size(10);
    let outer = random_relation(50, 100_000, 3);
    let inner = random_relation(50_000, 100_000, 4);
    for m in JoinMethod::ALL {
        group.bench_with_input(
            BenchmarkId::new(m.name(), "50x50k"),
            &(&outer, &inner),
            |b, (l, r)| b.iter(|| black_box(join(l, r, &[(1, 0)], m))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_joins, bench_selective_probe);
criterion_main!(benches);
