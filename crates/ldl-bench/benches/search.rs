//! Benches for the three search strategies (§7.1) across conjunct
//! sizes — the timing companion to experiments E1–E3.
//!
//! Run: `cargo bench -p ldl-bench --bench search`
//! (writes `BENCH_search.json`; see `ldl_support::bench` for env knobs).

use ldl_bench::workload::{random_join_graph, Shape};
use ldl_optimizer::search::anneal::{optimize_anneal, AnnealParams};
use ldl_optimizer::search::exhaustive::{optimize_dp, optimize_dp_connected, optimize_exhaustive};
use ldl_optimizer::search::kbz::optimize_kbz;
use ldl_support::bench::Harness;

fn main() {
    let mut h = Harness::new("search");
    h.set_iters(2, 10);
    for n in [6usize, 8, 10] {
        let g = random_join_graph(Shape::Random, n, 0xBEEF ^ n as u64);
        if n <= 9 {
            h.bench("search", &format!("exhaustive/{n}"), || {
                optimize_exhaustive(&g)
            });
        }
        h.bench("search", &format!("dp/{n}"), || optimize_dp(&g));
        h.bench("search", &format!("dp-connected/{n}"), || {
            optimize_dp_connected(&g)
        });
        h.bench("search", &format!("kbz/{n}"), || optimize_kbz(&g));
        let params = AnnealParams {
            max_probes: 2000,
            ..AnnealParams::default()
        };
        h.bench("search", &format!("anneal/{n}"), || {
            optimize_anneal(&g, &params, 7)
        });
    }
    for n in [16usize, 20] {
        let g = random_join_graph(Shape::Chain, n, 0xFACE ^ n as u64);
        h.bench("search-large", &format!("kbz/{n}"), || optimize_kbz(&g));
        h.bench("search-large", &format!("dp/{n}"), || optimize_dp(&g));
    }
    h.finish();
}
