//! Criterion benches for the three search strategies (§7.1) across
//! conjunct sizes — the timing companion to experiments E1–E3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldl_bench::workload::{random_join_graph, Shape};
use ldl_optimizer::search::anneal::{optimize_anneal, AnnealParams};
use ldl_optimizer::search::exhaustive::{optimize_dp, optimize_dp_connected, optimize_exhaustive};
use ldl_optimizer::search::kbz::optimize_kbz;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    for n in [6usize, 8, 10] {
        let g = random_join_graph(Shape::Random, n, 0xBEEF ^ n as u64);
        if n <= 9 {
            group.bench_with_input(BenchmarkId::new("exhaustive", n), &g, |b, g| {
                b.iter(|| black_box(optimize_exhaustive(g)))
            });
        }
        group.bench_with_input(BenchmarkId::new("dp", n), &g, |b, g| {
            b.iter(|| black_box(optimize_dp(g)))
        });
        group.bench_with_input(BenchmarkId::new("dp-connected", n), &g, |b, g| {
            b.iter(|| black_box(optimize_dp_connected(g)))
        });
        group.bench_with_input(BenchmarkId::new("kbz", n), &g, |b, g| {
            b.iter(|| black_box(optimize_kbz(g)))
        });
        let params = AnnealParams { max_probes: 2000, ..AnnealParams::default() };
        group.bench_with_input(BenchmarkId::new("anneal", n), &g, |b, g| {
            b.iter(|| black_box(optimize_anneal(g, &params, 7)))
        });
    }
    group.finish();
}

fn bench_large_kbz(c: &mut Criterion) {
    let mut group = c.benchmark_group("search-large");
    group.sample_size(20);
    for n in [16usize, 20] {
        let g = random_join_graph(Shape::Chain, n, 0xFACE ^ n as u64);
        group.bench_with_input(BenchmarkId::new("kbz", n), &g, |b, g| {
            b.iter(|| black_box(optimize_kbz(g)))
        });
        group.bench_with_input(BenchmarkId::new("dp", n), &g, |b, g| {
            b.iter(|| black_box(optimize_dp(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_large_kbz);
criterion_main!(benches);
