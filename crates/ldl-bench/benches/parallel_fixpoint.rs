//! Serial-vs-parallel scaling of the semi-naive fixpoint.
//!
//! Runs the full (unbound) semi-naive evaluation of the recursive
//! workloads at 1, 2, and 4 worker threads and records the timings to
//! `BENCH_parallel_fixpoint.json`. Every label embeds a digest of the
//! complete result — all derived relations in insertion order plus the
//! metrics — so any nondeterminism across thread counts is visible in
//! the JSON (and asserted here): the speedup must come with bit-for-bit
//! identical answers.
//!
//! Knobs: `LDL_PARFIX_SCALE=full` for the larger workloads,
//! `LDL_BENCH_ITERS`, `LDL_BENCH_JSON_DIR` as usual. The recorded
//! `meta/cores=N` label documents the machine's available parallelism —
//! on a single-core host the parallel runs measure overhead, not
//! speedup.

use ldl_bench::workload::{same_generation, transitive_closure_chains};
use ldl_core::{Pred, Program};
use ldl_eval::seminaive::eval_program_seminaive;
use ldl_eval::FixpointConfig;
use ldl_storage::Database;
use ldl_support::bench::Harness;

/// FNV-1a over the evaluation result: relations (predicates sorted for
/// a canonical traversal, rows in insertion order) and metrics.
fn digest(program: &Program, db: &Database, cfg: &FixpointConfig) -> u64 {
    let (derived, metrics) = eval_program_seminaive(program, db, cfg).unwrap();
    let mut preds: Vec<Pred> = derived.keys().copied().collect();
    preds.sort_by_key(|p| (p.to_string(), p.arity));
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in preds {
        eat(&format!("{p}:"));
        for row in derived[&p].rows() {
            eat(&format!("{row};"));
        }
    }
    eat(&format!("{metrics}"));
    h
}

fn main() {
    let full = std::env::var("LDL_PARFIX_SCALE").as_deref() == Ok("full");
    let (tc_len, tc_comps, sg_depth) = if full { (160, 10, 10) } else { (64, 6, 8) };

    let mut h = Harness::new("parallel_fixpoint");
    h.set_iters(1, 5);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    h.bench("meta", &format!("cores={cores}"), || cores);

    let workloads = [
        (
            format!("tc/{tc_comps}x{tc_len}"),
            transitive_closure_chains(tc_len, tc_comps).0,
        ),
        (format!("sg/2^{sg_depth}"), same_generation(2, sg_depth).0),
    ];
    for (name, program) in &workloads {
        let db = Database::from_program(program);
        let mut digests: Vec<(String, u64)> = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = FixpointConfig::default().with_threads(threads);
            let d = digest(program, &db, &cfg);
            digests.push((format!("{threads} threads"), d));
            h.bench(name, &format!("threads={threads} digest={d:016x}"), || {
                eval_program_seminaive(program, &db, &cfg).unwrap()
            });
        }
        // The default picks up `LDL_EVAL_THREADS` / the core count —
        // this is the record CI diffs across environment settings.
        let cfg = FixpointConfig::default();
        let d = digest(program, &db, &cfg);
        digests.push((format!("default ({} threads)", cfg.threads), d));
        h.bench(name, &format!("threads=default digest={d:016x}"), || {
            eval_program_seminaive(program, &db, &cfg).unwrap()
        });
        let reference = digests[0].1;
        for (which, d) in &digests {
            assert_eq!(
                *d, reference,
                "{name}: digest at {which} differs from serial"
            );
        }
    }
    h.finish();
}
