//! Bench for the `MP` dimension: the pipelined executor (index nested
//! loops with sideways information passing) vs the materialized
//! executor (full intermediate relations) on the same rule bodies,
//! selective and non-selective.
//!
//! Run: `cargo bench -p ldl-bench --bench materialization`

use ldl_core::parser::parse_program;
use ldl_core::unify::Subst;
use ldl_core::{Pred, Program};
use ldl_eval::materialized::eval_rule_materialized;
use ldl_eval::ops::JoinMethod;
use ldl_eval::rule_eval::{eval_rule, OverlaySource};
use ldl_storage::{Database, Relation};
use ldl_support::bench::Harness;
use std::fmt::Write as _;

fn chain_program(n_edges: usize) -> Program {
    let mut text = String::new();
    for i in 0..n_edges {
        writeln!(text, "e({}, {}).", i, i + 1).unwrap();
        writeln!(text, "f({}, {}).", i + 1, i + 2).unwrap();
    }
    // Selective: the constant pins the pipeline's start.
    writeln!(text, "sel(Z) <- e(0, Y), f(Y, Z).").unwrap();
    // Non-selective: full join.
    writeln!(text, "all(X, Z) <- e(X, Y), f(Y, Z).").unwrap();
    parse_program(&text).unwrap()
}

fn main() {
    let mut h = Harness::new("materialization");
    h.set_iters(2, 10);
    for n in [1000usize, 5000] {
        let program = chain_program(n);
        let db = Database::from_program(&program);
        for (label, rule_idx) in [("selective", 0usize), ("full-join", 1usize)] {
            let rule = program.rules[rule_idx].clone();
            let order: Vec<usize> = (0..rule.body.len()).collect();
            h.bench(
                "pipeline-vs-materialize",
                &format!("pipelined-{label}/{n}"),
                || {
                    let source = OverlaySource {
                        base: |p: Pred| db.relation(p),
                        overlay: None,
                        restrict: None,
                    };
                    let mut out = Relation::new(rule.head.args.len());
                    eval_rule(&rule, &order, &Subst::new(), &source, &mut |t| {
                        out.insert(t);
                    })
                    .unwrap();
                    out
                },
            );
            h.bench(
                "pipeline-vs-materialize",
                &format!("materialized-{label}/{n}"),
                || {
                    let source = OverlaySource {
                        base: |p: Pred| db.relation(p),
                        overlay: None,
                        restrict: None,
                    };
                    eval_rule_materialized(&rule, &order, JoinMethod::Hash, &source).unwrap()
                },
            );
        }
    }
    h.finish();
}
