//! Estimate-quality bench: how close is the optimizer's predicted
//! answer count to the truth, with and without the inferred
//! [`EstimateCatalog`]?
//!
//! For each workload the bench runs the query once for ground truth,
//! optimizes it twice — with the uniform defaults and with
//! `with_inferred_estimates()` — and records the absolute log10 error
//! of `estimated_answers` for both in the record label, along with an
//! FNV digest of the canonical answer set (so the JSON doubles as a
//! determinism witness for the digest-diff gate in `scripts/ci.sh`).
//!
//! The bench asserts the acceptance bar directly: the catalog error is
//! never worse than the uniform error on any workload, and strictly
//! better on at least one (the recursive ones — base-relation stats
//! are measured either way, so non-recursive plans must not move).
//!
//! Run: `cargo bench -p ldl-bench --bench absint_estimates`

use ldl_bench::workload::{range_scan, same_generation, transitive_closure_chains};
use ldl_core::parser::parse_query;
use ldl_core::Program;
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_optimizer::Optimizer;
use ldl_storage::Database;
use ldl_support::bench::Harness;

/// FNV-1a over the canonical answer rows.
fn digest(rows: &ldl_storage::Relation) -> u64 {
    let mut lines: Vec<String> = rows.rows().iter().map(|r| r.to_string()).collect();
    lines.sort_unstable();
    let mut h: u64 = 0xcbf29ce484222325;
    for line in lines {
        for b in line.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// |log10((est + 1) / (true + 1))| — symmetric over/under-estimation
/// error in orders of magnitude.
fn log_error(est: f64, truth: f64) -> f64 {
    ((est + 1.0).log10() - (truth + 1.0).log10()).abs()
}

fn main() {
    let mut h = Harness::new("absint_estimates");
    h.set_iters(1, 3);

    let workloads: Vec<(String, Program, &str)> = vec![
        (
            "tc-chain/1x60".into(),
            transitive_closure_chains(60, 1).0,
            "tc(A, B)?",
        ),
        ("sg/2^6".into(), same_generation(2, 6).0, "sg(A, B)?"),
        ("range/8x40 hit".into(), range_scan(8, 40), "hit(A, B)?"),
        ("range/8x40 top".into(), range_scan(8, 40), "top(A)?"),
    ];

    let mut improved = 0usize;
    for (name, program, qtext) in &workloads {
        let db = Database::from_program(program);
        let q = parse_query(qtext).unwrap();
        let mut answers = evaluate_query(
            &program.clone(),
            &db,
            &q,
            Method::SemiNaive,
            &FixpointConfig::serial(),
        )
        .expect("ground-truth evaluation")
        .tuples;
        answers.canonicalize();
        let truth = answers.len() as f64;
        let d = digest(&answers);

        let uniform = Optimizer::with_defaults(program, &db)
            .optimize(&q)
            .expect("uniform optimize");
        let catalog = Optimizer::with_defaults(program, &db)
            .with_inferred_estimates()
            .optimize(&q)
            .expect("catalog optimize");
        let err_u = log_error(uniform.estimated_answers, truth);
        let err_c = log_error(catalog.estimated_answers, truth);
        assert!(
            err_c <= err_u + 1e-9,
            "{name}: catalog error {err_c:.3} worse than uniform {err_u:.3} \
             (est {:.1} vs {:.1}, truth {truth})",
            catalog.estimated_answers,
            uniform.estimated_answers
        );
        if err_c + 1e-9 < err_u {
            improved += 1;
        }

        h.bench(
            name,
            &format!(
                "answers={truth} est_uniform={:.1} est_catalog={:.1} \
                 err_uniform={err_u:.3} err_catalog={err_c:.3} digest={d:016x}",
                uniform.estimated_answers, catalog.estimated_answers
            ),
            || {
                Optimizer::with_defaults(program, &db)
                    .with_inferred_estimates()
                    .optimize(&q)
                    .unwrap()
                    .estimated_answers
            },
        );
    }
    assert!(
        improved >= 1,
        "the inferred catalog improved the answer estimate on no workload"
    );
    h.bench(
        "summary",
        &format!("improved={improved}/{} no_worse=true", workloads.len()),
        || improved,
    );
    h.finish();
}
