//! Fixed-width text tables for experiment output.

use std::fmt;

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: row from displayable items.
    pub fn rowd(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let v: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&v)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (c, cell) in cells.iter().enumerate() {
                write!(f, " {cell:<w$} |", w = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float compactly (3 significant-ish digits).
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return "inf".to_string();
    }
    if x == 0.0 {
        return "0".to_string();
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.3e}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "100000".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{s}");
        assert!(s.contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(f64::INFINITY), "inf");
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(5.0), "5.000");
        assert_eq!(fnum(42.5), "42.5");
        assert!(fnum(123456.0).contains('e'));
    }
}
