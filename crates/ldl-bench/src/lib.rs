//! # ldl-bench — workloads and experiment harness
//!
//! Generators for the randomized workloads behind the paper's
//! quantitative claims (the [Vil 87] protocol of random queries over
//! random database states, plus the recursive workloads its motivating
//! examples use), a tiny fixed-width table printer, and one binary per
//! experiment (`e1_kbz_quality` … `e8_cost_spectrum` — see DESIGN.md §4
//! for the experiment index and EXPERIMENTS.md for recorded results).

pub mod table;
pub mod workload;

pub use table::Table;
