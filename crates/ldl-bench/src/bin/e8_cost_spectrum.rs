//! E8 — the execution-space cost spectrum (§6).
//!
//! "Typically, the cost spectrum of the executions in an execution space
//! spans many orders of magnitude […] It is more important to avoid the
//! worst executions than to obtain the best execution." We enumerate the
//! full permutation space of random conjunctive queries and report
//! min / median / max costs, the max/min ratio, and where the three
//! strategies' picks land in that spectrum. A second table shows a rule
//! with evaluable predicates, where part of the spectrum is literally
//! infinite (unsafe orderings).
//!
//! Run: `cargo run --release -p ldl-bench --bin e8_cost_spectrum`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::{random_join_graph, Shape};
use ldl_core::parser::{parse_program, parse_query};
use ldl_core::Pred;
use ldl_optimizer::search::anneal::{optimize_anneal, AnnealParams};
use ldl_optimizer::search::exhaustive::optimize_dp;
use ldl_optimizer::search::kbz::optimize_kbz;
use ldl_optimizer::{OptConfig, Optimizer, Strategy};
use ldl_storage::{Database, Stats};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    println!("E8: cost spectrum across the execution space\n");
    let mut t = Table::new(&[
        "shape", "n", "min", "median", "max", "max/min", "dp-pick", "kbz-pick", "sa-pick",
    ]);
    for shape in Shape::ALL {
        for n in [6usize, 8] {
            let g = random_join_graph(shape, n, 0xE8 ^ (n as u64) << 4 ^ shape as u64);
            // Enumerate the whole space.
            let mut costs = Vec::new();
            let mut perm: Vec<usize> = (0..n).collect();
            permute(&mut perm, 0, &mut |p| costs.push(g.sequence_cost(p)));
            costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let min = costs[0];
            let dp = optimize_dp(&g).cost;
            let kbz = optimize_kbz(&g).cost;
            let sa = optimize_anneal(&g, &AnnealParams::default(), 7).cost;
            t.row(&[
                shape.name().to_string(),
                n.to_string(),
                fnum(min),
                fnum(percentile(&costs, 0.5)),
                fnum(*costs.last().unwrap()),
                fnum(costs.last().unwrap() / min),
                fnum(dp / min),
                fnum(kbz / min),
                fnum(sa / min),
            ]);
        }
    }
    println!("(strategy picks shown as ratio to the true minimum)");
    println!("{t}");

    // Spectrum with unsafe orderings: the optimizer's view of a rule
    // containing evaluable predicates.
    println!("spectrum of a rule with evaluable predicates (unsafe orders = inf):");
    let text = "q(X, Z) <- a(X, Y), Y > 10, W = Y * 2, b(W, Z).";
    let program = parse_program(text).unwrap();
    let mut db = Database::new();
    db.set_stats(Pred::new("a", 2), Stats::uniform(10_000.0, 2, 1_000.0));
    db.set_stats(Pred::new("b", 2), Stats::uniform(10_000.0, 2, 1_000.0));
    let opt = Optimizer::new(
        &program,
        &db,
        OptConfig {
            strategy: Strategy::Exhaustive,
            ..OptConfig::default()
        },
    );
    let query = parse_query("q(1, Z)?").unwrap();
    let rule = &program.rules[0];
    let head_ad = query.adornment();
    let mut finite = Vec::new();
    let mut unsafe_orders = 0usize;
    let mut perm: Vec<usize> = (0..rule.body.len()).collect();
    permute(&mut perm, 0, &mut |p| {
        let (c, _) = opt.order_cost(rule, head_ad, p);
        if c.is_finite() {
            finite.push(c);
        } else {
            unsafe_orders += 1;
        }
    });
    finite.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let chosen = opt.optimize(&query).unwrap();
    let mut t = Table::new(&[
        "orders",
        "unsafe",
        "min",
        "max",
        "max/min",
        "optimizer-pick/min",
    ]);
    t.row(&[
        (finite.len() + unsafe_orders).to_string(),
        unsafe_orders.to_string(),
        fnum(finite[0]),
        fnum(*finite.last().unwrap()),
        fnum(finite.last().unwrap() / finite[0]),
        fnum(chosen.cost / finite[0]),
    ]);
    println!("{t}");
    println!(
        "Expected shape: spectra span orders of magnitude; every strategy\n\
         pick sits at or near 1.0x of the minimum; unsafe orderings are\n\
         priced at infinity and never chosen."
    );
}

fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        visit(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, visit);
        perm.swap(k, i);
    }
}
