//! E5 — recursive methods on bound queries (§7.3).
//!
//! The paper adopts magic sets [BMSU 85] and generalized counting
//! [SZ 86] because they "produce some of the most efficient and general
//! algorithms to support recursion". We execute the same bound
//! same-generation and transitive-closure queries under all four
//! methods and report tuples derived and wall time. Expected ordering on
//! bound queries: counting ≤ magic ≪ semi-naive < naive.
//!
//! Run: `cargo run --release -p ldl-bench --bin e5_recursive_methods`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::{same_generation, transitive_closure_chains};
use ldl_core::parser::parse_query;
use ldl_core::Program;
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_storage::Database;
use std::time::Instant;

fn run_methods(title: &str, program: &Program, qtext: &str, max_iterations: usize) {
    println!("{title} — query {qtext}");
    let db = Database::from_program(program);
    let query = parse_query(qtext).unwrap();
    let cfg = FixpointConfig::with_max_iterations(max_iterations);
    let mut t = Table::new(&[
        "method",
        "answers",
        "tuples-derived",
        "tuples-produced",
        "iterations",
        "ms",
    ]);
    let mut reference: Option<usize> = None;
    for m in Method::ALL {
        let start = Instant::now();
        match evaluate_query(program, &db, &query, m, &cfg) {
            Ok(ans) => {
                let ms = start.elapsed().as_secs_f64() * 1000.0;
                if let Some(r) = reference {
                    assert_eq!(r, ans.tuples.len(), "method {} disagrees", m.name());
                } else {
                    reference = Some(ans.tuples.len());
                }
                t.row(&[
                    m.name().to_string(),
                    ans.tuples.len().to_string(),
                    ans.metrics.tuples_derived.to_string(),
                    ans.metrics.tuples_produced.to_string(),
                    ans.metrics.iterations.to_string(),
                    fnum(ms),
                ]);
            }
            Err(e) => {
                t.row(&[
                    m.name().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("error: {e}"),
                ]);
            }
        }
    }
    println!("{t}");
}

fn main() {
    println!("E5: fixpoint methods on bound recursive queries\n");

    for depth in [6usize, 8, 10] {
        let (program, leaf) = same_generation(2, depth);
        run_methods(
            &format!(
                "same-generation, binary tree depth {depth} ({} facts)",
                program.facts.len()
            ),
            &program,
            &format!("sg({leaf}, Y)?"),
            200_000,
        );
    }

    for (len, comps) in [(64usize, 8usize), (128, 16), (256, 16)] {
        let (program, start) = transitive_closure_chains(len, comps);
        run_methods(
            &format!("transitive closure, {comps} chains x {len} edges"),
            &program,
            &format!("tc({start}, Y)?"),
            200_000,
        );
    }

    println!(
        "Expected shape: for bound queries, magic/counting derive a small\n\
         fraction of what naive/semi-naive derive (they never leave the\n\
         relevant component), and naive re-derives everything each round."
    );
}
