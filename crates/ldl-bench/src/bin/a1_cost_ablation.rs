//! A1 — cost-model ablation (the design choices DESIGN.md §7 flags).
//!
//! §6 of the paper: "even an inexact cost model can achieve this goal
//! reasonably well" — the model's job is to separate good executions
//! from bad, and its *constants* should mostly shift break-even points,
//! not invert orderings. We sweep the two clique-costing constants
//! (`magic_reach`, `counting_advantage`) and report which method the
//! optimizer picks for bound/free same-generation queries, exposing the
//! flip points.
//!
//! Run: `cargo run --release -p ldl-bench --bin a1_cost_ablation`

use ldl_bench::table::Table;
use ldl_bench::workload::same_generation;
use ldl_core::parser::parse_query;
use ldl_optimizer::{CostParams, OptConfig, Optimizer};
use ldl_storage::Database;

fn main() {
    println!("A1: cost-parameter ablation — method choice vs constants\n");
    let (program, leaf) = same_generation(2, 8);
    let db = Database::from_program(&program);
    let bound_q = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
    let free_q = parse_query("sg(X, Y)?").unwrap();

    let mut t = Table::new(&[
        "magic_reach",
        "counting_advantage",
        "bound-query method",
        "free-query method",
    ]);
    for reach in [1.0, 20.0, 400.0, 100_000.0] {
        for adv in [0.5, 0.7, 0.99, 1.5] {
            let cfg = OptConfig {
                assume_acyclic: true,
                cost_params: CostParams {
                    magic_reach: reach,
                    counting_advantage: adv,
                    ..CostParams::default()
                },
                ..OptConfig::default()
            };
            let opt = Optimizer::new(&program, &db, cfg);
            let b = opt.optimize(&bound_q).unwrap();
            let f = opt.optimize(&free_q).unwrap();
            t.row(&[
                format!("{reach}"),
                format!("{adv}"),
                format!("{:?}", b.method),
                format!("{:?}", f.method),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Expected shape: the free query never flips away from semi-naive;\n\
         the bound query flips counting -> magic as the counting advantage\n\
         passes 1.0, and magic/counting -> semi-naive only when magic_reach\n\
         is cranked so high that binding propagation looks useless. The\n\
         orderings themselves (naive worst, binding propagation best for\n\
         selective queries) survive every setting — the paper's point."
    );
}
