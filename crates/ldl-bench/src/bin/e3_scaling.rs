//! E3 — optimizer time complexity across strategies (§7.2).
//!
//! The paper: exhaustive enumeration is `O(n!)`; Selinger DP improves it
//! to `O(n·2ⁿ)` ("the n! permutations reduce to 2ⁿ choices"); KBZ is
//! quadratic; commercial systems "must limit the queries to no more than
//! 10 or 15 joins" under the exhaustive regime. We sweep conjunct sizes
//! and report wall-clock time and probes per strategy, making the
//! feasibility cliff visible.
//!
//! Run: `cargo run --release -p ldl-bench --bin e3_scaling`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::{random_join_graph, wide_join_rule, Shape};
use ldl_core::parser::parse_query;
use ldl_optimizer::search::anneal::{optimize_anneal, AnnealParams};
use ldl_optimizer::search::exhaustive::{optimize_dp, optimize_exhaustive};
use ldl_optimizer::search::kbz::optimize_kbz;
use ldl_optimizer::{OptConfig, Optimizer, Strategy};
use std::time::Instant;

fn main() {
    println!("E3: search-strategy scaling (time per optimization, probes)\n");
    let reps = 5;
    let mut t = Table::new(&[
        "n",
        "exhaustive-us",
        "ex-probes",
        "dp-us",
        "dp-probes",
        "kbz-us",
        "anneal-us",
        "anneal-probes",
    ]);
    for n in [4usize, 6, 8, 9, 10, 11, 14, 18] {
        let graphs: Vec<_> = (0..reps)
            .map(|s| random_join_graph(Shape::Random, n, (n as u64) << 8 | s))
            .collect();

        let (ex_us, ex_probes) = if n <= 10 {
            let start = Instant::now();
            let mut probes = 0;
            for g in &graphs {
                probes += optimize_exhaustive(g).probes;
            }
            (
                fnum(start.elapsed().as_micros() as f64 / reps as f64),
                fnum(probes as f64 / reps as f64),
            )
        } else {
            ("-".into(), "-".into())
        };

        let (dp_us, dp_probes) = {
            let start = Instant::now();
            let mut probes = 0;
            for g in &graphs {
                probes += optimize_dp(g).probes;
            }
            (
                fnum(start.elapsed().as_micros() as f64 / reps as f64),
                fnum(probes as f64 / reps as f64),
            )
        };

        let kbz_us = {
            let start = Instant::now();
            for g in &graphs {
                optimize_kbz(g);
            }
            fnum(start.elapsed().as_micros() as f64 / reps as f64)
        };

        let (an_us, an_probes) = {
            let params = AnnealParams {
                max_probes: 4000,
                ..AnnealParams::default()
            };
            let start = Instant::now();
            let mut probes = 0;
            for (i, g) in graphs.iter().enumerate() {
                probes += optimize_anneal(g, &params, i as u64).probes;
            }
            (
                fnum(start.elapsed().as_micros() as f64 / reps as f64),
                fnum(probes as f64 / reps as f64),
            )
        };

        t.row(&[
            n.to_string(),
            ex_us,
            ex_probes,
            dp_us,
            dp_probes,
            kbz_us,
            an_us,
            an_probes,
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: exhaustive explodes factorially (infeasible past\n\
         ~10 relations), DP grows as n·2^n, KBZ stays polynomial, and\n\
         annealing's probe budget is flat by construction."
    );

    // E3 successor: the memoized enumerator on full rule bodies (the
    // integrated optimizer, not the bare join-graph searchers), where
    // the exact Pareto memo replaces the n! sweep.
    println!("\nE3 successor: memoized rule enumeration (Strategy::Memo)\n");
    let mut t = Table::new(&["n", "memo-us", "explored", "memo-hits", "n!"]);
    for n in [4usize, 6, 8, 10, 12, 14] {
        let (program, db) = wide_join_rule(n, (n as u64) << 4 | 1);
        let query = parse_query("q(A, B)?").unwrap();
        let start = Instant::now();
        let plan = Optimizer::new(
            &program,
            &db,
            OptConfig {
                strategy: Strategy::Memo,
                ..OptConfig::default()
            },
        )
        .optimize(&query)
        .unwrap();
        let us = start.elapsed().as_micros() as f64;
        t.row(&[
            n.to_string(),
            fnum(us),
            fnum(plan.stats.explored_plans as f64),
            fnum(plan.stats.enum_memo_hits as f64),
            fnum((1..=n).map(|k| k as f64).product()),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: explored prefixes track the Pareto frontier sizes,\n\
         orders of magnitude below n! while returning the same minimum\n\
         (the oracle test pins the equality at n <= 6)."
    );
}
