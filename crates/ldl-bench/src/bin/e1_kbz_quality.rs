//! E1 — KBZ quadratic algorithm vs exhaustive optimum ([Vil 87] protocol).
//!
//! §7.1 of the paper: "the quadratic algorithm chooses the optimal
//! permutation in most cases and in more than 90% of the cases, it
//! produces no worse than twice/thrice the optimal." We reproduce the
//! protocol: random queries (four shapes, n = 4..10) over random
//! database states, 200 samples per cell.
//!
//! Two reference optima are reported:
//! * `vs connected-opt` — the best *connected* (cross-product-free)
//!   order, the space System R searches and the one KBZ provably
//!   optimizes on trees: chain/star rows must be 100% optimal here;
//! * `vs full-opt` — the unrestricted optimum including cross-product
//!   prefixes, a strictly harder yardstick.
//!
//! Run: `cargo run --release -p ldl-bench --bin e1_kbz_quality`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::{random_join_graph, Shape};
use ldl_optimizer::search::exhaustive::{optimize_dp, optimize_dp_connected};
use ldl_optimizer::search::kbz::optimize_kbz;

struct Cell {
    optimal: usize,
    within2: usize,
    within3: usize,
    worst: f64,
    log_sum: f64,
}

impl Cell {
    fn new() -> Cell {
        Cell {
            optimal: 0,
            within2: 0,
            within3: 0,
            worst: 1.0,
            log_sum: 0.0,
        }
    }

    fn add(&mut self, ratio: f64) {
        if ratio <= 1.0 + 1e-9 {
            self.optimal += 1;
        }
        if ratio <= 2.0 {
            self.within2 += 1;
        }
        if ratio <= 3.0 {
            self.within3 += 1;
        }
        self.worst = self.worst.max(ratio);
        self.log_sum += ratio.max(1.0).ln();
    }
}

fn main() {
    let samples = 200u64;
    println!("E1: KBZ vs optimal on random conjunctive queries");
    println!("({samples} samples per shape/size; cells evaluated in parallel)\n");
    let mut t = Table::new(&[
        "shape",
        "n",
        "opt%(conn)",
        "w2x%(conn)",
        "w3x%(conn)",
        "geomean(conn)",
        "opt%(full)",
        "w2x%(full)",
        "w3x%(full)",
    ]);
    // One worker per (shape, n) cell — embarrassingly parallel.
    let cells: Vec<(Shape, usize)> = Shape::ALL
        .iter()
        .flat_map(|&s| [4usize, 6, 8, 10].map(|n| (s, n)))
        .collect();
    let results: Vec<(Shape, usize, Cell, Cell)> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|&(shape, n)| {
                scope.spawn(move || {
                    let mut conn = Cell::new();
                    let mut full = Cell::new();
                    for s in 0..samples {
                        let seed = (n as u64) << 32 | s << 3 | shape_id(shape);
                        let g = random_join_graph(shape, n, seed);
                        let best_full = optimize_dp(&g);
                        let best_conn = optimize_dp_connected(&g);
                        let kbz = optimize_kbz(&g);
                        conn.add(safe_ratio(kbz.cost, best_conn.cost));
                        full.add(safe_ratio(kbz.cost, best_full.cost));
                    }
                    (shape, n, conn, full)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for (shape, n, conn, full) in results {
        let pct = |k: usize| format!("{:.1}", 100.0 * k as f64 / samples as f64);
        t.row(&[
            shape.name().to_string(),
            n.to_string(),
            pct(conn.optimal),
            pct(conn.within2),
            pct(conn.within3),
            fnum((conn.log_sum / samples as f64).exp()),
            pct(full.optimal),
            pct(full.within2),
            pct(full.within3),
        ]);
    }
    println!("{t}");
    println!(
        "Paper's claim: optimal in most cases; >90% within 2-3x of optimal.\n\
         Tree shapes (chain/star) must be 100% optimal vs the connected\n\
         optimum — that is the [KBZ 86] exactness theorem; cycle/random\n\
         rows show the spanning-tree heuristic the paper reports as\n\
         'heuristically effective'."
    );
}

fn safe_ratio(cost: f64, best: f64) -> f64 {
    if best > 0.0 {
        cost / best
    } else {
        1.0
    }
}

fn shape_id(s: Shape) -> u64 {
    match s {
        Shape::Chain => 0,
        Shape::Star => 1,
        Shape::Cycle => 2,
        Shape::Random => 3,
    }
}
