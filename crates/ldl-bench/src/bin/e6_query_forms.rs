//! E6 — optimization is query-form-specific (§2).
//!
//! "The execution strategy chosen for a query P1(x, y)? may be
//! inefficient for a query P1(c, y)? or an execution designed for
//! P1(c, y)? may be unsafe for P1(x, y)?." We optimize the same
//! predicate under different binding patterns and show: (a) the chosen
//! join orders differ, (b) the chosen recursive methods differ, and
//! (c) executing a query with the *other* form's plan costs measurably
//! more (estimated and measured).
//!
//! Run: `cargo run --release -p ldl-bench --bin e6_query_forms`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::same_generation;
use ldl_core::parser::{parse_program, parse_query};
use ldl_core::Pred;
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_optimizer::opt::PredPlanKind;
use ldl_optimizer::{OptConfig, Optimizer};
use ldl_storage::{Database, Stats};
use std::time::Instant;

fn main() {
    println!("E6: query-form-specific plans\n");

    // (a) Nonrecursive: order flips with the binding.
    let text = "q(X, Z) <- a(X, Y), b(Y, Z).";
    let program = parse_program(text).unwrap();
    let mut db = Database::new();
    db.set_stats(Pred::new("a", 2), Stats::uniform(50_000.0, 2, 5_000.0));
    db.set_stats(Pred::new("b", 2), Stats::uniform(50_000.0, 2, 5_000.0));
    let opt = Optimizer::with_defaults(&program, &db);
    let mut t = Table::new(&["query form", "chosen order", "est. cost"]);
    for q in ["q(1, Z)?", "q(X, 1)?", "q(X, Z)?"] {
        let o = opt.optimize(&parse_query(q).unwrap()).unwrap();
        let order = match &o.plan.kind {
            PredPlanKind::Union(rules) => format!("{:?}", rules[0].order),
            _ => "-".into(),
        };
        t.row(&[q.to_string(), order, fnum(o.cost)]);
    }
    println!("join order follows the binding (rule: q(X,Z) <- a(X,Y), b(Y,Z)):");
    println!("{t}");

    // (b)+(c) Recursive: method flips with the binding; cross-use hurts.
    let (sg, leaf) = same_generation(2, 9);
    let sgdb = Database::from_program(&sg);
    let opt = Optimizer::new(
        &sg,
        &sgdb,
        OptConfig {
            assume_acyclic: true,
            ..OptConfig::default()
        },
    );
    let bound_q = parse_query(&format!("sg({leaf}, Y)?")).unwrap();
    let free_q = parse_query("sg(X, Y)?").unwrap();
    let bound_plan = opt.optimize(&bound_q).unwrap();
    let free_plan = opt.optimize(&free_q).unwrap();
    println!(
        "recursive sg: bound form chooses {:?}, free form chooses {:?}\n",
        bound_plan.method, free_plan.method
    );

    let cfg = FixpointConfig::with_max_iterations(200_000);
    let mut t = Table::new(&["execution", "tuples-derived", "ms"]);
    let mut run = |label: &str, method: Method| {
        let start = Instant::now();
        let ans = evaluate_query(&sg, &sgdb, &bound_q, method, &cfg).unwrap();
        t.row(&[
            label.to_string(),
            ans.metrics.tuples_derived.to_string(),
            fnum(start.elapsed().as_secs_f64() * 1000.0),
        ]);
        ans.tuples.len()
    };
    let a = run("bound query, its own plan", bound_plan.method);
    let b = run("bound query, free form's plan", free_plan.method);
    assert_eq!(a, b, "both executions must agree on the answers");
    println!("executing the bound query sg({leaf}, Y)? both ways:");
    println!("{t}");
    println!(
        "Expected shape: the free form's plan (full fixpoint) derives the\n\
         entire sg relation; the bound form's plan touches only the\n\
         query's generation — orders of magnitude fewer derivations."
    );
}
