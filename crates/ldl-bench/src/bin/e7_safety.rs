//! E7 — compile-time safety (§8).
//!
//! The optimizer must (a) discard unsafe orderings by pricing them at
//! +∞ while still finding safe reorderings when they exist, (b) report
//! a query unsafe when *no* ordering works — including the paper's own
//! §8.3 example `p(x,y,z) <- x = 3, z = x + y`, which is finite but
//! unprovable under any goal permutation — and (c) make safety
//! query-form-specific (list length is safe only with the list bound).
//!
//! Run: `cargo run --release -p ldl-bench --bin e7_safety`

use ldl_bench::table::Table;
use ldl_core::parser::{parse_program, parse_query};
use ldl_optimizer::{OptConfig, Optimizer};
use ldl_storage::Database;

struct Case {
    name: &'static str,
    program: &'static str,
    query: &'static str,
    expect_safe: bool,
    note: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "comparison reordered",
        program: "n(1). n(5). n(9).\nbig(X) <- X > 3, n(X).",
        query: "big(Y)?",
        expect_safe: true,
        note: "X > 3 unsafe first; optimizer reorders n(X) ahead",
    },
    Case {
        name: "arith assignment reordered",
        program: "n(1).\ndouble(X, Y) <- Y = X * 2, n(X).",
        query: "double(A, B)?",
        expect_safe: true,
        note: "Y = X*2 runs after n(X) binds X",
    },
    Case {
        name: "paper §8.3 example, free",
        program: "p(X, Y, Z) <- X = 3, Z = X + Y.",
        query: "p(A, B, C)?",
        expect_safe: false,
        note: "finite answer exists but no goal permutation computes it (needs flattening)",
    },
    Case {
        name: "paper §8.3 example, Y bound",
        program: "p(X, Y, Z) <- X = 3, Z = X + Y.",
        query: "p(A, 6, C)?",
        expect_safe: true,
        note: "binding y=2x's value makes every equality EC",
    },
    Case {
        name: "unbound head variable",
        program: "pair(X, W) <- n(X).\nn(1).",
        query: "pair(A, B)?",
        expect_safe: false,
        note: "W ranges over an infinite domain (lack of finite answer)",
    },
    Case {
        name: "unbound head var, bound form",
        program: "pair(X, W) <- n(X).\nn(1).",
        query: "pair(A, 7)?",
        expect_safe: true,
        note: "the query form supplies W",
    },
    Case {
        name: "generative recursion, free",
        program: "zero(0).\ncnt(X) <- zero(X).\ncnt(Y) <- cnt(X), Y = X + 1.",
        query: "cnt(N)?",
        expect_safe: false,
        note: "no well-founded order: fixpoint diverges",
    },
    Case {
        name: "list length, list bound",
        program: "len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.",
        query: "len([1, 2, 3], N)?",
        expect_safe: true,
        note: "argument 0 strictly decreases and is bound (well-founded)",
    },
    Case {
        name: "list length, free",
        program: "len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.",
        query: "len(L, N)?",
        expect_safe: false,
        note: "no binding to descend on: infinitely many lists",
    },
    Case {
        name: "list append, inputs bound",
        program: "app([], L, L).\napp([H | T], L, [H | R]) <- app(T, L, R).",
        query: "app([1, 2], [3], Z)?",
        expect_safe: true,
        note: "first argument descends structurally",
    },
    Case {
        name: "datalog tc, always safe",
        program: "e(1, 2).\ntc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).",
        query: "tc(X, Y)?",
        expect_safe: true,
        note: "Datalog-finite clique: safe under every form",
    },
    Case {
        name: "structure-growing recursion",
        program: "seed(a).\nw(X) <- seed(X).\nw(f(X)) <- w(X).",
        query: "w(T)?",
        expect_safe: false,
        note: "head builds f(X): Herbrand base unbounded",
    },
    Case {
        name: "comparison never satisfiable-to-bind",
        program: "q(X, Y) <- n(X), Y > X.",
        query: "q(A, B)?",
        expect_safe: false,
        note: "Y > X is an infinite relation: Y never bound",
    },
];

fn main() {
    println!("E7: safety battery — optimizer verdicts vs expectations\n");
    let mut t = Table::new(&["case", "expected", "verdict", "ok", "note"]);
    let mut failures = 0;
    for case in CASES {
        let program = parse_program(case.program).unwrap();
        let db = Database::from_program(&program);
        let opt = Optimizer::new(
            &program,
            &db,
            OptConfig {
                assume_acyclic: true,
                ..OptConfig::default()
            },
        );
        let query = parse_query(case.query).unwrap();
        let verdict = opt.optimize(&query);
        let safe = verdict.is_ok();
        let ok = safe == case.expect_safe;
        if !ok {
            failures += 1;
        }
        t.row(&[
            case.name.to_string(),
            if case.expect_safe { "safe" } else { "UNSAFE" }.to_string(),
            if safe { "safe" } else { "UNSAFE" }.to_string(),
            if ok { "yes" } else { "** NO **" }.to_string(),
            case.note.to_string(),
        ]);
    }
    println!("{t}");
    if failures == 0 {
        println!(
            "all {} verdicts match the paper's expectations",
            CASES.len()
        );
    } else {
        println!("** {failures} verdict(s) diverge — investigate **");
        std::process::exit(1);
    }
}
