//! E9 — the Prolog baseline (§1).
//!
//! The paper's opening argument: in Prolog "it is up to the programmer
//! to make sure that this order leads to a safe and efficient
//! execution", whereas LDL's optimizer assumes that responsibility at
//! compile time. We run the same programs through a faithful SLD
//! resolver (textual order, depth-first) and through the optimizer +
//! fixpoint engine:
//!
//! 1. left-recursive transitive closure — Prolog loops (depth bound),
//!    LDL evaluates it like any other clique;
//! 2. a body written builtin-first — Prolog throws an instantiation
//!    error, LDL reorders;
//! 3. right-recursive TC (Prolog's happy path) — both terminate; the
//!    work comparison shows SLD re-deriving shared subgoals that the
//!    fixpoint methods memoize.
//!
//! Run: `cargo run --release -p ldl-bench --bin e9_prolog_baseline`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::transitive_closure_chains;
use ldl_core::parser::{parse_program, parse_query};
use ldl_eval::sld::{solve_sld, SldConfig};
use ldl_eval::{evaluate_query, FixpointConfig, Method};
use ldl_optimizer::Optimizer;
use ldl_storage::Database;
use std::time::Instant;

fn main() {
    println!("E9: Prolog-style SLD (textual order) vs the LDL optimizer\n");

    // 1. Left recursion.
    println!("1) left-recursive tc: tc(X,Y) <- tc(X,Z), e(Z,Y).");
    let left = r#"
        e(1, 2). e(2, 3). e(3, 4). e(4, 5).
        tc(X, Y) <- e(X, Y).
        tc(X, Y) <- tc(X, Z), e(Z, Y).
    "#;
    let program = parse_program(left).unwrap();
    let db = Database::from_program(&program);
    let query = parse_query("tc(1, Y)?").unwrap();
    let cfg = SldConfig {
        max_depth: 128,
        ..SldConfig::default()
    };
    let (ans, stats) = solve_sld(&program, &db, &query, &cfg).unwrap();
    println!(
        "   prolog: {} answers, depth bound hit: {} (the classic loop)",
        ans.len(),
        stats.depth_exceeded
    );
    let fix = evaluate_query(
        &program,
        &db,
        &query,
        Method::Magic,
        &FixpointConfig::default(),
    )
    .unwrap();
    println!(
        "   ldl:    {} answers, no divergence (fixpoint semantics)\n",
        fix.tuples.len()
    );

    // 2. Builtin-first body.
    println!("2) body written builtin-first: big(Y,X) <- Y = X * 10, n(X).");
    let bad = "n(1). n(2). n(3).\nbig(Y, X) <- Y = X * 10, n(X).";
    let program = parse_program(bad).unwrap();
    let db = Database::from_program(&program);
    let query = parse_query("big(A, B)?").unwrap();
    match solve_sld(&program, &db, &query, &SldConfig::default()) {
        Err(e) => println!("   prolog: {e}"),
        Ok(_) => println!("   prolog: unexpectedly succeeded"),
    }
    let opt = Optimizer::with_defaults(&program, &db);
    let plan = opt.optimize(&query).unwrap();
    let ans = plan
        .execute(&program, &db, &FixpointConfig::default())
        .unwrap();
    println!(
        "   ldl:    reordered the body, {} answers (the optimizer owns goal order)\n",
        ans.tuples.len()
    );

    // 3. The happy path, measured.
    println!("3) right-recursive tc on chains (Prolog's preferred shape):");
    let mut t = Table::new(&[
        "chains x len",
        "answers",
        "sld-resolutions",
        "sld-ms",
        "magic-derived",
        "magic-ms",
    ]);
    for (len, comps) in [(32usize, 4usize), (64, 8), (128, 8)] {
        let (mut program, start) = transitive_closure_chains(len, comps);
        // Rewrite tc right-recursive for SLD's benefit.
        program.rules.clear();
        let extra =
            parse_program("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\ne(0,0).").unwrap();
        for r in extra.rules {
            program.rules.push(r);
        }
        let db = Database::from_program(&program);
        let query = parse_query(&format!("tc({start}, Y)?")).unwrap();
        let t0 = Instant::now();
        let (ans, stats) = solve_sld(&program, &db, &query, &SldConfig::default()).unwrap();
        let sld_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let fix = evaluate_query(
            &program,
            &db,
            &query,
            Method::Magic,
            &FixpointConfig::default(),
        )
        .unwrap();
        let magic_ms = t1.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(ans.len(), fix.tuples.len(), "engines disagree");
        t.row(&[
            format!("{comps} x {len}"),
            ans.len().to_string(),
            stats.resolutions.to_string(),
            fnum(sld_ms),
            fix.metrics.tuples_derived.to_string(),
            fnum(magic_ms),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: SLD re-derives shared suffixes exponentially often\n\
         where the fixpoint memoizes; and only the optimizer survives the\n\
         left-recursive formulation and the unordered body at all."
    );
}
