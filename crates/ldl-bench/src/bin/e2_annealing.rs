//! E2 — simulated annealing quality vs probes ([IW 87], §7.1).
//!
//! The paper: the number of permutations a stochastic search must probe
//! "is claimed to be much smaller [than the size of the search space] by
//! using a technique called Simulated Annealing". We measure: solution
//! quality vs the exhaustive optimum, and probes used vs the n! space
//! size, across query sizes.
//!
//! Run: `cargo run --release -p ldl-bench --bin e2_annealing`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::{random_join_graph, Shape};
use ldl_optimizer::search::anneal::{optimize_anneal, AnnealParams};
use ldl_optimizer::search::exhaustive::optimize_dp;

fn main() {
    let samples = 100u64;
    println!("E2: simulated annealing (swap-two neighbor) vs optimal");
    println!("({samples} random-shape samples per size)\n");
    let mut t = Table::new(&[
        "n",
        "space(n!)",
        "avg-probes",
        "probes/space",
        "optimal%",
        "within2x%",
        "geomean-ratio",
    ]);
    for n in [5usize, 7, 9, 11] {
        let space: f64 = (1..=n).map(|i| i as f64).product();
        let mut probes_total = 0usize;
        let mut optimal = 0usize;
        let mut within2 = 0usize;
        let mut log_sum = 0.0;
        for s in 0..samples {
            let g = random_join_graph(Shape::Random, n, (n as u64) << 20 | s);
            let best = optimize_dp(&g);
            let params = AnnealParams {
                max_probes: 4000,
                ..AnnealParams::default()
            };
            let an = optimize_anneal(&g, &params, s ^ 0xA11EA);
            probes_total += an.probes;
            let ratio = if best.cost > 0.0 {
                an.cost / best.cost
            } else {
                1.0
            };
            if ratio <= 1.0 + 1e-9 {
                optimal += 1;
            }
            if ratio <= 2.0 {
                within2 += 1;
            }
            log_sum += ratio.max(1.0).ln();
        }
        let avg_probes = probes_total as f64 / samples as f64;
        t.row(&[
            n.to_string(),
            fnum(space),
            fnum(avg_probes),
            fnum(avg_probes / space),
            format!("{:.1}", 100.0 * optimal as f64 / samples as f64),
            format!("{:.1}", 100.0 * within2 as f64 / samples as f64),
            fnum((log_sum / samples as f64).exp()),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: probes/space collapses as n grows while quality\n\
         stays near-optimal — the paper's rationale for the stochastic\n\
         strategy on large conjuncts."
    );
}
