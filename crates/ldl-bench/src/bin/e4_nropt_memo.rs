//! E4 — NR-OPT's per-binding memoization (Fig. 7-1).
//!
//! "This algorithm guarantees that each subtree is optimized exactly
//! ONCE for each binding." We build layered rule bases whose subtrees
//! are referenced many times, then optimize with the memo on and off and
//! count OR-subtree optimizations and wall time. Without the memo the
//! work grows with the number of *paths* to a subtree (exponential in
//! depth); with it, with the number of distinct (predicate, binding)
//! pairs.
//!
//! Run: `cargo run --release -p ldl-bench --bin e4_nropt_memo`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::{layered_rulebase, synthetic_database};
use ldl_core::parser::parse_query;
use ldl_optimizer::{OptConfig, Optimizer};
use std::time::Instant;

fn main() {
    println!("E4: NR-OPT per-binding memoization ablation\n");
    let mut t = Table::new(&[
        "width",
        "depth",
        "subtrees(memo)",
        "hits(memo)",
        "us(memo)",
        "subtrees(no-memo)",
        "us(no-memo)",
        "work-ratio",
    ]);
    for (width, depth) in [(2usize, 3usize), (2, 5), (3, 4), (2, 7), (3, 5)] {
        let (program, root) = layered_rulebase(width, depth);
        let db = synthetic_database(&program, 42);
        let query = parse_query(&format!("{}(X)?", root.name)).unwrap();

        let run = |memo: bool| {
            let cfg = OptConfig {
                memo_enabled: memo,
                ..OptConfig::default()
            };
            let opt = Optimizer::new(&program, &db, cfg);
            let start = Instant::now();
            opt.optimize(&query).expect("layered program is safe");
            (opt.stats(), start.elapsed().as_micros() as f64)
        };
        let (with, with_us) = run(true);
        let (without, without_us) = run(false);
        t.row(&[
            width.to_string(),
            depth.to_string(),
            with.subtree_optimizations.to_string(),
            with.memo_hits.to_string(),
            fnum(with_us),
            without.subtree_optimizations.to_string(),
            fnum(without_us),
            fnum(without.subtree_optimizations as f64 / with.subtree_optimizations.max(1) as f64),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: with the memo, subtree optimizations equal the\n\
         number of distinct (predicate, binding) pairs; without it they\n\
         grow with the number of paths — exponential in depth."
    );
}
